//! E5 (§6) — the allocatable program verbatim through the front end, plus
//! a churn sweep measuring REALIGN/REDISTRIBUTE remap volumes.

use hpf_frontend::Elaborator;

fn main() {
    println!("E5 — §6 allocatable example (M = 3, N = 16, 8 processors)\n");
    let src = r#"
      REAL, ALLOCATABLE :: A(:,:), B(:,:)
      REAL, ALLOCATABLE :: C(:), D(:)
!HPF$ PROCESSORS PR(8)
!HPF$ PROCESSORS GRID(2,4)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK) TO GRID
!HPF$ DISTRIBUTE (BLOCK) :: C,D
!HPF$ DYNAMIC B,C
      READ 6,M,N
      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
      END
"#;
    let elab = Elaborator::new(8)
        .with_input("M", 3)
        .with_input("N", 16)
        .run(src)
        .expect("elaboration");
    print!("{}", elab.report);
    println!(
        "\ntotal elements moved by dynamic remapping: {}",
        elab.report.total_remap_volume()
    );

    println!("\nredistribution churn sweep (C(n) BLOCK → CYCLIC on 8 procs):");
    println!("  {:>8} {:>12} {:>10}", "n", "moved", "moved/n");
    for n in [1000usize, 10_000, 100_000] {
        let src = format!(
            r#"
      REAL, ALLOCATABLE :: C(:)
!HPF$ DISTRIBUTE (BLOCK) :: C
!HPF$ DYNAMIC C
      ALLOCATE(C({n}))
!HPF$ REDISTRIBUTE C(CYCLIC)
      END
"#
        );
        let e = Elaborator::new(8).run(&src).unwrap();
        let moved = e.report.total_remap_volume();
        println!("  {n:>8} {moved:>12} {:>10.3}", moved as f64 / n as f64);
    }
    println!(
        "\nclaim reproduced: spec-part directives propagate to every ALLOCATE;\n\
         REALIGN keeps the §2.3 collocation invariant; BLOCK→CYCLIC moves\n\
         ≈ (NP−1)/NP of the elements."
    );
}
