//! Property tests on the runtime: executors agree with the dense
//! reference, the parallel executor is bit-identical to the sequential
//! one, and the region-algebraic communication analysis agrees with exact
//! element-wise enumeration on random statements.

use hpf::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn fmt_of(k: u8) -> FormatSpec {
    match k {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        3 => FormatSpec::Cyclic(2),
        _ => FormatSpec::Cyclic(5),
    }
}

/// A random 1-D scenario: two arrays with independent formats, a strided
/// LHS window and a conforming strided RHS window.
#[derive(Debug, Clone)]
struct Scenario {
    n: i64,
    np: usize,
    fmt_a: u8,
    fmt_b: u8,
    lhs_start: i64,
    rhs_start: i64,
    rhs_stride: i64,
    count: i64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (20i64..80, 1usize..6, 0..5u8, 0..5u8, 1i64..5, 1i64..5, 1i64..4, 3i64..12).prop_map(
        |(n, np, fmt_a, fmt_b, lhs_start, rhs_start, rhs_stride, count)| {
            // clamp so both windows fit
            let count = count
                .min(n - lhs_start)
                .min((n - rhs_start) / rhs_stride)
                .max(1);
            Scenario { n, np, fmt_a, fmt_b, lhs_start, rhs_start, rhs_stride, count }
        },
    )
}

fn build(s: &Scenario) -> (Vec<DistArray<f64>>, Assignment) {
    let mut ds = DataSpace::new(s.np);
    let a = ds.declare("A", IndexDomain::of_shape(&[s.n as usize]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[s.n as usize]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt_of(s.fmt_a)])).unwrap();
    ds.distribute(b, &DistributeSpec::new(vec![fmt_of(s.fmt_b)])).unwrap();
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), s.np, |i| i[0] as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), s.np, |i| (i[0] * 31) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let lhs_sec =
        Section::from_triplets(vec![span(s.lhs_start, s.lhs_start + s.count - 1)]);
    let rhs_sec = Section::from_triplets(vec![triplet(
        s.rhs_start,
        s.rhs_start + (s.count - 1) * s.rhs_stride,
        s.rhs_stride,
    )]);
    let stmt = Assignment::new(
        0,
        lhs_sec,
        vec![Term::new(1, rhs_sec.clone()), Term::new(0, rhs_sec)],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    (arrays, stmt)
}

/// Exact element-wise analysis oracle.
fn brute_analysis(maps: &[Arc<EffectiveDist>], _np: usize, stmt: &Assignment) -> CommStats {
    let mut comm = CommStats::new();
    let shape: Vec<usize> = stmt
        .lhs_section
        .dims()
        .iter()
        .filter(|d| !d.is_scalar())
        .map(|d| d.as_triplet().len())
        .collect();
    for rel in IndexDomain::of_shape(&shape).unwrap().iter() {
        let li = stmt.lhs_index(&rel);
        let computer = maps[stmt.lhs].owner(&li);
        for (t, term) in stmt.terms.iter().enumerate() {
            let ri = stmt.rhs_index(t, &rel);
            let owners = maps[term.array].owners(&ri);
            if !owners.contains(computer) {
                comm.record(owners.iter().next().unwrap(), computer, 1);
            }
        }
    }
    comm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential execution equals the dense reference.
    #[test]
    fn seq_matches_dense_reference(s in arb_scenario()) {
        let (mut arrays, stmt) = build(&s);
        let expect = dense_reference(&arrays, &stmt);
        SeqExecutor.execute(&mut arrays, &stmt).unwrap();
        prop_assert_eq!(arrays[0].to_dense(), expect);
    }

    /// Parallel execution is bit-identical to sequential.
    #[test]
    fn par_matches_seq(s in arb_scenario(), threads in 1usize..5) {
        let (mut seq_arrays, stmt) = build(&s);
        let (mut par_arrays, _) = build(&s);
        SeqExecutor.execute(&mut seq_arrays, &stmt).unwrap();
        ParExecutor::with_threads(threads).execute(&mut par_arrays, &stmt).unwrap();
        prop_assert_eq!(seq_arrays[0].to_dense(), par_arrays[0].to_dense());
        prop_assert_eq!(seq_arrays[1].to_dense(), par_arrays[1].to_dense());
    }

    /// The region-algebraic analysis equals element-wise enumeration.
    #[test]
    fn region_analysis_exact(s in arb_scenario()) {
        let (arrays, stmt) = build(&s);
        let maps: Vec<Arc<EffectiveDist>> =
            arrays.iter().map(|a| a.mapping().clone()).collect();
        let got = comm_analysis(&maps, s.np, &stmt);
        let want = brute_analysis(&maps, s.np, &stmt);
        prop_assert_eq!(&got.comm, &want);
        // loads sum = elements × terms
        let total: u64 = got.loads.iter().sum();
        prop_assert_eq!(total, (stmt.element_count() * stmt.terms.len()) as u64);
    }

    /// Identical mappings never communicate (the §1 collocation payoff).
    #[test]
    fn identical_mappings_zero_comm(fmt in 0..5u8, n in 10usize..60, np in 1usize..6) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        let maps = vec![ds.effective(a).unwrap(), ds.effective(b).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n as i64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n as i64)]))],
            Combine::Copy,
            &doms,
        ).unwrap();
        let analysis = comm_analysis(&maps, np, &stmt);
        prop_assert!(analysis.comm.is_empty());
        prop_assert_eq!(analysis.remote_reads, 0);
    }

    /// Storage totals: partitioned mappings store each element exactly
    /// once, however the formats fall.
    #[test]
    fn storage_is_partition(fmt in 0..5u8, n in 1usize..80, np in 1usize..7) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![fmt_of(fmt)])).unwrap();
        let arr = DistArray::new("A", ds.effective(a).unwrap(), np, 0.0f64);
        prop_assert_eq!(arr.total_storage(), n);
    }
}

/// Deterministic regression: a 2-D transpose-flavoured statement across
/// mismatched grids, all three consistency checks at once.
#[test]
fn transpose_statement_consistency() {
    let n = 12i64;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"))
        .unwrap();
    ds.distribute(b, &DistributeSpec::to(vec![FormatSpec::Cyclic(1), FormatSpec::Block], "G"))
        .unwrap();
    let mut arrays = vec![
        DistArray::new("A", ds.effective(a).unwrap(), np, 0.0),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 100 + i[1]) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, n), span(1, n)]),
        vec![Term::new(1, Section::from_triplets(vec![span(1, n), span(1, n)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let expect = dense_reference(&arrays, &stmt);
    let maps: Vec<Arc<EffectiveDist>> = arrays.iter().map(|x| x.mapping().clone()).collect();
    let analysis = SeqExecutor.execute(&mut arrays, &stmt).unwrap();
    assert_eq!(arrays[0].to_dense(), expect);
    assert_eq!(&analysis.comm, &brute_analysis(&maps, np, &stmt));
}
