use crate::align::expr::AlignExpr;
use crate::align::func::{AlignmentFn, AxisMap};
use crate::align::spec::{AligneeAxis, AlignSpec, BaseSubscript};
use crate::HpfError;
use hpf_index::{IndexDomain, Triplet};

/// Apply the §5.1 transformation sequence to an `ALIGN` directive,
/// producing the alignment function in reduced normal form:
///
/// 1. every `:` alignee axis is matched (in order) with a subscript
///    triplet of the base, checked for extent
///    (`U−L+1 ≤ MAX(INT((UT−LT+ST)/ST), 0)`), and rewritten to the affine
///    expression `(J − L)·ST + LT`;
/// 2. every `*` alignee axis is replaced by a fresh dummy used nowhere
///    else (collapse);
/// 3. every `*` base subscript denotes replication over that base
///    dimension;
/// 4. dummyless expressions are evaluated; single-dummy expressions become
///    affine maps when structurally linear, general expression maps
///    otherwise; multi-dummy expressions are rejected (skew);
/// 5. every dummy may feed at most one base subscript.
///
/// ```
/// use hpf_core::{reduce, AlignExpr, AlignSpec};
/// use hpf_index::{Idx, IndexDomain};
///
/// // ALIGN P(I,J) WITH T(2*I-1, 2*J-1) — the §8.1.1 staggered alignment
/// let spec = AlignSpec::with_exprs(
///     2,
///     vec![AlignExpr::dummy(0) * 2 - 1, AlignExpr::dummy(1) * 2 - 1],
/// );
/// let f = reduce(
///     &spec,
///     &IndexDomain::standard(&[(1, 8), (1, 8)]).unwrap(),
///     &IndexDomain::standard(&[(0, 16), (0, 16)]).unwrap(),
/// ).unwrap();
/// assert_eq!(f.image_point(&Idx::d2(3, 5)), Idx::d2(5, 9));
/// ```
pub fn reduce(
    spec: &AlignSpec,
    alignee: &IndexDomain,
    base: &IndexDomain,
) -> Result<AlignmentFn, HpfError> {
    if spec.alignee.len() != alignee.rank() {
        return Err(HpfError::AligneeRank {
            array: "<alignee>".to_string(),
            axes: spec.alignee.len(),
            rank: alignee.rank(),
        });
    }
    if spec.base.len() != base.rank() {
        return Err(HpfError::BaseRank {
            array: "<base>".to_string(),
            subscripts: spec.base.len(),
            rank: base.rank(),
        });
    }

    // classify the alignee axes
    let mut dummy_dim: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut colon_dims: Vec<usize> = Vec::new();
    for (d, ax) in spec.alignee.iter().enumerate() {
        match ax {
            AligneeAxis::Colon => colon_dims.push(d),
            AligneeAxis::Star => {} // fresh unused dummy: simply never referenced
            AligneeAxis::Dummy(id) => {
                if dummy_dim.insert(*id, d).is_some() {
                    return Err(HpfError::DummyReused(*id));
                }
            }
        }
    }

    let triplet_count = spec
        .base
        .iter()
        .filter(|b| matches!(b, BaseSubscript::Triplet { .. }))
        .count();
    if triplet_count != colon_dims.len() {
        return Err(HpfError::ColonTripletCount {
            colons: colon_dims.len(),
            triplets: triplet_count,
        });
    }

    let mut axes: Vec<AxisMap> = Vec::with_capacity(base.rank());
    let mut used_dims: Vec<bool> = vec![false; alignee.rank()];
    let mut next_colon = 0usize;

    for (j, sub) in spec.base.iter().enumerate() {
        let map = match sub {
            BaseSubscript::Star => AxisMap::Replicated,
            BaseSubscript::Triplet { lower, upper, stride } => {
                // fill defaults from the *base* dimension j
                let lt = lower.unwrap_or_else(|| base.lower(j));
                let ut = upper.unwrap_or_else(|| base.upper(j));
                let st = stride.unwrap_or(1);
                let trip =
                    Triplet::new(lt, ut, st).map_err(|_| HpfError::BadAlignExpr(
                        "subscript triplet stride must be nonzero".into(),
                    ))?;
                let d = colon_dims[next_colon];
                next_colon += 1;
                // §5.1 extent rule
                let alignee_extent = alignee.extent(d);
                if alignee_extent > trip.len() {
                    return Err(HpfError::ColonExtent {
                        dim: d,
                        alignee: alignee_extent,
                        triplet: trip.len(),
                    });
                }
                mark_used(&mut used_dims, d)?;
                // (J − L)·ST + LT
                AxisMap::Affine { dim: d, a: st, c: lt - alignee.lower(d) * st }
            }
            BaseSubscript::Expr(e) => {
                let dummies = e.dummies();
                match dummies.len() {
                    0 => {
                        let v = e.eval_const()?;
                        AxisMap::Const(v.clamp(base.lower(j), base.upper(j)))
                    }
                    1 => {
                        let id = dummies[0];
                        let d = *dummy_dim
                            .get(&id)
                            .ok_or(HpfError::UnknownDummy(id))?;
                        mark_used(&mut used_dims, d)?;
                        // rewrite the expression's dummy id to the dimension
                        let expr = rewrite_dummy(e, id, d);
                        match expr.linear_in(d) {
                            Some((0, c)) => {
                                AxisMap::Const(c.clamp(base.lower(j), base.upper(j)))
                            }
                            Some((a, c)) => AxisMap::Affine { dim: d, a, c },
                            None => AxisMap::Expr { dim: d, expr },
                        }
                    }
                    _ => return Err(HpfError::SkewExpression),
                }
            }
        };
        axes.push(map);
    }

    AlignmentFn::from_parts(alignee.clone(), base.clone(), axes)
}

fn mark_used(used: &mut [bool], d: usize) -> Result<(), HpfError> {
    if used[d] {
        return Err(HpfError::DummyReused(d));
    }
    used[d] = true;
    Ok(())
}

fn rewrite_dummy(e: &AlignExpr, from: usize, to: usize) -> AlignExpr {
    match e {
        AlignExpr::Const(v) => AlignExpr::Const(*v),
        AlignExpr::Dummy(d) if *d == from => AlignExpr::Dummy(to),
        AlignExpr::Dummy(d) => AlignExpr::Dummy(*d),
        AlignExpr::Add(a, b) => AlignExpr::Add(
            Box::new(rewrite_dummy(a, from, to)),
            Box::new(rewrite_dummy(b, from, to)),
        ),
        AlignExpr::Sub(a, b) => AlignExpr::Sub(
            Box::new(rewrite_dummy(a, from, to)),
            Box::new(rewrite_dummy(b, from, to)),
        ),
        AlignExpr::Mul(a, b) => AlignExpr::Mul(
            Box::new(rewrite_dummy(a, from, to)),
            Box::new(rewrite_dummy(b, from, to)),
        ),
        AlignExpr::Neg(a) => AlignExpr::Neg(Box::new(rewrite_dummy(a, from, to))),
        AlignExpr::Max(a, b) => AlignExpr::Max(
            Box::new(rewrite_dummy(a, from, to)),
            Box::new(rewrite_dummy(b, from, to)),
        ),
        AlignExpr::Min(a, b) => AlignExpr::Min(
            Box::new(rewrite_dummy(a, from, to)),
            Box::new(rewrite_dummy(b, from, to)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_index::{span, Idx};
    use AlignExpr as E;

    fn dom(bounds: &[(i64, i64)]) -> IndexDomain {
        IndexDomain::standard(bounds).unwrap()
    }

    #[test]
    fn paper_replication_example() {
        // ALIGN A(:) WITH D(:,*) — A(1:N), D(1:N,1:M), N=4, M=3
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Star],
        );
        let f = reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 4), (1, 3)])).unwrap();
        // α(J) = {(J, k) | 1 ≤ k ≤ M}
        let img = f.image_rect(&Idx::d1(2));
        assert_eq!(img.dims()[0], Triplet::scalar(2));
        assert_eq!(img.dims()[1], span(1, 3));
    }

    #[test]
    fn paper_collapse_example() {
        // ALIGN B(:,*) WITH E(:) — B(1:N,1:M), E(1:N)
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Star],
            vec![BaseSubscript::COLON],
        );
        let f = reduce(&spec, &dom(&[(1, 4), (1, 3)]), &dom(&[(1, 4)])).unwrap();
        assert_eq!(f.image_point(&Idx::d2(3, 1)), Idx::d1(3));
        assert_eq!(f.image_point(&Idx::d2(3, 3)), Idx::d1(3));
        assert_eq!(f.collapsed_dims(), vec![1]);
    }

    #[test]
    fn staggered_grid_alignments() {
        // ALIGN P(I,J) WITH T(2*I−1, 2*J−1) — P(1:N,1:N), T(0:2N,0:2N), N=8
        let spec = AlignSpec::with_exprs(
            2,
            vec![E::dummy(0) * 2 - 1, E::dummy(1) * 2 - 1],
        );
        let f = reduce(&spec, &dom(&[(1, 8), (1, 8)]), &dom(&[(0, 16), (0, 16)])).unwrap();
        assert_eq!(f.image_point(&Idx::d2(1, 1)), Idx::d2(1, 1));
        assert_eq!(f.image_point(&Idx::d2(8, 8)), Idx::d2(15, 15));
        // ALIGN U(I,J) WITH T(2*I, 2*J−1) — U(0:N,1:N)
        let spec = AlignSpec::with_exprs(2, vec![E::dummy(0) * 2, E::dummy(1) * 2 - 1]);
        let f = reduce(&spec, &dom(&[(0, 8), (1, 8)]), &dom(&[(0, 16), (0, 16)])).unwrap();
        assert_eq!(f.image_point(&Idx::d2(0, 1)), Idx::d2(0, 1));
        assert_eq!(f.image_point(&Idx::d2(8, 8)), Idx::d2(16, 15));
    }

    #[test]
    fn allocatable_example_triplets() {
        // REALIGN B(:,:) WITH A(M::M, 1::M) — B(1:N,1:N), A(1:N*M,1:N*M)
        // with N=4, M=3: B(i,j) ↦ A(3i, 3j−2)
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Colon],
            vec![
                BaseSubscript::Triplet { lower: Some(3), upper: None, stride: Some(3) },
                BaseSubscript::Triplet { lower: Some(1), upper: None, stride: Some(3) },
            ],
        );
        let f = reduce(&spec, &dom(&[(1, 4), (1, 4)]), &dom(&[(1, 12), (1, 12)])).unwrap();
        assert_eq!(f.image_point(&Idx::d2(1, 1)), Idx::d2(3, 1));
        assert_eq!(f.image_point(&Idx::d2(4, 4)), Idx::d2(12, 10));
    }

    #[test]
    fn section_alignment_8_1_2() {
        // ALIGN X(I) WITH A(2*I) — X(1:498), A(1:1000)
        let spec = AlignSpec::with_exprs(1, vec![E::dummy(0) * 2]);
        let f = reduce(&spec, &dom(&[(1, 498)]), &dom(&[(1, 1000)])).unwrap();
        assert_eq!(f.image_point(&Idx::d1(1)), Idx::d1(2));
        assert_eq!(f.image_point(&Idx::d1(498)), Idx::d1(996));
    }

    #[test]
    fn colon_extent_rule_enforced() {
        // alignee 1:10 cannot spread over a triplet of length 5
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::Triplet { lower: Some(1), upper: Some(5), stride: None }],
        );
        let err = reduce(&spec, &dom(&[(1, 10)]), &dom(&[(1, 20)])).unwrap_err();
        assert!(matches!(err, HpfError::ColonExtent { alignee: 10, triplet: 5, .. }));
    }

    #[test]
    fn colon_triplet_count_mismatch() {
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Star],
        );
        assert!(matches!(
            reduce(&spec, &dom(&[(1, 4), (1, 4)]), &dom(&[(1, 4), (1, 4)])),
            Err(HpfError::ColonTripletCount { colons: 2, triplets: 1 })
        ));
    }

    #[test]
    fn skew_rejected() {
        // B(I+J) uses two dummies in one subscript
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0), AligneeAxis::Dummy(1)],
            vec![BaseSubscript::Expr(E::dummy(0) + E::dummy(1)), BaseSubscript::Star],
        );
        assert_eq!(
            reduce(&spec, &dom(&[(1, 4), (1, 4)]), &dom(&[(1, 8), (1, 4)])),
            Err(HpfError::SkewExpression)
        );
    }

    #[test]
    fn dummy_in_two_subscripts_rejected() {
        // WITH B(I, I) — same dummy feeding two base dims
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0)],
            vec![BaseSubscript::Expr(E::dummy(0)), BaseSubscript::Expr(E::dummy(0))],
        );
        assert!(matches!(
            reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 4), (1, 4)])),
            Err(HpfError::DummyReused(_))
        ));
    }

    #[test]
    fn undeclared_dummy_rejected() {
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0)],
            vec![BaseSubscript::Expr(E::dummy(7))],
        );
        assert_eq!(
            reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 4)])),
            Err(HpfError::UnknownDummy(7))
        );
    }

    #[test]
    fn transpose_permutation_allowed() {
        // ALIGN A(I,J) WITH B(J,I) — permutation is not skew
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0), AligneeAxis::Dummy(1)],
            vec![BaseSubscript::Expr(E::dummy(1)), BaseSubscript::Expr(E::dummy(0))],
        );
        let f = reduce(&spec, &dom(&[(1, 3), (1, 5)]), &dom(&[(1, 5), (1, 3)])).unwrap();
        assert_eq!(f.image_point(&Idx::d2(2, 4)), Idx::d2(4, 2));
    }

    #[test]
    fn dummyless_expr_becomes_const() {
        // ALIGN A(:) WITH D(:, 2) — plant A along column 2
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Expr(E::c(2))],
        );
        let f = reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 4), (1, 3)])).unwrap();
        assert_eq!(f.image_point(&Idx::d1(3)), Idx::d2(3, 2));
    }

    #[test]
    fn constant_folding_degenerate_linear() {
        // J − J + 5 has a = 0 → constant 5
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0)],
            vec![BaseSubscript::Expr(E::dummy(0) - E::dummy(0) + 5)],
        );
        let f = reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 9)])).unwrap();
        assert_eq!(f.image_point(&Idx::d1(1)), Idx::d1(5));
        assert_eq!(f.collapsed_dims(), vec![0]);
    }

    #[test]
    fn min_truncation_expr_survives() {
        // ALIGN A(I) WITH B(MIN(I, 6))
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0)],
            vec![BaseSubscript::Expr(E::dummy(0).min(E::c(6)))],
        );
        let f = reduce(&spec, &dom(&[(1, 10)]), &dom(&[(1, 10)])).unwrap();
        assert_eq!(f.image_point(&Idx::d1(3)), Idx::d1(3));
        assert_eq!(f.image_point(&Idx::d1(9)), Idx::d1(6));
    }

    #[test]
    fn rank_mismatches() {
        let spec = AlignSpec::identity(2);
        assert!(matches!(
            reduce(&spec, &dom(&[(1, 4)]), &dom(&[(1, 4), (1, 4)])),
            Err(HpfError::AligneeRank { .. })
        ));
        assert!(matches!(
            reduce(&spec, &dom(&[(1, 4), (1, 4)]), &dom(&[(1, 4)])),
            Err(HpfError::BaseRank { .. })
        ));
    }

    #[test]
    fn repeated_alignee_dummy_rejected() {
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0), AligneeAxis::Dummy(0)],
            vec![BaseSubscript::Expr(E::dummy(0)), BaseSubscript::Star],
        );
        assert!(matches!(
            reduce(&spec, &dom(&[(1, 4), (1, 4)]), &dom(&[(1, 4), (1, 4)])),
            Err(HpfError::DummyReused(0))
        ));
    }
}
