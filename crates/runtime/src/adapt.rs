//! Self-adaptive redistribution: close the loop between *measured*
//! execution and the §4.2 `REDISTRIBUTE` machinery.
//!
//! The paper gives the compiler a vocabulary of distributions
//! (`BLOCK`, `CYCLIC(k)`, `GENERAL_BLOCK`) and a redistribution
//! primitive whose exact traffic [`crate::remap_analysis`] prices — but
//! leaves *when to pull the trigger* to the programmer. The
//! [`AdaptController`] automates that decision for iterated programs:
//!
//! 1. **Observe** — during warm replay it keeps a sliding window over
//!    the per-rank samples the backends measure (wall-time each
//!    simulated processor spent in compute kernels, via
//!    [`crate::Program::last_rank_compute_ns`]) plus the modeled
//!    per-rank loads of the frozen analyses;
//! 2. **Detect** — when the windowed load imbalance (`max/mean`)
//!    persists above [`AdaptPolicy::min_imbalance`], it starts pricing;
//! 3. **Price** — candidate remappings (a weight-balanced
//!    `GENERAL_BLOCK` fitted to the observed per-rank load, uniform
//!    re-blocking, cyclic re-blocking, and processor-grid reshapes) are
//!    priced on the machine model: *stay* costs
//!    `cost(current) × horizon`; *move* costs
//!    `cost(candidate) × horizon + cost(remap traffic)`;
//! 4. **Act** — if the best candidate wins by more than the
//!    [`AdaptPolicy::hysteresis`] margin (and the
//!    [`AdaptPolicy::cooldown`] has expired), every array of the
//!    affected same-domain group is remapped live through
//!    [`crate::Program::remap`] — invalidating exactly the plans that
//!    involve those arrays — and the decision is recorded in the
//!    [`AdaptReport`] with its predicted and (later) realized cost.
//!
//! Pricing is deliberately *modeled*: the machine model is the paper's
//! costing instrument, it is deterministic across hosts, and it is what
//! the controller can actually predict for a mapping it has never run.
//! The measured samples steer the imbalance gate and the
//! `GENERAL_BLOCK` weight fitting; the model arbitrates.
//!
//! Hysteresis plus cooldown guard against thrashing: a candidate that
//! wins by a hair this window would lose by a hair next window, so it
//! must win by a margin, and two remaps can never be closer than the
//! cooldown. Every refusal is counted, so tests can pin the controller
//! refusing a profitable remap during cooldown.

use crate::commsets::{comm_analysis, CommAnalysis};
use crate::program::Program;
use crate::remap::remap_analysis;
use hpf_core::{
    DataSpace, DimFormat, DistributeSpec, EffectiveDist, FormatSpec, GeneralBlock, HpfError,
};
use hpf_index::IndexDomain;
use hpf_machine::Machine;
use hpf_procs::ProcId;
use std::sync::Arc;

/// When and how aggressively the [`AdaptController`] may redistribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptPolicy {
    /// Samples required in the window before any decision (and before a
    /// remap's realized cost is recorded).
    pub window: usize,
    /// Timesteps a remap is amortized over: a candidate pays off iff
    /// `cost(candidate)·horizon + remap < cost(stay)·horizon·(1 − hysteresis)`.
    pub horizon: u64,
    /// Fractional margin a candidate must beat the status quo by
    /// (anti-thrash; `0.1` = must be ≥10% cheaper over the horizon).
    pub hysteresis: f64,
    /// Minimum timesteps between two remaps.
    pub cooldown: u64,
    /// Windowed `max/mean` load-imbalance below which the controller
    /// does not even price candidates (`1.0` = perfectly balanced).
    pub min_imbalance: f64,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy {
            window: 3,
            horizon: 50,
            hysteresis: 0.10,
            cooldown: 10,
            min_imbalance: 1.15,
        }
    }
}

impl AdaptPolicy {
    /// A hair-trigger policy for tests and short trajectories: window of
    /// 1, no cooldown, no hysteresis, any imbalance qualifies.
    pub fn aggressive() -> Self {
        AdaptPolicy {
            window: 1,
            horizon: 50,
            hysteresis: 0.0,
            cooldown: 0,
            min_imbalance: 1.0,
        }
    }
}

/// One remap the controller performed (or the refusal bookkeeping in
/// [`AdaptReport`] explains why it did not).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptEvent {
    /// Timestep (0-based within the session) the remap happened before.
    pub timestep: u64,
    /// Names of the arrays remapped (one same-domain group).
    pub arrays: Vec<String>,
    /// Human-readable description of the winning candidate.
    pub candidate: String,
    /// Windowed `max/mean` load imbalance that triggered the pricing.
    pub observed_imbalance: f64,
    /// Modeled cost of one timestep under the old mappings (µs).
    pub cost_stay: f64,
    /// Modeled cost of one timestep under the new mappings (µs).
    pub cost_candidate: f64,
    /// Modeled one-off cost of the redistribution itself (µs).
    pub remap_cost: f64,
    /// Elements that physically moved between processors in the remap.
    pub remap_elements: u64,
    /// `(cost_stay − cost_candidate)·horizon − remap_cost` (µs) — what
    /// the controller predicted the move would save.
    pub predicted_gain: f64,
    /// Modeled per-timestep cost re-priced once the post-remap window
    /// filled (µs) — compare against `cost_candidate` to see how well
    /// the prediction held. `None` until the window refills.
    pub realized_cost: Option<f64>,
}

/// What the controller observed and did over a session — the
/// [`crate::Session::adapt_report`] surface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptReport {
    /// Timesteps observed.
    pub steps_observed: u64,
    /// Remaps performed.
    pub remaps: u64,
    /// Total elements moved by all remaps.
    pub remap_elements: u64,
    /// Decisions refused because the cooldown had not expired.
    pub refused_cooldown: u64,
    /// Decisions refused because the win was inside the hysteresis
    /// margin.
    pub refused_hysteresis: u64,
    /// Pricing rounds where no candidate beat the status quo at all.
    pub refused_no_gain: u64,
    /// Most recent windowed `max/mean` load imbalance.
    pub last_imbalance: f64,
    /// The remaps, in order.
    pub events: Vec<AdaptEvent>,
}

/// A priced candidate remapping of one same-domain array group.
struct Candidate {
    label: String,
    mapping: Arc<EffectiveDist>,
}

/// The adaptive-redistribution controller (see the module docs for the
/// decision loop). Drive it through
/// [`crate::Session::adapt`][crate::Session::adapt]; or call
/// [`AdaptController::observe`] after every executed timestep and
/// [`AdaptController::decide`] before the next one.
#[derive(Debug)]
pub struct AdaptController {
    policy: AdaptPolicy,
    machine: Machine,
    /// Ring buffer of windowed imbalance samples.
    window: Vec<f64>,
    ring_pos: usize,
    ring_len: usize,
    /// Exponentially-weighted per-rank measured compute ns (α = 0.5).
    ewma_ns: Vec<f64>,
    /// Exponentially-weighted per-rank modeled loads.
    ewma_loads: Vec<f64>,
    /// Reused scratch for summing modeled loads per observe call.
    loads_scratch: Vec<u64>,
    /// Samples accumulated since the last remap (or the start).
    samples_since_change: u64,
    /// Timesteps since the last remap.
    steps_since_remap: u64,
    remapped_once: bool,
    /// Index into `report.events` awaiting its realized cost.
    pending_realized: Option<usize>,
    report: AdaptReport,
}

impl AdaptController {
    /// A controller with the given policy, pricing on `machine`.
    pub fn new(policy: AdaptPolicy, machine: Machine) -> Self {
        let w = policy.window.max(1);
        AdaptController {
            policy,
            machine,
            window: Vec::with_capacity(w),
            ring_pos: 0,
            ring_len: 0,
            ewma_ns: Vec::new(),
            ewma_loads: Vec::new(),
            loads_scratch: Vec::new(),
            samples_since_change: 0,
            steps_since_remap: 0,
            remapped_once: false,
            pending_realized: None,
            report: AdaptReport::default(),
        }
    }

    /// The decisions and refusals so far.
    pub fn report(&self) -> &AdaptReport {
        &self.report
    }

    /// Feed the sample of a just-executed timestep into the sliding
    /// window: the backend's measured per-rank compute time when the
    /// executor sampled it, the frozen analyses' modeled per-rank loads
    /// always. Allocation-free once the vectors are sized for `np`.
    pub fn observe(&mut self, program: &Program) {
        let np = program.np();
        if np == 0 {
            return;
        }
        if self.ewma_ns.len() != np {
            self.ewma_ns = vec![0.0; np];
            self.ewma_loads = vec![0.0; np];
            self.loads_scratch = vec![0; np];
        }
        self.loads_scratch.fill(0);
        for a in program.last_analyses() {
            for (p, l) in a.loads.iter().enumerate() {
                if p < np {
                    self.loads_scratch[p] += l;
                }
            }
        }
        let measured = program.last_rank_compute_ns();
        // below ~100µs of total measured compute per timestep, timer
        // noise dominates the per-rank sample — fall back to the modeled
        // loads for the imbalance signal rather than chase jitter
        let have_ns = measured.iter().sum::<u64>() > 100_000;
        for p in 0..np {
            let ns = measured.get(p).copied().unwrap_or(0) as f64;
            self.ewma_ns[p] = 0.5 * self.ewma_ns[p] + 0.5 * ns;
            self.ewma_loads[p] = 0.5 * self.ewma_loads[p] + 0.5 * self.loads_scratch[p] as f64;
        }
        let imb = if have_ns {
            imbalance_of(measured.iter().map(|&x| x as f64), np)
        } else {
            imbalance_of(self.loads_scratch.iter().map(|&x| x as f64), np)
        };
        let cap = self.policy.window.max(1);
        if self.window.len() < cap {
            self.window.push(imb);
            self.ring_len = self.window.len();
        } else {
            self.window[self.ring_pos] = imb;
            self.ring_pos = (self.ring_pos + 1) % cap;
            self.ring_len = cap;
        }
        self.report.steps_observed += 1;
        self.samples_since_change += 1;
        self.steps_since_remap += 1;
    }

    /// Decide whether to redistribute *now*, performing the remap(s) on
    /// `program` when a candidate pays for itself within the policy's
    /// horizon. Returns `true` iff a remap happened. Call between
    /// timesteps; `timestep` only labels the [`AdaptEvent`].
    pub fn decide(&mut self, program: &mut Program, timestep: u64) -> Result<bool, HpfError> {
        let np = program.np();
        if np == 0 || program.is_empty() {
            return Ok(false);
        }
        if (self.samples_since_change as usize) < self.policy.window.max(1) {
            return Ok(false);
        }
        // the post-remap window just filled: settle the realized cost
        if let Some(e) = self.pending_realized.take() {
            let (c, _) = self.price_current(program);
            self.report.events[e].realized_cost = Some(c);
        }
        // the imbalance must *persist*: gate on the window's minimum, so
        // a single noisy sample can neither open nor hold the gate
        let imb: f64 = self.window[..self.ring_len]
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
            .max(1.0);
        self.report.last_imbalance = imb;
        if imb < self.policy.min_imbalance {
            return Ok(false);
        }
        if self.remapped_once && self.steps_since_remap < self.policy.cooldown {
            self.report.refused_cooldown += 1;
            return Ok(false);
        }

        let (cost_stay, _) = self.price_current(program);
        let mut best: Option<(f64, f64, u64, Vec<usize>, Candidate)> = None;
        let mut any_gain = false;
        let mut inside_hysteresis = false;
        for group in same_mapping_groups(program) {
            let rep = group[0];
            for cand in self.candidates_for(program, rep, np) {
                let cost_cand = self.price_with(program, &group, &cand.mapping);
                // one-off redistribution traffic for every group member
                let mut remap_cost = 0.0;
                let mut remap_elements = 0u64;
                for &k in &group {
                    let r = remap_analysis(program.arrays[k].mapping(), &cand.mapping, np);
                    remap_cost += self.machine.superstep_time(&[], &r.comm).total_time();
                    remap_elements += r.moved as u64;
                }
                let h = self.policy.horizon.max(1) as f64;
                let stay_total = cost_stay * h;
                let move_total = cost_cand * h + remap_cost;
                if move_total < stay_total {
                    any_gain = true;
                }
                if move_total >= stay_total * (1.0 - self.policy.hysteresis) {
                    if move_total < stay_total {
                        inside_hysteresis = true;
                    }
                    continue;
                }
                let gain = stay_total - move_total;
                if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    best = Some((gain, cost_cand, remap_elements, group.clone(), cand));
                }
            }
        }
        let Some((gain, cost_cand, remap_elements, group, cand)) = best else {
            if inside_hysteresis {
                self.report.refused_hysteresis += 1;
            } else if !any_gain {
                self.report.refused_no_gain += 1;
            }
            return Ok(false);
        };

        let mut names = Vec::with_capacity(group.len());
        let mut remap_cost = 0.0;
        for &k in &group {
            names.push(program.arrays[k].name().to_string());
            let r = program.remap(k, cand.mapping.clone())?;
            remap_cost += self.machine.superstep_time(&[], &r.comm).total_time();
        }
        self.report.remaps += 1;
        self.report.remap_elements += remap_elements;
        self.report.events.push(AdaptEvent {
            timestep,
            arrays: names,
            candidate: cand.label,
            observed_imbalance: imb,
            cost_stay,
            cost_candidate: cost_cand,
            remap_cost,
            remap_elements,
            predicted_gain: gain,
            realized_cost: None,
        });
        self.pending_realized = Some(self.report.events.len() - 1);
        self.samples_since_change = 0;
        self.steps_since_remap = 0;
        self.remapped_once = true;
        self.ring_len = 0;
        self.ring_pos = 0;
        self.window.clear();
        Ok(true)
    }

    /// Modeled cost (µs) of one timestep under the program's *current*
    /// mappings, plus the analyses it was computed from.
    fn price_current(&self, program: &Program) -> (f64, Vec<CommAnalysis>) {
        let mappings: Vec<Arc<EffectiveDist>> =
            program.arrays.iter().map(|a| a.mapping().clone()).collect();
        let analyses: Vec<CommAnalysis> = program
            .statements()
            .iter()
            .map(|s| comm_analysis(&mappings, program.np(), s))
            .collect();
        (Program::price(&analyses, &self.machine).0, analyses)
    }

    /// Modeled cost (µs) of one timestep with the arrays in `group`
    /// moved onto `mapping` and everything else unchanged.
    fn price_with(
        &self,
        program: &Program,
        group: &[usize],
        mapping: &Arc<EffectiveDist>,
    ) -> f64 {
        let mut mappings: Vec<Arc<EffectiveDist>> =
            program.arrays.iter().map(|a| a.mapping().clone()).collect();
        for &k in group {
            mappings[k] = mapping.clone();
        }
        let analyses: Vec<CommAnalysis> = program
            .statements()
            .iter()
            .map(|s| comm_analysis(&mappings, program.np(), s))
            .collect();
        Program::price(&analyses, &self.machine).0
    }

    /// Candidate remappings for the group represented by array `rep`:
    /// a measured-load-balanced `GENERAL_BLOCK`, uniform `BLOCK`
    /// re-blocking, `CYCLIC(k)` re-blocking, and (rank 2) distributing a
    /// different dimension or a `p1×p2` processor grid. Arrays with
    /// aligned (non-direct) or `INDIRECT` mappings yield no candidates.
    fn candidates_for(&self, program: &Program, rep: usize, np: usize) -> Vec<Candidate> {
        let arr = &program.arrays[rep];
        let Some(direct) = arr.mapping().as_direct() else {
            return Vec::new();
        };
        let domain = arr.domain();
        let rank = domain.rank();
        let mut current: Vec<FormatSpec> = Vec::with_capacity(rank);
        for f in direct.dim_formats() {
            match f.as_ref().map(dim_format_spec) {
                Some(Some(spec)) => current.push(spec),
                _ => return Vec::new(),
            }
        }
        let dist_dims: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_collapsed())
            .map(|(d, _)| d)
            .collect();
        let mut out = Vec::new();
        let mut push = |label: String, formats: Vec<FormatSpec>, grid: Option<(usize, usize)>| {
            if formats == current {
                return;
            }
            if let Ok(m) = build_mapping(arr.name(), domain, &formats, np, grid) {
                out.push(Candidate { label, mapping: m });
            }
        };

        if let [d] = dist_dims[..] {
            let n = domain.extent(d);
            // fit GENERAL_BLOCK to the observed per-rank load
            if let Some(weights) = self.dim_weights(program, arr.mapping(), d, np) {
                if let Ok(gb) = GeneralBlock::balanced(&weights, np) {
                    let bounds: Vec<i64> = (1..np).map(|j| gb.bound(j)).collect();
                    let mut f = current.clone();
                    f[d] = FormatSpec::GeneralBlock(bounds);
                    push(format!("GENERAL_BLOCK(balanced)@dim{d}"), f, None);
                }
            }
            let mut f = current.clone();
            f[d] = FormatSpec::Block;
            push(format!("BLOCK@dim{d}"), f, None);
            // aim for ~4 blocks per processor, but cap the block size: a
            // CYCLIC(k) preimage is k triplets per processor, so pricing
            // and inspection cost grow with k — large k is nearly BLOCK
            // anyway, and the GENERAL_BLOCK candidate covers that regime
            let k = (n.div_ceil(np * 4)).clamp(1, 64) as u64;
            let mut f = current.clone();
            f[d] = FormatSpec::Cyclic(k);
            push(format!("CYCLIC({k})@dim{d}"), f, None);
            if rank == 2 {
                let other = 1 - d;
                let mut f = vec![FormatSpec::Collapsed; 2];
                f[other] = FormatSpec::Block;
                push(format!("BLOCK@dim{other}"), f, None);
                if let Some((p1, p2)) = grid_shape(np) {
                    push(
                        format!("GRID {p1}x{p2} BLOCK,BLOCK"),
                        vec![FormatSpec::Block, FormatSpec::Block],
                        Some((p1, p2)),
                    );
                }
            }
        } else if dist_dims.len() == 2 && rank == 2 {
            // grid-distributed today: offer collapsing onto each single dim
            for d in 0..2 {
                let mut f = vec![FormatSpec::Collapsed; 2];
                f[d] = FormatSpec::Block;
                push(format!("BLOCK@dim{d}"), f, None);
            }
        }
        out
    }

    /// Per-position weights along dimension `d` for fitting a
    /// `GENERAL_BLOCK` to the load. Positions a statement *writes* —
    /// where owner-computes places the work — weigh up to ~1000× the
    /// positions that are merely stored, so the fit tracks the active
    /// sections exactly. This stays sharp when the hot region sits
    /// inside a single processor's chunk, which no owner-granular
    /// signal can subdivide; when no statement's written footprint
    /// lands on this domain, fall back to spreading each owner's
    /// observed cost rate over its span ([`Self::owner_rate_weights`]).
    /// `None` until at least one timestep has been observed — the
    /// controller proposes fits only for workloads it has watched run.
    fn dim_weights(
        &self,
        program: &Program,
        map: &Arc<EffectiveDist>,
        d: usize,
        np: usize,
    ) -> Option<Vec<u64>> {
        if self.ewma_ns.iter().sum::<f64>() <= 0.0
            && self.ewma_loads.iter().sum::<f64>() <= 0.0
        {
            return None;
        }
        let domain = map.domain();
        let n = domain.extent(d);
        let lower = domain.lower(d);
        let stride = domain.dim(d).stride().abs().max(1);
        let mut activity = vec![0u64; n];
        for s in program.statements() {
            if program.arrays[s.lhs].domain() != domain {
                continue;
            }
            let t = s.lhs_section.dims()[d].as_triplet();
            for k in 0..t.len() {
                let Some(v) = t.nth(k) else { break };
                let pos = (v - lower) / stride;
                if (0..n as i64).contains(&pos) {
                    activity[pos as usize] += 1;
                }
            }
        }
        let max = *activity.iter().max().unwrap_or(&0);
        if max == 0 {
            return self.owner_rate_weights(map, d, np);
        }
        Some(activity.iter().map(|&a| a * 1000 / max + 1).collect())
    }

    /// The fallback load model: each position inherits its current
    /// owner's observed cost *rate* (measured-EWMA time per owned
    /// element, modeled-load fallback), normalized to `1..=1001`.
    fn owner_rate_weights(
        &self,
        map: &Arc<EffectiveDist>,
        d: usize,
        np: usize,
    ) -> Option<Vec<u64>> {
        let sample: &[f64] = if self.ewma_ns.iter().sum::<f64>() > 100_000.0 {
            &self.ewma_ns
        } else if self.ewma_loads.iter().sum::<f64>() > 0.0 {
            &self.ewma_loads
        } else {
            return None;
        };
        let domain = map.domain();
        let n = domain.extent(d);
        let lower = domain.lower(d);
        let stride = domain.dim(d).stride().abs().max(1);
        let mut owner_of = vec![0usize; n];
        let mut count = vec![0u64; np];
        for p in 1..=np as u32 {
            for idx in map.owned_region(ProcId(p)).iter() {
                let pos = ((idx[d] - lower) / stride) as usize;
                if pos < n {
                    owner_of[pos] = (p - 1) as usize;
                }
                count[(p - 1) as usize] += 1;
            }
        }
        let rate = |p: usize| -> f64 {
            if count[p] == 0 {
                0.0
            } else {
                sample.get(p).copied().unwrap_or(0.0) / count[p] as f64
            }
        };
        let max_rate = (0..np).map(rate).fold(0.0f64, f64::max);
        if max_rate <= 0.0 {
            return None;
        }
        Some(
            owner_of
                .iter()
                .map(|&p| (rate(p) / max_rate * 1000.0) as u64 + 1)
                .collect(),
        )
    }
}

/// `max/mean` of a non-negative sample; `1.0` when degenerate.
fn imbalance_of(sample: impl Iterator<Item = f64>, np: usize) -> f64 {
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for v in sample {
        max = max.max(v);
        sum += v;
    }
    if sum <= 0.0 || np == 0 {
        return 1.0;
    }
    max / (sum / np as f64)
}

/// Convert a normalized [`DimFormat`] back to the [`FormatSpec`] that
/// produces it (`None` for `INDIRECT`, which the controller leaves
/// alone).
fn dim_format_spec(f: &DimFormat) -> Option<FormatSpec> {
    match f {
        DimFormat::Block => Some(FormatSpec::Block),
        DimFormat::BlockBalanced => Some(FormatSpec::BlockBalanced),
        DimFormat::Cyclic(k) => Some(FormatSpec::Cyclic(*k)),
        DimFormat::Collapsed => Some(FormatSpec::Collapsed),
        DimFormat::GeneralBlock(g) => {
            let bounds: Vec<i64> = (1..g.np()).map(|j| g.bound(j)).collect();
            Some(FormatSpec::GeneralBlock(bounds))
        }
        DimFormat::Indirect(_) => None,
    }
}

/// The near-square factorization of `np` (both factors > 1), if any.
fn grid_shape(np: usize) -> Option<(usize, usize)> {
    let mut best = None;
    let mut p = 2;
    while p * p <= np {
        if np % p == 0 {
            best = Some((p, np / p));
        }
        p += 1;
    }
    best
}

/// Build a fresh direct mapping of `formats` over `domain` — onto the
/// implicit 1-D arrangement, or onto a `p1×p2` grid when two dimensions
/// are distributed.
fn build_mapping(
    name: &str,
    domain: &IndexDomain,
    formats: &[FormatSpec],
    np: usize,
    grid: Option<(usize, usize)>,
) -> Result<Arc<EffectiveDist>, HpfError> {
    let mut ds = DataSpace::new(np);
    let id = ds.declare(name, domain.clone())?;
    let spec = match grid {
        Some((p1, p2)) => {
            ds.declare_processors(
                "ADAPT_GRID",
                IndexDomain::of_shape(&[p1, p2])
                    .map_err(|e| HpfError::BadGeneralBlock(e.to_string()))?,
            )?;
            DistributeSpec::to(formats.to_vec(), "ADAPT_GRID")
        }
        None => DistributeSpec::new(formats.to_vec()),
    };
    ds.set_dynamic(id);
    ds.redistribute(id, &spec)?;
    ds.effective(id)
}

/// Partition the program's arrays into groups sharing domain and
/// (structurally) mapping — the unit a remap applies to, so aligned
/// same-shape operands move together and stay aligned.
fn same_mapping_groups(program: &Program) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut used: Vec<bool> = vec![false; program.arrays.len()];
    // only group arrays a statement actually touches
    let mut touched = vec![false; program.arrays.len()];
    for s in program.statements() {
        touched[s.lhs] = true;
        for t in &s.terms {
            touched[t.array] = true;
        }
    }
    for k in 0..program.arrays.len() {
        if used[k] || !touched[k] {
            continue;
        }
        let mut group = vec![k];
        used[k] = true;
        for j in k + 1..program.arrays.len() {
            if used[j] || !touched[j] {
                continue;
            }
            if program.arrays[k].domain() == program.arrays[j].domain()
                && program.arrays[k].mapping().matches(program.arrays[j].mapping())
            {
                group.push(j);
                used[j] = true;
            }
        }
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, Combine, Term};
    use crate::DistArray;
    use hpf_index::{span, Section};

    // large enough that rebalancing the hotspot's compute pays for the
    // extra message latency under the default iPSC-class cost model
    const N: usize = 65_536;
    const NP: usize = 4;

    fn mapped(name: &str, fmt: FormatSpec) -> DistArray<f64> {
        let mut ds = DataSpace::new(NP);
        let id = ds.declare(name, IndexDomain::of_shape(&[N]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![fmt])).unwrap();
        DistArray::from_fn(name, ds.effective(id).unwrap(), NP, |i| i[0] as f64)
    }

    /// A program whose single statement only writes the first quarter of
    /// the domain: under BLOCK, processor 1 does all the work.
    fn hotspot_program() -> Program {
        let mut prog = Program::new(vec![
            mapped("A", FormatSpec::Block),
            mapped("B", FormatSpec::Block),
        ]);
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let q = (N / 4) as i64;
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, q)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, q - 1)])),
                Term::new(1, Section::from_triplets(vec![span(2, q)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(stmt).unwrap();
        prog
    }

    fn warmed_controller(policy: AdaptPolicy, prog: &mut Program) -> AdaptController {
        let mut ctrl = AdaptController::new(policy, Machine::simple(NP));
        for _ in 0..3 {
            prog.step_seq().unwrap();
            ctrl.observe(prog);
        }
        ctrl
    }

    #[test]
    fn remap_taken_on_predicted_win() {
        let mut prog = hotspot_program();
        let mut ctrl = warmed_controller(AdaptPolicy::aggressive(), &mut prog);
        assert!(ctrl.report().last_imbalance <= 1.0); // not yet computed
        let did = ctrl.decide(&mut prog, 3).unwrap();
        assert!(did, "all work on one of four processors must trigger a remap");
        let rep = ctrl.report();
        assert_eq!(rep.remaps, 1);
        assert!(rep.last_imbalance > 1.5, "imbalance was {}", rep.last_imbalance);
        let e = &rep.events[0];
        assert!(
            e.cost_candidate < e.cost_stay,
            "candidate {:.1} must be cheaper than stay {:.1}",
            e.cost_candidate,
            e.cost_stay
        );
        assert!(e.predicted_gain > 0.0);
        assert!(e.remap_elements > 0, "a real remap moves data");
        // program still runs and values stay correct vs a never-adapted twin
        let mut twin = hotspot_program();
        for _ in 0..3 {
            twin.step_seq().unwrap(); // match the controller's warm-up steps
        }
        for _ in 0..3 {
            prog.step_seq().unwrap();
            twin.step_seq().unwrap();
        }
        assert_eq!(prog.arrays[0].to_dense(), twin.arrays[0].to_dense());
    }

    #[test]
    fn remap_refused_under_cooldown() {
        let mut prog = hotspot_program();
        let policy = AdaptPolicy { cooldown: 1_000, ..AdaptPolicy::aggressive() };
        let mut ctrl = warmed_controller(policy, &mut prog);
        assert!(ctrl.decide(&mut prog, 3).unwrap(), "first remap proceeds");
        // keep the workload imbalanced enough to want a second remap:
        // remap back by hand to the bad BLOCK mapping, so the controller
        // sees the same hotspot again — but the cooldown must refuse it.
        let mut ds = DataSpace::new(NP);
        let a = ds.declare("A", IndexDomain::of_shape(&[N]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let block = ds.effective(a).unwrap();
        prog.remap(0, block.clone()).unwrap();
        prog.remap(1, block).unwrap();
        for _ in 0..3 {
            prog.step_seq().unwrap();
            ctrl.observe(&prog);
        }
        let did = ctrl.decide(&mut prog, 6).unwrap();
        assert!(!did, "cooldown must refuse the second remap");
        assert_eq!(ctrl.report().refused_cooldown, 1);
        assert_eq!(ctrl.report().remaps, 1);
    }

    #[test]
    fn remap_refused_inside_hysteresis_margin() {
        // balanced workload: full-domain sweep under BLOCK is already
        // near-optimal, so any candidate's win (if any) is marginal —
        // with a huge hysteresis margin and a forced-open imbalance
        // gate, the controller must hold still.
        let mut prog = hotspot_program();
        let policy = AdaptPolicy {
            hysteresis: 0.95,
            ..AdaptPolicy::aggressive()
        };
        let mut ctrl = warmed_controller(policy, &mut prog);
        let did = ctrl.decide(&mut prog, 3).unwrap();
        assert!(!did, "a 95% required margin must refuse the remap");
        let rep = ctrl.report();
        assert_eq!(rep.remaps, 0);
        assert_eq!(rep.refused_hysteresis, 1, "{rep:?}");
    }

    #[test]
    fn balanced_workload_left_alone() {
        // full-domain uniform sweep: BLOCK is balanced; the imbalance
        // gate must keep the controller from even pricing.
        let mut prog = Program::new(vec![
            mapped("A", FormatSpec::Block),
            mapped("B", FormatSpec::Block),
        ]);
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, N as i64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, N as i64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        prog.push(stmt).unwrap();
        let mut ctrl = warmed_controller(AdaptPolicy::default(), &mut prog);
        for t in 0..5 {
            assert!(!ctrl.decide(&mut prog, t).unwrap());
            prog.step_seq().unwrap();
            ctrl.observe(&prog);
        }
        let rep = ctrl.report();
        assert_eq!(rep.remaps, 0);
        assert!(
            rep.last_imbalance < AdaptPolicy::default().min_imbalance,
            "uniform sweep must read balanced, got {}",
            rep.last_imbalance
        );
    }

    #[test]
    fn realized_cost_settles_after_window_refills() {
        let mut prog = hotspot_program();
        let mut ctrl = warmed_controller(AdaptPolicy::aggressive(), &mut prog);
        assert!(ctrl.decide(&mut prog, 3).unwrap());
        assert_eq!(ctrl.report().events[0].realized_cost, None);
        prog.step_seq().unwrap();
        ctrl.observe(&prog);
        let _ = ctrl.decide(&mut prog, 4).unwrap();
        let e = &ctrl.report().events[0];
        let realized = e.realized_cost.expect("window refilled");
        // the modeled prediction must have been honest: realized cost
        // matches the candidate's priced cost (same model, same mapping)
        assert!(
            (realized - e.cost_candidate).abs() < 1e-6 * e.cost_candidate.max(1.0),
            "realized {realized} vs predicted {}",
            e.cost_candidate
        );
    }

    #[test]
    fn candidate_pricing_is_hand_checkable() {
        // under BLOCK all 2·(N/4) element-ops land on processor 1 and no
        // message crosses a boundary, so stay ≈ 2·(N/4)·flop; the
        // balanced GENERAL_BLOCK quarters the compute makespan for a few
        // boundary messages — the machine model must price both that way
        let mut prog = hotspot_program();
        let ctrl = warmed_controller(AdaptPolicy::aggressive(), &mut prog);
        let (stay, _) = ctrl.price_current(&prog);
        let flop = 0.05;
        let expect_stay = 2.0 * (N as f64 / 4.0) * flop;
        assert!(
            (stay - expect_stay).abs() < expect_stay * 0.05,
            "stay {stay} vs hand-priced {expect_stay}"
        );
        let groups = same_mapping_groups(&prog);
        assert_eq!(groups, vec![vec![0, 1]], "A and B move as one aligned group");
        let cands = ctrl.candidates_for(&prog, 0, NP);
        let gb = cands
            .iter()
            .find(|c| c.label.starts_with("GENERAL_BLOCK"))
            .expect("balanced candidate offered");
        let cost = ctrl.price_with(&prog, &groups[0], &gb.mapping);
        assert!(
            cost < stay / 2.0,
            "balanced candidate {cost} must beat stay {stay} by 2x+"
        );
    }

    #[test]
    fn moved_hotspot_triggers_second_remap() {
        // after the first fit, move the active section into the middle
        // of what is now one processor's chunk: the written-section
        // weights must subdivide that chunk and re-fit — a per-owner
        // load signal could never localize the new hotspot. The sweep
        // gathers 48 cells upwind so CYCLIC re-blocking (front-agnostic,
        // but mostly-remote reads) prices out and the front-*fitted*
        // GENERAL_BLOCK — the mapping that goes stale when the front
        // moves — wins round one.
        const REACH: i64 = 48;
        let front = |prog: &Program, lo: i64, hi: i64| {
            let doms: Vec<&IndexDomain> =
                prog.arrays.iter().map(|a| a.domain()).collect();
            Assignment::new(
                0,
                Section::from_triplets(vec![span(lo, hi)]),
                vec![
                    Term::new(0, Section::from_triplets(vec![span(lo - REACH, hi - REACH)])),
                    Term::new(1, Section::from_triplets(vec![span(lo, hi)])),
                ],
                Combine::Sum,
                &doms,
            )
            .unwrap()
        };
        let mut prog = Program::new(vec![
            mapped("A", FormatSpec::Block),
            mapped("B", FormatSpec::Block),
        ]);
        let stmt = front(&prog, REACH + 2, N as i64 / 4);
        prog.push(stmt).unwrap();
        let mut ctrl = warmed_controller(AdaptPolicy::aggressive(), &mut prog);
        assert!(ctrl.decide(&mut prog, 3).unwrap());
        assert!(
            ctrl.report().events[0].candidate.starts_with("GENERAL_BLOCK"),
            "wide-reach sweep must pick the front-fitted mapping: {:?}",
            ctrl.report().events
        );

        let stmt = front(&prog, 3 * N as i64 / 4, N as i64 - 2);
        prog.set_statements(vec![stmt]).unwrap();
        for _ in 0..3 {
            prog.step_seq().unwrap();
            ctrl.observe(&prog);
        }
        assert!(
            ctrl.decide(&mut prog, 6).unwrap(),
            "the moved hotspot must re-trigger: {:?}",
            ctrl.report()
        );
        let rep = ctrl.report();
        assert_eq!(rep.remaps, 2);
        // and the second fit really balanced the new front
        prog.step_seq().unwrap();
        let imb = imbalance_of(
            prog.stats().rank_loads.iter().map(|&x| x as f64),
            NP,
        );
        assert!(imb < 1.2, "refit must balance the moved front, got {imb:.2}");
    }

    #[test]
    fn grid_shape_prefers_near_square() {
        assert_eq!(grid_shape(4), Some((2, 2)));
        assert_eq!(grid_shape(12), Some((3, 4)));
        assert_eq!(grid_shape(7), None);
        assert_eq!(grid_shape(1), None);
    }
}
