use hpf_core::HpfError;
use hpf_index::{Idx, IndexDomain, Section};
use std::fmt;

/// One right-hand-side operand: an array reference through a section, e.g.
/// the `U(0:N-1,:)` of the §8.1.1 statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    /// Index of the operand array in the executor's array list.
    pub array: usize,
    /// The section read.
    pub section: Section,
}

impl Term {
    /// Build a term.
    pub fn new(array: usize, section: Section) -> Self {
        Term { array, section }
    }
}

/// How RHS element values combine into the LHS value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combine {
    /// Sum of all operands (the staggered-grid statement).
    Sum,
    /// Arithmetic mean.
    Average,
    /// Maximum.
    Max,
    /// Copy the single operand (requires exactly one term).
    Copy,
}

impl Combine {
    /// Apply to one element's operand values.
    pub fn apply(&self, vals: &[f64]) -> f64 {
        match self {
            Combine::Sum => vals.iter().sum(),
            Combine::Average => {
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            }
            Combine::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Combine::Copy => vals[0],
        }
    }
}

/// An element-wise array assignment over conforming sections:
///
/// ```text
/// LHS(lhs_section) = combine(RHS_1(sec_1), ..., RHS_k(sec_k))
/// ```
///
/// All sections must have the same rank and extents (Fortran 90 array
/// assignment conformance); corresponding elements are matched in
/// column-major section order. The §8.1.1 statement
/// `P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)` is four `Sum` terms.
///
/// Equality and hashing are structural — the runtime's plan cache uses
/// them to recognize a statement repeated across timesteps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Index of the LHS array.
    pub lhs: usize,
    /// The LHS section written.
    pub lhs_section: Section,
    /// RHS operands.
    pub terms: Vec<Term>,
    /// Combiner.
    pub combine: Combine,
}

impl Assignment {
    /// Build and validate shape conformance against the arrays' domains.
    pub fn new(
        lhs: usize,
        lhs_section: Section,
        terms: Vec<Term>,
        combine: Combine,
        domains: &[&IndexDomain],
    ) -> Result<Self, HpfError> {
        let a = Assignment { lhs, lhs_section, terms, combine };
        a.validate(domains)?;
        Ok(a)
    }

    /// Check rank/extent conformance of all sections and their containment
    /// in the arrays' domains. `domains[k]` is the domain of array `k`.
    pub fn validate(&self, domains: &[&IndexDomain]) -> Result<(), HpfError> {
        let lhs_dom = domains
            .get(self.lhs)
            .ok_or_else(|| HpfError::UnknownArray(format!("array #{}", self.lhs)))?;
        self.lhs_section.validate(lhs_dom)?;
        let shape: Vec<usize> = section_shape(&self.lhs_section);
        if self.terms.is_empty() {
            // Max of zero terms would be −∞ and Average 0.0; neither is a
            // meaningful array assignment, so reject at validation time.
            return Err(HpfError::NotConforming(
                "assignment requires at least one RHS term".into(),
            ));
        }
        if matches!(self.combine, Combine::Copy) && self.terms.len() != 1 {
            return Err(HpfError::NotConforming(
                "Copy assignment requires exactly one RHS term".into(),
            ));
        }
        for t in &self.terms {
            let dom = domains
                .get(t.array)
                .ok_or_else(|| HpfError::UnknownArray(format!("array #{}", t.array)))?;
            t.section.validate(dom)?;
            let ts = section_shape(&t.section);
            if ts != shape {
                return Err(HpfError::NotConforming(format!(
                    "RHS section shape {ts:?} does not conform to LHS shape {shape:?}"
                )));
            }
        }
        Ok(())
    }

    /// Number of elements assigned.
    pub fn element_count(&self) -> usize {
        self.lhs_section.size()
    }

    /// The LHS global index at section-relative position `rel` (1-based per
    /// dimension).
    pub fn lhs_index(&self, rel: &Idx) -> Idx {
        self.lhs_section.embed(rel).expect("validated")
    }

    /// The RHS global index of term `t` at section-relative position `rel`.
    pub fn rhs_index(&self, t: usize, rel: &Idx) -> Idx {
        self.terms[t].section.embed(rel).expect("validated")
    }

    /// Iterate all section-relative positions (column-major, 1-based).
    pub fn positions(&self) -> impl Iterator<Item = Idx> {
        let shape = section_shape(&self.lhs_section);
        IndexDomain::of_shape(&shape).expect("rank checked").iter().collect::<Vec<_>>().into_iter()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}{} = ", self.lhs, self.lhs_section)?;
        for (k, t) in self.terms.iter().enumerate() {
            if k > 0 {
                write!(f, " ⊕ ")?;
            }
            write!(f, "A{}{}", t.array, t.section)?;
        }
        write!(f, "  [{:?}]", self.combine)
    }
}

/// The extents of a section's non-scalar dimensions.
pub(crate) fn section_shape(s: &Section) -> Vec<usize> {
    s.dims()
        .iter()
        .filter(|d| !d.is_scalar())
        .map(|d| d.as_triplet().len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_index::{span, triplet, SectionDim};

    #[test]
    fn combine_ops() {
        assert_eq!(Combine::Sum.apply(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(Combine::Average.apply(&[2.0, 4.0]), 3.0);
        assert_eq!(Combine::Max.apply(&[2.0, 4.0, 1.0]), 4.0);
        assert_eq!(Combine::Copy.apply(&[7.0]), 7.0);
    }

    #[test]
    fn conformance_checked() {
        let d1 = IndexDomain::of_shape(&[10]).unwrap();
        let d2 = IndexDomain::of_shape(&[20]).unwrap();
        let doms: Vec<&IndexDomain> = vec![&d1, &d2];
        // A(1:10) = B(1:20:2) — conforming (both 10 elements)
        assert!(Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 10)]),
            vec![Term::new(1, Section::from_triplets(vec![triplet(1, 20, 2)]))],
            Combine::Copy,
            &doms,
        )
        .is_ok());
        // A(1:10) = B(1:5) — not conforming
        assert!(Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 10)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 5)]))],
            Combine::Copy,
            &doms,
        )
        .is_err());
    }

    #[test]
    fn index_correspondence() {
        let d1 = IndexDomain::of_shape(&[10]).unwrap();
        let d2 = IndexDomain::of_shape(&[20]).unwrap();
        let doms: Vec<&IndexDomain> = vec![&d1, &d2];
        let a = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 10)]),
            vec![Term::new(1, Section::from_triplets(vec![triplet(2, 20, 2)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        assert_eq!(a.lhs_index(&Idx::d1(3)), Idx::d1(3));
        assert_eq!(a.rhs_index(0, &Idx::d1(3)), Idx::d1(6));
        assert_eq!(a.element_count(), 10);
        assert_eq!(a.positions().count(), 10);
    }

    #[test]
    fn rank_reducing_sections_conform() {
        // A(:, 3) (rank 1 of rank 2) = B(1:6)
        let d1 = IndexDomain::of_shape(&[6, 4]).unwrap();
        let d2 = IndexDomain::of_shape(&[6]).unwrap();
        let doms: Vec<&IndexDomain> = vec![&d1, &d2];
        let a = Assignment::new(
            0,
            Section::new(vec![
                SectionDim::Triplet(span(1, 6)),
                SectionDim::Scalar(3),
            ]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 6)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        assert_eq!(a.lhs_index(&Idx::d1(2)), Idx::d2(2, 3));
        assert_eq!(a.rhs_index(0, &Idx::d1(2)), Idx::d1(2));
    }

    #[test]
    fn zero_terms_rejected_for_every_combine() {
        let d = IndexDomain::of_shape(&[4]).unwrap();
        let doms: Vec<&IndexDomain> = vec![&d];
        for combine in [Combine::Sum, Combine::Average, Combine::Max, Combine::Copy] {
            let err = Assignment::new(
                0,
                Section::from_triplets(vec![span(1, 4)]),
                vec![],
                combine,
                &doms,
            );
            assert!(err.is_err(), "{combine:?} with zero terms must not validate");
        }
    }

    #[test]
    fn copy_requires_single_term() {
        let d = IndexDomain::of_shape(&[4]).unwrap();
        let doms: Vec<&IndexDomain> = vec![&d];
        assert!(Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 4)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, 4)])),
                Term::new(0, Section::from_triplets(vec![span(1, 4)])),
            ],
            Combine::Copy,
            &doms,
        )
        .is_err());
    }
}
