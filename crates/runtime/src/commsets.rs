use crate::assign::Assignment;
use hpf_core::EffectiveDist;
use hpf_index::{Rect, Region, Section, SectionDim, Triplet};
use hpf_machine::CommStats;
use hpf_procs::ProcId;
use std::sync::Arc;

/// The result of communication-set analysis for one assignment under the
/// owner-computes rule: who sends how much to whom, and how much each
/// processor computes.
#[derive(Debug, Clone)]
pub struct CommAnalysis {
    /// The traffic matrix (vectorized per processor pair).
    pub comm: CommStats,
    /// Per-processor compute loads in element-operations
    /// (`elements computed × RHS terms`).
    pub loads: Vec<u64>,
    /// Operand reads satisfied from local memory.
    pub local_reads: u64,
    /// Operand reads requiring a transfer.
    pub remote_reads: u64,
    /// True iff the region-algebraic path produced this analysis (every
    /// involved mapping partitions its array). When set, the traffic
    /// matrix is an *independent* computation of the statement's exact
    /// communication sets, and plan inspection cross-checks its message
    /// schedules against it pair for pair.
    pub region_exact: bool,
}

impl CommAnalysis {
    /// Total bytes the statement moves between processors per execution
    /// (`f64` elements × 8) — the figure the exchange backends' measured
    /// wire traffic is cross-checked against.
    pub fn total_bytes(&self) -> u64 {
        self.comm.total_elements() * std::mem::size_of::<f64>() as u64
    }

    /// Fraction of operand reads that were remote (0.0 = fully collocated —
    /// the paper's ideal).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_reads + self.remote_reads;
        if total == 0 {
            0.0
        } else {
            self.remote_reads as f64 / total as f64
        }
    }
}

/// Compute the exact communication sets of `stmt` under the owner-computes
/// rule, given the effective mapping of every array (`mappings[k]` maps
/// array `k`).
///
/// When every involved mapping partitions its array (no replication), the
/// analysis is purely region-algebraic: the set moving `q → p` for term `t`
/// is `sec_t(owned_L(p) ∩ sec_L) ∩ owned_t(q)` — intersections of strided
/// rects, no element enumeration. Replicated mappings fall back to an exact
/// element-wise analysis with first-owner-computes semantics.
pub fn comm_analysis(
    mappings: &[Arc<EffectiveDist>],
    np: usize,
    stmt: &Assignment,
) -> CommAnalysis {
    let partitioned = involved_arrays(stmt)
        .into_iter()
        .all(|k| is_partition(&mappings[k], np));
    if partitioned {
        region_analysis(mappings, np, stmt)
    } else {
        elementwise_analysis(mappings, np, stmt)
    }
}

fn involved_arrays(stmt: &Assignment) -> Vec<usize> {
    let mut v = vec![stmt.lhs];
    v.extend(stmt.terms.iter().map(|t| t.array));
    v.sort_unstable();
    v.dedup();
    v
}

/// A mapping partitions its domain iff total owned volume equals the
/// domain size (each element exactly one owner).
fn is_partition(m: &EffectiveDist, np: usize) -> bool {
    let total: usize =
        (1..=np as u32).map(|p| m.owned_region(ProcId(p)).volume_disjoint()).sum();
    total == m.domain().size()
}

fn region_analysis(
    mappings: &[Arc<EffectiveDist>],
    np: usize,
    stmt: &Assignment,
) -> CommAnalysis {
    let mut comm = CommStats::new();
    let mut loads = vec![0u64; np];
    let mut local_reads = 0u64;
    let mut remote_reads = 0u64;

    // cache owned regions of every RHS array per processor
    let mut rhs_owned: Vec<Vec<Region>> = Vec::with_capacity(stmt.terms.len());
    for t in &stmt.terms {
        rhs_owned.push(
            (1..=np as u32)
                .map(|q| mappings[t.array].owned_region(ProcId(q)))
                .collect(),
        );
    }

    for p in 1..=np as u32 {
        let lhs_owned = mappings[stmt.lhs].owned_region(ProcId(p));
        let positions = project_region(&lhs_owned, &stmt.lhs_section);
        let n_computed = positions.volume_disjoint() as u64;
        if n_computed == 0 {
            continue;
        }
        loads[(p - 1) as usize] = n_computed * stmt.terms.len() as u64;
        for (t, term) in stmt.terms.iter().enumerate() {
            let reads = embed_region(&positions, &term.section);
            for q in 1..=np as u32 {
                let vol = reads.intersection_volume(&rhs_owned[t][q as usize - 1]) as u64;
                if q == p {
                    local_reads += vol;
                } else if vol > 0 {
                    remote_reads += vol;
                    comm.record(ProcId(q), ProcId(p), vol);
                }
            }
        }
    }
    CommAnalysis { comm, loads, local_reads, remote_reads, region_exact: true }
}

fn elementwise_analysis(
    mappings: &[Arc<EffectiveDist>],
    np: usize,
    stmt: &Assignment,
) -> CommAnalysis {
    let mut comm = CommStats::new();
    let mut loads = vec![0u64; np];
    let mut local_reads = 0u64;
    let mut remote_reads = 0u64;

    for rel in stmt.positions() {
        let li = stmt.lhs_index(&rel);
        let owners = mappings[stmt.lhs].owners(&li);
        let computer = owners.iter().next().expect("non-empty image");
        loads[computer.zero_based()] += stmt.terms.len() as u64;
        for (t, _) in stmt.terms.iter().enumerate() {
            let ri = stmt.rhs_index(t, &rel);
            let r_owners = mappings[stmt.terms[t].array].owners(&ri);
            if r_owners.contains(computer) {
                local_reads += 1;
            } else {
                remote_reads += 1;
                comm.record(r_owners.iter().next().expect("non-empty"), computer, 1);
            }
        }
        // replication: the computer forwards the result to the other owners
        for other in owners.iter() {
            if other != computer {
                comm.record(computer, other, 1);
            }
        }
    }
    CommAnalysis { comm, loads, local_reads, remote_reads, region_exact: false }
}

/// Intersect a global region with a section and rewrite into
/// section-relative (1-based) position space, dropping scalar dimensions.
pub(crate) fn project_region(region: &Region, section: &Section) -> Region {
    let mut out = Region::empty(section.rank());
    'rects: for rect in region.rects() {
        let mut dims = Vec::with_capacity(section.rank());
        for (d, sd) in section.dims().iter().enumerate() {
            match sd {
                SectionDim::Scalar(v) => {
                    if !rect.dim(d).contains(*v) {
                        continue 'rects;
                    }
                }
                SectionDim::Triplet(t) => {
                    let hit = rect.dim(d).intersect(t);
                    if hit.is_empty() {
                        continue 'rects;
                    }
                    let (l, s) = (t.lower(), t.stride());
                    let first = (hit.min().unwrap() - l) / s + 1;
                    let last = (hit.max().unwrap() - l) / s + 1;
                    let stride = (hit.stride() / s).abs().max(1);
                    let (lo, hi) =
                        if first <= last { (first, last) } else { (last, first) };
                    dims.push(Triplet::new(lo, hi, stride).expect("stride > 0"));
                }
            }
        }
        out.push(Rect::new(dims));
    }
    out
}

/// Map a position-space region back to global indices through a section
/// (inverse of [`project_region`]'s coordinate change).
pub(crate) fn embed_region(positions: &Region, section: &Section) -> Region {
    let rank = section.parent_rank();
    let mut out = Region::empty(rank);
    for rect in positions.rects() {
        let mut dims = Vec::with_capacity(rank);
        let mut r = 0usize;
        for sd in section.dims() {
            match sd {
                SectionDim::Scalar(v) => dims.push(Triplet::scalar(*v)),
                SectionDim::Triplet(t) => {
                    let pos = rect.dim(r);
                    r += 1;
                    // position p → l + (p−1)·s
                    let (l, s) = (t.lower(), t.stride());
                    dims.push(
                        pos.affine_image(s, l - s).expect("section bounds are small"),
                    );
                }
            }
        }
        out.push(Rect::new(dims));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain};

    /// Brute-force analysis for validation (always element-wise).
    fn brute(
        mappings: &[Arc<EffectiveDist>],
        np: usize,
        stmt: &Assignment,
    ) -> CommAnalysis {
        elementwise_analysis(mappings, np, stmt)
    }

    fn two_block_arrays(n: usize, np: usize) -> (Vec<Arc<EffectiveDist>>, usize) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        (vec![ds.effective(a).unwrap(), ds.effective(b).unwrap()], np)
    }

    #[test]
    fn identical_distributions_no_comm() {
        let (maps, np) = two_block_arrays(64, 4);
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let a = comm_analysis(&maps, np, &stmt);
        assert!(a.comm.is_empty());
        assert_eq!(a.remote_reads, 0);
        assert_eq!(a.local_reads, 64);
        assert_eq!(a.loads.iter().sum::<u64>(), 64);
    }

    #[test]
    fn shifted_read_communicates_boundaries() {
        // A(1:63) = B(2:64): block boundaries cross processors
        let (maps, np) = two_block_arrays(64, 4);
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 63)]),
            vec![Term::new(1, Section::from_triplets(vec![span(2, 64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let got = comm_analysis(&maps, np, &stmt);
        let want = brute(&maps, np, &stmt);
        assert_eq!(got.comm, want.comm);
        assert_eq!(got.loads, want.loads);
        assert_eq!(got.remote_reads, want.remote_reads);
        // each of the 3 internal boundaries moves exactly 1 element
        assert_eq!(got.remote_reads, 3);
        assert_eq!(got.comm.messages(), 3);
    }

    #[test]
    fn block_vs_cyclic_mismatch_heavy_comm() {
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let maps = vec![ds.effective(a).unwrap(), ds.effective(b).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 64)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 64)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let got = comm_analysis(&maps, 4, &stmt);
        let want = brute(&maps, 4, &stmt);
        assert_eq!(got.comm, want.comm);
        // 3 of 4 elements remote in every cyclic period
        assert_eq!(got.remote_reads, 48);
        assert!((got.remote_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn strided_sections_region_path_exact() {
        let (maps, np) = two_block_arrays(100, 4);
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![hpf_index::triplet(1, 50, 1)]),
            vec![Term::new(1, Section::from_triplets(vec![hpf_index::triplet(2, 100, 2)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let got = comm_analysis(&maps, np, &stmt);
        let want = brute(&maps, np, &stmt);
        assert_eq!(got.comm, want.comm);
        assert_eq!(got.local_reads, want.local_reads);
        assert_eq!(got.remote_reads, want.remote_reads);
        assert_eq!(got.loads, want.loads);
    }

    #[test]
    fn replicated_rhs_falls_back_exactly() {
        // B replicated everywhere → all reads local, no comm
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let rep = Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[16]).unwrap(),
            procs: hpf_core::ProcSet::all(4),
        });
        let maps = vec![ds.effective(a).unwrap(), rep];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 16)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 16)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let got = comm_analysis(&maps, 4, &stmt);
        assert!(got.comm.is_empty());
        assert_eq!(got.local_reads, 16);
    }

    #[test]
    fn replicated_lhs_broadcasts_writes() {
        // LHS replicated over all 4: computer sends each element to 3 peers
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[8]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let rep = Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[8]).unwrap(),
            procs: hpf_core::ProcSet::all(4),
        });
        let maps = vec![rep, ds.effective(b).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 8)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 8)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let got = comm_analysis(&maps, 4, &stmt);
        // 8 elements × 3 other owners of the replicated LHS
        let write_traffic: u64 = got.comm.total_elements() - got.remote_reads;
        assert_eq!(write_traffic, 24);
    }

    #[test]
    fn project_embed_roundtrip() {
        let section = Section::from_triplets(vec![hpf_index::triplet(2, 20, 2)]);
        let region = Region::from_rect(Rect::new(vec![span(5, 15)]));
        let pos = project_region(&region, &section);
        // positions of values 6,8,10,12,14 → 3..7
        let back = embed_region(&pos, &section);
        let vals: Vec<i64> = back.iter().map(|i| i[0]).collect();
        assert_eq!(vals, vec![6, 8, 10, 12, 14]);
    }
}
