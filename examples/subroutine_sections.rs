//! Procedure boundaries and array sections (paper §7, §8.1.2).
//!
//! `A(1000)` is distributed `CYCLIC(3)` and the section `A(2:996:2)` is
//! passed to a subroutine. The §8.1.2 point: the dummy's inherited
//! distribution *cannot be written as a format list* — but in the paper's
//! model it is still a first-class attribute of the dummy that inquiry
//! functions can interrogate, and inheritance costs no data movement.
//!
//! Run with: `cargo run --example subroutine_sections`

use hpf::prelude::*;

fn main() {
    let src = r#"
      PROGRAM MAIN
      REAL A(1000)
!HPF$ DISTRIBUTE A(CYCLIC(3))
      CALL INHERIT_SUB(A(2:996:2))
      CALL EXPLICIT_SUB(A(2:996:2))
      END

      SUBROUTINE INHERIT_SUB(X)
      REAL X(:)
!HPF$ DISTRIBUTE X *
      END

      SUBROUTINE EXPLICIT_SUB(X)
      REAL X(:)
!HPF$ DISTRIBUTE X(CYCLIC(3))
      END
"#;
    let elab = Elaborator::new(4).run(src).expect("elaboration");
    println!("program: A(1000) CYCLIC(3) over 4 processors");
    println!("passing the section A(2:996:2) to two subroutines:\n");
    for call in elab.report.calls() {
        println!("CALL {}:", call.procedure);
        if call.events.is_empty() {
            println!("  no data movement (inherited distribution)");
        }
        for e in &call.events {
            println!("  {e}");
        }
    }

    // the same scenario through the programmatic API, with inquiry
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
    let frame = CallFrame::enter(
        &ds,
        &def,
        &[Actual::section(a, Section::from_triplets(vec![triplet(2, 996, 2)]))],
    )
    .unwrap();
    let x = frame.dummy(0);

    println!("\ninside SUB, the dummy X:");
    let desc = inquiry::describe(frame.local(), x);
    println!("  {desc}");
    println!(
        "  mapping kind: {:?} — no format list can express it (§8.2),",
        inquiry::mapping_kind(&frame.local().effective(x).unwrap())
    );
    println!("  yet every aspect is inquirable:");
    for k in [1i64, 2, 250, 498] {
        println!(
            "    owner of X({k:>3}) = {}   (= owner of A({:>3}))",
            frame.local().owners(x, &Idx::d1(k)).unwrap(),
            2 * k,
        );
    }
    let hist = inquiry::ownership_histogram(frame.local(), x).unwrap();
    println!("  per-processor element counts: {:?}", hist.iter().map(|&(_, n)| n).collect::<Vec<_>>());

    let report = frame.exit().unwrap();
    println!(
        "\nexit restores the actual's distribution: {} elements moved",
        report.total_volume()
    );
}
