//! End-to-end elaboration tests: the paper's example programs, verbatim
//! where possible, through parse → elaborate → mapping queries.

use hpf_core::{inquiry, ProcSet};
use hpf_frontend::{Elaborator, Event, FrontendError};
use hpf_index::Idx;
use hpf_procs::ProcId;

#[test]
fn section4_distribute_examples() {
    let src = r#"
      PROGRAM EXAMPLES
      PARAMETER (NOP = 8)
      REAL A(16), B(10), C(12), E(8,6), F(8,6)
!HPF$ PROCESSORS Q(NOP)
!HPF$ DISTRIBUTE A(BLOCK)
!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S))
!HPF$ DISTRIBUTE (BLOCK, :) :: E,F
      END
"#;
    let elab = Elaborator::new(8)
        .with_param_array("S", vec![4, 7, 9, 12, 12, 12, 12])
        .run(src)
        .unwrap();
    let sp = &elab.space;

    // A(BLOCK) over the implicit AP of 8: q = 2
    let a = elab.array("A").unwrap();
    assert_eq!(sp.owners(a, &Idx::d1(1)).unwrap(), ProcSet::One(ProcId(1)));
    assert_eq!(sp.owners(a, &Idx::d1(3)).unwrap(), ProcSet::One(ProcId(2)));

    // B(CYCLIC) TO Q(1:8:2): deals over P1,P3,P5,P7
    let b = elab.array("B").unwrap();
    assert_eq!(sp.owners(b, &Idx::d1(1)).unwrap(), ProcSet::One(ProcId(1)));
    assert_eq!(sp.owners(b, &Idx::d1(2)).unwrap(), ProcSet::One(ProcId(3)));
    assert_eq!(sp.owners(b, &Idx::d1(5)).unwrap(), ProcSet::One(ProcId(1)));

    // C(GENERAL_BLOCK(S)) with S = 4,7,9,... over 8 procs on 12 elements
    let c = elab.array("C").unwrap();
    assert_eq!(sp.owners(c, &Idx::d1(4)).unwrap(), ProcSet::One(ProcId(1)));
    assert_eq!(sp.owners(c, &Idx::d1(5)).unwrap(), ProcSet::One(ProcId(2)));
    assert_eq!(sp.owners(c, &Idx::d1(10)).unwrap(), ProcSet::One(ProcId(4)));

    // E and F both (BLOCK,:)
    let e = elab.array("E").unwrap();
    let f = elab.array("F").unwrap();
    for j in 1..=6 {
        assert_eq!(sp.owners(e, &Idx::d2(1, j)).unwrap(), ProcSet::One(ProcId(1)));
        assert_eq!(
            sp.owners(e, &Idx::d2(8, j)).unwrap(),
            sp.owners(f, &Idx::d2(8, j)).unwrap()
        );
    }
}

#[test]
fn section5_alignment_examples() {
    // REAL A(1:N), D(1:N,1:M); ALIGN A(:) WITH D(:,*)
    // REAL B(1:N,1:M), E(1:N); ALIGN B(:,*) WITH E(:)
    let src = r#"
      PARAMETER (N = 8, M = 3)
      REAL A(N), D(N,M), B(N,M), E(N)
!HPF$ PROCESSORS P(4)
!HPF$ DISTRIBUTE D(BLOCK, :) TO P
!HPF$ DISTRIBUTE E(CYCLIC) TO P
!HPF$ ALIGN A(:) WITH D(:,*)
!HPF$ ALIGN B(:,*) WITH E(:)
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let sp = &elab.space;
    let (a, d, b, e) = (
        elab.array("A").unwrap(),
        elab.array("D").unwrap(),
        elab.array("B").unwrap(),
        elab.array("E").unwrap(),
    );
    // A(J) collocated with D(J,k) for every k (replication), and since D's
    // second dim is collapsed the owners coincide exactly
    for j in 1..=8i64 {
        assert_eq!(
            sp.owners(a, &Idx::d1(j)).unwrap(),
            sp.owners(d, &Idx::d2(j, 1)).unwrap()
        );
    }
    // B(J1,J2) collocated with E(J1) regardless of J2 (collapse)
    for j1 in 1..=8i64 {
        for j2 in 1..=3i64 {
            assert_eq!(
                sp.owners(b, &Idx::d2(j1, j2)).unwrap(),
                sp.owners(e, &Idx::d1(j1)).unwrap()
            );
        }
    }
}

#[test]
fn section6_allocatable_program_verbatim() {
    // the §6 example, at miniature scale (PR(4), M=3, N=4)
    let src = r#"
      REAL, ALLOCATABLE :: A(:,:), B(:,:)
      REAL, ALLOCATABLE :: C(:), D(:)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK) TO GRID
!HPF$ DISTRIBUTE (BLOCK) :: C,D
!HPF$ DYNAMIC B,C
!HPF$ PROCESSORS GRID(2,2)
      READ 6,M,N
      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(40), D(40))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
      END
"#;
    let elab = Elaborator::new(4).with_input("M", 3).with_input("N", 4).run(src).unwrap();
    let sp = &elab.space;
    let (a, b, c, d) = (
        elab.array("A").unwrap(),
        elab.array("B").unwrap(),
        elab.array("C").unwrap(),
        elab.array("D").unwrap(),
    );
    // B(i,j) collocated with A(3i, 3j−2)
    for i in 1..=4i64 {
        for j in 1..=4i64 {
            assert_eq!(
                sp.owners(b, &Idx::d2(i, j)).unwrap(),
                sp.owners(a, &Idx::d2(3 * i, 3 * j - 2)).unwrap(),
                "B({i},{j})"
            );
        }
    }
    // C was redistributed CYCLIC TO PR
    assert_eq!(sp.owners(c, &Idx::d1(2)).unwrap(), ProcSet::One(ProcId(2)));
    // D keeps the propagated BLOCK
    assert_eq!(sp.owners(d, &Idx::d1(40)).unwrap(), ProcSet::One(ProcId(4)));
    // events recorded the REALIGN and REDISTRIBUTE with movement counts
    assert!(elab
        .report
        .events
        .iter()
        .any(|e| matches!(e, Event::Realigned { alignee, .. } if alignee == "B")));
    assert!(elab
        .report
        .events
        .iter()
        .any(|e| matches!(e, Event::Redistributed { name, moved } if name == "C" && *moved > 0)));
}

#[test]
fn section8_1_2_call_with_inherited_section() {
    // REAL A(1000); DISTRIBUTE A(CYCLIC(3)); CALL SUB(A(2:996:2))
    let src = r#"
      REAL A(1000)
!HPF$ DISTRIBUTE A(CYCLIC(3))
      CALL SUB(A(2:996:2))
      END
      SUBROUTINE SUB(X)
      REAL X(:)
!HPF$ DISTRIBUTE X *
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let calls = elab.report.calls();
    assert_eq!(calls.len(), 1);
    assert_eq!(calls[0].total_volume(), 0, "inheritance must not move data");
}

#[test]
fn section8_1_2_inheritance_matching() {
    // the §8.2 variant: DISTRIBUTE X *(CYCLIC(3)) — mismatching actual
    let src = r#"
      REAL A(1000)
!HPF$ DISTRIBUTE A(CYCLIC(3))
      CALL SUB(A)
      END
      SUBROUTINE SUB(X)
      REAL X(:)
!HPF$ DISTRIBUTE X *(CYCLIC(3))
      END
"#;
    // whole array with matching distribution: accepted, no movement
    let elab = Elaborator::new(4).run(src).unwrap();
    assert_eq!(elab.report.calls()[0].total_volume(), 0);

    // a section actual does NOT match CYCLIC(3) → non-conforming (§7 case 3)
    let src_section = src.replace("CALL SUB(A)", "CALL SUB(A(2:996:2))");
    let err = Elaborator::new(4).run(&src_section).unwrap_err();
    assert!(matches!(
        err,
        FrontendError::Semantic(hpf_core::HpfError::DistributionMismatch { .. })
    ));

    // with interface blocks visible the language processor remaps instead
    let elab = Elaborator::new(4)
        .with_interface_blocks(true)
        .run(&src_section)
        .unwrap();
    let r = elab.report.calls()[0].clone();
    assert!(r.total_volume() > 0, "remap in + restore out");
    assert_eq!(r.events.len(), 2);
}

#[test]
fn explicit_dummy_redistribution_restored() {
    let src = r#"
      REAL A(100)
!HPF$ DISTRIBUTE A(BLOCK)
      CALL W(A)
      END
      SUBROUTINE W(X)
      REAL X(:)
!HPF$ DISTRIBUTE X(CYCLIC)
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let call = &elab.report.calls()[0];
    // remap at entry, restore at exit — equal volumes
    assert_eq!(call.events.len(), 2);
    assert_eq!(call.events[0].volume, call.events[1].volume);
    assert!(call.events[0].volume > 0);
}

#[test]
fn staggered_grid_program_parses_and_maps() {
    // §8.1.1 without templates: direct (BLOCK,BLOCK) as the paper proposes
    let src = r#"
      PARAMETER (N = 16)
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ PROCESSORS G(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO G :: U,V,P
      P=U(0:N-1,:)+U(1:N,:)+V(:,0:N-1)+V(:,1:N)
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let assigns = elab.report.assignments();
    assert_eq!(assigns.len(), 1);
    let a = assigns[0];
    assert_eq!(a.lhs_name, "P");
    assert_eq!(a.terms.len(), 4);
    assert_eq!(a.lhs_section.size(), 256);
    assert_eq!(a.terms[0].2.size(), 256);
    // interior collocation: P(8,8) and U(8,8) on the same processor
    let (p, u) = (elab.array("P").unwrap(), elab.array("U").unwrap());
    assert_eq!(
        elab.space.owners(p, &Idx::d2(8, 8)).unwrap(),
        elab.space.owners(u, &Idx::d2(8, 8)).unwrap()
    );
}

#[test]
fn template_directive_is_a_guided_error() {
    let src = r#"
      REAL P(8,8)
!HPF$ TEMPLATE T(0:16,0:16)
      END
"#;
    let err = Elaborator::new(4).run(src).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("TEMPLATE"));
    assert!(msg.contains("§8"));
}

#[test]
fn dynamic_required_for_redistribute() {
    let src = r#"
      REAL A(16)
!HPF$ DISTRIBUTE A(BLOCK)
!HPF$ REDISTRIBUTE A(CYCLIC)
      END
"#;
    let err = Elaborator::new(4).run(src).unwrap_err();
    assert!(matches!(
        err,
        FrontendError::Semantic(hpf_core::HpfError::NotDynamic(_))
    ));
}

#[test]
fn missing_read_input_reported() {
    let src = "READ 5,N\nEND";
    assert!(matches!(
        Elaborator::new(2).run(src),
        Err(FrontendError::MissingInput(_))
    ));
}

#[test]
fn undeclared_array_reported_with_line() {
    let src = "!HPF$ DISTRIBUTE NOSUCH(BLOCK)";
    assert!(matches!(
        Elaborator::new(2).run(src),
        Err(FrontendError::Undeclared { .. })
    ));
}

#[test]
fn scalar_declaration_replicates() {
    let src = r#"
      REAL S
      REAL A(8)
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let s = elab.array("S").unwrap();
    let owners = elab.space.owners(s, &Idx::SCALAR).unwrap();
    assert_eq!(owners.len(), 4, "scalars replicate over all processors");
}

#[test]
fn inquiry_describes_elaborated_arrays() {
    let src = r#"
      PARAMETER (N = 12)
      REAL B(N), A(N)
!HPF$ DISTRIBUTE B(CYCLIC(2))
!HPF$ ALIGN A(:) WITH B(:)
      END
"#;
    let elab = Elaborator::new(3).run(src).unwrap();
    let a = elab.array("A").unwrap();
    let b = elab.array("B").unwrap();
    let da = inquiry::describe(&elab.space, a);
    assert_eq!(da.role, inquiry::Role::Secondary { base: "B".into() });
    let db = inquiry::describe(&elab.space, b);
    assert_eq!(db.dims, vec![inquiry::DimKind::Cyclic(2)]);
    assert_eq!(db.children, vec!["A".to_string()]);
    let hist = inquiry::ownership_histogram(&elab.space, b).unwrap();
    let total: usize = hist.iter().map(|&(_, n)| n).sum();
    assert_eq!(total, 12);
}

#[test]
fn indirect_extension_format() {
    // §1: "the concept of distribution functions has been defined in a
    // general way so that future language standards may easily incorporate
    // more general mappings" — an explicit owner table through the
    // directive language.
    let src = r#"
      REAL A(8)
!HPF$ DISTRIBUTE A(INDIRECT(2, 1, 2, 1, 3, 3, 1, 2))
      END
"#;
    let elab = Elaborator::new(3).run(src).unwrap();
    let a = elab.array("A").unwrap();
    let want = [2u32, 1, 2, 1, 3, 3, 1, 2];
    for (i, &w) in want.iter().enumerate() {
        assert_eq!(
            elab.space.owners(a, &Idx::d1(i as i64 + 1)).unwrap(),
            ProcSet::One(ProcId(w)),
            "element {}",
            i + 1
        );
    }
    // via a parameter array too
    let src2 = r#"
      REAL A(8)
!HPF$ DISTRIBUTE A(INDIRECT(MAP))
      END
"#;
    let elab2 = Elaborator::new(3)
        .with_param_array("MAP", vec![2, 1, 2, 1, 3, 3, 1, 2])
        .run(src2)
        .unwrap();
    let a2 = elab2.array("A").unwrap();
    for (i, &w) in want.iter().enumerate() {
        assert_eq!(
            elab2.space.owners(a2, &Idx::d1(i as i64 + 1)).unwrap(),
            ProcSet::One(ProcId(w))
        );
    }
    // bad coordinate rejected
    let bad = r#"
      REAL A(2)
!HPF$ DISTRIBUTE A(INDIRECT(1, 9))
      END
"#;
    assert!(Elaborator::new(3).run(bad).is_err());
}

#[test]
fn local_aligned_to_dummy_in_subroutine() {
    // §7: "Further, a local data object may be aligned to a dummy argument."
    let src = r#"
      REAL A(100)
!HPF$ DISTRIBUTE A(CYCLIC(7))
      CALL S(A)
      END
      SUBROUTINE S(X)
      REAL X(:)
      REAL W(100)
!HPF$ DISTRIBUTE X *
!HPF$ ALIGN W(I) WITH X(I)
      END
"#;
    // the call must succeed with no movement, and inside the frame W's
    // owners equal X's — verified via the call report being clean
    let elab = Elaborator::new(4).run(src).unwrap();
    assert_eq!(elab.report.calls()[0].total_volume(), 0);
}

#[test]
fn local_distributed_and_redistributed_in_subroutine() {
    let src = r#"
      REAL A(64)
!HPF$ DISTRIBUTE A(BLOCK)
      CALL S(A)
      END
      SUBROUTINE S(X)
      REAL X(:)
      REAL TMP(64)
!HPF$ DYNAMIC TMP
!HPF$ DISTRIBUTE X *
!HPF$ DISTRIBUTE TMP(CYCLIC)
!HPF$ REDISTRIBUTE TMP(BLOCK)
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    // dummy untouched → zero boundary movement
    assert_eq!(elab.report.calls()[0].total_volume(), 0);
}

#[test]
fn undeclared_local_in_subroutine_align_reported() {
    let src = r#"
      REAL A(8)
      CALL S(A)
      END
      SUBROUTINE S(X)
      REAL X(:)
!HPF$ ALIGN NOPE(I) WITH X(I)
      END
"#;
    assert!(matches!(
        Elaborator::new(2).run(src),
        Err(FrontendError::Undeclared { .. })
    ));
}
