//! Whole-array distributions (Definition 2, §4) and the `DISTRIBUTE`
//! directive body.

use super::dim::DimDist;
use super::format::{DimFormat, FormatSpec};
use crate::procset::ProcSet;
use crate::HpfError;
use hpf_index::{Idx, IndexDomain, Rect, Region, Section, Triplet};
use hpf_procs::{ProcId, ProcSpace, ProcTarget};
use std::fmt;

/// The target clause of a `DISTRIBUTE` directive, *by name*: resolved
/// against a [`ProcSpace`] when the distribution is bound. Distribution
/// onto sections of arrangements is the paper's §4 generalization 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetSpec {
    /// `TO R` — the whole arrangement `R`.
    Whole(String),
    /// `TO R(section)` — a section of `R`, e.g. `Q(1:NOP:2)`.
    Section(String, Section),
}

impl TargetSpec {
    /// Resolve the named target against a processor space.
    pub fn resolve(&self, ps: &ProcSpace) -> Result<ProcTarget, HpfError> {
        match self {
            TargetSpec::Whole(name) => {
                Ok(ProcTarget::whole(ps, ps.by_name(name)?)?)
            }
            TargetSpec::Section(name, section) => {
                Ok(ProcTarget::section(ps, ps.by_name(name)?, section.clone())?)
            }
        }
    }
}

impl fmt::Display for TargetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetSpec::Whole(n) => write!(f, "{n}"),
            TargetSpec::Section(n, s) => write!(f, "{n}{s}"),
        }
    }
}

/// The body of a `DISTRIBUTE`/`REDISTRIBUTE` directive (§4.1): one format
/// per array dimension plus an optional target clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributeSpec {
    /// One format per array dimension.
    pub formats: Vec<FormatSpec>,
    /// The `TO` clause; `None` targets the implicit arrangement AP.
    pub target: Option<TargetSpec>,
}

impl DistributeSpec {
    /// `DISTRIBUTE (formats)` with no target clause.
    pub fn new(formats: Vec<FormatSpec>) -> Self {
        DistributeSpec { formats, target: None }
    }

    /// `DISTRIBUTE (formats) TO name`.
    pub fn to(formats: Vec<FormatSpec>, name: &str) -> Self {
        DistributeSpec { formats, target: Some(TargetSpec::Whole(name.to_string())) }
    }

    /// `DISTRIBUTE (formats) TO name(section)`.
    pub fn to_section(formats: Vec<FormatSpec>, name: &str, section: Section) -> Self {
        DistributeSpec {
            formats,
            target: Some(TargetSpec::Section(name.to_string(), section)),
        }
    }
}

impl fmt::Display for DistributeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, spec) in self.formats.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{spec}")?;
        }
        write!(f, ")")?;
        if let Some(t) = &self.target {
            write!(f, " TO {t}")?;
        }
        Ok(())
    }
}

/// A bound distribution `δ` (Definition 2): a total mapping from an array
/// index domain to the index domain of a processor target, factored per
/// dimension.
///
/// Construction resolves the target's storage association once, so
/// [`Distribution::owner`] is an O(rank) arithmetic evaluation with no
/// processor-space lookups — the property the paper claims for
/// `GENERAL_BLOCK` ("can be implemented efficiently") holds for every
/// format here.
#[derive(Debug, Clone)]
pub struct Distribution {
    name: String,
    domain: IndexDomain,
    /// Per array dimension (directive order).
    dims: Vec<DimDist>,
    /// Per array dimension: the bound format (always `Some` for explicit
    /// directives; `None` marks dimensions an *implicit* compiler
    /// distribution left unformatted).
    dim_formats: Vec<Option<DimFormat>>,
    /// Array dimensions that consume a target dimension, in order.
    distributed_dims: Vec<usize>,
    target: ProcTarget,
    /// AP number at target coordinates (1, …, 1).
    ap_base: i64,
    /// AP increment per unit step in each target dimension (the §3
    /// storage association is affine in every coordinate).
    ap_mult: Vec<i64>,
    /// AP per target position, column-major (for inverse queries).
    proc_of_rel: Vec<ProcId>,
}

impl Distribution {
    /// Bind a `DISTRIBUTE` format list to an array and a resolved target
    /// (§4.1). Validates the three conformance rules: format-list length,
    /// target rank, and per-format well-formedness.
    pub fn new(
        name: &str,
        domain: &IndexDomain,
        formats: &[FormatSpec],
        target: ProcTarget,
        ps: &ProcSpace,
    ) -> Result<Self, HpfError> {
        let rank = domain.rank();
        if formats.len() != rank {
            return Err(HpfError::FormatListRank {
                array: name.to_string(),
                formats: formats.len(),
                rank,
            });
        }
        let distributed_dims: Vec<usize> = formats
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_collapsed())
            .map(|(d, _)| d)
            .collect();
        if distributed_dims.len() != target.rank() {
            return Err(HpfError::TargetRank {
                array: name.to_string(),
                distributed_dims: distributed_dims.len(),
                target_rank: target.rank(),
            });
        }
        let mut dims = Vec::with_capacity(rank);
        let mut dim_formats = Vec::with_capacity(rank);
        let mut tdim = 0usize;
        for (d, f) in formats.iter().enumerate() {
            let np = if f.is_collapsed() {
                1
            } else {
                let e = target.extent(tdim);
                tdim += 1;
                e
            };
            let bound = f.bind(domain.extent(d), np)?;
            dim_formats.push(Some(bound.clone()));
            dims.push(DimDist::new(bound, domain.dim(d), np)?);
        }
        Self::assemble(name, domain, dims, dim_formats, distributed_dims, target, ps)
    }

    /// The *implicit* compiler-chosen distribution for an array no
    /// directive has mapped (§2.4: every created array has a
    /// distribution): `BLOCK` on the last dimension over the target, the
    /// remaining dimensions collapsed.
    pub fn implicit(
        name: &str,
        domain: &IndexDomain,
        target: ProcTarget,
        ps: &ProcSpace,
    ) -> Result<Self, HpfError> {
        let rank = domain.rank();
        debug_assert!(rank >= 1, "scalars are replicated, not distributed");
        let mut dims = Vec::with_capacity(rank);
        let mut dim_formats: Vec<Option<DimFormat>> = Vec::with_capacity(rank);
        for d in 0..rank {
            if d + 1 == rank {
                let bound = FormatSpec::Block.bind(domain.extent(d), target.extent(0))?;
                dim_formats.push(Some(bound.clone()));
                dims.push(DimDist::new(bound, domain.dim(d), target.extent(0))?);
            } else {
                dim_formats.push(None);
                dims.push(DimDist::new(DimFormat::Collapsed, domain.dim(d), 1)?);
            }
        }
        Self::assemble(name, domain, dims, dim_formats, vec![rank - 1], target, ps)
    }

    fn assemble(
        name: &str,
        domain: &IndexDomain,
        dims: Vec<DimDist>,
        dim_formats: Vec<Option<DimFormat>>,
        distributed_dims: Vec<usize>,
        target: ProcTarget,
        ps: &ProcSpace,
    ) -> Result<Self, HpfError> {
        let trank = target.rank();
        let ones = Idx::new(&vec![1i64; trank]).expect("target rank ≤ MAX_RANK");
        let ap_base = target.ap_at(ps, &ones)?.0 as i64;
        let mut ap_mult = Vec::with_capacity(trank);
        for d in 0..trank {
            if target.extent(d) > 1 {
                let p = target.ap_at(ps, &ones.with(d, 2))?;
                ap_mult.push(p.0 as i64 - ap_base);
            } else {
                ap_mult.push(0);
            }
        }
        let proc_of_rel = target.all_aps(ps);
        Ok(Distribution {
            name: name.to_string(),
            domain: domain.clone(),
            dims,
            dim_formats,
            distributed_dims,
            target,
            ap_base,
            ap_mult,
            proc_of_rel,
        })
    }

    /// The array name the directive bound.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The index domain the mapping is total on.
    pub fn domain(&self) -> &IndexDomain {
        &self.domain
    }

    /// The resolved processor target.
    pub fn target(&self) -> &ProcTarget {
        &self.target
    }

    /// Per-dimension bound formats (`None` for dimensions an implicit
    /// distribution left unformatted).
    pub fn dim_formats(&self) -> &[Option<DimFormat>] {
        &self.dim_formats
    }

    /// The per-dimension distribution functions.
    pub fn dim_dists(&self) -> &[DimDist] {
        &self.dims
    }

    /// Array dimensions that consume a target dimension, in order.
    pub fn distributed_dims(&self) -> &[usize] {
        &self.distributed_dims
    }

    /// Number of processors in the target.
    pub fn num_procs(&self) -> usize {
        self.proc_of_rel.len()
    }

    /// The target coordinates (1-based, one per target dimension) of an
    /// element — the tuple the §4.1 distribution functions produce.
    #[inline]
    pub fn coords(&self, i: &Idx) -> Idx {
        let mut out = Idx::SCALAR;
        for &d in &self.distributed_dims {
            let dd = &self.dims[d];
            out.push(dd.coord(dd.pos_of(i[d])));
        }
        out
    }

    /// The unique owner of element `i` — Definition 2's `δ(i)`, O(rank).
    #[inline]
    pub fn owner(&self, i: &Idx) -> ProcId {
        let mut ap = self.ap_base;
        for (t, &d) in self.distributed_dims.iter().enumerate() {
            let dd = &self.dims[d];
            ap += (dd.coord(dd.pos_of(i[d])) - 1) * self.ap_mult[t];
        }
        ProcId(ap as u32)
    }

    /// Owner set of element `i` (direct distributions never replicate, so
    /// this is always a singleton).
    #[inline]
    pub fn owners(&self, i: &Idx) -> ProcSet {
        ProcSet::One(self.owner(i))
    }

    /// The per-dimension local indices of element `i` within its owner
    /// (§4.1.1/§4.1.3 `local` formulas; collapsed dimensions keep their
    /// position).
    #[inline]
    pub fn local(&self, i: &Idx) -> Idx {
        let mut out = Idx::SCALAR;
        for (d, dd) in self.dims.iter().enumerate() {
            out.push(dd.local(dd.pos_of(i[d])));
        }
        out
    }

    /// The element at per-dimension local indices `local` on the owner at
    /// target coordinates `coords`; `None` if that processor holds no such
    /// local element. Inverse of [`Distribution::local`] +
    /// [`Distribution::coords`].
    pub fn global(&self, coords: &Idx, local: &Idx) -> Option<Idx> {
        let mut out = Idx::SCALAR;
        let mut t = 0usize;
        for (d, dd) in self.dims.iter().enumerate() {
            let c = if dd.is_collapsed() {
                1
            } else {
                let c = coords[t];
                t += 1;
                c
            };
            let pos = dd.global(c, local[d])?;
            out.push(dd.global_at(pos));
        }
        Some(out)
    }

    /// Exact owner set of every element of a rect, without per-element
    /// enumeration: per-dimension coordinate sets are combined through the
    /// affine storage association.
    pub fn owners_of_rect(&self, r: &Rect) -> ProcSet {
        if r.is_empty() {
            return ProcSet::Many(Vec::new());
        }
        // per distributed dimension: target coordinates hit by the window
        let mut per_dim: Vec<Vec<i64>> = Vec::with_capacity(self.distributed_dims.len());
        for &d in &self.distributed_dims {
            let dd = &self.dims[d];
            let t = r.dim(d);
            // convert the global window to position space
            let positions = global_to_positions(dd, t);
            let coords = dd.coords_of(&positions);
            if coords.is_empty() {
                return ProcSet::Many(Vec::new());
            }
            per_dim.push(coords);
        }
        // cartesian combination through the affine AP formula
        let mut aps: Vec<ProcId> = Vec::new();
        let mut stack = vec![0usize; per_dim.len()];
        loop {
            let mut ap = self.ap_base;
            for (t, coords) in per_dim.iter().enumerate() {
                ap += (coords[stack[t]] - 1) * self.ap_mult[t];
            }
            aps.push(ProcId(ap as u32));
            // odometer increment
            let mut k = 0usize;
            loop {
                if k == per_dim.len() {
                    return ProcSet::from_vec(aps);
                }
                stack[k] += 1;
                if stack[k] < per_dim[k].len() {
                    break;
                }
                stack[k] = 0;
                k += 1;
            }
        }
    }

    /// The region of the array's own index space owned by processor `p`
    /// (Definition 3's `δ⁻¹(p)`), as a disjoint rect union.
    pub fn owned_region(&self, p: ProcId) -> Region {
        let rank = self.domain.rank();
        let mut out = Region::empty(rank);
        let tdom = self.target.domain();
        for (rel_linear, &owner) in self.proc_of_rel.iter().enumerate() {
            if owner != p {
                continue;
            }
            let rel = tdom.delinearize(rel_linear).expect("within target");
            // per-dimension preimages in global index space
            let mut per_dim: Vec<Vec<Triplet>> = Vec::with_capacity(rank);
            let mut t = 0usize;
            let mut empty = false;
            for dd in self.dims.iter() {
                let pre = if dd.is_collapsed() {
                    dd.preimage(1)
                } else {
                    let c = rel[t];
                    t += 1;
                    dd.preimage(c)
                };
                let glob: Vec<Triplet> = pre
                    .iter()
                    .map(|tp| positions_to_global(dd, tp))
                    .collect();
                if glob.is_empty() {
                    empty = true;
                    break;
                }
                per_dim.push(glob);
            }
            if empty {
                continue;
            }
            // cartesian product of per-dimension triplets
            let mut stack = vec![0usize; rank];
            'outer: loop {
                let dims: Vec<Triplet> =
                    (0..rank).map(|d| per_dim[d][stack[d]]).collect();
                out.push(Rect::new(dims));
                let mut k = 0usize;
                loop {
                    if k == rank {
                        break 'outer;
                    }
                    stack[k] += 1;
                    if stack[k] < per_dim[k].len() {
                        break;
                    }
                    stack[k] = 0;
                    k += 1;
                }
            }
        }
        out
    }

    /// Structural equality of two distributions: same domain, same bound
    /// formats, same target. This is the §7 "inheritance matching"
    /// comparison for format-expressible mappings.
    pub fn matches(&self, other: &Distribution) -> bool {
        self.domain == other.domain
            && self.dim_formats == other.dim_formats
            && self.target == other.target
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, df) in self.dim_formats.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match df {
                None | Some(DimFormat::Collapsed) => write!(f, ":")?,
                Some(DimFormat::Block) => write!(f, "BLOCK")?,
                Some(DimFormat::BlockBalanced) => write!(f, "BLOCK_BALANCED")?,
                Some(DimFormat::GeneralBlock(_)) => write!(f, "GENERAL_BLOCK")?,
                Some(DimFormat::Cyclic(1)) => write!(f, "CYCLIC")?,
                Some(DimFormat::Cyclic(k)) => write!(f, "CYCLIC({k})")?,
                Some(DimFormat::Indirect(_)) => write!(f, "INDIRECT")?,
            }
        }
        write!(f, ")")
    }
}

/// Convert a global-index window along one dimension to position space.
fn global_to_positions(dd: &DimDist, t: &Triplet) -> Triplet {
    let asc = t.ascending();
    match (asc.min(), asc.max()) {
        (Some(lo), Some(hi)) => {
            let step = (asc.stride() / dd_stride(dd)).abs().max(1);
            Triplet::new(dd.pos_of(lo), dd.pos_of(hi), step).expect("positive stride")
        }
        _ => Triplet::new(1, 0, 1).expect("empty"),
    }
}

/// Convert a position-space triplet back to global indices.
fn positions_to_global(dd: &DimDist, t: &Triplet) -> Triplet {
    let a = dd_stride(dd);
    let lo = dd.global_at(t.min().expect("non-empty preimage triplet"));
    let hi = dd.global_at(t.max().expect("non-empty preimage triplet"));
    Triplet::new(lo, hi, (t.stride() * a).abs().max(1)).expect("positive stride")
}

/// The dimension's global stride (positions advance by this much).
fn dd_stride(dd: &DimDist) -> i64 {
    dd.global_at(2) - dd.global_at(1)
}
