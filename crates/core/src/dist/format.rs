//! The distribution formats of §4.1 and their validated, bound forms.

use crate::HpfError;
use std::fmt;
use std::sync::Arc;

/// One dimension's distribution format as written in a `DISTRIBUTE`
/// directive (§4.1). This is the *unbound* form: it is validated against a
/// dimension extent and a target extent when a [`crate::Distribution`] is
/// constructed, yielding a [`DimFormat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatSpec {
    /// HPF `BLOCK` (§4.1.1): contiguous blocks of `q = ⌈N/NP⌉`; the last
    /// processors may be short or empty.
    Block,
    /// Vienna Fortran balanced `BLOCK` (the §8.1.1 footnote): block sizes
    /// differ by at most one, so `NP | N` causes no boundary drift.
    BlockBalanced,
    /// `CYCLIC(k)` (§4.1.3): segments of length `k` dealt round-robin;
    /// `CYCLIC` is `Cyclic(1)`.
    Cyclic(u64),
    /// `GENERAL_BLOCK(G)` by *bounds* (§4.1.2): `G(i)` is the last index
    /// position of block `i`; block `NP` always ends at `N`, and at least
    /// `NP − 1` entries must be given.
    GeneralBlock(Vec<i64>),
    /// `GENERAL_BLOCK` by *sizes*: exactly `NP` non-negative block lengths
    /// summing to `N` (the form produced by partitioning tools).
    GeneralBlockSizes(Vec<i64>),
    /// `:` — the dimension is not distributed (§4.1: "A colon indicates
    /// that the corresponding dimension of the array is not distributed").
    Collapsed,
    /// `INDIRECT(M)` extension: element `i` lives at target coordinate
    /// `M(i)` (1-based). The map must cover the whole dimension.
    Indirect(Vec<u32>),
}

impl FormatSpec {
    /// True iff this is the collapsing `:` format.
    pub fn is_collapsed(&self) -> bool {
        matches!(self, FormatSpec::Collapsed)
    }

    /// Validate against a dimension of `n` elements distributed over `np`
    /// target positions, producing the bound [`DimFormat`].
    pub fn bind(&self, n: usize, np: usize) -> Result<DimFormat, HpfError> {
        match self {
            FormatSpec::Block => Ok(DimFormat::Block),
            FormatSpec::BlockBalanced => Ok(DimFormat::BlockBalanced),
            FormatSpec::Cyclic(k) => {
                if *k == 0 {
                    return Err(HpfError::BadCyclicArg(0));
                }
                Ok(DimFormat::Cyclic(*k))
            }
            FormatSpec::GeneralBlock(bounds) => {
                Ok(DimFormat::GeneralBlock(GeneralBlock::from_bounds(bounds, np, n)?))
            }
            FormatSpec::GeneralBlockSizes(sizes) => {
                Ok(DimFormat::GeneralBlock(GeneralBlock::from_sizes(sizes, np, n)?))
            }
            FormatSpec::Collapsed => Ok(DimFormat::Collapsed),
            FormatSpec::Indirect(map) => {
                Ok(DimFormat::Indirect(IndirectMap::new(map, np, n)?))
            }
        }
    }
}

impl fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatSpec::Block => write!(f, "BLOCK"),
            FormatSpec::BlockBalanced => write!(f, "BLOCK_BALANCED"),
            FormatSpec::Cyclic(1) => write!(f, "CYCLIC"),
            FormatSpec::Cyclic(k) => write!(f, "CYCLIC({k})"),
            FormatSpec::GeneralBlock(g) => {
                write!(f, "GENERAL_BLOCK(")?;
                for (i, b) in g.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            FormatSpec::GeneralBlockSizes(s) => {
                write!(f, "GENERAL_BLOCK(sizes ")?;
                for (i, b) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            FormatSpec::Collapsed => write!(f, ":"),
            FormatSpec::Indirect(_) => write!(f, "INDIRECT(...)"),
        }
    }
}

/// A format *bound* to a dimension: validated, normalized, and carrying
/// whatever precomputation its owner-lookup needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimFormat {
    /// HPF `BLOCK`.
    Block,
    /// Vienna balanced `BLOCK`.
    BlockBalanced,
    /// `GENERAL_BLOCK` with its normalized partition.
    GeneralBlock(GeneralBlock),
    /// `CYCLIC(k)`.
    Cyclic(u64),
    /// Not distributed.
    Collapsed,
    /// `INDIRECT` with its validated map.
    Indirect(IndirectMap),
}

/// A normalized `GENERAL_BLOCK` partition (§4.1.2) of positions `1..=n`
/// into `np` contiguous (possibly empty) blocks.
///
/// Stored as cumulative block *ends*: block `j` (1-based) covers positions
/// `bound(j−1)+1 ..= bound(j)`, with `bound(0) = 0` and `bound(np) = n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralBlock {
    ends: Vec<i64>,
}

impl GeneralBlock {
    /// Build from the directive's bound array `G` (§4.1.2): `G(i)` is the
    /// last position of block `i`. At least `np − 1` entries are required;
    /// block `np` always ends at `n` regardless of any further entries.
    /// Bounds must be non-decreasing and non-negative (values beyond `n`
    /// are clamped — the paper's `GENERAL_BLOCK(2,7,99)` example).
    pub fn from_bounds(bounds: &[i64], np: usize, n: usize) -> Result<Self, HpfError> {
        if np == 0 {
            return Err(HpfError::BadGeneralBlock("zero target processors".into()));
        }
        if bounds.len() + 1 < np {
            return Err(HpfError::BadGeneralBlock(format!(
                "{} bound(s) given but NP−1 = {} required",
                bounds.len(),
                np - 1
            )));
        }
        let mut ends = Vec::with_capacity(np);
        let mut prev = 0i64;
        for &b in &bounds[..np - 1] {
            if b < prev {
                return Err(HpfError::BadGeneralBlock(format!(
                    "bounds must be non-decreasing ({b} after {prev})"
                )));
            }
            let clamped = b.min(n as i64);
            ends.push(clamped);
            prev = b;
        }
        ends.push(n as i64);
        Ok(GeneralBlock { ends })
    }

    /// Build from exactly `np` non-negative block sizes summing to `n`.
    pub fn from_sizes(sizes: &[i64], np: usize, n: usize) -> Result<Self, HpfError> {
        if sizes.len() != np {
            return Err(HpfError::BadGeneralBlock(format!(
                "{} size(s) given for NP = {np}",
                sizes.len()
            )));
        }
        let mut ends = Vec::with_capacity(np);
        let mut acc = 0i64;
        for &s in sizes {
            if s < 0 {
                return Err(HpfError::BadGeneralBlock(format!("negative block size {s}")));
            }
            acc += s;
            ends.push(acc);
        }
        if acc != n as i64 {
            return Err(HpfError::BadGeneralBlock(format!(
                "sizes sum to {acc}, dimension extent is {n}"
            )));
        }
        Ok(GeneralBlock { ends })
    }

    /// Partition weighted positions `1..=weights.len()` into `np`
    /// contiguous blocks minimizing the heaviest block (the load-balancing
    /// use of `GENERAL_BLOCK` from §1/§4.1.2), via binary search on the
    /// bottleneck plus a greedy packing. The result is optimal: no
    /// contiguous `np`-partition has a lighter heaviest block.
    pub fn balanced(weights: &[u64], np: usize) -> Result<Self, HpfError> {
        if np == 0 {
            return Err(HpfError::BadGeneralBlock("zero target processors".into()));
        }
        if weights.is_empty() {
            return Err(HpfError::BadGeneralBlock("empty weight array".into()));
        }
        let max_w = *weights.iter().max().expect("non-empty");
        let total: u128 = weights.iter().map(|&w| w as u128).sum();
        let (mut lo, mut hi) = (max_w as u128, total);
        let fits = |cap: u128| -> bool {
            let mut blocks = 1usize;
            let mut acc: u128 = 0;
            for &w in weights {
                if acc + w as u128 > cap {
                    blocks += 1;
                    if blocks > np {
                        return false;
                    }
                    acc = w as u128;
                } else {
                    acc += w as u128;
                }
            }
            true
        };
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // pack greedily at the optimal bottleneck
        let cap = lo;
        let mut ends = Vec::with_capacity(np);
        let mut acc: u128 = 0;
        for (i, &w) in weights.iter().enumerate() {
            if acc + w as u128 > cap {
                ends.push(i as i64);
                acc = w as u128;
            } else {
                acc += w as u128;
            }
        }
        ends.push(weights.len() as i64);
        while ends.len() < np {
            ends.push(weights.len() as i64);
        }
        Ok(GeneralBlock { ends })
    }

    /// Number of blocks (`NP`).
    pub fn np(&self) -> usize {
        self.ends.len()
    }

    /// Number of positions (`N`).
    pub fn n(&self) -> usize {
        *self.ends.last().expect("np ≥ 1") as usize
    }

    /// The cumulative bound of block `j`: the last position block `j`
    /// covers, with `bound(0) = 0`.
    pub fn bound(&self, j: usize) -> i64 {
        if j == 0 {
            0
        } else {
            self.ends[j - 1]
        }
    }

    /// Size of block `j` (1-based).
    pub fn size(&self, j: usize) -> usize {
        (self.bound(j) - self.bound(j - 1)) as usize
    }

    /// The 1-based block owning position `pos` (binary search, O(log NP)).
    pub fn block_of(&self, pos: i64) -> i64 {
        self.ends.partition_point(|&e| e < pos) as i64 + 1
    }

    /// The heaviest block's total weight under this partition.
    pub fn bottleneck(&self, weights: &[u64]) -> u64 {
        let mut worst = 0u64;
        for j in 1..=self.np() {
            let lo = self.bound(j - 1) as usize;
            let hi = (self.bound(j) as usize).min(weights.len());
            let load: u64 = weights[lo..hi].iter().sum();
            worst = worst.max(load);
        }
        worst
    }
}

/// A validated `INDIRECT` map: `coords[i]` is the 1-based target
/// coordinate of position `i + 1`, with per-coordinate local-index ranks
/// and position lists precomputed so lookups stay O(1).
#[derive(Debug, Clone)]
pub struct IndirectMap {
    coords: Arc<Vec<u32>>,
    /// `ranks[i]` = local (1-based) index of position `i + 1` within its
    /// target coordinate.
    ranks: Arc<Vec<u32>>,
    /// Positions (1-based) per coordinate, ascending.
    positions: Arc<Vec<Vec<i64>>>,
}

impl IndirectMap {
    /// Validate a raw map against dimension extent `n` and target extent
    /// `np`.
    pub fn new(map: &[u32], np: usize, n: usize) -> Result<Self, HpfError> {
        if map.len() != n {
            return Err(HpfError::BadIndirectMap(format!(
                "map has {} entries, dimension extent is {n}",
                map.len()
            )));
        }
        let mut positions: Vec<Vec<i64>> = vec![Vec::new(); np];
        let mut ranks = Vec::with_capacity(n);
        for (i, &c) in map.iter().enumerate() {
            if c == 0 || c as usize > np {
                return Err(HpfError::BadIndirectMap(format!(
                    "coordinate {c} at position {} outside 1..={np}",
                    i + 1
                )));
            }
            let bucket = &mut positions[c as usize - 1];
            bucket.push(i as i64 + 1);
            ranks.push(bucket.len() as u32);
        }
        Ok(IndirectMap {
            coords: Arc::new(map.to_vec()),
            ranks: Arc::new(ranks),
            positions: Arc::new(positions),
        })
    }

    /// Number of target coordinates.
    pub fn np(&self) -> usize {
        self.positions.len()
    }

    /// The 1-based target coordinate of position `pos`.
    pub fn coord_of(&self, pos: i64) -> i64 {
        self.coords[pos as usize - 1] as i64
    }

    /// The 1-based local index of position `pos` within its coordinate.
    pub fn rank_of(&self, pos: i64) -> i64 {
        self.ranks[pos as usize - 1] as i64
    }

    /// Number of positions mapped to `coord`.
    pub fn count(&self, coord: i64) -> usize {
        self.positions[coord as usize - 1].len()
    }

    /// The positions (ascending, 1-based) mapped to `coord`.
    pub fn positions_of(&self, coord: i64) -> &[i64] {
        &self.positions[coord as usize - 1]
    }
}

impl PartialEq for IndirectMap {
    fn eq(&self, other: &Self) -> bool {
        self.coords == other.coords && self.np() == other.np()
    }
}

impl Eq for IndirectMap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_follow_the_paper_example() {
        // §4.1.2: GENERAL_BLOCK(2,7,99) over 10 elements, 3 processors
        let g = GeneralBlock::from_bounds(&[2, 7, 99], 3, 10).unwrap();
        assert_eq!(g.np(), 3);
        assert_eq!((g.bound(0), g.bound(1), g.bound(2), g.bound(3)), (0, 2, 7, 10));
        let owners: Vec<i64> = (1..=10).map(|p| g.block_of(p)).collect();
        assert_eq!(owners, vec![1, 1, 2, 2, 2, 2, 2, 3, 3, 3]);
        assert_eq!((g.size(1), g.size(2), g.size(3)), (2, 5, 3));
    }

    #[test]
    fn bounds_allow_exactly_np_minus_one_entries() {
        let g = GeneralBlock::from_bounds(&[50], 2, 100).unwrap();
        assert_eq!(g.bound(1), 50);
        assert_eq!(g.bound(2), 100);
    }

    #[test]
    fn bad_bounds_rejected() {
        // fewer than NP−1 entries
        assert!(matches!(
            GeneralBlock::from_bounds(&[99], 4, 16),
            Err(HpfError::BadGeneralBlock(_))
        ));
        // decreasing
        assert!(matches!(
            GeneralBlock::from_bounds(&[7, 2], 3, 10),
            Err(HpfError::BadGeneralBlock(_))
        ));
        // negative
        assert!(matches!(
            GeneralBlock::from_bounds(&[-1, 5], 3, 10),
            Err(HpfError::BadGeneralBlock(_))
        ));
    }

    #[test]
    fn sizes_roundtrip_and_validate() {
        let g = GeneralBlock::from_sizes(&[0, 4, 6], 3, 10).unwrap();
        assert_eq!(g.block_of(1), 2);
        assert_eq!(g.block_of(5), 3);
        assert_eq!(g.size(1), 0);
        assert!(GeneralBlock::from_sizes(&[4, 6], 3, 10).is_err());
        assert!(GeneralBlock::from_sizes(&[4, 4, 4], 3, 10).is_err());
        assert!(GeneralBlock::from_sizes(&[-2, 6, 6], 3, 10).is_err());
    }

    #[test]
    fn balanced_is_within_greedy_bound_on_b01_weights() {
        // the b01_owner_lookup workload: weights (i % 97) + 1
        let n = 10_000usize;
        let np = 32usize;
        let weights: Vec<u64> = (0..n).map(|i| (i % 97 + 1) as u64).collect();
        let g = GeneralBlock::balanced(&weights, np).unwrap();
        let total: u64 = weights.iter().sum();
        let max_w = *weights.iter().max().unwrap();
        let ideal = total.div_ceil(np as u64);
        let bn = g.bottleneck(&weights);
        assert!(bn >= ideal, "bottleneck {bn} below ideal {ideal}");
        assert!(
            bn < ideal + max_w,
            "bottleneck {bn} exceeds ideal {ideal} + max weight {max_w}"
        );
        // partition covers exactly 1..=n
        assert_eq!(g.n(), n);
        let covered: usize = (1..=np).map(|j| g.size(j)).sum();
        assert_eq!(covered, n);
    }

    #[test]
    fn balanced_triangular_weights_beat_uniform_block() {
        // position i costs i: plain BLOCK gives the last processor ~n²/np
        // of the work; the balanced partition's bottleneck is near ideal
        let n = 4096usize;
        let np = 8usize;
        let weights: Vec<u64> = (1..=n as u64).collect();
        let g = GeneralBlock::balanced(&weights, np).unwrap();
        let total: u64 = weights.iter().sum();
        let ideal = total / np as u64;
        let uniform_last: u64 = weights[n - n / np..].iter().sum();
        assert!(g.bottleneck(&weights) < uniform_last);
        assert!(g.bottleneck(&weights) <= ideal + n as u64);
    }

    #[test]
    fn balanced_with_more_processors_than_elements() {
        let g = GeneralBlock::balanced(&[5, 5], 4).unwrap();
        assert_eq!(g.np(), 4);
        assert_eq!(g.n(), 2);
        let covered: usize = (1..=4).map(|j| g.size(j)).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn indirect_map_validation_and_ranks() {
        let m = IndirectMap::new(&[2, 1, 2, 2, 1], 2, 5).unwrap();
        assert_eq!(m.coord_of(1), 2);
        assert_eq!(m.coord_of(2), 1);
        assert_eq!(m.rank_of(1), 1);
        assert_eq!(m.rank_of(3), 2);
        assert_eq!(m.rank_of(4), 3);
        assert_eq!(m.count(1), 2);
        assert_eq!(m.positions_of(2), &[1, 3, 4]);
        assert!(IndirectMap::new(&[1, 2], 2, 3).is_err(), "wrong length");
        assert!(IndirectMap::new(&[1, 3], 2, 2).is_err(), "coord out of range");
        assert!(IndirectMap::new(&[0, 1], 2, 2).is_err(), "zero coord");
    }

    #[test]
    fn cyclic_zero_rejected_at_bind() {
        assert!(matches!(
            FormatSpec::Cyclic(0).bind(10, 2),
            Err(HpfError::BadCyclicArg(0))
        ));
        assert!(FormatSpec::Cyclic(1).bind(10, 2).is_ok());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FormatSpec::Cyclic(1).to_string(), "CYCLIC");
        assert_eq!(FormatSpec::Cyclic(3).to_string(), "CYCLIC(3)");
        assert_eq!(FormatSpec::Block.to_string(), "BLOCK");
        assert_eq!(FormatSpec::Collapsed.to_string(), ":");
        assert_eq!(FormatSpec::GeneralBlock(vec![2, 7]).to_string(), "GENERAL_BLOCK(2,7)");
    }
}
