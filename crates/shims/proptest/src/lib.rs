//! Offline shim for the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this crate implements
//! an API-compatible subset of proptest sufficient for this workspace's
//! test suites:
//!
//! * the [`proptest!`] macro (with `#![proptest_config]`, multiple tests
//!   per block, destructuring patterns, and `return Ok(())` early exits),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   and `boxed`,
//! * integer range strategies, tuple strategies, [`strategy::Just`],
//!   [`prop_oneof!`], `prop::collection::vec`, `prop::sample::select`,
//!   and string-from-regex strategies for the simple patterns used here,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: generation is derived from a
//! deterministic per-test seed (stable across runs — failures are always
//! reproducible) and failing cases are reported without shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `proptest::prelude`, mirroring the real crate: strategies, config,
/// macros, and the crate itself under the name `prop`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let __vals = (
                        $( $crate::strategy::Strategy::pick(&($strat), &mut __rng), )+
                    );
                    let __vals_dbg = format!("{:?}", __vals);
                    let ( $($pat,)+ ) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __cfg.cases, __e, __vals_dbg,
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fail the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: both sides equal `{:?}`", __l
        );
    }};
}

/// Skip the current case (counts as a pass) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Build a strategy choosing uniformly among the listed strategies (the
/// weighted form of real proptest is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
