//! B14 — exchange-backend comparison on the b13 replay workloads.
//!
//! Replays the same warm compiled plans through both [`ExchangeBackend`]s:
//! `shared_mem` (direct copies staged through persistent per-pair buffers,
//! zero-allocation warm) and `channels` (the true message-passing SPMD
//! executor — persistent per-processor workers, packed messages over
//! channels, disjoint ownership). The spread is the cost of *real*
//! message-passing discipline over the same frozen schedules: ownership
//! handoff, wire packing, and channel traffic per superstep, amortized by
//! the persistent worker fleet.
//!
//! [`ExchangeBackend`]: hpf_runtime::ExchangeBackend

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hpf_bench::replay::{
    arrays_1d, arrays_2d, cyclic_transpose, replay_elements, shift_1d, stencil_2d,
};
use hpf_core::FormatSpec;
use hpf_runtime::{ChannelsBackend, ExchangeBackend, ExecPlan, PlanWorkspace, SharedMemBackend};
use std::sync::Arc;
use std::time::Instant;

/// Headline numbers for the CI log: warm superstep throughput of both
/// backends on the block stencil, plus the wire volumes the backends
/// cross-check against the frozen analyses.
fn print_summary() {
    let smoke = std::env::args().any(|a| a == "--test")
        || std::env::var_os("CRITERION_SMOKE").is_some();
    let iters = if smoke { 3 } else { 200 };
    let n = 192i64;
    let mut arrays = arrays_2d(n, 2, &FormatSpec::Block);
    let stmt = stencil_2d(n, &arrays);
    let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
    let mut ws = PlanWorkspace::for_plan(&plan);
    let elems = replay_elements(&plan);

    let mut shared = SharedMemBackend::new();
    shared.step(&plan, &mut arrays, &mut ws).unwrap(); // warm
    let t = Instant::now();
    for _ in 0..iters {
        shared.step(&plan, &mut arrays, &mut ws).unwrap();
    }
    let shared_t = t.elapsed();

    let mut channels = ChannelsBackend::new();
    channels.step(&plan, &mut arrays, &mut ws).unwrap(); // warm (spawns the fleet)
    let t = Instant::now();
    for _ in 0..iters {
        channels.step(&plan, &mut arrays, &mut ws).unwrap();
    }
    let channels_t = t.elapsed();

    let rate = |d: std::time::Duration| {
        (elems as f64 * iters as f64) / d.as_secs_f64() / 1.0e6
    };
    println!(
        "b14 summary: 2-D block stencil n={n} — shared_mem {:.0} Melem/s, \
         channels {:.0} Melem/s, wire {} elements = {} B per superstep \
         over {} pair messages (matches frozen analysis: {})",
        rate(shared_t),
        rate(channels_t),
        plan.message_plan().wire_elements(),
        plan.message_plan().wire_bytes(),
        plan.message_plan().pairs().len(),
        plan.message_plan().matches_analysis(),
    );
}

fn bench(c: &mut Criterion) {
    print_summary();
    let mut g = c.benchmark_group("backend_exchange");
    g.sample_size(20);

    // workload set mirrors b13: 1-D shift, 2-D stencil, cyclic transpose
    let n1 = 65_536i64;
    let a1 = arrays_1d(n1, 8, &FormatSpec::Block);
    let s1 = shift_1d(n1, &a1);
    let n2 = 192i64;
    let a2 = arrays_2d(n2, 2, &FormatSpec::Block);
    let s2 = stencil_2d(n2, &a2);
    let (a3, s3) = cyclic_transpose(65_536, 8);

    for (tag, mut arrays, stmt) in
        [("shift_1d_block", a1, s1), ("stencil_2d_block", a2, s2), ("cyclic_transpose", a3, s3)]
    {
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::for_plan(&plan);
        let mut shared = SharedMemBackend::new();
        g.bench_function(BenchmarkId::new(tag, "shared_mem"), |b| {
            b.iter(|| {
                shared.step(&plan, &mut arrays, &mut ws).unwrap();
                black_box(());
            })
        });
        let mut channels = ChannelsBackend::new();
        channels.step(&plan, &mut arrays, &mut ws).unwrap(); // spawn the fleet untimed
        g.bench_function(BenchmarkId::new(tag, "channels"), |b| {
            b.iter(|| {
                channels.step(&plan, &mut arrays, &mut ws).unwrap();
                black_box(());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
