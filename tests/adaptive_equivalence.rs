//! Adaptive-redistribution equivalence suite: a [`Session`] running
//! under an [`AdaptPolicy`] — observing imbalance, pricing candidate
//! redistributions, and performing live remaps mid-trajectory — must
//! produce *exactly* the same values as a static session and as the
//! dense naive oracle, timestep for timestep.
//!
//! This is the safety half of the self-adaptive controller's contract:
//! adaptation may only ever change *where* elements live and *what the
//! timestep costs*, never a single bit of the result. The property runs
//! over random domain sizes, processor counts, hot-band placements,
//! upwind reaches, and combine operators, with the hair-trigger
//! [`AdaptPolicy::aggressive`] so the controller prices (and often
//! takes) remaps constantly; the deterministic case pins that the
//! canonical hotspot workload really does remap — onto the load-fitted
//! `GENERAL_BLOCK` — while staying bit-identical to the oracle.

use hpf::prelude::*;
use proptest::prelude::*;

/// A two-statement iterated program whose work is confined to the hot
/// band `lo..=hi` of a BLOCK-distributed domain: an upwind gather that
/// reaches `reach` cells back (wide reaches price CYCLIC re-blocking
/// out, so the controller's load-fitted `GENERAL_BLOCK` wins), then a
/// copy-back so timesteps compound and any divergence is permanent.
fn hot_program(
    n: i64,
    np: usize,
    lo: i64,
    hi: i64,
    reach: i64,
    combine_k: u8,
) -> (Program, Vec<Assignment>) {
    let mut ds = DataSpace::new(np);
    let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    for id in [a, b] {
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.set_dynamic(id);
    }
    let arrays = vec![
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| (i[0] * 3 - 5) as f64),
        DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] % 11) as f64),
    ];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
    let here = Section::from_triplets(vec![span(lo, hi)]);
    let up = Section::from_triplets(vec![span(lo - reach, hi - reach)]);
    let terms = vec![Term::new(0, up), Term::new(1, here.clone())];
    let combine = match combine_k % 3 {
        0 => Combine::Sum,
        1 => Combine::Average,
        _ => Combine::Max,
    };
    let sweep = Assignment::new(0, here.clone(), terms, combine, &doms).unwrap();
    let copy_back =
        Assignment::new(1, here.clone(), vec![Term::new(0, here)], Combine::Copy, &doms)
            .unwrap();
    let stmts = vec![sweep, copy_back];
    let mut prog = Program::new(arrays);
    for s in &stmts {
        prog.push(s.clone()).unwrap();
    }
    (prog, stmts)
}

/// Drive an adaptive session, a static session, and the dense oracle in
/// lockstep and require bit-for-bit agreement after every timestep —
/// remaps and all.
fn assert_adaptive_equivalent(
    n: i64,
    np: usize,
    lo: i64,
    hi: i64,
    reach: i64,
    combine_k: u8,
    steps: u64,
) -> Result<AdaptReport, TestCaseError> {
    let (prog, stmts) = hot_program(n, np, lo, hi, reach, combine_k);
    let domains: Vec<IndexDomain> =
        prog.arrays.iter().map(|a| a.domain().clone()).collect();
    let mut dense: Vec<Vec<f64>> = prog.arrays.iter().map(DistArray::to_dense).collect();

    let mut adaptive = Session::new(prog).adapt(AdaptPolicy::aggressive());
    let (statik_prog, _) = hot_program(n, np, lo, hi, reach, combine_k);
    let mut statik = Session::new(statik_prog);

    for t in 0..steps {
        adaptive.run(1).unwrap();
        statik.run(1).unwrap();
        for s in &stmts {
            apply_dense(&mut dense, &domains, s);
        }
        for (k, want) in dense.iter().enumerate() {
            let name = adaptive.program().arrays[k].name().to_string();
            prop_assert_eq!(
                &adaptive.program().arrays[k].to_dense(),
                want,
                "adaptive {} ≡ oracle at t={}",
                name,
                t
            );
            prop_assert_eq!(
                &statik.program().arrays[k].to_dense(),
                want,
                "static {} ≡ oracle at t={}",
                name,
                t
            );
        }
    }
    Ok(adaptive.adapt_report().expect("adapt configured").clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random hot bands, reaches, combine operators, and processor
    /// counts under a hair-trigger policy: whatever the controller does
    /// (remap, refuse, re-fit), adaptive ≡ static ≡ dense oracle after
    /// every single timestep.
    #[test]
    fn adaptive_matches_static_and_oracle(
        n in 96i64..256,
        np in 2usize..5,
        reach in 0i64..32,
        lo_seed in 0i64..1000,
        hi_seed in 0i64..1000,
        combine_k in 0u8..3,
        steps in 1u64..5,
    ) {
        let lo = reach + 1 + lo_seed % (n / 2);
        let hi = (lo + 1 + hi_seed % (n / 2)).min(n);
        let report = assert_adaptive_equivalent(n, np, lo, hi, reach, combine_k, steps)?;
        prop_assert_eq!(report.steps_observed, steps);
    }
}

/// Deterministic acceptance case: the canonical 65 536-element hotspot
/// (work confined to the first quarter, 48-cell upwind gather) must
/// actually trigger a live remap onto the load-fitted `GENERAL_BLOCK`
/// — and stay bit-identical to the static run and the dense oracle
/// through the remap and the warm steps after it.
#[test]
fn hotspot_remaps_and_stays_bit_identical() {
    let (n, np) = (65_536i64, 4usize);
    let report =
        assert_adaptive_equivalent(n, np, 50, n / 4, 48, 0, 8).unwrap();
    assert!(
        report.remaps >= 1,
        "the hotspot must trigger a live remap: {report:?}"
    );
    assert!(
        report.events[0].candidate.starts_with("GENERAL_BLOCK"),
        "wide upwind reach prices CYCLIC out: {}",
        report.events[0].candidate
    );
    assert!(
        report.events[0].remap_elements > 0,
        "elements must physically move"
    );
}
