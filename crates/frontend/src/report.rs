use crate::error::FrontendError;
use crate::token::Span;
use hpf_core::{ArrayId, CallReport};
use hpf_index::{Idx, Section};
use std::fmt;

/// One elaboration event — the narrative of what the directives did.
#[derive(Debug, Clone)]
pub enum Event {
    /// A processor arrangement was declared.
    Processors {
        /// Arrangement name.
        name: String,
        /// Shape rendering (empty for scalar arrangements).
        shape: String,
    },
    /// An array was declared.
    Declared {
        /// Array name.
        name: String,
        /// Domain rendering (`<deferred>` for unallocated allocatables).
        domain: String,
        /// `ALLOCATABLE` attribute.
        allocatable: bool,
    },
    /// A `DISTRIBUTE` directive was applied (or recorded, for
    /// allocatables).
    Distributed {
        /// Distributee.
        name: String,
        /// Directive rendering.
        spec: String,
    },
    /// An `ALIGN` directive was applied (or recorded).
    Aligned {
        /// Alignee.
        alignee: String,
        /// Base.
        base: String,
    },
    /// `DYNAMIC` was granted.
    Dynamic(String),
    /// An `ALLOCATE` executed.
    Allocated {
        /// Array.
        name: String,
        /// The allocated domain.
        domain: String,
    },
    /// A `DEALLOCATE` executed.
    Deallocated {
        /// Array.
        name: String,
        /// Former alignees promoted to primaries (§6).
        promoted: Vec<String>,
    },
    /// A `REDISTRIBUTE` executed.
    Redistributed {
        /// Array.
        name: String,
        /// Elements whose owner changed.
        moved: usize,
    },
    /// A `REALIGN` executed.
    Realigned {
        /// Alignee.
        alignee: String,
        /// New base.
        base: String,
        /// Elements whose owner changed.
        moved: usize,
    },
    /// A `READ` bound an input value.
    Read {
        /// Name.
        name: String,
        /// Value.
        value: i64,
    },
    /// A `CALL` completed, with its §7 remap accounting.
    Call(CallReport),
    /// An array assignment was recognized (to be executed by the runtime).
    Assignment(AssignEvent),
    /// A scalar-valued fill was evaluated (to initialize runtime storage).
    Fill(FillEvent),
}

/// An array-assignment statement in resolved form: array ids plus concrete
/// sections, ready to hand to `hpf-runtime`.
#[derive(Debug, Clone)]
pub struct AssignEvent {
    /// LHS array name.
    pub lhs_name: String,
    /// LHS array id in the elaborated space.
    pub lhs: ArrayId,
    /// LHS section.
    pub lhs_section: Section,
    /// RHS terms: `(name, id, section)`.
    pub terms: Vec<(String, ArrayId, Section)>,
    /// Source span of the statement (for lowering-time diagnostics).
    pub span: Span,
}

/// A fill statement (`A = expr` or `FORALL (...) A(...) = expr`) in
/// evaluated form: the exact element values, ready to initialize a
/// `DistArray`. Fills run once, before the timestep loop.
#[derive(Debug, Clone)]
pub struct FillEvent {
    /// Target array name.
    pub name: String,
    /// Target array id in the elaborated space.
    pub array: ArrayId,
    /// `(index, value)` pairs, in evaluation order.
    pub elements: Vec<(Idx, f64)>,
    /// Source span of the statement.
    pub span: Span,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Processors { name, shape } => write!(f, "PROCESSORS {name}{shape}"),
            Event::Declared { name, domain, allocatable } => {
                write!(f, "declare {name}{domain}")?;
                if *allocatable {
                    write!(f, " ALLOCATABLE")?;
                }
                Ok(())
            }
            Event::Distributed { name, spec } => write!(f, "DISTRIBUTE {name} {spec}"),
            Event::Aligned { alignee, base } => write!(f, "ALIGN {alignee} WITH {base}"),
            Event::Dynamic(n) => write!(f, "DYNAMIC {n}"),
            Event::Allocated { name, domain } => write!(f, "ALLOCATE {name}{domain}"),
            Event::Deallocated { name, promoted } => {
                write!(f, "DEALLOCATE {name}")?;
                if !promoted.is_empty() {
                    write!(f, " (promoted to primary: {})", promoted.join(", "))?;
                }
                Ok(())
            }
            Event::Redistributed { name, moved } => {
                write!(f, "REDISTRIBUTE {name} ({moved} elements moved)")
            }
            Event::Realigned { alignee, base, moved } => {
                write!(f, "REALIGN {alignee} WITH {base} ({moved} elements moved)")
            }
            Event::Read { name, value } => write!(f, "READ {name} = {value}"),
            Event::Call(r) => {
                write!(f, "CALL {} ({} elements moved across boundary)", r.procedure, r.total_volume())
            }
            Event::Assignment(a) => {
                write!(f, "{}{} = ", a.lhs_name, a.lhs_section)?;
                for (k, (n, _, s)) in a.terms.iter().enumerate() {
                    if k > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{n}{s}")?;
                }
                Ok(())
            }
            Event::Fill(fl) => {
                write!(f, "fill {} ({} elements)", fl.name, fl.elements.len())
            }
        }
    }
}

/// The full elaboration narrative.
#[derive(Debug, Clone, Default)]
pub struct ElaborationReport {
    /// Events in program order.
    pub events: Vec<Event>,
}

impl ElaborationReport {
    /// All recognized array assignments, in order.
    pub fn assignments(&self) -> Vec<&AssignEvent> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Assignment(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// All evaluated fills, in order.
    pub fn fills(&self) -> Vec<&FillEvent> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Fill(fl) => Some(fl),
                _ => None,
            })
            .collect()
    }

    /// All completed calls.
    pub fn calls(&self) -> Vec<&CallReport> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Call(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Total elements moved by dynamic remapping (REDISTRIBUTE + REALIGN +
    /// procedure boundaries).
    pub fn total_remap_volume(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                Event::Redistributed { moved, .. } | Event::Realigned { moved, .. } => *moved,
                Event::Call(r) => r.total_volume(),
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for ElaborationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------ diagnostics

/// A frontend problem with the source span it was detected at.
///
/// The recovering entry points ([`crate::lex_recover`],
/// [`crate::parse_recover`], [`crate::Elaborator::run_recover`])
/// accumulate these instead of failing on the first error, so a malformed
/// program produces one batch of readable reports. Render a batch against
/// the source with [`render_diagnostics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDiagnostic {
    /// What went wrong.
    pub error: FrontendError,
    /// Where.
    pub span: Span,
}

impl SourceDiagnostic {
    /// Pair an error with its span.
    pub fn new(error: FrontendError, span: Span) -> Self {
        SourceDiagnostic { error, span }
    }

    /// The error message without any location prefix (the span carries
    /// the location).
    pub fn message(&self) -> String {
        let s = self.error.to_string();
        // FrontendError prefixes some variants with "line N: " — the span
        // already says where, so strip the redundant prefix for rendering.
        match s.split_once(": ") {
            Some((head, rest)) if head.starts_with("line ") => rest.to_string(),
            _ => s,
        }
    }
}

impl fmt::Display for SourceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message())
    }
}

/// Render a batch of diagnostics against the source text, `rustc`-style:
/// each diagnostic shows its message, position, the offending source
/// line, and a caret marker under the span.
///
/// ```text
/// error: expected `)`, found `,`
///   --> 3:19
///    |
///  3 | !HPF$ DISTRIBUTE A,BLOCK)
///    |                   ^
/// ```
pub fn render_diagnostics(src: &str, diags: &[SourceDiagnostic]) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("error: {}\n", d.message()));
        out.push_str(&format!("  --> {}\n", d.span));
        if d.span.line >= 1 && d.span.line <= lines.len() {
            let text = lines[d.span.line - 1];
            let num = d.span.line.to_string();
            let pad = " ".repeat(num.len());
            out.push_str(&format!(" {pad} |\n"));
            out.push_str(&format!(" {num} | {text}\n"));
            let underline_at = d.span.col.saturating_sub(1).min(text.len());
            let carets = "^".repeat(d.span.len.max(1));
            out.push_str(&format!(" {pad} | {}{carets}\n", " ".repeat(underline_at)));
        }
    }
    if !diags.is_empty() {
        out.push_str(&format!(
            "{} error{} found\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn renderer_underlines_the_span() {
        let src = "REAL A(4)\nREAL B(]";
        let diags = vec![SourceDiagnostic::new(
            FrontendError::Parse { line: 2, what: "expected expression, found `]`".into() },
            Span::new(2, 8, 1),
        )];
        let r = render_diagnostics(src, &diags);
        assert!(r.contains("error: expected expression"), "{r}");
        assert!(r.contains("--> 2:8"), "{r}");
        assert!(r.contains("2 | REAL B(]"), "{r}");
        assert!(r.contains("|        ^"), "{r}");
        assert!(r.contains("1 error found"), "{r}");
    }

    #[test]
    fn message_strips_line_prefix() {
        let d = SourceDiagnostic::new(
            FrontendError::Parse { line: 7, what: "bad thing".into() },
            Span::new(7, 3, 2),
        );
        assert_eq!(d.message(), "bad thing");
        assert_eq!(d.to_string(), "7:3: bad thing");
    }
}
