//! Golden tests for the recovering frontend: fixed malformed sources must
//! produce exactly the expected diagnostics — count, spans, and resync
//! behavior — and the renderer must show them all against the source.

use hpf_frontend::{lex_recover, parse_recover, render_diagnostics, Elaborator, Lowerer};

/// Three distinct syntax errors in one file: all reported, each with the
/// right line and column, and parsing resumes at every statement boundary
/// (the valid declarations around them still land in the AST).
#[test]
fn three_syntax_errors_one_pass() {
    let src = "\
      PROGRAM BAD
      REAL A(8)
      REAL B(8
!HPF$ DISTRIBUTE A(BLOCK
      REAL C(8)
      PARAMETER (X = )
      A(1:4) = C(1:4)
      END
";
    let (file, diags) = parse_recover(src);
    assert_eq!(diags.len(), 3, "{diags:?}");
    let lines: Vec<usize> = diags.iter().map(|d| d.span.line).collect();
    assert_eq!(lines, vec![3, 4, 6]);

    // resync: the statements around the errors survived
    assert_eq!(file.main.name, "BAD");
    let parsed_lines: Vec<usize> = file.main.stmts.iter().map(|s| s.line).collect();
    assert!(parsed_lines.contains(&2), "A's declaration survived: {parsed_lines:?}");
    assert!(parsed_lines.contains(&5), "C's declaration survived: {parsed_lines:?}");
    assert!(parsed_lines.contains(&7), "the assignment survived: {parsed_lines:?}");

    let rendered = render_diagnostics(src, &diags);
    assert!(rendered.contains("3 errors found"), "{rendered}");
    assert!(rendered.contains("--> 3:"), "{rendered}");
    assert!(rendered.contains("--> 4:"), "{rendered}");
    assert!(rendered.contains("--> 6:"), "{rendered}");
    assert!(rendered.contains("REAL B(8"), "{rendered}");
}

/// Lexical garbage does not stop the lexer: the bad character becomes a
/// diagnostic with an exact column, and the rest of the line still
/// tokenizes (so the parser sees a complete statement).
#[test]
fn lexer_recovers_mid_line() {
    let src = "      REAL A(8) ; REAL B(4)\n";
    let (toks, diags) = lex_recover(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!((diags[0].span.line, diags[0].span.col), (1, 17));
    // both declarations' tokens are present despite the `;`
    let idents: Vec<String> = toks
        .iter()
        .filter_map(|t| match &t.tok {
            hpf_frontend::Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(idents, vec!["REAL", "A", "REAL", "B"]);
}

/// The TEMPLATE rejection (the paper's thesis as a diagnostic) points at
/// the directive keyword and does not end the batch: errors after it are
/// still collected.
#[test]
fn template_rejection_keeps_going() {
    let src = "\
      REAL A(8)
!HPF$ TEMPLATE T(100)
!HPF$ DISTRIBUTE Q(BLOCK)
      END
";
    let elab = Elaborator::new(4);
    let (_, diags) = elab.run_recover(src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!((diags[0].span.line, diags[0].span.col), (2, 7));
    assert!(diags[0].to_string().contains("TEMPLATE"), "{}", diags[0]);
    assert_eq!(diags[1].span.line, 3);
    assert!(diags[1].to_string().contains("`Q` used before declaration"), "{}", diags[1]);
}

/// Semantic and lowering diagnostics accumulate across layers: one run
/// reports an undeclared array, a non-conforming assignment, and a
/// late fill — each anchored to its statement's span.
#[test]
fn cross_layer_accumulation() {
    let src = "\
      PROGRAM MIX
      PARAMETER (N = 8)
      REAL A(N), B(N)
!HPF$ DISTRIBUTE A(BLOCK)
      FORALL (I = 1:N) B(I) = I
      A(1:4) = B(1:6)
      A(1:N) = B(1:N)
      B = 9
      END
";
    let (elab, mut diags) = Elaborator::new(4).run_recover(src);
    assert!(diags.is_empty(), "frontend is clean: {diags:?}");
    let (lowered, lower_diags) = Lowerer::lower(&elab);
    diags.extend(lower_diags);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].span.line, 6);
    assert!(diags[0].to_string().contains("cannot lower assignment"), "{}", diags[0]);
    assert_eq!(diags[1].span.line, 8);
    assert!(diags[1].to_string().contains("fill of `B` after"), "{}", diags[1]);
    // the valid statement still lowered and the program is runnable
    assert_eq!(lowered.statements.len(), 1);
}

/// The fail-fast wrappers stay faithful: `run` returns exactly the first
/// accumulated diagnostic's error, so legacy callers see the old behavior.
#[test]
fn fail_fast_returns_first_diagnostic() {
    let src = "\
      REAL A(8
      REAL B(4)
!HPF$ DISTRIBUTE Q(BLOCK)
";
    let err = Elaborator::new(4).run(src).expect_err("first error");
    let (_, diags) = Elaborator::new(4).run_recover(src);
    assert!(diags.len() >= 2, "{diags:?}");
    assert_eq!(err.to_string(), diags[0].error.to_string());
}
