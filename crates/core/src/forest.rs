use crate::align::func::AlignmentFn;
use crate::align::reduce::reduce;
use crate::align::spec::AlignSpec;
use crate::dist::dist::{DistributeSpec, Distribution};
use crate::mapping::EffectiveDist;
use crate::procset::ProcSet;
use crate::HpfError;
use hpf_index::{Idx, IndexDomain, Region};
use hpf_procs::{ProcId, ProcSpace, ProcTarget};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an array within a [`DataSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub usize);

/// The mapping state of an array in the alignment forest (§2.4): the root
/// of a tree is **primary** (carries a direct distribution), everything
/// else is **secondary** (carries an alignment to its primary).
#[derive(Debug, Clone)]
pub enum MappingState {
    /// Not yet created/allocated, or awaiting its mapping.
    Unmapped,
    /// A primary array with its effective distribution.
    Primary(Arc<EffectiveDist>),
    /// A secondary array: aligned to `base` with alignment function `align`.
    Secondary {
        /// The alignment base (always a primary array).
        base: ArrayId,
        /// The alignment function from this array to the base.
        align: Arc<AlignmentFn>,
    },
}

/// The specification-part mapping attribute of an allocatable array (§6):
/// "the associated attributes are propagated to each associated ALLOCATE
/// statement".
#[derive(Debug, Clone)]
pub enum SpecMapping {
    /// A `DISTRIBUTE` directive to re-bind at every allocation.
    Dist(DistributeSpec),
    /// An `ALIGN` directive to re-reduce at every allocation.
    Align {
        /// The alignment base.
        base: ArrayId,
        /// The directive body.
        spec: AlignSpec,
    },
}

#[derive(Debug, Clone)]
struct ArrayRecord {
    name: String,
    declared_rank: usize,
    allocatable: bool,
    dynamic: bool,
    domain: Option<IndexDomain>,
    mapping: MappingState,
    explicit: bool,
    spec: Option<SpecMapping>,
    children: Vec<ArrayId>,
}

impl ArrayRecord {
    fn is_alive(&self) -> bool {
        self.domain.is_some()
    }
}

/// The data space `A` of §2.4: "all arrays that are accessible in a given
/// scope, and have been created, at a given time during the execution of a
/// program unit", organized as an **alignment forest** whose trees have
/// height ≤ 1.
///
/// All forest mutations (`align`, `distribute`, `redistribute`, `realign`,
/// `allocate`, `deallocate`) enforce the §2.4 constraints and the `DYNAMIC`
/// rule, returning [`HpfError`] with the paper-rule reference on violation.
#[derive(Debug, Clone)]
pub struct DataSpace {
    procs: ProcSpace,
    arrays: Vec<ArrayRecord>,
    by_name: HashMap<String, ArrayId>,
}

/// Name of the implicit abstract-processor arrangement every
/// [`DataSpace`] declares (§3's language-defined AP).
pub const AP_NAME: &str = "__AP";

impl DataSpace {
    /// Create a data space over `np` abstract processors. The implicit
    /// 1-D arrangement [`AP_NAME`] covering all of AP is pre-declared.
    pub fn new(np: usize) -> Self {
        let mut procs = ProcSpace::new(np);
        procs
            .declare_array(AP_NAME, IndexDomain::of_shape(&[np]).expect("rank 1"))
            .expect("fresh space");
        DataSpace { procs, arrays: Vec::new(), by_name: HashMap::new() }
    }

    /// Create a data space sharing an existing processor configuration
    /// (used by procedure-local scopes, §7).
    pub fn with_procs(procs: ProcSpace) -> Self {
        let mut procs = procs;
        if procs.by_name(AP_NAME).is_err() {
            let np = procs.ap_size();
            procs
                .declare_array(AP_NAME, IndexDomain::of_shape(&[np]).expect("rank 1"))
                .expect("AP fits by construction");
        }
        DataSpace { procs, arrays: Vec::new(), by_name: HashMap::new() }
    }

    /// The processor space.
    pub fn procs(&self) -> &ProcSpace {
        &self.procs
    }

    /// Declare a processor arrangement (the `PROCESSORS` directive, §3).
    pub fn declare_processors(
        &mut self,
        name: &str,
        domain: IndexDomain,
    ) -> Result<(), HpfError> {
        self.procs.declare_array(name, domain)?;
        Ok(())
    }

    /// Declare a conceptually scalar processor arrangement (§3), with data
    /// residing on the control processor.
    pub fn declare_scalar_processors(&mut self, name: &str) -> Result<(), HpfError> {
        self.procs
            .declare_scalar(name, hpf_procs::ScalarPolicy::ControlProcessor)?;
        Ok(())
    }

    /// Declare a processor arrangement at an explicit equivalence offset.
    pub fn declare_processors_at(
        &mut self,
        name: &str,
        domain: IndexDomain,
        offset: usize,
    ) -> Result<(), HpfError> {
        self.procs.declare_array_at(name, domain, offset)?;
        Ok(())
    }

    /// Number of abstract processors.
    pub fn np(&self) -> usize {
        self.procs.ap_size()
    }

    // ---------------------------------------------------------------- decl

    /// Declare a static (non-allocatable) array. It is created immediately
    /// and receives the implicit compiler distribution until a directive
    /// maps it.
    pub fn declare(&mut self, name: &str, domain: IndexDomain) -> Result<ArrayId, HpfError> {
        let id = self.insert(name, domain.rank(), false)?;
        self.arrays[id.0].domain = Some(domain.clone());
        let dist = self.implicit_distribution(name, &domain)?;
        self.arrays[id.0].mapping = MappingState::Primary(Arc::new(dist));
        Ok(id)
    }

    /// Declare an allocatable array of the given rank (not yet created).
    pub fn declare_allocatable(
        &mut self,
        name: &str,
        rank: usize,
    ) -> Result<ArrayId, HpfError> {
        self.insert(name, rank, true)
    }

    fn insert(&mut self, name: &str, rank: usize, allocatable: bool) -> Result<ArrayId, HpfError> {
        if self.by_name.contains_key(name) {
            return Err(HpfError::DuplicateArray(name.to_string()));
        }
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArrayRecord {
            name: name.to_string(),
            declared_rank: rank,
            allocatable,
            dynamic: false,
            domain: None,
            mapping: MappingState::Unmapped,
            explicit: false,
            spec: None,
            children: Vec::new(),
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Grant the `DYNAMIC` attribute (required by `REDISTRIBUTE`/`REALIGN`).
    pub fn set_dynamic(&mut self, id: ArrayId) {
        self.arrays[id.0].dynamic = true;
    }

    // ------------------------------------------------------------- lookups

    /// Look up an array by name.
    pub fn by_name(&self, name: &str) -> Result<ArrayId, HpfError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| HpfError::UnknownArray(name.to_string()))
    }

    /// Array name.
    pub fn name(&self, id: ArrayId) -> &str {
        &self.arrays[id.0].name
    }

    /// Current index domain (None while an allocatable is unallocated).
    pub fn domain(&self, id: ArrayId) -> Option<&IndexDomain> {
        self.arrays[id.0].domain.as_ref()
    }

    /// True iff the array is currently created (§2.4's "have been created").
    pub fn is_alive(&self, id: ArrayId) -> bool {
        self.arrays[id.0].is_alive()
    }

    /// True iff declared `ALLOCATABLE`.
    pub fn is_allocatable(&self, id: ArrayId) -> bool {
        self.arrays[id.0].allocatable
    }

    /// True iff declared `DYNAMIC`.
    pub fn is_dynamic(&self, id: ArrayId) -> bool {
        self.arrays[id.0].dynamic
    }

    /// True iff the array is a primary array (root of its alignment tree).
    pub fn is_primary(&self, id: ArrayId) -> bool {
        matches!(self.arrays[id.0].mapping, MappingState::Primary(_))
    }

    /// The alignment base, if the array is secondary.
    pub fn base_of(&self, id: ArrayId) -> Option<ArrayId> {
        match self.arrays[id.0].mapping {
            MappingState::Secondary { base, .. } => Some(base),
            _ => None,
        }
    }

    /// The alignment function, if the array is secondary.
    pub fn alignment_of(&self, id: ArrayId) -> Option<Arc<AlignmentFn>> {
        match &self.arrays[id.0].mapping {
            MappingState::Secondary { align, .. } => Some(align.clone()),
            _ => None,
        }
    }

    /// Arrays aligned to this one (its children in the alignment tree).
    pub fn children(&self, id: ArrayId) -> &[ArrayId] {
        &self.arrays[id.0].children
    }

    /// All declared arrays.
    pub fn all_arrays(&self) -> impl Iterator<Item = ArrayId> + '_ {
        (0..self.arrays.len()).map(ArrayId)
    }

    // ------------------------------------------------------ spec directives

    /// `!HPF$ DISTRIBUTE array(formats) [TO target]` in the specification
    /// part (§4.1).
    pub fn distribute(&mut self, id: ArrayId, spec: &DistributeSpec) -> Result<(), HpfError> {
        let rec = &self.arrays[id.0];
        if matches!(rec.mapping, MappingState::Secondary { .. }) {
            return Err(HpfError::NotPrimary(rec.name.clone()));
        }
        if rec.explicit {
            return Err(HpfError::AlreadyMapped(rec.name.clone()));
        }
        if rec.allocatable && !rec.is_alive() {
            // §6: propagate to every ALLOCATE
            self.arrays[id.0].spec = Some(SpecMapping::Dist(spec.clone()));
            self.arrays[id.0].explicit = true;
            return Ok(());
        }
        let name = rec.name.clone();
        let domain = rec.domain.clone().ok_or_else(|| HpfError::NotAllocated(name.clone()))?;
        let dist = self.bind_distribution(&name, &domain, spec)?;
        let rec = &mut self.arrays[id.0];
        rec.mapping = MappingState::Primary(Arc::new(EffectiveDist::direct(dist)));
        rec.explicit = true;
        Ok(())
    }

    /// `!HPF$ ALIGN alignee(...) WITH base(...)` in the specification part
    /// (§5). Enforces both §2.4 forest constraints.
    pub fn align(&mut self, alignee: ArrayId, base: ArrayId, spec: &AlignSpec) -> Result<(), HpfError> {
        if alignee == base {
            return Err(HpfError::NotConforming(format!(
                "array `{}` cannot be aligned to itself",
                self.name(alignee)
            )));
        }
        let arec = &self.arrays[alignee.0];
        let brec = &self.arrays[base.0];
        if matches!(arec.mapping, MappingState::Secondary { .. }) {
            return Err(HpfError::AlreadyAligned(arec.name.clone()));
        }
        if arec.explicit {
            return Err(HpfError::AlreadyMapped(arec.name.clone()));
        }
        if !arec.children.is_empty() {
            return Err(HpfError::AligneeHasChildren(arec.name.clone()));
        }
        if matches!(brec.mapping, MappingState::Secondary { .. }) {
            return Err(HpfError::BaseIsSecondary(brec.name.clone()));
        }
        if brec.allocatable && !arec.allocatable {
            return Err(HpfError::StaticAlignedToAllocatable {
                alignee: arec.name.clone(),
                base: brec.name.clone(),
            });
        }
        if arec.allocatable && !arec.is_alive() {
            self.arrays[alignee.0].spec = Some(SpecMapping::Align { base, spec: spec.clone() });
            self.arrays[alignee.0].explicit = true;
            return Ok(());
        }
        // both alive: reduce now
        let adom = arec.domain.clone().ok_or_else(|| HpfError::NotAllocated(arec.name.clone()))?;
        let bdom = brec.domain.clone().ok_or_else(|| HpfError::NotAllocated(brec.name.clone()))?;
        let f = reduce(spec, &adom, &bdom)?;
        let rec = &mut self.arrays[alignee.0];
        rec.mapping = MappingState::Secondary { base, align: Arc::new(f) };
        rec.explicit = true;
        self.arrays[base.0].children.push(alignee);
        Ok(())
    }

    // ------------------------------------------------------ executable part

    /// `!HPF$ REDISTRIBUTE array(formats) [TO target]` (§4.2): dynamically
    /// change the distribution of a `DYNAMIC` array.
    ///
    /// If the array is secondary it is first disconnected and becomes the
    /// primary of a new degenerate tree; arrays aligned *to* it keep their
    /// alignment relation invariant (their effective distribution follows
    /// automatically through `CONSTRUCT`).
    pub fn redistribute(&mut self, id: ArrayId, spec: &DistributeSpec) -> Result<(), HpfError> {
        let rec = &self.arrays[id.0];
        if !rec.dynamic {
            return Err(HpfError::NotDynamic(rec.name.clone()));
        }
        if !rec.is_alive() {
            return Err(HpfError::NotAllocated(rec.name.clone()));
        }
        let name = rec.name.clone();
        let domain = rec.domain.clone().expect("alive");
        // bind first — a failing directive must leave the forest untouched
        let dist = self.bind_distribution(&name, &domain, spec)?;
        // §4.2: a secondary distributee is disconnected first
        self.disconnect_from_base(id);
        self.arrays[id.0].mapping =
            MappingState::Primary(Arc::new(EffectiveDist::direct(dist)));
        Ok(())
    }

    /// `!HPF$ REALIGN alignee(...) WITH base(...)` (§5.2), following the
    /// paper's three steps:
    ///
    /// 1. if the alignee roots a non-degenerate tree, its secondaries are
    ///    disconnected and become primaries *with their current
    ///    distribution*; if it is secondary, it is disconnected;
    /// 2. the alignee becomes a new secondary of the base;
    /// 3. its distribution is `CONSTRUCT(α, δ_base)` (maintained lazily).
    pub fn realign(&mut self, alignee: ArrayId, base: ArrayId, spec: &AlignSpec) -> Result<(), HpfError> {
        if alignee == base {
            return Err(HpfError::NotConforming(format!(
                "array `{}` cannot be realigned to itself",
                self.name(alignee)
            )));
        }
        let arec = &self.arrays[alignee.0];
        if !arec.dynamic {
            return Err(HpfError::NotDynamic(arec.name.clone()));
        }
        if !arec.is_alive() {
            return Err(HpfError::NotAllocated(arec.name.clone()));
        }
        if !self.arrays[base.0].is_alive() {
            return Err(HpfError::NotAllocated(self.arrays[base.0].name.clone()));
        }
        // validate everything before any forest mutation, so a failing
        // directive leaves the forest untouched. The base must satisfy
        // §2.4 constraint 1 *after* step 1 — which only changes its status
        // when the base is currently aligned to the alignee itself (it
        // gets promoted in step 1a).
        match self.arrays[base.0].mapping {
            MappingState::Secondary { base: bb, .. } if bb != alignee => {
                return Err(HpfError::BaseIsSecondary(self.arrays[base.0].name.clone()))
            }
            _ => {}
        }
        let adom = self.arrays[alignee.0].domain.clone().expect("alive");
        let bdom = self.arrays[base.0].domain.clone().expect("alive");
        let f = reduce(spec, &adom, &bdom)?;
        // step 1a: disconnect our children, freezing their distributions
        let children = std::mem::take(&mut self.arrays[alignee.0].children);
        for c in children {
            let frozen = self.effective(c)?;
            self.arrays[c.0].mapping = MappingState::Primary(frozen);
        }
        // step 1b: disconnect ourselves from any old base
        self.disconnect_from_base(alignee);
        // step 2: connect to the new base
        self.arrays[alignee.0].mapping =
            MappingState::Secondary { base, align: Arc::new(f) };
        self.arrays[base.0].children.push(alignee);
        Ok(())
    }

    /// `ALLOCATE(array(shape))` (§6): create the array and apply its
    /// propagated specification-part mapping (or the implicit one).
    pub fn allocate(&mut self, id: ArrayId, domain: IndexDomain) -> Result<(), HpfError> {
        let rec = &self.arrays[id.0];
        if !rec.allocatable {
            return Err(HpfError::NotAllocatable(rec.name.clone()));
        }
        if rec.is_alive() {
            return Err(HpfError::AlreadyAllocated(rec.name.clone()));
        }
        if domain.rank() != rec.declared_rank {
            return Err(HpfError::AllocRank {
                array: rec.name.clone(),
                declared: rec.declared_rank,
                given: domain.rank(),
            });
        }
        let name = rec.name.clone();
        self.arrays[id.0].domain = Some(domain.clone());
        match self.arrays[id.0].spec.clone() {
            None => {
                let dist = self.implicit_distribution(&name, &domain)?;
                self.arrays[id.0].mapping = MappingState::Primary(Arc::new(dist));
            }
            Some(SpecMapping::Dist(spec)) => {
                let dist = self.bind_distribution(&name, &domain, &spec)?;
                self.arrays[id.0].mapping =
                    MappingState::Primary(Arc::new(EffectiveDist::direct(dist)));
            }
            Some(SpecMapping::Align { base, spec }) => {
                let brec = &self.arrays[base.0];
                let bname = brec.name.clone();
                if !brec.is_alive() {
                    self.arrays[id.0].domain = None;
                    return Err(HpfError::NotAllocated(bname));
                }
                if matches!(brec.mapping, MappingState::Secondary { .. }) {
                    self.arrays[id.0].domain = None;
                    return Err(HpfError::BaseIsSecondary(bname));
                }
                let bdom = self.arrays[base.0].domain.clone().expect("alive");
                let f = match reduce(&spec, &domain, &bdom) {
                    Ok(f) => f,
                    Err(e) => {
                        self.arrays[id.0].domain = None;
                        return Err(e);
                    }
                };
                self.arrays[id.0].mapping =
                    MappingState::Secondary { base, align: Arc::new(f) };
                self.arrays[base.0].children.push(id);
            }
        }
        Ok(())
    }

    /// `DEALLOCATE(array)` (§6): remove the array from the alignment
    /// forest; "each array A directly aligned to B is made into a new tree
    /// with primary A" (keeping its current distribution).
    pub fn deallocate(&mut self, id: ArrayId) -> Result<(), HpfError> {
        let rec = &self.arrays[id.0];
        if !rec.allocatable {
            return Err(HpfError::NotAllocatable(rec.name.clone()));
        }
        if !rec.is_alive() {
            return Err(HpfError::NotAllocated(rec.name.clone()));
        }
        let children = std::mem::take(&mut self.arrays[id.0].children);
        for c in children {
            let frozen = self.effective(c)?;
            self.arrays[c.0].mapping = MappingState::Primary(frozen);
        }
        self.disconnect_from_base(id);
        let rec = &mut self.arrays[id.0];
        rec.domain = None;
        rec.mapping = MappingState::Unmapped;
        Ok(())
    }

    // ------------------------------------------------------------ semantics

    /// The array's effective distribution `δ_A`: direct for primaries,
    /// `CONSTRUCT(α, δ_B)` for secondaries (Definition 4).
    pub fn effective(&self, id: ArrayId) -> Result<Arc<EffectiveDist>, HpfError> {
        match &self.arrays[id.0].mapping {
            MappingState::Unmapped => {
                Err(HpfError::NotAllocated(self.arrays[id.0].name.clone()))
            }
            MappingState::Primary(e) => Ok(e.clone()),
            MappingState::Secondary { base, align } => {
                let b = self.effective(*base)?;
                Ok(Arc::new(EffectiveDist::Aligned { align: align.clone(), base: b }))
            }
        }
    }

    /// Owners of one element.
    pub fn owners(&self, id: ArrayId, i: &Idx) -> Result<ProcSet, HpfError> {
        Ok(self.effective(id)?.owners(i))
    }

    /// The region of the array owned by processor `p`.
    pub fn owned_region(&self, id: ArrayId, p: ProcId) -> Result<Region, HpfError> {
        Ok(self.effective(id)?.owned_region(p))
    }

    /// Overwrite an array's mapping with a closed effective distribution,
    /// making it a primary. Used by the §7 procedure machinery (dummy
    /// arguments own their mapping) and by experiment harnesses; ordinary
    /// programs use the directive methods instead.
    pub fn force_primary_mapping(&mut self, id: ArrayId, eff: Arc<EffectiveDist>) {
        self.disconnect_from_base(id);
        self.arrays[id.0].mapping = MappingState::Primary(eff);
        self.arrays[id.0].explicit = true;
    }

    // ------------------------------------------------------------- internal

    fn disconnect_from_base(&mut self, id: ArrayId) {
        if let MappingState::Secondary { base, .. } = self.arrays[id.0].mapping {
            self.arrays[base.0].children.retain(|&c| c != id);
        }
    }

    fn default_target(&self) -> Result<ProcTarget, HpfError> {
        Ok(ProcTarget::whole(&self.procs, self.procs.by_name(AP_NAME)?)?)
    }

    fn implicit_distribution(
        &self,
        name: &str,
        domain: &IndexDomain,
    ) -> Result<EffectiveDist, HpfError> {
        if domain.rank() == 0 {
            // scalars: replicate over all processors (§3 scalar policy)
            return Ok(EffectiveDist::Replicated {
                domain: domain.clone(),
                procs: ProcSet::all(self.np()),
            });
        }
        let target = self.default_target()?;
        Ok(EffectiveDist::direct(Distribution::implicit(name, domain, target, &self.procs)?))
    }

    fn bind_distribution(
        &self,
        name: &str,
        domain: &IndexDomain,
        spec: &DistributeSpec,
    ) -> Result<Distribution, HpfError> {
        let target = match &spec.target {
            None => self.default_target()?,
            Some(t) => t.resolve(&self.procs)?,
        };
        Distribution::new(name, domain, &spec.formats, target, &self.procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::spec::{AligneeAxis, BaseSubscript};
    use crate::dist::format::FormatSpec;
    use crate::AlignExpr as E;

    fn space() -> DataSpace {
        DataSpace::new(4)
    }

    fn dom1(n: i64) -> IndexDomain {
        IndexDomain::standard(&[(1, n)]).unwrap()
    }

    #[test]
    fn declare_and_implicit_distribution() {
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        assert!(ds.is_primary(a));
        // implicit = BLOCK on the last dim over AP
        assert_eq!(ds.owners(a, &Idx::d1(1)).unwrap(), ProcSet::One(ProcId(1)));
        assert_eq!(ds.owners(a, &Idx::d1(16)).unwrap(), ProcSet::One(ProcId(4)));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let mut ds = space();
        ds.declare("A", dom1(4)).unwrap();
        assert!(matches!(ds.declare("A", dom1(4)), Err(HpfError::DuplicateArray(_))));
    }

    #[test]
    fn distribute_then_second_directive_rejected() {
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        assert!(matches!(
            ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])),
            Err(HpfError::AlreadyMapped(_))
        ));
    }

    #[test]
    fn align_forest_constraints() {
        let mut ds = space();
        let a = ds.declare("A", dom1(8)).unwrap();
        let b = ds.declare("B", dom1(8)).unwrap();
        let c = ds.declare("C", dom1(8)).unwrap();
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        assert!(!ds.is_primary(a));
        assert_eq!(ds.base_of(a), Some(b));
        assert_eq!(ds.children(b), &[a]);
        // constraint 1: C cannot align to secondary A
        assert!(matches!(
            ds.align(c, a, &AlignSpec::identity(1)),
            Err(HpfError::BaseIsSecondary(_))
        ));
        // constraint 2: A cannot be aligned twice
        assert!(matches!(
            ds.align(a, c, &AlignSpec::identity(1)),
            Err(HpfError::AlreadyAligned(_))
        ));
        // constraint 1 dual: B (a base) cannot become an alignee
        assert!(matches!(
            ds.align(b, c, &AlignSpec::identity(1)),
            Err(HpfError::AligneeHasChildren(_))
        ));
        // self-alignment rejected
        assert!(ds.align(c, c, &AlignSpec::identity(1)).is_err());
    }

    #[test]
    fn secondary_cannot_be_distributed() {
        let mut ds = space();
        let a = ds.declare("A", dom1(8)).unwrap();
        let b = ds.declare("B", dom1(8)).unwrap();
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        assert!(matches!(
            ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])),
            Err(HpfError::NotPrimary(_))
        ));
    }

    #[test]
    fn construct_follows_base_distribution() {
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        let b = ds.declare("B", dom1(16)).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        for v in 1..=16 {
            assert_eq!(
                ds.owners(a, &Idx::d1(v)).unwrap(),
                ds.owners(b, &Idx::d1(v)).unwrap(),
                "collocation guarantee broken at {v}"
            );
        }
    }

    #[test]
    fn redistribute_requires_dynamic() {
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        assert!(matches!(
            ds.redistribute(a, &DistributeSpec::new(vec![FormatSpec::Block])),
            Err(HpfError::NotDynamic(_))
        ));
        ds.set_dynamic(a);
        ds.redistribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        assert_eq!(ds.owners(a, &Idx::d1(2)).unwrap(), ProcSet::One(ProcId(2)));
    }

    #[test]
    fn redistribute_base_carries_children() {
        // §4.2: children stay aligned; their distribution follows
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        let b = ds.declare("B", dom1(16)).unwrap();
        ds.set_dynamic(b);
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        ds.redistribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        assert_eq!(ds.base_of(a), Some(b)); // still aligned
        for v in 1..=16 {
            assert_eq!(
                ds.owners(a, &Idx::d1(v)).unwrap(),
                ds.owners(b, &Idx::d1(v)).unwrap()
            );
        }
    }

    #[test]
    fn redistribute_secondary_detaches_it() {
        // §4.2: "B is disconnected from A and made into a new degenerate tree"
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        let b = ds.declare("B", dom1(16)).unwrap();
        ds.set_dynamic(a);
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        ds.redistribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        assert!(ds.is_primary(a));
        assert_eq!(ds.base_of(a), None);
        assert!(ds.children(b).is_empty());
    }

    #[test]
    fn realign_steps() {
        let mut ds = space();
        let a = ds.declare("A", dom1(16)).unwrap();
        let b = ds.declare("B", dom1(16)).unwrap();
        let c = ds.declare("C", dom1(16)).unwrap();
        ds.set_dynamic(a);
        // C aligned to A; A primary
        ds.align(c, a, &AlignSpec::identity(1)).unwrap();
        let c_owner_before = ds.owners(c, &Idx::d1(7)).unwrap();
        // REALIGN A WITH B: step 1 freezes C as primary, step 2 attaches A to B
        ds.realign(a, b, &AlignSpec::identity(1)).unwrap();
        assert!(ds.is_primary(c), "former child must become primary");
        assert_eq!(
            ds.owners(c, &Idx::d1(7)).unwrap(),
            c_owner_before,
            "child keeps its current distribution"
        );
        assert_eq!(ds.base_of(a), Some(b));
        assert_eq!(ds.children(b), &[a]);
    }

    #[test]
    fn realign_requires_dynamic_and_rejects_secondary_base() {
        let mut ds = space();
        let a = ds.declare("A", dom1(8)).unwrap();
        let b = ds.declare("B", dom1(8)).unwrap();
        let c = ds.declare("C", dom1(8)).unwrap();
        assert!(matches!(
            ds.realign(a, b, &AlignSpec::identity(1)),
            Err(HpfError::NotDynamic(_))
        ));
        ds.set_dynamic(a);
        ds.align(b, c, &AlignSpec::identity(1)).unwrap();
        assert!(matches!(
            ds.realign(a, b, &AlignSpec::identity(1)),
            Err(HpfError::BaseIsSecondary(_))
        ));
    }

    #[test]
    fn realign_to_own_child_after_freeze() {
        // A primary, B child of A; REALIGN A WITH B is legal because step 1
        // promotes B to primary first
        let mut ds = space();
        let a = ds.declare("A", dom1(8)).unwrap();
        let b = ds.declare("B", dom1(8)).unwrap();
        ds.set_dynamic(a);
        ds.align(b, a, &AlignSpec::identity(1)).unwrap();
        ds.realign(a, b, &AlignSpec::identity(1)).unwrap();
        assert!(ds.is_primary(b));
        assert_eq!(ds.base_of(a), Some(b));
    }

    #[test]
    fn allocatable_lifecycle_with_propagated_distribute() {
        // §6: REAL, ALLOCATABLE :: C(:); DISTRIBUTE (BLOCK) :: C
        let mut ds = space();
        let c = ds.declare_allocatable("C", 1).unwrap();
        ds.distribute(c, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        assert!(!ds.is_alive(c));
        assert!(ds.effective(c).is_err());
        ds.allocate(c, dom1(100)).unwrap();
        assert!(ds.is_alive(c));
        assert_eq!(ds.owners(c, &Idx::d1(1)).unwrap(), ProcSet::One(ProcId(1)));
        ds.deallocate(c).unwrap();
        assert!(!ds.is_alive(c));
        // the attribute propagates to the *next* allocation too
        ds.allocate(c, dom1(8)).unwrap();
        assert_eq!(ds.owners(c, &Idx::d1(3)).unwrap(), ProcSet::One(ProcId(2)));
    }

    #[test]
    fn allocate_errors() {
        let mut ds = space();
        let a = ds.declare("A", dom1(4)).unwrap();
        assert!(matches!(ds.allocate(a, dom1(4)), Err(HpfError::NotAllocatable(_))));
        let c = ds.declare_allocatable("C", 2).unwrap();
        assert!(matches!(ds.allocate(c, dom1(4)), Err(HpfError::AllocRank { .. })));
        let d2 = IndexDomain::standard(&[(1, 4), (1, 4)]).unwrap();
        ds.allocate(c, d2.clone()).unwrap();
        assert!(matches!(ds.allocate(c, d2), Err(HpfError::AlreadyAllocated(_))));
        assert!(matches!(ds.deallocate(a), Err(HpfError::NotAllocatable(_))));
    }

    #[test]
    fn static_cannot_align_to_allocatable() {
        let mut ds = space();
        let a = ds.declare("A", dom1(8)).unwrap();
        let b = ds.declare_allocatable("B", 1).unwrap();
        assert!(matches!(
            ds.align(a, b, &AlignSpec::identity(1)),
            Err(HpfError::StaticAlignedToAllocatable { .. })
        ));
    }

    #[test]
    fn deallocate_promotes_children() {
        // §6: DEALLOCATE(B) → arrays aligned to B become primaries
        let mut ds = space();
        let b = ds.declare_allocatable("B", 1).unwrap();
        let a = ds.declare_allocatable("A", 1).unwrap();
        ds.allocate(b, dom1(16)).unwrap();
        ds.allocate(a, dom1(16)).unwrap();
        ds.set_dynamic(a);
        ds.realign(a, b, &AlignSpec::identity(1)).unwrap();
        let owners_before = ds.owners(a, &Idx::d1(5)).unwrap();
        ds.deallocate(b).unwrap();
        assert!(ds.is_primary(a));
        assert_eq!(ds.owners(a, &Idx::d1(5)).unwrap(), owners_before);
    }

    #[test]
    fn paper_section6_example() {
        // the full §6 program: A,B 2-D alloc; C,D 1-D alloc; PR(4);
        // DISTRIBUTE A(CYCLIC,BLOCK); DISTRIBUTE (BLOCK) :: C,D; DYNAMIC B,C
        let mut ds = space(); // AP of 4 plays PR(32) at miniature scale
        ds.declare_processors("PR", IndexDomain::of_shape(&[4]).unwrap()).unwrap();
        let a = ds.declare_allocatable("A", 2).unwrap();
        let b = ds.declare_allocatable("B", 2).unwrap();
        let c = ds.declare_allocatable("C", 1).unwrap();
        let d = ds.declare_allocatable("D", 1).unwrap();
        // grid target for the 2-D cyclic×block: use PR twice? the paper
        // distributes A(CYCLIC,BLOCK) without a TO clause — rank-2 formats
        // need a rank-2 default target, so give one explicitly here:
        ds.declare_processors("GRID", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        ds.distribute(
            a,
            &DistributeSpec::to(vec![FormatSpec::Cyclic(1), FormatSpec::Block], "GRID"),
        )
        .unwrap();
        ds.distribute(c, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(d, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.set_dynamic(b);
        ds.set_dynamic(c);

        // READ M, N  (M=3, N=4); ALLOCATE(A(N*M,N*M)); ALLOCATE(B(N,N))
        let (m, n) = (3i64, 4i64);
        let nm = n * m;
        ds.allocate(a, IndexDomain::standard(&[(1, nm), (1, nm)]).unwrap()).unwrap();
        ds.allocate(b, IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
        // REALIGN B(:,:) WITH A(M::M, 1::M)
        ds.realign(
            b,
            a,
            &AlignSpec::new(
                vec![AligneeAxis::Colon, AligneeAxis::Colon],
                vec![
                    BaseSubscript::Triplet { lower: Some(m), upper: None, stride: Some(m) },
                    BaseSubscript::Triplet { lower: Some(1), upper: None, stride: Some(m) },
                ],
            ),
        )
        .unwrap();
        // B(i,j) collocated with A(3i, 3j−2)
        for i in 1..=n {
            for j in 1..=n {
                assert_eq!(
                    ds.owners(b, &Idx::d2(i, j)).unwrap(),
                    ds.owners(a, &Idx::d2(m * i, m * j - 2)).unwrap()
                );
            }
        }
        // ALLOCATE(C(40), D(40)); REDISTRIBUTE C(CYCLIC) TO PR
        ds.allocate(c, dom1(40)).unwrap();
        ds.allocate(d, dom1(40)).unwrap();
        ds.redistribute(c, &DistributeSpec::to(vec![FormatSpec::Cyclic(1)], "PR"))
            .unwrap();
        assert_eq!(ds.owners(c, &Idx::d1(1)).unwrap(), ProcSet::One(ProcId(1)));
        assert_eq!(ds.owners(c, &Idx::d1(2)).unwrap(), ProcSet::One(ProcId(2)));
        // D keeps its propagated BLOCK
        assert_eq!(ds.owners(d, &Idx::d1(40)).unwrap(), ProcSet::One(ProcId(4)));
    }

    #[test]
    fn align_expr_alignment_through_forest() {
        // A(I) WITH B(2*I): owners of A(i) = owners of B(2i)
        let mut ds = space();
        let b = ds.declare("B", dom1(32)).unwrap();
        let a = ds.declare("A", dom1(16)).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        ds.align(a, b, &AlignSpec::with_exprs(1, vec![E::dummy(0) * 2])).unwrap();
        for i in 1..=16 {
            assert_eq!(
                ds.owners(a, &Idx::d1(i)).unwrap(),
                ds.owners(b, &Idx::d1(2 * i)).unwrap()
            );
        }
    }
}
