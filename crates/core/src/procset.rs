use hpf_procs::ProcId;
use std::fmt;

/// A compact set of abstract processors — the image `δ_A(i)` of Definition 1
/// (a *non-empty* subset of the processor index domain; emptiness is
/// representable but never produced by well-formed mappings).
///
/// Almost every lookup yields a single owner, so the representation is
/// optimized for `One`; replication produces `Slice` (contiguous AP ranges)
/// or `Many`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcSet {
    /// Exactly one processor.
    One(ProcId),
    /// The contiguous AP range `start..=end` (inclusive, both 1-based).
    Slice {
        /// First AP number.
        start: u32,
        /// Last AP number (inclusive).
        end: u32,
    },
    /// An arbitrary sorted, deduplicated set.
    Many(Vec<ProcId>),
}

impl ProcSet {
    /// The singleton `{p}`.
    pub fn one(p: ProcId) -> Self {
        ProcSet::One(p)
    }

    /// All processors `1..=np`.
    pub fn all(np: usize) -> Self {
        ProcSet::Slice { start: 1, end: np as u32 }
    }

    /// Build from an arbitrary list (sorted + deduplicated; collapses to
    /// `One`/`Slice` when possible).
    pub fn from_vec(mut v: Vec<ProcId>) -> Self {
        v.sort_unstable();
        v.dedup();
        match v.len() {
            1 => ProcSet::One(v[0]),
            n if n >= 2 && (v[n - 1].0 - v[0].0) as usize == n - 1 => {
                ProcSet::Slice { start: v[0].0, end: v[n - 1].0 }
            }
            _ => ProcSet::Many(v),
        }
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        match self {
            ProcSet::One(_) => 1,
            ProcSet::Slice { start, end } => (end - start + 1) as usize,
            ProcSet::Many(v) => v.len(),
        }
    }

    /// True iff empty (only `Many(vec![])` can be empty).
    pub fn is_empty(&self) -> bool {
        matches!(self, ProcSet::Many(v) if v.is_empty())
    }

    /// Membership test.
    pub fn contains(&self, p: ProcId) -> bool {
        match self {
            ProcSet::One(q) => *q == p,
            ProcSet::Slice { start, end } => (*start..=*end).contains(&p.0),
            ProcSet::Many(v) => v.binary_search(&p).is_ok(),
        }
    }

    /// The single member, if this is a singleton set.
    pub fn as_single(&self) -> Option<ProcId> {
        match self {
            ProcSet::One(p) => Some(*p),
            ProcSet::Slice { start, end } if start == end => Some(ProcId(*start)),
            ProcSet::Many(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> ProcSetIter<'_> {
        match self {
            ProcSet::One(p) => ProcSetIter::Slice(p.0..=p.0),
            ProcSet::Slice { start, end } => ProcSetIter::Slice(*start..=*end),
            ProcSet::Many(v) => ProcSetIter::Many(v.iter()),
        }
    }

    /// Set union.
    pub fn union(&self, other: &ProcSet) -> ProcSet {
        // fast path: identical singletons
        if let (ProcSet::One(a), ProcSet::One(b)) = (self, other) {
            if a == b {
                return ProcSet::One(*a);
            }
        }
        let mut v: Vec<ProcId> = self.iter().collect();
        v.extend(other.iter());
        ProcSet::from_vec(v)
    }

    /// True iff the two sets share a member.
    pub fn intersects(&self, other: &ProcSet) -> bool {
        let (small, large) =
            if self.len() <= other.len() { (self, other) } else { (other, self) };
        small.iter().any(|p| large.contains(p))
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcSet::One(p) => write!(f, "{{{p}}}"),
            ProcSet::Slice { start, end } => write!(f, "{{P{start}..P{end}}}"),
            ProcSet::Many(v) => {
                write!(f, "{{")?;
                for (k, p) in v.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Iterator over the members of a [`ProcSet`].
#[derive(Debug, Clone)]
pub enum ProcSetIter<'a> {
    /// Contiguous range.
    Slice(std::ops::RangeInclusive<u32>),
    /// Explicit list.
    Many(std::slice::Iter<'a, ProcId>),
}

impl Iterator for ProcSetIter<'_> {
    type Item = ProcId;
    fn next(&mut self) -> Option<ProcId> {
        match self {
            ProcSetIter::Slice(r) => r.next().map(ProcId),
            ProcSetIter::Many(i) => i.next().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_normalizes() {
        let s = ProcSet::from_vec(vec![ProcId(3), ProcId(1), ProcId(2), ProcId(2)]);
        assert_eq!(s, ProcSet::Slice { start: 1, end: 3 });
        let s = ProcSet::from_vec(vec![ProcId(5)]);
        assert_eq!(s, ProcSet::One(ProcId(5)));
        let s = ProcSet::from_vec(vec![ProcId(1), ProcId(3)]);
        assert_eq!(s, ProcSet::Many(vec![ProcId(1), ProcId(3)]));
    }

    #[test]
    fn membership_and_len() {
        let s = ProcSet::all(8);
        assert_eq!(s.len(), 8);
        assert!(s.contains(ProcId(1)));
        assert!(s.contains(ProcId(8)));
        assert!(!s.contains(ProcId(9)));
        let m = ProcSet::Many(vec![ProcId(2), ProcId(7)]);
        assert!(m.contains(ProcId(7)));
        assert!(!m.contains(ProcId(3)));
    }

    #[test]
    fn union_and_intersects() {
        let a = ProcSet::One(ProcId(1));
        let b = ProcSet::One(ProcId(2));
        assert_eq!(a.union(&b), ProcSet::Slice { start: 1, end: 2 });
        assert!(!a.intersects(&b));
        assert!(a.union(&b).intersects(&b));
        assert_eq!(a.union(&a), a);
    }

    #[test]
    fn single_extraction() {
        assert_eq!(ProcSet::One(ProcId(4)).as_single(), Some(ProcId(4)));
        assert_eq!(ProcSet::Slice { start: 4, end: 4 }.as_single(), Some(ProcId(4)));
        assert_eq!(ProcSet::all(2).as_single(), None);
    }

    #[test]
    fn iteration_sorted() {
        let s = ProcSet::from_vec(vec![ProcId(9), ProcId(4), ProcId(6)]);
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![4, 6, 9]);
    }

    #[test]
    fn display() {
        assert_eq!(ProcSet::One(ProcId(3)).to_string(), "{P3}");
        assert_eq!(ProcSet::all(4).to_string(), "{P1..P4}");
    }
}
