//! Property tests for the regular-section algebra.

use hpf_index::{triplet, Idx, IndexDomain, Rect, Triplet};
use proptest::prelude::*;

fn arb_triplet() -> impl Strategy<Value = Triplet> {
    (-50i64..50, -50i64..50, prop_oneof![-8i64..=-1, 1i64..=8])
        .prop_map(|(l, u, s)| triplet(l, u, s))
}

proptest! {
    /// Intersection is sound and complete against brute force.
    #[test]
    fn triplet_intersection_exact(a in arb_triplet(), b in arb_triplet()) {
        let got: Vec<i64> = a.intersect(&b).iter().collect();
        let want: Vec<i64> = (-200..200i64)
            .filter(|v| a.contains(*v) && b.contains(*v))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Intersection is commutative as a set operation.
    #[test]
    fn triplet_intersection_commutative(a in arb_triplet(), b in arb_triplet()) {
        prop_assert!(a.intersect(&b).set_eq(&b.intersect(&a)));
    }

    /// `ascending` preserves the set.
    #[test]
    fn ascending_preserves_set(a in arb_triplet()) {
        let asc = a.ascending();
        prop_assert_eq!(a.len(), asc.len());
        let mut v1: Vec<i64> = a.iter().collect();
        v1.sort_unstable();
        let v2: Vec<i64> = asc.iter().collect();
        prop_assert_eq!(v1, v2);
        prop_assert!(asc.stride() > 0);
    }

    /// position/nth are inverse.
    #[test]
    fn position_nth_roundtrip(a in arb_triplet()) {
        for (k, v) in a.iter().enumerate() {
            prop_assert_eq!(a.nth(k), Some(v));
            prop_assert_eq!(a.position(v), Some(k));
        }
    }

    /// Affine image has the same cardinality when the coefficient is nonzero.
    #[test]
    fn affine_image_cardinality(a in arb_triplet(), c in -20i64..20,
                                k in prop_oneof![-5i64..=-1, 1i64..=5]) {
        let img = a.affine_image(k, c).unwrap();
        prop_assert_eq!(img.len(), a.len());
        // and membership maps through
        for v in a.iter() {
            prop_assert!(img.contains(k * v + c));
        }
    }

    /// Subset relation agrees with element-wise check.
    #[test]
    fn subset_agrees(a in arb_triplet(), b in arb_triplet()) {
        let want = a.iter().all(|v| b.contains(v));
        prop_assert_eq!(a.is_subset_of(&b), want);
    }
}

fn arb_domain() -> impl Strategy<Value = IndexDomain> {
    prop::collection::vec((-10i64..10, 1i64..6), 1..4).prop_map(|bs| {
        IndexDomain::standard(
            &bs.iter().map(|&(l, e)| (l, l + e - 1)).collect::<Vec<_>>(),
        )
        .unwrap()
    })
}

proptest! {
    /// linearize/delinearize round-trip over whole domains.
    #[test]
    fn linearize_roundtrip(d in arb_domain()) {
        for (pos, i) in d.iter().enumerate() {
            prop_assert_eq!(d.linearize(&i).unwrap(), pos);
            prop_assert_eq!(d.delinearize(pos).unwrap(), i);
        }
    }

    /// Column-major iteration yields exactly size() distinct indices.
    #[test]
    fn iteration_count(d in arb_domain()) {
        let v: Vec<Idx> = d.iter().collect();
        prop_assert_eq!(v.len(), d.size());
        let mut uniq = v.clone();
        uniq.sort_by_key(|i| i.as_slice().to_vec());
        uniq.dedup();
        prop_assert_eq!(uniq.len(), v.len());
    }
}

proptest! {
    /// Rect intersection volume is exact against enumeration.
    #[test]
    fn rect_intersection_volume(
        a1 in arb_triplet(), a2 in arb_triplet(),
        b1 in arb_triplet(), b2 in arb_triplet())
    {
        let a = Rect::new(vec![a1, a2]);
        let b = Rect::new(vec![b1, b2]);
        let want = a.iter().filter(|i| b.contains(i)).count();
        prop_assert_eq!(a.intersection_volume(&b), want);
    }
}
