use crate::{CommStats, CostModel, Topology};
use hpf_procs::ProcId;
use std::collections::HashMap;
use std::fmt;

/// A simulated distributed-memory machine: `np` processors, a topology and
/// a cost model.
#[derive(Debug, Clone)]
pub struct Machine {
    np: usize,
    topology: Topology,
    cost: CostModel,
}

/// The time breakdown of one BSP superstep (compute phase + exchange
/// phase) on a [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct SuperstepReport {
    /// Makespan of the compute phase: `max_p compute(p)` (µs).
    pub compute_time: f64,
    /// Makespan of the exchange phase: the busiest processor's serialized
    /// send+receive time, hop-weighted (µs).
    pub comm_time: f64,
    /// Total messages exchanged.
    pub messages: usize,
    /// Total elements exchanged.
    pub elements: u64,
    /// Compute-load imbalance: `max_p load(p) / mean load` (1.0 = perfect).
    pub imbalance: f64,
}

impl SuperstepReport {
    /// Total superstep time (µs).
    pub fn total_time(&self) -> f64 {
        self.compute_time + self.comm_time
    }
}

impl fmt::Display for SuperstepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compute {:.1}µs + comm {:.1}µs = {:.1}µs ({} msgs, {} elems, imb {:.2})",
            self.compute_time,
            self.comm_time,
            self.total_time(),
            self.messages,
            self.elements,
            self.imbalance
        )
    }
}

impl Machine {
    /// Build a machine.
    pub fn new(np: usize, topology: Topology, cost: CostModel) -> Self {
        Machine { np, topology, cost }
    }

    /// An `np`-processor machine with crossbar topology and default costs.
    pub fn simple(np: usize) -> Self {
        Machine::new(np, Topology::FullCrossbar, CostModel::default())
    }

    /// Number of processors.
    pub fn np(&self) -> usize {
        self.np
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Hop count between two processors.
    pub fn hops(&self, a: ProcId, b: ProcId) -> u32 {
        self.topology.hops(self.np, a, b)
    }

    /// Evaluate one BSP superstep: per-processor compute loads (in
    /// element-operations) plus a communication matrix.
    ///
    /// The exchange-phase makespan charges every processor the serialized
    /// cost of the messages it sends and receives (each hop-weighted), and
    /// takes the maximum — the standard conservative BSP estimate.
    pub fn superstep_time(&self, loads: &[u64], comm: &CommStats) -> SuperstepReport {
        debug_assert!(loads.len() <= self.np);
        let max_load = loads.iter().copied().max().unwrap_or(0);
        let total_load: u64 = loads.iter().sum();
        let mean = if loads.is_empty() { 0.0 } else { total_load as f64 / loads.len() as f64 };
        let imbalance = if mean > 0.0 { max_load as f64 / mean } else { 1.0 };

        let mut busy: HashMap<u32, f64> = HashMap::new();
        for (src, dst, elems) in comm.iter() {
            let t = self.cost.message_time(elems, self.hops(src, dst));
            *busy.entry(src.0).or_insert(0.0) += t;
            *busy.entry(dst.0).or_insert(0.0) += t;
        }
        let comm_time = busy.values().copied().fold(0.0, f64::max);

        SuperstepReport {
            compute_time: self.cost.compute_time(max_load),
            comm_time,
            messages: comm.messages(),
            elements: comm.total_elements(),
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    #[test]
    fn superstep_combines_compute_and_comm() {
        let m = Machine::new(4, Topology::FullCrossbar, CostModel::unit());
        let mut comm = CommStats::new();
        comm.record(p(1), p(2), 100);
        comm.record(p(3), p(4), 50);
        let rep = m.superstep_time(&[10, 10, 10, 10], &comm);
        // unit model: no latency, no flops; busiest pair carries 100 elems,
        // charged to both endpoints → comm_time = 100
        assert_eq!(rep.comm_time, 100.0);
        assert_eq!(rep.compute_time, 0.0);
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.elements, 150);
        assert!((rep.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_reflects_max_over_mean() {
        let m = Machine::simple(4);
        let rep = m.superstep_time(&[40, 0, 0, 0], &CommStats::new());
        assert!((rep.imbalance - 4.0).abs() < 1e-9);
        assert_eq!(rep.comm_time, 0.0);
    }

    #[test]
    fn hop_weighting_changes_cost() {
        let linear = Machine::new(8, Topology::Linear, CostModel::default());
        let mut far = CommStats::new();
        far.record(p(1), p(8), 1000);
        let mut near = CommStats::new();
        near.record(p(1), p(2), 1000);
        let t_far = linear.superstep_time(&[], &far).comm_time;
        let t_near = linear.superstep_time(&[], &near).comm_time;
        assert!(t_far > t_near, "7 hops must cost more than 1");
    }

    #[test]
    fn serialization_at_hot_receiver() {
        let m = Machine::new(4, Topology::FullCrossbar, CostModel::unit());
        // both messages hit P4 — they serialize there
        let mut comm = CommStats::new();
        comm.record(p(1), p(4), 60);
        comm.record(p(2), p(4), 40);
        let rep = m.superstep_time(&[], &comm);
        assert_eq!(rep.comm_time, 100.0);
    }
}
