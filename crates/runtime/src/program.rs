//! Multi-statement execution: a sequence of array assignments over a
//! shared set of distributed arrays, with cumulative communication and
//! load statistics — the unit the E-series experiments price on the
//! machine model.
//!
//! Programs execute through a [`PlanCache`], driven by a
//! [`Session`](crate::Session): each statement is inspected into an
//! [`crate::ExecPlan`] the first time it runs and replayed from the cache
//! on every later timestep, so iterated solvers pay inspection (ownership
//! lookups, comm analysis) once, and O(elements moved + computed) per
//! iteration. Warm sequential timesteps are **allocation-free**: the
//! cache replays each plan into its own preallocated
//! [`crate::PlanWorkspace`], the per-statement analyses come back as
//! `Arc` handles into the frozen plans, and the result buffer is reused
//! across calls (asserted by the `zero_alloc_replay` integration test).
//! The bounded-thread executor reuses the same workspaces but pays
//! scoped-thread spawn cost (and its allocations) per timestep. Remapping
//! an array (see [`Program::remap`]) changes its mapping identity and
//! invalidates exactly the plans that involve it — the primitive the
//! adaptive controller (see [`crate::adapt`]) drives live.

use crate::assign::Assignment;
use crate::backend::{Backend, ExchangeBackend, SharedMemBackend};
use crate::cache::{FusedTarget, PlanCache};
use crate::ckpt::{self, CkptError, CkptReport, RestoreReport};
use crate::commsets::CommAnalysis;
use crate::fault::FaultPlan;
use crate::fuse::FusionStats;
use crate::remap::{remap_analysis, RemapAnalysis};
use crate::spmd::ChannelsBackend;
use crate::DistArray;
use hpf_core::{EffectiveDist, HpfError};
use hpf_machine::{CommStats, Machine, SuperstepReport};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Per-processor breakdown of the last executed timestep — the
/// observability surface the adaptive controller (and users) read.
///
/// `rank_loads` and `rank_bytes_sent` come from the frozen per-statement
/// analyses (modeled element-ops computed and wire bytes originated per
/// simulated processor, before dirty-tracking elides clean ghost units);
/// `rank_compute_ns` is the *measured* wall-time each simulated processor
/// spent in compute kernels during the last timestep, sampled by the
/// exchange backends (all zeros when the last step ran on the
/// scoped-thread executor, which does not sample).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Simulated processor count the vectors below are indexed by.
    pub np: usize,
    /// Modeled per-rank load (elements computed × RHS terms) of the last
    /// timestep, summed over statements.
    pub rank_loads: Vec<u64>,
    /// Modeled wire bytes each rank *originated* in the last timestep
    /// (sender-side, summed over statements).
    pub rank_bytes_sent: Vec<u64>,
    /// Measured wall-nanoseconds each rank spent in compute kernels
    /// during the last timestep (zeros when unmeasured).
    pub rank_compute_ns: Vec<u64>,
    /// Lifetime bytes the exchange backends actually moved.
    pub bytes_sent: u64,
    /// Lifetime cached-plan replays.
    pub cache_hits: u64,
    /// Lifetime fresh plan inspections.
    pub cache_misses: u64,
}

impl ProgramStats {
    /// Measured load imbalance of the last timestep: `max/mean` of the
    /// per-rank compute-time samples (falling back to the modeled loads
    /// when the measured vector is all zeros). `1.0` means perfectly
    /// balanced; returns `1.0` when nothing ran.
    pub fn imbalance(&self) -> f64 {
        let pick = |v: &[u64]| -> Option<f64> {
            let sum: u64 = v.iter().sum();
            if sum == 0 || v.is_empty() {
                return None;
            }
            let max = *v.iter().max().unwrap() as f64;
            Some(max / (sum as f64 / v.len() as f64))
        };
        pick(&self.rank_compute_ns).or_else(|| pick(&self.rank_loads)).unwrap_or(1.0)
    }
}

/// A program: distributed arrays plus an ordered statement list. Each
/// statement executes as one BSP superstep (exchange, then compute).
#[derive(Debug, Default)]
pub struct Program {
    /// The arrays, referenced by position from the statements.
    pub arrays: Vec<DistArray<f64>>,
    stmts: Vec<Assignment>,
    cache: PlanCache,
    /// The shared-address-space exchange backend (cheap, always present).
    shared: SharedMemBackend,
    /// The message-passing SPMD backend, created lazily on the first
    /// [`Program::run_on`]`(Channels)` / [`Program::run_parallel`] call;
    /// its worker fleet then persists across timesteps.
    channels: Option<ChannelsBackend>,
    /// Reused per-run analysis handles — retains its capacity so warm
    /// timesteps push into it without allocating.
    last: Vec<Arc<CommAnalysis>>,
    /// Fault plan waiting to be armed on whichever backend the next run
    /// selects (arming only the selected backend keeps a one-shot fault
    /// from firing twice when recovery degrades to the other backend).
    pending_faults: Option<FaultPlan>,
    /// Wedge-detection timeout for the `Channels` driver, if overridden.
    step_timeout: Option<Duration>,
    /// Which backend executed the last timestep — the source of the
    /// measured per-rank compute-time sample [`Program::stats`] reports
    /// (`None` when the last step ran on the scoped-thread executor,
    /// which does not sample).
    last_backend: Option<Backend>,
}

impl Clone for Program {
    /// Clones the arrays, statements, and plan cache. Backend state
    /// (worker fleets, byte counters) and armed fault injection are
    /// per-instance and start fresh in the clone.
    fn clone(&self) -> Self {
        Program {
            arrays: self.arrays.clone(),
            stmts: self.stmts.clone(),
            cache: self.cache.clone(),
            shared: SharedMemBackend::new(),
            channels: None,
            last: self.last.clone(),
            pending_faults: None,
            step_timeout: self.step_timeout,
            last_backend: None,
        }
    }
}

impl Program {
    /// Create over a set of arrays.
    pub fn new(arrays: Vec<DistArray<f64>>) -> Self {
        Program {
            arrays,
            stmts: Vec::new(),
            cache: PlanCache::new(),
            shared: SharedMemBackend::new(),
            channels: None,
            last: Vec::new(),
            pending_faults: None,
            step_timeout: None,
            last_backend: None,
        }
    }

    /// Append a statement (validated against the arrays' domains).
    pub fn push(&mut self, stmt: Assignment) -> Result<(), HpfError> {
        let doms: Vec<&hpf_index::IndexDomain> =
            self.arrays.iter().map(|a| a.domain()).collect();
        stmt.validate(&doms)?;
        self.stmts.push(stmt);
        Ok(())
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True iff no statements were added.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Execute one timestep through the `SharedMem` exchange backend.
    ///
    /// Deprecated: drive the program through a
    /// [`Session`](crate::Session) instead —
    /// `Session::new(program).run(steps)`.
    #[deprecated(note = "use `Session::new(program).run(steps)` instead")]
    pub fn run(&mut self) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.step_seq()
    }

    /// Execute one timestep on the selected backend.
    ///
    /// Deprecated: drive the program through a
    /// [`Session`](crate::Session) instead —
    /// `Session::new(program).backend(backend).run(steps)`.
    #[deprecated(note = "use `Session::new(program).backend(b).run(steps)` instead")]
    pub fn run_on(&mut self, backend: Backend) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.step_on(backend)
    }

    /// Execute every statement in order through the `SharedMem` exchange
    /// backend, returning the per-statement analyses (shared handles into
    /// the frozen plans). Plans are cached: repeated calls replay
    /// compiled schedules instead of re-inspecting, and a fully-warm call
    /// performs **zero heap allocations** — block-copy pack into cached
    /// workspaces, staged per-pair exchange through preallocated message
    /// buffers, slice-kernel compute, `Arc` bumps for the analyses.
    /// Equivalent to [`Program::step_on`]`(Backend::SharedMem)`.
    pub(crate) fn step_seq(&mut self) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.step_on(Backend::SharedMem)
    }

    /// Execute every statement in order on the selected
    /// [`Backend`] (same plan cache, same semantics — the
    /// backend-equivalence suite pins bit-identical results). The whole
    /// timestep runs through the **fused program plan** (see
    /// [`crate::ProgramPlan`]): statements are level-scheduled into
    /// supersteps, same-pair messages coalesce, and ghost units whose
    /// receiver-side data is still current are skipped entirely. The
    /// `Channels` backend's SPMD worker fleet is created on first use and
    /// persists across timesteps, and every backend cross-checks its
    /// measured per-pair wire traffic against the dirty-tracking mask.
    pub(crate) fn step_on(
        &mut self,
        backend: Backend,
    ) -> Result<&[Arc<CommAnalysis>], HpfError> {
        if self.stmts.is_empty() {
            self.last.clear();
            return Ok(&self.last);
        }
        self.arm_pending(backend);
        self.last_backend = Some(backend);
        let target = match backend {
            Backend::SharedMem => FusedTarget::Shared(&mut self.shared),
            Backend::Channels => {
                let ch = self.channels.get_or_insert_with(ChannelsBackend::new);
                if let Some(t) = self.step_timeout {
                    ch.set_step_timeout(t);
                }
                FusedTarget::Channels(ch)
            }
        };
        let result = self.cache.replay_fused_on(&mut self.arrays, &self.stmts, target);
        self.finish_fused(result)
    }

    /// Move a pending [`FaultPlan`] onto the backend this run selected —
    /// and only that one, so a degraded retry on the other backend
    /// replays clean instead of re-arming the same faults against a
    /// fresh step counter.
    fn arm_pending(&mut self, backend: Backend) {
        let Some(plan) = self.pending_faults.take() else {
            return;
        };
        match backend {
            Backend::SharedMem => self.shared.inject(plan),
            Backend::Channels => {
                self.channels.get_or_insert_with(ChannelsBackend::new).inject(plan)
            }
        }
    }

    /// Execute one unfused timestep (per-statement supersteps, full ghost
    /// exchange).
    ///
    /// Deprecated: drive the program through a
    /// [`Session`](crate::Session) instead —
    /// `Session::new(program).fused(false).run(steps)`.
    #[deprecated(note = "use `Session::new(program).fused(false).run(steps)` instead")]
    pub fn run_unfused(&mut self) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.step_unfused()
    }

    /// Execute the statements exactly as the pre-fusion runtime did: one
    /// per-statement BSP superstep each, full ghost exchange every
    /// timestep, through the `SharedMem` backend. The per-statement
    /// plans come from the same cache the fused path builds on. This is
    /// the baseline the `b15_program_fusion` bench and the fusion
    /// equivalence suite compare against.
    pub(crate) fn step_unfused(&mut self) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.arm_pending(Backend::SharedMem);
        self.last_backend = Some(Backend::SharedMem);
        self.last.clear();
        self.last.reserve(self.stmts.len()); // no-op once warmed
        let exchange: &mut dyn ExchangeBackend = &mut self.shared;
        for stmt in &self.stmts {
            match self.cache.replay_on(&mut self.arrays, stmt, exchange) {
                Ok(analysis) => self.last.push(analysis),
                Err(e) => {
                    // don't leave a truncated prefix masquerading as a
                    // successful run's analyses
                    self.last.clear();
                    return Err(e);
                }
            }
        }
        Ok(&self.last)
    }

    /// Execute one timestep with work spread over at most `threads` OS
    /// threads.
    ///
    /// Deprecated: drive the program through a
    /// [`Session`](crate::Session) instead —
    /// `Session::new(program).threads(t).run(steps)` (or
    /// `.backend(Backend::Channels)` when `t` covers the simulated
    /// processor count).
    #[deprecated(note = "use `Session::new(program).threads(t).run(steps)` instead")]
    pub fn run_parallel(
        &mut self,
        threads: usize,
    ) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.step_par(threads)
    }

    /// Execute in order with the statements' work spread over at most
    /// `threads` OS threads (same plan cache, same semantics as
    /// [`Program::step_seq`]), through the fused program plan.
    ///
    /// When `threads` covers the simulated processor count this replays
    /// through the persistent `Channels` SPMD workers — one long-lived
    /// worker per simulated processor — so repeated parallel timesteps
    /// stop paying per-timestep thread-spawn cost (the fleet is spawned
    /// once; `zero_alloc_replay` pins the spawn count). With
    /// `1 < threads < np` the upper bound is honored by the fused
    /// scoped-thread executor (`threads` workers per pack/compute wave),
    /// and `threads <= 1` degenerates to the sequential replay.
    pub(crate) fn step_par(
        &mut self,
        threads: usize,
    ) -> Result<&[Arc<CommAnalysis>], HpfError> {
        if threads <= 1 {
            return self.step_seq();
        }
        let np = self.np();
        if threads >= np {
            return self.step_on(Backend::Channels);
        }
        if self.stmts.is_empty() {
            self.last.clear();
            return Ok(&self.last);
        }
        // the scoped-thread executor does not sample per-rank compute time
        self.last_backend = None;
        let result =
            self.cache.replay_fused_on(&mut self.arrays, &self.stmts, FusedTarget::Par(threads));
        self.finish_fused(result)
    }

    /// Rebuild the per-statement analysis handles from a fused timestep's
    /// outcome (`Arc` bumps only — allocation-free once `last` is at
    /// capacity), clearing them on failure so a truncated run never
    /// masquerades as a successful one.
    fn finish_fused(
        &mut self,
        result: Result<Arc<crate::ProgramPlan>, HpfError>,
    ) -> Result<&[Arc<CommAnalysis>], HpfError> {
        self.last.clear();
        match result {
            Ok(plan) => {
                self.last.reserve(self.stmts.len()); // no-op once warmed
                self.last.extend(plan.plans().iter().map(|p| p.shared_analysis()));
                Ok(&self.last)
            }
            Err(e) => Err(e),
        }
    }

    /// The analyses of the most recent timestep.
    pub fn last_analyses(&self) -> &[Arc<CommAnalysis>] {
        &self.last
    }

    /// Simulated processor count (max over the arrays; 0 when empty).
    pub fn np(&self) -> usize {
        self.arrays.iter().map(DistArray::np).max().unwrap_or(0)
    }

    /// The current statement list, in execution order.
    pub fn statements(&self) -> &[Assignment] {
        &self.stmts
    }

    /// Replace the whole statement list (each statement re-validated
    /// against the arrays' domains). Cached plans for statements that
    /// survive the swap stay warm — the cache is keyed by statement
    /// structure, so a drifting workload that re-lowers its stencil each
    /// epoch only pays re-inspection for the statements that actually
    /// changed.
    pub fn set_statements(&mut self, stmts: Vec<Assignment>) -> Result<(), HpfError> {
        let doms: Vec<&hpf_index::IndexDomain> =
            self.arrays.iter().map(|a| a.domain()).collect();
        for stmt in &stmts {
            stmt.validate(&doms)?;
        }
        self.stmts = stmts;
        Ok(())
    }

    /// Per-processor breakdown of the last executed timestep: modeled
    /// per-rank loads and originated wire bytes (from the frozen
    /// analyses), plus the backends' *measured* per-rank compute-time
    /// samples — the vectors the adaptive controller feeds on. Allocates
    /// fresh vectors; call off the warm path.
    pub fn stats(&self) -> ProgramStats {
        let np = self.np();
        let mut rank_loads = vec![0u64; np];
        let mut rank_bytes_sent = vec![0u64; np];
        for a in &self.last {
            for (p, l) in a.loads.iter().enumerate() {
                if p < np {
                    rank_loads[p] += l;
                }
            }
            for (src, _dst, elems) in a.comm.iter() {
                let s = src.zero_based();
                if s < np {
                    rank_bytes_sent[s] += elems * 8;
                }
            }
        }
        let mut rank_compute_ns = vec![0u64; np];
        let measured = self.last_rank_compute_ns();
        let n = measured.len().min(np);
        rank_compute_ns[..n].copy_from_slice(&measured[..n]);
        ProgramStats {
            np,
            rank_loads,
            rank_bytes_sent,
            rank_compute_ns,
            bytes_sent: self.backend_bytes_sent(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
        }
    }

    /// The measured per-rank compute-time sample of the last timestep
    /// (empty when the last step ran on the scoped-thread executor or
    /// nothing ran yet). Borrowed straight from the backend — no
    /// allocation, safe on the warm path.
    pub fn last_rank_compute_ns(&self) -> &[u64] {
        match self.last_backend {
            Some(Backend::SharedMem) => self.shared.rank_compute_ns(),
            Some(Backend::Channels) => {
                self.channels.as_ref().map_or(&[][..], |c| c.rank_compute_ns())
            }
            None => &[],
        }
    }

    /// Statically verify every statement's compiled plan — prove (or
    /// refute with precise diagnostics) write coverage, bounds, race
    /// freedom, deadlock freedom, and analysis conservation *before*
    /// anything executes (see [`crate::verify::verify_plan`]).
    ///
    /// Statements not yet cached are inspected through the plan cache, so
    /// a later [`Program::run`] replays the very plans that were just
    /// proven safe. No array data moves. Returns `Err` only when a
    /// statement cannot be compiled at all; schedule defects come back as
    /// diagnostics in the [`VerifyReport`](crate::VerifyReport).
    pub fn verify_all(&mut self) -> Result<crate::VerifyReport, HpfError> {
        let mut statements = Vec::with_capacity(self.stmts.len());
        for stmt in &self.stmts {
            let plan = self.cache.plan_for(&self.arrays, stmt)?;
            statements.push(crate::verify::verify_plan(&self.arrays, stmt, &plan));
        }
        Ok(crate::VerifyReport { statements })
    }

    /// Remap array `k` onto a new mapping: move every element value into
    /// storage laid out by `new`, return the exact traffic of the move,
    /// and (by replacing the mapping allocation) invalidate every cached
    /// plan that involves the array.
    pub fn remap(
        &mut self,
        k: usize,
        new: Arc<EffectiveDist>,
    ) -> Result<RemapAnalysis, HpfError> {
        let old = self
            .arrays
            .get(k)
            .ok_or_else(|| HpfError::UnknownArray(format!("array #{k}")))?;
        if old.domain() != new.domain() {
            return Err(HpfError::NotConforming(format!(
                "remap of `{}` changes its index domain",
                old.name()
            )));
        }
        let np = old.np();
        let analysis = remap_analysis(old.mapping(), &new, np);
        let moved = DistArray::from_fn(old.name(), new, np, |i| old.get(i));
        self.arrays[k] = moved;
        Ok(analysis)
    }

    /// Arm deterministic fault injection (see [`crate::FaultPlan`]) on
    /// whichever exchange backend the *next* run selects. Each fault
    /// fires once when its superstep comes around; an affected run
    /// returns [`HpfError::Exchange`] and the array data must be
    /// restored from a checkpoint before replaying (see
    /// [`Program::restore_latest`] and [`ckpt::run_trajectory`]).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.pending_faults = Some(plan);
    }

    /// Injected faults that have fired so far, across both backends.
    pub fn faults_fired(&self) -> usize {
        ExchangeBackend::faults_fired(&self.shared)
            + self.channels.as_ref().map_or(0, |c| c.faults_fired())
    }

    /// Override the `Channels` driver's wedge-detection timeout (how long
    /// it waits without worker progress before declaring the superstep
    /// lost — default 120s). Fault-injection tests dial this down so a
    /// dropped message surfaces in milliseconds.
    pub fn set_exchange_timeout(&mut self, timeout: Duration) {
        self.step_timeout = Some(timeout);
        if let Some(ch) = &mut self.channels {
            ch.set_step_timeout(timeout);
        }
    }

    /// Snapshot every array's distributed shards into
    /// `dir/step-<timestep>/` — each simulated processor's owned rects
    /// serialized independently, with a manifest recording shapes,
    /// layouts, mapping identity, and per-shard checksums. See
    /// [`crate::ckpt`] for the format and [`ckpt::save_checkpoint`] for
    /// the parallel writer this delegates to.
    pub fn checkpoint(&self, dir: &Path, timestep: u64) -> Result<CkptReport, CkptError> {
        ckpt::save_checkpoint(&self.arrays, timestep, dir)
    }

    /// Restore array values from the checkpoint at `step_dir` (a
    /// `step-<T>` directory), verifying every shard checksum. Mappings
    /// need not match the checkpoint's: shards from a different layout or
    /// processor count are scattered element-wise through the manifest's
    /// rect descriptions into the current distribution.
    pub fn restore_checkpoint(&mut self, step_dir: &Path) -> Result<RestoreReport, CkptError> {
        ckpt::restore_checkpoint(&mut self.arrays, step_dir)
    }

    /// Restore from the newest `step-<T>` checkpoint under `dir`.
    pub fn restore_latest(&mut self, dir: &Path) -> Result<RestoreReport, CkptError> {
        let step = ckpt::latest_checkpoint(dir)?
            .ok_or_else(|| CkptError::NoCheckpoint { dir: dir.to_path_buf() })?;
        ckpt::restore_checkpoint(&mut self.arrays, &step)
    }

    /// Bytes the exchange backends have moved between simulated
    /// processors over the program's lifetime (both backends combined) —
    /// the measured wire truth the frozen analyses are cross-checked
    /// against.
    pub fn backend_bytes_sent(&self) -> u64 {
        self.shared.bytes_sent()
            + self.channels.as_ref().map_or(0, |c| c.bytes_sent())
    }

    /// SPMD worker threads spawned over the program's lifetime: 0 before
    /// the first `Channels` run, then the simulated processor count —
    /// staying there across warm parallel timesteps is the
    /// persistent-worker contract.
    pub fn spmd_workers_spawned(&self) -> u64 {
        self.channels.as_ref().map_or(0, |c| c.workers_spawned())
    }

    /// Observability snapshot of the fused program path: supersteps
    /// formed, messages before/after coalescing, and the ghost traffic
    /// dirty-tracking avoided — alongside the existing
    /// [`Program::cache_hits`] / [`Program::backend_bytes_sent`]
    /// counters. Zeroed until the first fused timestep runs.
    pub fn fusion_stats(&self) -> FusionStats {
        self.cache.fusion_stats()
    }

    /// Cached-plan replays performed so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Fresh plan inspections performed so far (cold + invalidated).
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Drop all cached plans (they will be re-inspected on the next run).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Bytes held by the compressed schedules of every cached plan.
    pub fn plan_schedule_bytes(&self) -> usize {
        self.cache.schedule_bytes()
    }

    /// Price a set of per-statement analyses on a machine: the sum of the
    /// per-superstep estimates plus the merged traffic matrix. Accepts
    /// both owned analyses and the shared handles [`Program::run`]
    /// returns.
    pub fn price<A: std::borrow::Borrow<CommAnalysis>>(
        analyses: &[A],
        machine: &Machine,
    ) -> (f64, CommStats, Vec<SuperstepReport>) {
        let mut total = 0.0;
        let mut traffic = CommStats::new();
        let mut reports = Vec::with_capacity(analyses.len());
        for a in analyses {
            let a = a.borrow();
            let rep = machine.superstep_time(&a.loads, &a.comm);
            total += rep.total_time();
            traffic.merge(&a.comm);
            reports.push(rep);
        }
        (total, traffic, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use crate::exec::dense_reference;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn setup() -> Program {
        let np = 4;
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        Program::new(vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ])
    }

    fn full(n: i64) -> Section {
        Section::from_triplets(vec![span(1, n)])
    }

    #[test]
    fn sequences_compose() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        // A = B; then B = A + B (reads the updated A)
        let s1 = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let s2 = Assignment::new(
            1,
            full(32),
            vec![Term::new(0, full(32)), Term::new(1, full(32))],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(s1).unwrap();
        prog.push(s2).unwrap();
        assert_eq!(prog.len(), 2);
        let analyses = prog.step_seq().unwrap();
        assert_eq!(analyses.len(), 2);
        // A = B = 2i; then B = A + B = 4i
        for i in 1..=32i64 {
            assert_eq!(prog.arrays[0].get(&hpf_index::Idx::d1(i)), (2 * i) as f64);
            assert_eq!(prog.arrays[1].get(&hpf_index::Idx::d1(i)), (4 * i) as f64);
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let build_stmts = |prog: &mut Program| {
            let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
            let s1 = Assignment::new(
                0,
                Section::from_triplets(vec![span(2, 32)]),
                vec![Term::new(1, Section::from_triplets(vec![span(1, 31)]))],
                Combine::Copy,
                &doms,
            )
            .unwrap();
            let s2 = Assignment::new(
                1,
                full(32),
                vec![Term::new(0, full(32))],
                Combine::Copy,
                &doms,
            )
            .unwrap();
            prog.push(s1).unwrap();
            prog.push(s2).unwrap();
        };
        let mut seq = setup();
        build_stmts(&mut seq);
        let mut par = setup();
        build_stmts(&mut par);
        seq.step_seq().unwrap();
        par.step_par(3).unwrap();
        assert_eq!(seq.arrays[0].to_dense(), par.arrays[0].to_dense());
        assert_eq!(seq.arrays[1].to_dense(), par.arrays[1].to_dense());
    }

    #[test]
    fn pricing_accumulates() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        prog.push(s.clone()).unwrap();
        prog.push(s).unwrap();
        let analyses = prog.step_seq().unwrap();
        let machine = Machine::simple(4);
        let (total, traffic, reports) = Program::price(analyses, &machine);
        assert_eq!(reports.len(), 2);
        assert!((total - (reports[0].total_time() + reports[1].total_time())).abs() < 1e-9);
        assert_eq!(
            traffic.total_elements(),
            analyses[0].comm.total_elements() + analyses[1].comm.total_elements()
        );
    }

    #[test]
    fn invalid_statement_rejected() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let bad = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(16))],
            Combine::Copy,
            &doms,
        );
        assert!(bad.is_err());
        // rank mismatch detected at push-time too
        let half = Assignment {
            lhs: 0,
            lhs_section: full(32),
            terms: vec![Term::new(1, full(16))],
            combine: Combine::Copy,
        };
        assert!(prog.push(half).is_err());
    }

    #[test]
    fn dense_reference_still_oracle() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 16)]),
            vec![Term::new(1, Section::from_triplets(vec![hpf_index::triplet(2, 32, 2)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&prog.arrays, &s);
        prog.push(s).unwrap();
        prog.step_seq().unwrap();
        assert_eq!(prog.arrays[0].to_dense(), expect);
    }

    #[test]
    fn timesteps_amortize_inspection() {
        // the acceptance-criterion counter: 1 cold miss, then pure hits
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let sweep = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 32)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, 31)])),
                Term::new(1, Section::from_triplets(vec![span(2, 32)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(sweep).unwrap();
        let timesteps = 10u64;
        for _ in 0..timesteps {
            prog.step_seq().unwrap();
        }
        assert_eq!(prog.cache_misses(), 1, "exactly one inspection");
        assert_eq!(prog.cache_hits(), timesteps - 1, "every later timestep replays");
    }

    #[test]
    fn remap_moves_values_and_invalidates_plans() {
        let mut prog = setup();
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
        let s = Assignment::new(
            0,
            full(32),
            vec![Term::new(1, full(32))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        prog.push(s).unwrap();
        prog.step_seq().unwrap();
        prog.step_seq().unwrap();
        assert_eq!((prog.cache_hits(), prog.cache_misses()), (1, 1));

        // REDISTRIBUTE B: BLOCK now — values survive, plans invalidate
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let before = prog.arrays[1].to_dense();
        let r = prog.remap(1, ds.effective(b).unwrap()).unwrap();
        assert_eq!(prog.arrays[1].to_dense(), before, "values must survive the move");
        assert!(r.moved > 0, "BLOCK ↔ CYCLIC moves most elements");

        prog.step_seq().unwrap();
        assert_eq!(prog.cache_misses(), 2, "remap forces re-inspection");
        prog.step_seq().unwrap();
        assert_eq!(prog.cache_hits(), 2, "and the fresh plan is reused again");
    }

    #[test]
    fn remap_rejects_domain_change() {
        let mut prog = setup();
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        assert!(prog.remap(1, ds.effective(b).unwrap()).is_err());
        assert!(prog.remap(9, prog.arrays[0].mapping().clone()).is_err());
    }
}
