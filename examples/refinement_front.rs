//! A moving refinement front: the controller re-adapts when the
//! workload shifts (paper §4.2's `REDISTRIBUTE`, driven automatically).
//!
//! Adaptive mesh codes refine where the solution is interesting, and
//! the interesting region *moves*: a shock front sweeps the domain, and
//! whatever distribution was right for the last phase is wrong for the
//! next. The paper's answer is dynamic redistribution (§4.2 — "the
//! programmer may use dynamic ... redistribution of data"); this
//! example shows the runtime deciding *when* on its own.
//!
//! Two phases over a `BLOCK`-distributed field:
//!
//! 1. the front occupies the left quarter — the controller observes the
//!    skew and rebalances onto a load-fitted `GENERAL_BLOCK`;
//! 2. the refinement front advances to the right quarter
//!    (`Program::set_statements` swaps the sweep mid-session) — the
//!    old `GENERAL_BLOCK` is now exactly wrong, and the controller
//!    remaps *again* for the new phase.
//!
//! Run with: `cargo run --release --example refinement_front`

use hpf::prelude::*;

const N: i64 = 65_536;
const NP: usize = 4;

/// How far upwind the coarse-to-fine interpolation reaches. A wide
/// gather makes `CYCLIC(k)` remappings price terribly (most reads cross
/// block boundaries), so the controller's winning candidate is the
/// front-fitted `GENERAL_BLOCK` — the one that goes stale when the
/// front moves.
const REACH: i64 = 48;

/// A sweep statement refining only `lo..=hi` — the active front.
fn front_sweep(prog: &Program, lo: i64, hi: i64) -> Assignment {
    let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
    Assignment::new(
        0,
        Section::from_triplets(vec![span(lo, hi)]),
        vec![
            Term::new(0, Section::from_triplets(vec![span(lo - REACH, hi - REACH)])),
            Term::new(1, Section::from_triplets(vec![span(lo, hi)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap()
}

fn build_program() -> Program {
    let mut ds = DataSpace::new(NP);
    let u = ds.declare("U", IndexDomain::of_shape(&[N as usize]).unwrap()).unwrap();
    let f = ds.declare("F", IndexDomain::of_shape(&[N as usize]).unwrap()).unwrap();
    for id in [u, f] {
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.set_dynamic(id);
    }
    let mut prog = Program::new(vec![
        DistArray::from_fn("U", ds.effective(u).unwrap(), NP, |i| i[0] as f64),
        DistArray::from_fn("F", ds.effective(f).unwrap(), NP, |i| (i[0] % 5) as f64),
    ]);
    let sweep = front_sweep(&prog, REACH + 2, N / 4);
    prog.push(sweep).unwrap();
    prog
}

fn phase_report(report: &AdaptReport, since: usize, label: &str) {
    for e in &report.events[since..] {
        println!(
            "  [{label}] t={:>3}: {} -> {} (imbalance {:.2}, predicted gain {:.1}us)",
            e.timestep,
            e.arrays.join(","),
            e.candidate,
            e.observed_imbalance,
            e.predicted_gain
        );
    }
}

fn main() {
    // short cooldown so the controller may react again soon after the
    // front moves; everything else is the default policy
    let policy = AdaptPolicy { cooldown: 3, ..AdaptPolicy::default() };
    let mut session = Session::new(build_program()).adapt(policy);

    println!("refinement front: N = {N}, NP = {NP}\n");
    println!("phase 1 — front at {}..{}", REACH + 2, N / 4);
    session.run(12).unwrap();
    let report = session.adapt_report().expect("adapt configured").clone();
    phase_report(&report, 0, "phase 1");
    assert!(
        report.remaps >= 1,
        "the left-quarter front must trigger a rebalance"
    );
    let phase1_events = report.events.len();

    // the front advances: refine the right quarter now
    let (lo, hi) = (3 * N / 4, N - 1);
    println!("\nphase 2 — front advances to {lo}..{hi}");
    let sweep = front_sweep(session.program(), lo, hi);
    session.program_mut().set_statements(vec![sweep]).unwrap();
    session.run(12).unwrap();
    let report = session.adapt_report().expect("adapt configured").clone();
    phase_report(&report, phase1_events, "phase 2");
    assert!(
        report.remaps >= 2,
        "the moved front must trigger a second remap, got {}",
        report.remaps
    );

    let stats = session.program().stats();
    println!(
        "\ntotal: {} remaps, {} elements moved; final per-rank loads {:?} \
         (imbalance {:.2})",
        report.remaps,
        report.remap_elements,
        stats.rank_loads,
        stats.imbalance()
    );

    // adaptation is an optimization, not a semantic change: replay both
    // phases statically and compare bit for bit
    let mut twin = Session::new(build_program());
    twin.run(12).unwrap();
    let sweep = front_sweep(twin.program(), lo, hi);
    twin.program_mut().set_statements(vec![sweep]).unwrap();
    twin.run(12).unwrap();
    assert_eq!(
        session.program().arrays[0].to_dense(),
        twin.program().arrays[0].to_dense(),
        "adaptive execution must be bit-identical to the static run"
    );
    println!("adaptive ≡ static: dense results identical across both phases");
}
