//! Alignment directives, expressions, reduction and alignment functions
//! (§2.3, §5).

pub mod expr;
pub mod func;
pub mod reduce;
pub mod spec;
