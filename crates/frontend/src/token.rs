use std::fmt;

/// A lexical token of the directive sub-language.
///
/// Fortran is case-insensitive: the lexer uppercases identifiers, so
/// keywords compare as uppercase strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (uppercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    DoubleColon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Equals,
    /// The `!HPF$` sigil introducing a directive line.
    Directive,
    /// End of statement (line break).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::DoubleColon => write!(f, "::"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
            Tok::Equals => write!(f, "="),
            Tok::Directive => write!(f, "!HPF$"),
            Tok::Newline => write!(f, "<newline>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A half-open region of the source text, for diagnostics: 1-based line
/// and column plus the length in characters. Rendering (see
/// [`crate::render_diagnostics`]) underlines exactly `[col, col+len)` of
/// `line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Source line, 1-based.
    pub line: usize,
    /// Source column, 1-based.
    pub col: usize,
    /// Length in characters (0 for end-of-line/end-of-input positions).
    pub len: usize,
}

impl Span {
    /// A span covering `len` characters at `line`:`col`.
    pub fn new(line: usize, col: usize, len: usize) -> Self {
        Span { line, col, len }
    }

    /// A zero-width span at the start of a line — used for synthesized
    /// positions (end of statement, end of input).
    pub fn line_start(line: usize) -> Self {
        Span { line, col: 1, len: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A token plus its source span, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

impl Spanned {
    /// Source line number (1-based) — shorthand for `.span.line`.
    pub fn line(&self) -> usize {
        self.span.line
    }
}
