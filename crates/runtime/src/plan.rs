//! Compiled execution plans — the **inspector** half of an
//! inspector–executor runtime.
//!
//! The paper's central payoff is that distribution/alignment information
//! makes communication sets *statically computable* (§1, §8.1.1). This
//! module exploits that at execution time the way HPF-descended runtimes
//! do: an [`ExecPlan`] is inspected **once** from an [`Assignment`] and the
//! arrays' [`EffectiveDist`] mappings, and then replayed every timestep.
//!
//! Schedules are **run-length compressed**. Block and general-block
//! mappings own rectangular regions, so the element sequence a processor
//! reads from one peer is overwhelmingly made of contiguous stretches of
//! that peer's local buffer. Instead of one `(src, offset)` entry per
//! element, a plan stores:
//!
//! * per RHS term, a list of [`CopyRun`]s — `len` consecutive elements of
//!   one source processor's buffer, landing at a contiguous position range
//!   of the packed operand buffer (remote runs are exactly the statement's
//!   SUPERB-style ghost blocks, the paper's reference \[11\]); and
//! * for the LHS, a list of [`StoreRun`]s — contiguous slices of the
//!   owner's local buffer that receive consecutive computed elements.
//!
//! A replay therefore moves data with `copy_from_slice` block transfers
//! and combines operands with slice kernels specialized by
//! `(Combine, term count)`, instead of per-element indexed loads. With a
//! reusable [`PlanWorkspace`](crate::PlanWorkspace) holding the packed
//! operand buffers, a warm replay performs **zero heap allocations**:
//! pack → exchange → compute touches only preallocated storage. The frozen
//! [`CommAnalysis`] rides along, so replays also skip the region-algebraic
//! analysis.
//!
//! [`EffectiveDist`]: hpf_core::EffectiveDist

use crate::array::DistArray;
use crate::assign::{Assignment, Combine};
use crate::backend::MessagePlan;
use crate::commsets::{comm_analysis, project_region, CommAnalysis};
use crate::workspace::PlanWorkspace;
use hpf_core::{HpfError, MappingId};
use hpf_index::IndexDomain;
use hpf_procs::ProcId;
use std::sync::Arc;

/// One gather source: which processor's local buffer to read, and where.
///
/// This is the *uncompressed* schedule element. Plans store [`CopyRun`]s
/// instead; [`TermSchedule::iter_refs`] expands a compressed schedule back
/// into this per-element form (tests assert the expansion is exact, and
/// [`ExecPlan::execute_seq_uncompressed`] replays through it as the
/// benchmark baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherRef {
    /// Zero-based source processor.
    pub src: u32,
    /// Flat offset into the source processor's local buffer.
    pub offset: usize,
}

/// A run-length compressed gather: `len` consecutive elements of one
/// source processor's local buffer, copied to a contiguous range of the
/// packed operand buffer with a single `copy_from_slice`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRun {
    /// Zero-based source processor.
    pub src: u32,
    /// Starting flat offset into the source processor's local buffer.
    pub src_off: usize,
    /// Starting position in the packed operand buffer (element order).
    pub dst_off: usize,
    /// Number of consecutive elements moved.
    pub len: usize,
}

/// A run-length compressed store: `len` consecutive computed elements
/// (packed-buffer positions `pos..pos+len`) written to a contiguous slice
/// of the LHS owner's local buffer starting at `dst_off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRun {
    /// Starting element position in the packed operand buffers.
    pub pos: usize,
    /// Starting flat offset into the LHS local buffer.
    pub dst_off: usize,
    /// Number of consecutive elements stored.
    pub len: usize,
}

/// The gather schedule of one processor for one RHS term.
#[derive(Debug, Clone)]
pub struct TermSchedule {
    /// Index of the operand array.
    pub array: usize,
    /// Compressed gather runs, covering the processor's element order
    /// exactly (`dst_off` ranges tile `0..elements` in order).
    pub runs: Vec<CopyRun>,
    /// Total elements gathered (the processor's computed volume).
    pub elements: usize,
    /// How many of the gathered elements are remote — the term's ghost
    /// volume on this processor.
    pub ghost_elements: usize,
}

impl TermSchedule {
    /// Expand the compressed runs into the exact per-element
    /// `(src, offset)` sequence an uncompressed schedule would hold.
    pub fn iter_refs(&self) -> impl Iterator<Item = GatherRef> + '_ {
        self.runs.iter().flat_map(|r| {
            (0..r.len).map(move |i| GatherRef { src: r.src, offset: r.src_off + i })
        })
    }
}

/// Everything one processor must do to execute the statement: which LHS
/// slices it fills and where each operand block comes from.
#[derive(Debug, Clone)]
pub struct ProcPlan {
    /// The processor.
    pub proc: ProcId,
    /// Number of elements this processor computes.
    pub volume: usize,
    /// Compressed store runs into the LHS local buffer (`pos` ranges tile
    /// `0..volume` in order).
    pub lhs_runs: Vec<StoreRun>,
    /// Per-term gather schedules (parallel to the statement's terms).
    pub terms: Vec<TermSchedule>,
}

impl ProcPlan {
    /// Total ghost elements this processor receives across all terms.
    pub fn ghost_elements(&self) -> usize {
        self.terms.iter().map(|t| t.ghost_elements).sum()
    }

    /// Expand the compressed store runs into the per-element flat LHS
    /// offset sequence an uncompressed schedule would hold.
    pub fn iter_lhs_offsets(&self) -> impl Iterator<Item = usize> + '_ {
        self.lhs_runs.iter().flat_map(|r| (0..r.len).map(move |i| r.dst_off + i))
    }
}

/// A compiled execution plan for one assignment under fixed mappings.
///
/// Built by [`ExecPlan::inspect`]; replayed by [`ExecPlan::execute_seq`] /
/// [`ExecPlan::execute_par`] (or their `_with` variants, which reuse a
/// caller-owned [`PlanWorkspace`] so warm replays allocate nothing). A
/// plan is bound to the exact `Arc<EffectiveDist>` allocations it was
/// inspected from (see [`MappingId`]); [`ExecPlan::is_valid_for`] checks
/// that binding, and the executors assert it, so a remapped array can
/// never be driven through a stale schedule.
///
/// [`EffectiveDist`]: hpf_core::EffectiveDist
#[derive(Debug, Clone)]
pub struct ExecPlan {
    lhs: usize,
    combine: Combine,
    per_proc: Vec<ProcPlan>,
    analysis: Arc<CommAnalysis>,
    /// The remote runs regrouped into per-(sender, receiver) message
    /// schedules — what the exchange backends move.
    msgs: MessagePlan,
    /// Identity of every involved array's mapping at inspection time.
    mappings: Vec<(usize, MappingId)>,
}

impl ExecPlan {
    /// Inspect `stmt` over `arrays`: validate conformance, lower the
    /// owner-computes iteration into per-processor compressed store/gather
    /// runs, and freeze the exact communication analysis.
    pub fn inspect(
        arrays: &[DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<ExecPlan, HpfError> {
        let domains: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        stmt.validate(&domains)?;
        let np = arrays[stmt.lhs].np();

        let mut per_proc = Vec::with_capacity(np);
        for p in (1..=np as u32).map(ProcId) {
            let lhs_arr = &arrays[stmt.lhs];
            // the section-relative positions this processor computes
            let positions = project_region(lhs_arr.region_of(p), &stmt.lhs_section);
            let volume = positions.volume_disjoint();
            let mut lhs_runs: Vec<StoreRun> = Vec::new();
            for (pos, rel) in positions.iter().enumerate() {
                let gi = stmt.lhs_index(&rel);
                let off =
                    lhs_arr.local_offset(p, &gi).expect("owner holds its region");
                match lhs_runs.last_mut() {
                    Some(r) if r.dst_off + r.len == off => r.len += 1,
                    _ => lhs_runs.push(StoreRun { pos, dst_off: off, len: 1 }),
                }
            }
            let mut terms = Vec::with_capacity(stmt.terms.len());
            for (t, term) in stmt.terms.iter().enumerate() {
                let src_arr = &arrays[term.array];
                let own = src_arr.region_of(p);
                let mut runs: Vec<CopyRun> = Vec::new();
                let mut ghost_elements = 0usize;
                for (k, rel) in positions.iter().enumerate() {
                    let ri = stmt.rhs_index(t, &rel);
                    // prefer the processor's own copy (replication makes
                    // ownership non-exclusive); otherwise gather from the
                    // first owner — a ghost element
                    let src = if own.contains(&ri) {
                        p
                    } else {
                        ghost_elements += 1;
                        src_arr.mapping().owner(&ri)
                    };
                    let offset = src_arr
                        .local_offset(src, &ri)
                        .expect("owner holds its region");
                    let src0 = src.zero_based() as u32;
                    match runs.last_mut() {
                        Some(r) if r.src == src0 && r.src_off + r.len == offset => {
                            r.len += 1
                        }
                        _ => runs.push(CopyRun {
                            src: src0,
                            src_off: offset,
                            dst_off: k,
                            len: 1,
                        }),
                    }
                }
                terms.push(TermSchedule {
                    array: term.array,
                    runs,
                    elements: volume,
                    ghost_elements,
                });
            }
            per_proc.push(ProcPlan { proc: p, volume, lhs_runs, terms });
        }

        let maps: Vec<Arc<hpf_core::EffectiveDist>> =
            arrays.iter().map(|a| a.mapping().clone()).collect();
        let analysis = Arc::new(comm_analysis(&maps, np, stmt));
        let msgs = MessagePlan::build(&per_proc, &analysis);
        // The real wire cross-check: the message schedules come from
        // per-element gather enumeration, the analysis from region
        // algebra — two independent computations of the same
        // communication sets. For partitioning mappings they must agree
        // pair for pair; a divergence is a schedule bug, caught here
        // before anything executes. (Replication legitimately differs —
        // an expected `AnalysisVerdict::ReplicatedDivergence`, never
        // `Divergent`.)
        assert!(
            msgs.analysis_verdict() != crate::backend::AnalysisVerdict::Divergent,
            "message schedules diverge from the region-algebraic analysis"
        );

        let mut involved = vec![stmt.lhs];
        involved.extend(stmt.terms.iter().map(|t| t.array));
        involved.sort_unstable();
        involved.dedup();
        let mappings = involved
            .into_iter()
            .map(|k| (k, MappingId::of(arrays[k].mapping())))
            .collect();

        Ok(ExecPlan {
            lhs: stmt.lhs,
            combine: stmt.combine,
            per_proc,
            analysis,
            msgs,
            mappings,
        })
    }

    /// The frozen communication analysis of the statement.
    pub fn analysis(&self) -> &CommAnalysis {
        &self.analysis
    }

    /// The frozen analysis as a shared handle (cloning it is a refcount
    /// bump, not a heap allocation — what the zero-allocation replay path
    /// returns to callers).
    pub fn shared_analysis(&self) -> Arc<CommAnalysis> {
        self.analysis.clone()
    }

    /// The per-processor schedules.
    pub fn per_proc(&self) -> &[ProcPlan] {
        &self.per_proc
    }

    /// Index of the LHS array.
    pub fn lhs(&self) -> usize {
        self.lhs
    }

    /// How the computed operand values combine.
    pub fn combine(&self) -> Combine {
        self.combine
    }

    /// The remote runs regrouped into per-(sender, receiver) message
    /// schedules — the unit the exchange backends move and account.
    pub fn message_plan(&self) -> &MessagePlan {
        &self.msgs
    }

    /// Identity of every involved array's mapping at inspection time.
    pub fn mappings(&self) -> &[(usize, MappingId)] {
        &self.mappings
    }

    /// Mutable per-processor schedules — only for the verifier's mutation
    /// tests, which corrupt frozen plans to prove the diagnostics fire.
    #[cfg(test)]
    pub(crate) fn per_proc_mut(&mut self) -> &mut Vec<ProcPlan> {
        &mut self.per_proc
    }

    /// Mutable message plan — only for the verifier's mutation tests.
    #[cfg(test)]
    pub(crate) fn message_plan_mut(&mut self) -> &mut MessagePlan {
        &mut self.msgs
    }

    /// Total ghost elements exchanged per replay, over all processors.
    pub fn ghost_elements(&self) -> usize {
        self.per_proc.iter().map(ProcPlan::ghost_elements).sum()
    }

    /// Number of compressed runs in the schedule (store runs + copy runs,
    /// over all processors and terms).
    pub fn schedule_runs(&self) -> usize {
        self.per_proc
            .iter()
            .map(|pp| {
                pp.lhs_runs.len()
                    + pp.terms.iter().map(|t| t.runs.len()).sum::<usize>()
            })
            .sum()
    }

    /// Number of element entries an uncompressed schedule would hold (one
    /// LHS offset per computed element plus one gather ref per element
    /// read).
    pub fn schedule_elements(&self) -> usize {
        self.per_proc
            .iter()
            .map(|pp| pp.volume + pp.terms.iter().map(|t| t.elements).sum::<usize>())
            .sum()
    }

    /// Memory held by the compressed schedule entries, in bytes.
    pub fn schedule_bytes(&self) -> usize {
        self.per_proc
            .iter()
            .map(|pp| {
                pp.lhs_runs.len() * std::mem::size_of::<StoreRun>()
                    + pp.terms
                        .iter()
                        .map(|t| t.runs.len() * std::mem::size_of::<CopyRun>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Memory the equivalent uncompressed per-element schedule would hold,
    /// in bytes — the denominator of the compression win.
    pub fn uncompressed_bytes(&self) -> usize {
        self.per_proc
            .iter()
            .map(|pp| {
                pp.volume * std::mem::size_of::<usize>()
                    + pp.terms
                        .iter()
                        .map(|t| t.elements * std::mem::size_of::<GatherRef>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Element entries per compressed run — how much the run-length
    /// compression collapsed the schedule (1.0 = no compression, e.g.
    /// CYCLIC(1) gathers; ≫ 1 for block mappings).
    pub fn compression_ratio(&self) -> f64 {
        let runs = self.schedule_runs();
        if runs == 0 {
            1.0
        } else {
            self.schedule_elements() as f64 / runs as f64
        }
    }

    /// True iff every involved array still carries the exact mapping
    /// allocation the plan was inspected from.
    pub fn is_valid_for(&self, arrays: &[DistArray<f64>]) -> bool {
        self.mappings
            .iter()
            .all(|(k, id)| arrays.get(*k).is_some_and(|a| id.is(a.mapping())))
    }

    /// Replay the plan sequentially: pack/exchange every processor's
    /// operand buffers (reads only — Fortran 90 semantics even when the
    /// LHS appears on the RHS), then compute into the LHS local buffers.
    ///
    /// Allocates a throwaway [`PlanWorkspace`]; hot loops should hold one
    /// and call [`ExecPlan::execute_seq_with`] (or replay through a
    /// [`crate::PlanCache`], which keeps a workspace per plan) so warm
    /// replays allocate nothing.
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_seq(&self, arrays: &mut [DistArray<f64>]) {
        let mut ws = PlanWorkspace::for_plan(self);
        self.execute_seq_with(arrays, &mut ws);
    }

    /// Replay the plan sequentially into a reusable workspace. When `ws`
    /// was built for this plan (or has already been used with it), the
    /// replay performs **zero heap allocations**: block copies into the
    /// preallocated pack buffers, then slice-kernel compute into the LHS
    /// local storage.
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_seq_with(&self, arrays: &mut [DistArray<f64>], ws: &mut PlanWorkspace) {
        assert!(self.is_valid_for(arrays), "stale plan: an involved array was remapped");
        ws.ensure(self);
        for (pp, bufs) in self.per_proc.iter().zip(ws.bufs.iter_mut()) {
            pack_proc(arrays, pp, bufs);
        }
        let (_, locals) = arrays[self.lhs].parts_mut();
        for (pp, bufs) in self.per_proc.iter().zip(&ws.bufs) {
            compute_proc(pp, &mut locals[pp.proc.zero_based()], bufs, self.combine);
        }
    }

    /// Replay the plan with both the pack and compute phases spread over
    /// OS threads — bit-identical to [`ExecPlan::execute_seq`]. Allocates
    /// a throwaway [`PlanWorkspace`]; see [`ExecPlan::execute_par_with`].
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_par(&self, arrays: &mut [DistArray<f64>], threads: usize) {
        let mut ws = PlanWorkspace::for_plan(self);
        self.execute_par_with(arrays, threads, &mut ws);
    }

    /// Replay the plan with both phases parallel, into a reusable
    /// workspace. `threads` is capped at the simulated processor count —
    /// one simulated processor's buffers are the unit of work, so extra OS
    /// threads would only pay spawn cost. The pack phase runs as its own
    /// parallel wave (all packs read the arrays immutably and write
    /// disjoint workspace buffers), then a barrier, then the compute wave
    /// (disjoint LHS local buffers) — a BSP superstep, bit-identical to
    /// the sequential replay.
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_par_with(
        &self,
        arrays: &mut [DistArray<f64>],
        threads: usize,
        ws: &mut PlanWorkspace,
    ) {
        assert!(self.is_valid_for(arrays), "stale plan: an involved array was remapped");
        debug_assert!(
            crate::verify::workers_disjoint(&self.per_proc),
            "two workers drive the same processor: store sets would race"
        );
        ws.ensure(self);
        let np = self.per_proc.len();
        let threads = threads.clamp(1, np.max(1));
        if threads == 1 {
            // no spawn cost for the degenerate case
            return self.execute_seq_with(arrays, ws);
        }
        // plain chunked partition: ceil(np / threads) processors per thread.
        // Pack and compute are two separate spawn waves rather than one
        // wave with a barrier: pack holds a shared borrow of *all* arrays
        // (the statement may read the LHS), so safe Rust cannot also hand
        // the compute half a mutable borrow of the LHS locals within the
        // same scope.
        let chunk = np.div_ceil(threads);
        let arrays_ref: &[DistArray<f64>] = arrays;
        crossbeam::thread::scope(|scope| {
            for (pps, bufss) in self.per_proc.chunks(chunk).zip(ws.bufs.chunks_mut(chunk))
            {
                scope.spawn(move |_| {
                    for (pp, bufs) in pps.iter().zip(bufss) {
                        pack_proc(arrays_ref, pp, bufs);
                    }
                });
            }
        })
        .expect("worker thread panicked");
        let combine = self.combine;
        // per_proc is ordered 1..=np, matching the local-buffer order
        let (_, locals) = arrays[self.lhs].parts_mut();
        crossbeam::thread::scope(|scope| {
            for ((pps, bufss), locs) in self
                .per_proc
                .chunks(chunk)
                .zip(ws.bufs.chunks(chunk))
                .zip(locals.chunks_mut(chunk))
            {
                scope.spawn(move |_| {
                    for ((pp, bufs), local) in pps.iter().zip(bufss).zip(locs) {
                        compute_proc(pp, local, bufs, combine);
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }

    /// Replay through the *uncompressed* per-element schedule (expanding
    /// every run back into `(src, offset)` loads and per-element combine
    /// calls, with per-replay buffer allocation). Semantically identical
    /// to [`ExecPlan::execute_seq`]; exists as the baseline the
    /// `b13_replay_throughput` benchmark measures the compression win
    /// against.
    ///
    /// # Panics
    /// Panics if the plan is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_seq_uncompressed(&self, arrays: &mut [DistArray<f64>]) {
        assert!(self.is_valid_for(arrays), "stale plan: an involved array was remapped");
        let packed: Vec<Vec<Vec<f64>>> = self
            .per_proc
            .iter()
            .map(|pp| {
                pp.terms
                    .iter()
                    .map(|ts| {
                        let src_arr = &arrays[ts.array];
                        ts.iter_refs()
                            .map(|g| src_arr.local(g.src as usize)[g.offset])
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let (_, locals) = arrays[self.lhs].parts_mut();
        for (pp, bufs) in self.per_proc.iter().zip(&packed) {
            let local = &mut locals[pp.proc.zero_based()];
            let mut vals = vec![0.0f64; bufs.len()];
            for (k, off) in pp.iter_lhs_offsets().enumerate() {
                for (v, b) in vals.iter_mut().zip(bufs) {
                    *v = b[k];
                }
                local[off] = self.combine.apply(&vals);
            }
        }
    }
}

/// Pack phase for one processor: assemble its per-term operand buffers
/// from its own local segment plus ghost data, one block copy per
/// compressed run.
pub(crate) fn pack_proc(
    arrays: &[DistArray<f64>],
    pp: &ProcPlan,
    bufs: &mut [Vec<f64>],
) {
    for (ts, buf) in pp.terms.iter().zip(bufs) {
        let src_arr = &arrays[ts.array];
        for r in &ts.runs {
            let src = &src_arr.local(r.src as usize)[r.src_off..r.src_off + r.len];
            buf[r.dst_off..r.dst_off + r.len].copy_from_slice(src);
        }
    }
}

/// Compute phase for one processor: combine the packed operand buffers
/// into the LHS local buffer, one contiguous slice per store run.
///
/// Kernels are specialized by `(Combine, term count)` — 1-term copy is a
/// block move, the 2-term sum is a vectorizable slice loop, and the n-term
/// fallback accumulates directly into the LHS slice (safe because the pack
/// phase already snapshotted every operand).
pub(crate) fn compute_proc(
    pp: &ProcPlan,
    local: &mut [f64],
    bufs: &[Vec<f64>],
    combine: Combine,
) {
    match (combine, bufs) {
        (Combine::Copy, [b]) => {
            for r in &pp.lhs_runs {
                local[r.dst_off..r.dst_off + r.len]
                    .copy_from_slice(&b[r.pos..r.pos + r.len]);
            }
        }
        (Combine::Sum, [a, b]) => {
            for r in &pp.lhs_runs {
                let out = &mut local[r.dst_off..r.dst_off + r.len];
                let (xs, ys) = (&a[r.pos..r.pos + r.len], &b[r.pos..r.pos + r.len]);
                for ((o, x), y) in out.iter_mut().zip(xs).zip(ys) {
                    *o = x + y;
                }
            }
        }
        _ => {
            let (first, rest) = bufs.split_first().expect("validated: ≥ 1 term");
            for r in &pp.lhs_runs {
                let out = &mut local[r.dst_off..r.dst_off + r.len];
                match combine {
                    Combine::Copy => unreachable!(
                        "1-term Copy takes the specialized arm; validation \
                         rejects multi-term Copy"
                    ),
                    Combine::Sum | Combine::Average => {
                        out.copy_from_slice(&first[r.pos..r.pos + r.len]);
                        for b in rest {
                            for (o, x) in out.iter_mut().zip(&b[r.pos..r.pos + r.len])
                            {
                                *o += x;
                            }
                        }
                        if matches!(combine, Combine::Average) {
                            let n = bufs.len() as f64;
                            for o in out.iter_mut() {
                                *o /= n;
                            }
                        }
                    }
                    Combine::Max => {
                        // fold from −∞ exactly like `Combine::apply`
                        for (o, x) in out.iter_mut().zip(&first[r.pos..r.pos + r.len])
                        {
                            *o = f64::NEG_INFINITY.max(*x);
                        }
                        for b in rest {
                            for (o, x) in out.iter_mut().zip(&b[r.pos..r.pos + r.len])
                            {
                                *o = o.max(*x);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Term;
    use crate::exec::dense_reference;
    use crate::ghost::ghost_regions;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 3)) as f64,
            ));
        }
        out
    }

    fn shift_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn plan_replay_matches_reference() {
        let mut arrays = setup(40, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(40, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let expect = dense_reference(&arrays, &stmt);
        plan.execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
        // replay again on the mutated state — still the dense semantics
        let expect2 = dense_reference(&arrays, &stmt);
        plan.execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect2);
    }

    #[test]
    fn block_schedule_compresses_to_few_runs() {
        // BLOCK → BLOCK shift: each processor's gather is at most two
        // contiguous stretches (own block + one ghost cell)
        let arrays = setup(64, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(64, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        for pp in plan.per_proc() {
            assert!(pp.lhs_runs.len() <= 2, "{}: {:?}", pp.proc, pp.lhs_runs);
            for ts in &pp.terms {
                assert!(ts.runs.len() <= 2, "{}: {:?}", pp.proc, ts.runs);
            }
        }
        assert!(plan.compression_ratio() > 10.0, "{}", plan.compression_ratio());
        assert!(plan.schedule_bytes() < plan.uncompressed_bytes());
    }

    #[test]
    fn cyclic_schedule_expands_exactly() {
        // CYCLIC(1) source: every gather run has length 1, and the
        // expansion tiles the element order exactly
        let arrays = setup(32, 4, &[FormatSpec::Block, FormatSpec::Cyclic(1)]);
        let stmt = shift_stmt(32, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        for pp in plan.per_proc() {
            assert_eq!(pp.iter_lhs_offsets().count(), pp.volume);
            for ts in &pp.terms {
                assert_eq!(ts.elements, pp.volume);
                let refs: Vec<GatherRef> = ts.iter_refs().collect();
                assert_eq!(refs.len(), ts.elements);
                // dst_off ranges tile 0..elements in order
                let mut k = 0usize;
                for r in &ts.runs {
                    assert_eq!(r.dst_off, k);
                    k += r.len;
                }
                assert_eq!(k, ts.elements);
            }
        }
    }

    #[test]
    fn uncompressed_baseline_matches_compressed() {
        let mut a = setup(48, 4, &[FormatSpec::Cyclic(2), FormatSpec::Block]);
        let mut b = a.clone();
        let stmt = shift_stmt(48, &a);
        let plan = ExecPlan::inspect(&a, &stmt).unwrap();
        plan.execute_seq(&mut a);
        plan.execute_seq_uncompressed(&mut b);
        assert_eq!(a[0].to_dense(), b[0].to_dense());
    }

    #[test]
    fn workspace_reuse_is_stable() {
        let mut arrays = setup(40, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(40, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let mut ws = PlanWorkspace::for_plan(&plan);
        assert!(ws.matches(&plan));
        for _ in 0..3 {
            let expect = dense_reference(&arrays, &stmt);
            plan.execute_seq_with(&mut arrays, &mut ws);
            assert_eq!(arrays[0].to_dense(), expect);
        }
        // a workspace built for another plan is resized, not trusted
        let other = setup(24, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt2 = shift_stmt(24, &other);
        let plan2 = ExecPlan::inspect(&other, &stmt2).unwrap();
        assert!(!ws.matches(&plan2));
        let mut other = other;
        let expect = dense_reference(&other, &stmt2);
        plan2.execute_seq_with(&mut other, &mut ws);
        assert!(ws.matches(&plan2));
        assert_eq!(other[0].to_dense(), expect);
    }

    #[test]
    fn plan_ghosts_match_region_algebra() {
        let arrays = setup(64, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(64, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let maps: Vec<_> = arrays.iter().map(|a| a.mapping().clone()).collect();
        let ghosts = ghost_regions(&maps, 4, &stmt);
        for (pp, g) in plan.per_proc().iter().zip(&ghosts) {
            assert_eq!(pp.ghost_elements(), g.volume, "{}", pp.proc);
        }
        // and both agree with the frozen analysis's remote reads
        assert_eq!(plan.ghost_elements() as u64, plan.analysis().remote_reads);
    }

    #[test]
    fn aliasing_shift_reads_old_values() {
        // A(2:16) = A(1:15) with the LHS on the RHS: pack-before-compute
        // must preserve Fortran array-assignment semantics
        let mut arrays = setup(16, 4, &[FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ExecPlan::inspect(&arrays, &stmt).unwrap().execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn stale_plan_detected() {
        let mut arrays = setup(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(32, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        assert!(plan.is_valid_for(&arrays));
        // remap A1 to a different allocation → plan must refuse
        let remapped = setup(32, 4, &[FormatSpec::Block, FormatSpec::Cyclic(1)]);
        arrays[1] = remapped.into_iter().nth(1).unwrap();
        assert!(!plan.is_valid_for(&arrays));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a = arrays;
            plan.execute_seq(&mut a);
        }));
        assert!(res.is_err(), "executing a stale plan must panic, not corrupt");
    }

    #[test]
    fn replicated_lhs_keeps_copies_coherent() {
        let dom = IndexDomain::of_shape(&[12]).unwrap();
        let rep = Arc::new(hpf_core::EffectiveDist::Replicated {
            domain: dom,
            procs: hpf_core::ProcSet::all(3),
        });
        let mut ds = DataSpace::new(3);
        let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let mut arrays = vec![
            DistArray::new("R", rep, 3, 0.0),
            DistArray::from_fn("B", ds.effective(b).unwrap(), 3, |i| (i[0] * 7) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 12)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 12)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        ExecPlan::inspect(&arrays, &stmt).unwrap().execute_seq(&mut arrays);
        assert_eq!(arrays[0].to_dense(), expect);
        // every replica holds the full updated copy
        for p in (1..=3u32).map(ProcId) {
            for i in arrays[0].domain().clone().iter() {
                let off = arrays[0].local_offset(p, &i).unwrap();
                assert_eq!(arrays[0].local(p.zero_based())[off], (i[0] * 7) as f64);
            }
        }
    }
}
