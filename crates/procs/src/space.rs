use crate::{
    ArrangementId, ArrangementKind, ProcArrangement, ProcId, ProcsError, ScalarPolicy,
};
use hpf_index::{Idx, IndexDomain};
use std::collections::HashMap;

/// The abstract processor arrangement AP plus every declared processor
/// arrangement (§3).
///
/// AP is a linear numbering `1..=ap_size` of the physical processors.
/// Declared arrangements are laid onto AP column-major at an *equivalence
/// offset*; two arrangements whose AP footprints overlap share abstract —
/// and therefore physical — processors, exactly like Fortran 90
/// `EQUIVALENCE` storage association.
///
/// ```
/// use hpf_index::IndexDomain;
/// use hpf_procs::{ProcSpace, ProcId};
///
/// let mut ps = ProcSpace::new(32);
/// let pr = ps.declare_array("PR", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
/// let grid = ps.declare_array("GRID", IndexDomain::of_shape(&[4, 8]).unwrap()).unwrap();
/// // GRID(2,3) is AP processor 1 + (2-1) + (3-1)*4 = P10 ...
/// assert_eq!(ps.ap_of(grid, &hpf_index::Idx::d2(2, 3)).unwrap(), ProcId(10));
/// // ... and shares its physical processor with PR(10).
/// assert_eq!(ps.ap_of(pr, &hpf_index::Idx::d1(10)).unwrap(), ProcId(10));
/// ```
#[derive(Debug, Clone)]
pub struct ProcSpace {
    ap_size: usize,
    arrangements: Vec<ProcArrangement>,
    by_name: HashMap<String, ArrangementId>,
}

impl ProcSpace {
    /// Create a processor space whose AP has `ap_size` processors.
    ///
    /// # Panics
    /// Panics if `ap_size == 0`.
    pub fn new(ap_size: usize) -> Self {
        assert!(ap_size > 0, "AP must contain at least one processor");
        ProcSpace { ap_size, arrangements: Vec::new(), by_name: HashMap::new() }
    }

    /// Number of abstract processors in AP.
    pub fn ap_size(&self) -> usize {
        self.ap_size
    }

    /// All abstract processors, `P1..=Pn`.
    pub fn all_procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        (1..=self.ap_size as u32).map(ProcId)
    }

    /// Declare a processor array arrangement at equivalence offset 0.
    pub fn declare_array(
        &mut self,
        name: &str,
        domain: IndexDomain,
    ) -> Result<ArrangementId, ProcsError> {
        self.declare_array_at(name, domain, 0)
    }

    /// Declare a processor array arrangement whose first element is
    /// associated with AP position `offset` (0-based) — the general form of
    /// §3 storage association.
    pub fn declare_array_at(
        &mut self,
        name: &str,
        domain: IndexDomain,
        offset: usize,
    ) -> Result<ArrangementId, ProcsError> {
        if domain.is_empty() || domain.rank() == 0 {
            return Err(ProcsError::EmptyArrangement(name.to_string()));
        }
        let size = domain.size();
        if offset + size > self.ap_size {
            return Err(ProcsError::DoesNotFitAp {
                name: name.to_string(),
                offset,
                size,
                ap: self.ap_size,
            });
        }
        self.insert(name, ArrangementKind::Array(domain), offset)
    }

    /// Declare a *reshaped view* of an existing arrangement: a new name
    /// and index domain over exactly the same abstract processors (same
    /// equivalence offset, same total size).
    ///
    /// This is the §9 Vienna Fortran facility the paper mentions
    /// ("processor arrays could also be reshaped, now expressed by means
    /// of the HPF VIEW attribute"): `VIEW G(4,8) OF PR(32)`.
    pub fn declare_reshape(
        &mut self,
        name: &str,
        domain: IndexDomain,
        of: ArrangementId,
    ) -> Result<ArrangementId, ProcsError> {
        let base = self.get(of);
        if domain.is_empty() || domain.rank() == 0 {
            return Err(ProcsError::EmptyArrangement(name.to_string()));
        }
        if domain.size() != base.size() {
            return Err(ProcsError::DoesNotFitAp {
                name: name.to_string(),
                offset: base.offset,
                size: domain.size(),
                ap: base.size(),
            });
        }
        let offset = base.offset;
        self.insert(name, ArrangementKind::Array(domain), offset)
    }

    /// Declare a conceptually scalar processor arrangement.
    pub fn declare_scalar(
        &mut self,
        name: &str,
        policy: ScalarPolicy,
    ) -> Result<ArrangementId, ProcsError> {
        if let ScalarPolicy::Arbitrary(p) = policy {
            if p.0 == 0 || p.zero_based() >= self.ap_size {
                return Err(ProcsError::BadProcessorIndex(name.to_string()));
            }
        }
        self.insert(name, ArrangementKind::Scalar(policy), 0)
    }

    fn insert(
        &mut self,
        name: &str,
        kind: ArrangementKind,
        offset: usize,
    ) -> Result<ArrangementId, ProcsError> {
        if self.by_name.contains_key(name) {
            return Err(ProcsError::DuplicateName(name.to_string()));
        }
        let id = ArrangementId(self.arrangements.len());
        self.arrangements.push(ProcArrangement { name: name.to_string(), kind, offset });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up an arrangement by name.
    pub fn by_name(&self, name: &str) -> Result<ArrangementId, ProcsError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ProcsError::UnknownArrangement(name.to_string()))
    }

    /// The arrangement record.
    pub fn get(&self, id: ArrangementId) -> &ProcArrangement {
        &self.arrangements[id.0]
    }

    /// All declared arrangements.
    pub fn arrangements(&self) -> impl Iterator<Item = (ArrangementId, &ProcArrangement)> {
        self.arrangements.iter().enumerate().map(|(k, a)| (ArrangementId(k), a))
    }

    /// Map an arrangement index to its abstract processor: the §3 storage
    /// association (column-major position + equivalence offset, 1-based).
    pub fn ap_of(&self, id: ArrangementId, idx: &Idx) -> Result<ProcId, ProcsError> {
        let arr = self.get(id);
        match &arr.kind {
            ArrangementKind::Scalar(_) => Err(ProcsError::ScalarArrangement(arr.name.clone())),
            ArrangementKind::Array(dom) => {
                let pos = dom
                    .linearize(idx)
                    .map_err(|_| ProcsError::BadProcessorIndex(arr.name.clone()))?;
                Ok(ProcId((arr.offset + pos) as u32 + 1))
            }
        }
    }

    /// The set of abstract processors a scalar arrangement's data resides
    /// on, under its [`ScalarPolicy`].
    pub fn scalar_residence(&self, id: ArrangementId) -> Result<Vec<ProcId>, ProcsError> {
        let arr = self.get(id);
        match &arr.kind {
            ArrangementKind::Array(_) => Err(ProcsError::BadProcessorIndex(arr.name.clone())),
            ArrangementKind::Scalar(policy) => Ok(match policy {
                ScalarPolicy::ControlProcessor => vec![ProcId(1)],
                ScalarPolicy::Arbitrary(p) => vec![*p],
                ScalarPolicy::ReplicateAll => self.all_procs().collect(),
            }),
        }
    }

    /// Inverse of [`ProcSpace::ap_of`]: the arrangement index living on
    /// abstract processor `p`, if `p` is inside the arrangement's footprint.
    pub fn index_of(&self, id: ArrangementId, p: ProcId) -> Option<Idx> {
        let arr = self.get(id);
        let dom = arr.domain()?;
        let pos = p.zero_based().checked_sub(arr.offset)?;
        if pos >= dom.size() {
            return None;
        }
        Some(dom.delinearize(pos).expect("pos < size"))
    }

    /// True iff the two arrangements share at least one abstract processor
    /// ("The sharing of an abstract processor implies the sharing of the
    /// associated physical processor", §3).
    pub fn overlap(&self, a: ArrangementId, b: ArrangementId) -> bool {
        let (aa, ab) = (self.get(a), self.get(b));
        let (s1, e1) = (aa.offset, aa.offset + aa.size());
        let (s2, e2) = (ab.offset, ab.offset + ab.size());
        s1 < e2 && s2 < e1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut ps = ProcSpace::new(32);
        let pr = ps.declare_array("PR", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        assert_eq!(ps.by_name("PR").unwrap(), pr);
        assert!(ps.by_name("NOPE").is_err());
        assert_eq!(ps.get(pr).name(), "PR");
        assert_eq!(ps.get(pr).size(), 32);
    }

    #[test]
    fn duplicate_rejected() {
        let mut ps = ProcSpace::new(4);
        ps.declare_array("P", IndexDomain::of_shape(&[4]).unwrap()).unwrap();
        assert_eq!(
            ps.declare_array("P", IndexDomain::of_shape(&[2]).unwrap()),
            Err(ProcsError::DuplicateName("P".into()))
        );
    }

    #[test]
    fn must_fit_ap() {
        let mut ps = ProcSpace::new(8);
        assert!(matches!(
            ps.declare_array("BIG", IndexDomain::of_shape(&[9]).unwrap()),
            Err(ProcsError::DoesNotFitAp { .. })
        ));
        assert!(matches!(
            ps.declare_array_at("OFF", IndexDomain::of_shape(&[8]).unwrap(), 1),
            Err(ProcsError::DoesNotFitAp { .. })
        ));
    }

    #[test]
    fn empty_arrangement_rejected() {
        let mut ps = ProcSpace::new(8);
        assert_eq!(
            ps.declare_array("E", IndexDomain::standard(&[(5, 4)]).unwrap()),
            Err(ProcsError::EmptyArrangement("E".into()))
        );
    }

    #[test]
    fn column_major_storage_association() {
        let mut ps = ProcSpace::new(32);
        let grid = ps.declare_array("G", IndexDomain::of_shape(&[4, 8]).unwrap()).unwrap();
        // Fortran EQUIVALENCE: G(1,1)→P1, G(2,1)→P2, ..., G(1,2)→P5 ...
        assert_eq!(ps.ap_of(grid, &Idx::d2(1, 1)).unwrap(), ProcId(1));
        assert_eq!(ps.ap_of(grid, &Idx::d2(2, 1)).unwrap(), ProcId(2));
        assert_eq!(ps.ap_of(grid, &Idx::d2(1, 2)).unwrap(), ProcId(5));
        assert_eq!(ps.ap_of(grid, &Idx::d2(4, 8)).unwrap(), ProcId(32));
    }

    #[test]
    fn equivalence_offset_and_overlap() {
        let mut ps = ProcSpace::new(16);
        let a = ps.declare_array("A", IndexDomain::of_shape(&[8]).unwrap()).unwrap();
        let b = ps.declare_array_at("B", IndexDomain::of_shape(&[8]).unwrap(), 8).unwrap();
        let c = ps.declare_array_at("C", IndexDomain::of_shape(&[4]).unwrap(), 6).unwrap();
        assert_eq!(ps.ap_of(b, &Idx::d1(1)).unwrap(), ProcId(9));
        assert!(!ps.overlap(a, b));
        assert!(ps.overlap(a, c));
        assert!(ps.overlap(b, c));
    }

    #[test]
    fn index_of_inverse() {
        let mut ps = ProcSpace::new(40);
        let g = ps
            .declare_array_at("G", IndexDomain::standard(&[(0, 3), (1, 5)]).unwrap(), 4)
            .unwrap();
        for i in ps.get(g).domain().unwrap().clone().iter() {
            let p = ps.ap_of(g, &i).unwrap();
            assert_eq!(ps.index_of(g, p), Some(i));
        }
        assert_eq!(ps.index_of(g, ProcId(1)), None); // before the offset
        assert_eq!(ps.index_of(g, ProcId(40)), None); // past the footprint
    }

    #[test]
    fn reshape_views_share_processors() {
        let mut ps = ProcSpace::new(32);
        let pr = ps.declare_array("PR", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
        let g = ps
            .declare_reshape("G", IndexDomain::of_shape(&[4, 8]).unwrap(), pr)
            .unwrap();
        // VIEW: G(i,j) is the same physical processor as PR(i + 4(j−1))
        for i in 1..=4i64 {
            for j in 1..=8i64 {
                assert_eq!(
                    ps.ap_of(g, &Idx::d2(i, j)).unwrap(),
                    ps.ap_of(pr, &Idx::d1(i + 4 * (j - 1))).unwrap()
                );
            }
        }
        assert!(ps.overlap(pr, g));
        // size mismatch rejected
        assert!(matches!(
            ps.declare_reshape("H", IndexDomain::of_shape(&[4, 4]).unwrap(), pr),
            Err(ProcsError::DoesNotFitAp { .. })
        ));
    }

    #[test]
    fn reshape_of_offset_arrangement() {
        let mut ps = ProcSpace::new(16);
        let half = ps
            .declare_array_at("HALF", IndexDomain::of_shape(&[8]).unwrap(), 8)
            .unwrap();
        let v = ps
            .declare_reshape("V", IndexDomain::of_shape(&[2, 4]).unwrap(), half)
            .unwrap();
        // the view inherits the equivalence offset
        assert_eq!(ps.ap_of(v, &Idx::d2(1, 1)).unwrap(), ProcId(9));
        assert_eq!(ps.ap_of(v, &Idx::d2(2, 4)).unwrap(), ProcId(16));
    }

    #[test]
    fn scalar_arrangement_policies() {
        let mut ps = ProcSpace::new(4);
        let ctl = ps.declare_scalar("CTL", ScalarPolicy::ControlProcessor).unwrap();
        let arb = ps.declare_scalar("ARB", ScalarPolicy::Arbitrary(ProcId(3))).unwrap();
        let rep = ps.declare_scalar("REP", ScalarPolicy::ReplicateAll).unwrap();
        assert_eq!(ps.scalar_residence(ctl).unwrap(), vec![ProcId(1)]);
        assert_eq!(ps.scalar_residence(arb).unwrap(), vec![ProcId(3)]);
        assert_eq!(ps.scalar_residence(rep).unwrap().len(), 4);
        assert!(ps.ap_of(ctl, &Idx::d1(1)).is_err());
        assert!(ps.declare_scalar("BAD", ScalarPolicy::Arbitrary(ProcId(9))).is_err());
    }
}
