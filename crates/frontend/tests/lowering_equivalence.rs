//! Lowering equivalence: for random directive combinations, the program
//! lowered from source must compute exactly what a hand-built runtime
//! program computes, and both must match the dense element-wise oracle.
//!
//! This is the contract of the end-to-end pipeline: the frontend adds a
//! surface syntax, never semantics.

use hpf_core::{AlignExpr, AlignSpec, DataSpace, DistributeSpec, FormatSpec};
use hpf_frontend::{Elaborator, Lowerer};
use hpf_index::{IndexDomain, Section, Triplet};
use hpf_runtime::{Assignment, Backend, Combine, DistArray, Program, Session, Term};
use proptest::prelude::*;

fn fmt_text(fmt: usize, cyc: i64) -> (String, FormatSpec) {
    match fmt {
        0 => ("BLOCK".into(), FormatSpec::Block),
        1 => ("CYCLIC".into(), FormatSpec::Cyclic(1)),
        _ => (format!("CYCLIC({cyc})"), FormatSpec::Cyclic(cyc as u64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `A` aligned identically to a distributed `B`, a FORALL fill, a
    /// scalar fill, and a shifted copy — lowered from source and built by
    /// hand, run for several timesteps on both backends.
    #[test]
    fn lowered_equals_handbuilt_equals_oracle(
        n in 8i64..24,
        np in 2usize..5,
        fmt in 0usize..3,
        cyc in 2i64..5,
        off in 0i64..3,
        steps in 1usize..4,
        channels in 0usize..2,
    ) {
        let off = off.min(n - 2);
        let (ftext, fspec) = fmt_text(fmt, cyc);
        let src = format!(
            "      PROGRAM PROP\n\
             \x20     PARAMETER (N = {n})\n\
             \x20     REAL A(N), B(N)\n\
             !HPF$ PROCESSORS P({np})\n\
             !HPF$ DISTRIBUTE B({ftext}) TO P\n\
             !HPF$ ALIGN A(I) WITH B(I)\n\
             \x20     FORALL (I = 1:N) B(I) = 2*I\n\
             \x20     A = 1\n\
             \x20     A(1+{off}:N) = B(1:N-{off})\n\
             \x20     END\n"
        );

        // source → elaborate → lower
        let elab = Elaborator::new(np).run(&src).expect("elaborates");
        let (mut lowered, diags) = Lowerer::lower(&elab);
        prop_assert!(diags.is_empty(), "{diags:?}");

        // the same program, hand-built against the runtime API
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n as usize]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![fspec])).unwrap();
        ds.align(a, b, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0)])).unwrap();
        let da = DistArray::new("A", ds.effective(a).unwrap(), np, 1.0);
        let db = DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (2 * i[0]) as f64);
        let mut hand = Program::new(vec![da, db]);
        let doms: Vec<IndexDomain> =
            hand.arrays.iter().map(|x| x.domain().clone()).collect();
        let dom_refs: Vec<&IndexDomain> = doms.iter().collect();
        hand.push(
            Assignment::new(
                0,
                Section::from_triplets(vec![Triplet::new(1 + off, n, 1).unwrap()]),
                vec![Term::new(
                    1,
                    Section::from_triplets(vec![Triplet::new(1, n - off, 1).unwrap()]),
                )],
                Combine::Copy,
                &dom_refs,
            )
            .unwrap(),
        )
        .unwrap();

        // run both; the lowered side also checks itself against the oracle
        let backend = if channels == 1 { Backend::Channels } else { Backend::SharedMem };
        lowered.run_verified(steps, backend).expect("lowered matches its dense oracle");
        let mut hand = Session::new(hand).backend(backend);
        hand.run(steps as u64).unwrap();
        let hand = hand.into_program();
        for (name, k) in [("A", 0usize), ("B", 1usize)] {
            let li = lowered.array(name).expect("lowered array");
            prop_assert_eq!(
                lowered.program.arrays[li].to_dense(),
                hand.arrays[k].to_dense(),
                "{} diverges between lowered and hand-built",
                name
            );
        }
    }

    /// FORALL reference form with strides and constant offsets lowers to
    /// the same section assignment the equivalent triplet syntax does.
    #[test]
    fn forall_refs_equal_explicit_sections(
        n in 8i64..20,
        np in 2usize..5,
        stride in 1i64..3,
    ) {
        let hi = n - 1;
        let forall_src = format!(
            "      PROGRAM F\n\
             \x20     PARAMETER (N = {n})\n\
             \x20     REAL A(N), B(N)\n\
             !HPF$ DISTRIBUTE A(BLOCK)\n\
             !HPF$ DISTRIBUTE B(CYCLIC)\n\
             \x20     FORALL (I = 1:N) B(I) = 3*I\n\
             \x20     FORALL (I = 1:{hi}:{stride}) A(I) = B(I+1)\n\
             \x20     END\n"
        );
        let triplet_src = format!(
            "      PROGRAM T\n\
             \x20     PARAMETER (N = {n})\n\
             \x20     REAL A(N), B(N)\n\
             !HPF$ DISTRIBUTE A(BLOCK)\n\
             !HPF$ DISTRIBUTE B(CYCLIC)\n\
             \x20     FORALL (I = 1:N) B(I) = 3*I\n\
             \x20     A(1:{hi}:{stride}) = B(2:{hi}+1:{stride})\n\
             \x20     END\n"
        );
        let run = |src: &str| {
            let elab = Elaborator::new(np).run(src).expect("elaborates");
            let (mut low, diags) = Lowerer::lower(&elab);
            assert!(diags.is_empty(), "{diags:?}");
            low.run_verified(2, Backend::SharedMem).expect("oracle");
            let a = low.array("A").unwrap();
            low.program.arrays[a].to_dense()
        };
        prop_assert_eq!(run(&forall_src), run(&triplet_src));
    }
}
