//! Quickstart: the paper's model in twenty lines.
//!
//! Declares two arrays over four processors, distributes one `CYCLIC`,
//! aligns the other to it, and shows the §2.3 collocation guarantee plus
//! the §8.2 inquiry machinery.
//!
//! Run with: `cargo run --example quickstart`

use hpf::prelude::*;

fn main() -> Result<(), HpfError> {
    // a machine with 4 abstract processors (the paper's AP, §3)
    let mut ds = DataSpace::new(4);

    // REAL B(16), A(16)
    let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap())?;
    let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap())?;

    // !HPF$ DISTRIBUTE B(CYCLIC)          (§4.1.3)
    ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)]))?;

    // !HPF$ ALIGN A(I) WITH B(17-I)       (§5: reversal alignment)
    ds.align(a, b, &AlignSpec::with_exprs(1, vec![-AlignExpr::dummy(0) + 17]))?;

    println!("B is CYCLIC over 4 processors; A(I) is aligned WITH B(17-I).\n");
    println!("{:<6} {:<12} {:<6} {:<12}", "B(i)", "owner", "A(i)", "owner");
    for i in 1..=8 {
        println!(
            "B({i:<2})  {:<12} A({i:<2})  {:<12}",
            ds.owners(b, &Idx::d1(i))?.to_string(),
            ds.owners(a, &Idx::d1(i))?.to_string(),
        );
    }

    // the §2.3 guarantee: A(i) and B(17−i) always share a processor
    for i in 1..=16 {
        assert_eq!(ds.owners(a, &Idx::d1(i))?, ds.owners(b, &Idx::d1(17 - i))?);
    }
    println!("\ncollocation guarantee holds: A(i) lives with B(17-i) for all i");

    // inquiry (§8.2): descriptors for both arrays
    println!("\ndescriptors:");
    for id in [b, a] {
        println!("  {}", inquiry::describe(&ds, id));
    }

    // per-processor load picture
    println!("\nownership histogram of B:");
    for (p, n) in inquiry::ownership_histogram(&ds, b)? {
        println!("  {p}: {n} elements");
    }

    // The same program as a source file, through the whole pipeline:
    // elaborate examples/programs/quickstart.hpf, check it produces the
    // very mapping built by hand above, then lower and run it against
    // the dense oracle.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/programs/quickstart.hpf"
    ))
    .expect("examples/programs/quickstart.hpf");
    let elab = Elaborator::new(4).run(&src).expect("quickstart.hpf elaborates");
    let (ea, eb) = (elab.array("A").unwrap(), elab.array("B").unwrap());
    for i in 1..=16 {
        assert_eq!(ds.owners(a, &Idx::d1(i))?, elab.space.owners(ea, &Idx::d1(i))?);
        assert_eq!(ds.owners(b, &Idx::d1(i))?, elab.space.owners(eb, &Idx::d1(i))?);
    }
    let (mut lowered, diags) = Lowerer::lower(&elab);
    assert!(diags.is_empty(), "{diags:?}");
    lowered.run_verified(1, Backend::SharedMem).expect("matches the dense oracle");
    println!(
        "\nquickstart.hpf: same mapping as above; {} statement(s) ran and match the \
         dense oracle",
        lowered.statements.len()
    );
    Ok(())
}
