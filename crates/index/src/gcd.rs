//! Integer number theory needed for strided-set intersection.
//!
//! Intersecting two subscript triplets is exactly the problem of solving a
//! pair of simultaneous congruences over a bounded interval, so the crate
//! carries a small, exact (i128-based) CRT solver.

/// Greatest common divisor (non-negative result; `gcd(0, 0) == 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// Least common multiple computed in `i128` to avoid intermediate overflow.
///
/// Returns `None` if the result does not fit in `i64` or both inputs are 0.
pub fn lcm(a: i64, b: i64) -> Option<i64> {
    if a == 0 || b == 0 {
        return None;
    }
    let g = gcd(a, b) as i128;
    let l = (a as i128 / g) * b as i128;
    let l = l.abs();
    i64::try_from(l).ok()
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)` (`g ≥ 0`).
pub fn extended_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    let (mut old_r, mut r) = (a as i128, b as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    if old_r < 0 {
        (old_r, old_s, old_t) = (-old_r, -old_s, -old_t);
    }
    (old_r as i64, old_s as i64, old_t as i64)
}

/// Solve `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)` for positive moduli.
///
/// Returns `Some((x0, l))` where `l = lcm(m1, m2)` and `x0` is the unique
/// solution with `0 ≤ x0 < l`, or `None` if the congruences are
/// incompatible (i.e. `gcd(m1, m2)` does not divide `r1 − r2`).
pub fn solve_crt(r1: i64, m1: i64, r2: i64, m2: i64) -> Option<(i64, i64)> {
    debug_assert!(m1 > 0 && m2 > 0);
    let (g, p, _q) = extended_gcd(m1, m2);
    let diff = r2 as i128 - r1 as i128;
    if diff % g as i128 != 0 {
        return None;
    }
    let l = lcm(m1, m2)?;
    // x = r1 + m1 * (diff/g) * p  (mod lcm)
    let m1_i = m1 as i128;
    let l_i = l as i128;
    let k = (diff / g as i128) % (l_i / m1_i);
    let mut x = (r1 as i128 + m1_i * ((k * p as i128) % (l_i / m1_i))) % l_i;
    if x < 0 {
        x += l_i;
    }
    debug_assert_eq!((x - r1 as i128).rem_euclid(m1 as i128), 0);
    debug_assert_eq!((x - r2 as i128).rem_euclid(m2 as i128), 0);
    Some((x as i64, l))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(-4, 6), Some(12));
        assert_eq!(lcm(0, 6), None);
        assert_eq!(lcm(i64::MAX, 2), None); // overflow
    }

    #[test]
    fn extended_gcd_identity() {
        for (a, b) in [(12, 18), (-12, 18), (7, 13), (100, 0), (0, 0), (-5, -10)] {
            let (g, x, y) = extended_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a as i128 * x as i128 + b as i128 * y as i128, g as i128);
        }
    }

    #[test]
    fn crt_coprime() {
        // x ≡ 2 (mod 3), x ≡ 3 (mod 5) → x ≡ 8 (mod 15)
        assert_eq!(solve_crt(2, 3, 3, 5), Some((8, 15)));
    }

    #[test]
    fn crt_non_coprime_compatible() {
        // x ≡ 2 (mod 4), x ≡ 6 (mod 8) → x ≡ 6 (mod 8)
        assert_eq!(solve_crt(2, 4, 6, 8), Some((6, 8)));
    }

    #[test]
    fn crt_incompatible() {
        // x ≡ 1 (mod 2), x ≡ 0 (mod 4) has no solution
        assert_eq!(solve_crt(1, 2, 0, 4), None);
    }

    #[test]
    fn crt_negative_residues() {
        let (x, l) = solve_crt(-1, 3, -2, 5).unwrap();
        assert_eq!(l, 15);
        assert!((0..15).contains(&x));
        assert_eq!((x - (-1)).rem_euclid(3), 0);
        assert_eq!((x - (-2)).rem_euclid(5), 0);
    }

    #[test]
    fn crt_exhaustive_small() {
        for m1 in 1..10i64 {
            for m2 in 1..10i64 {
                for r1 in 0..m1 {
                    for r2 in 0..m2 {
                        let brute: Vec<i64> = (0..200)
                            .filter(|x| x % m1 == r1 && x % m2 == r2)
                            .collect();
                        match solve_crt(r1, m1, r2, m2) {
                            Some((x0, l)) => {
                                assert!(!brute.is_empty());
                                assert_eq!(brute[0], x0 % l + if x0 % l < 0 { l } else { 0 });
                                if brute.len() > 1 {
                                    assert_eq!(brute[1] - brute[0], l);
                                }
                            }
                            None => assert!(brute.is_empty(), "m1={m1} m2={m2} r1={r1} r2={r2}"),
                        }
                    }
                }
            }
        }
    }
}
