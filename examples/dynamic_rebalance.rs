//! Dynamic redistribution paying for itself (§4.2's motivation).
//!
//! A two-phase computation over `X(1:N)`:
//!
//! * phase 1 — uniform sweeps: every element costs 1 op; `BLOCK` is ideal;
//! * phase 2 — skewed sweeps: element `i` costs ~`i` ops; `BLOCK` leaves
//!   the last processor with ~2× the average load.
//!
//! A `DYNAMIC` array can `REDISTRIBUTE` to a weight-balanced
//! `GENERAL_BLOCK` between the phases. This example prices both plans —
//! static BLOCK vs redistribute-in-the-middle — including the *cost of the
//! redistribution itself* (computed exactly by `remap_analysis`), and
//! shows the crossover as phase-2 gets longer.
//!
//! Run with: `cargo run --release --example dynamic_rebalance`

use hpf::prelude::*;
use hpf::runtime::remap_analysis;
use hpf_core::GeneralBlock;

const N: usize = 100_000;
const NP: usize = 8;

fn phase_time(machine: &Machine, map: &EffectiveDist, weights: &[u64]) -> f64 {
    let mut loads = vec![0u64; NP];
    for p in 1..=NP as u32 {
        for i in map.owned_region(ProcId(p)).iter() {
            loads[(p - 1) as usize] += weights[(i[0] - 1) as usize];
        }
    }
    machine.superstep_time(&loads, &CommStats::new()).total_time()
}

fn main() {
    let machine = Machine::new(NP, Topology::Ring, CostModel::default());
    let uniform: Vec<u64> = vec![1; N];
    let skewed: Vec<u64> = (1..=N as u64).map(|i| i / 5000 + 30).collect();

    // mappings
    let mut ds = DataSpace::new(NP);
    let x = ds.declare("X", IndexDomain::of_shape(&[N]).unwrap()).unwrap();
    ds.set_dynamic(x);
    ds.distribute(x, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let block = ds.effective(x).unwrap();

    let gb = GeneralBlock::balanced(&skewed, NP).unwrap();
    let bounds: Vec<i64> = (1..NP).map(|j| gb.bound(j)).collect();
    ds.redistribute(x, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(bounds)]))
        .unwrap();
    let balanced = ds.effective(x).unwrap();

    // the redistribution event itself
    let remap = remap_analysis(&block, &balanced, NP);
    let remap_time = machine
        .superstep_time(&[], &remap.comm)
        .total_time();
    println!(
        "REDISTRIBUTE X(BLOCK) → X(GENERAL_BLOCK): {} of {} elements move \
         ({:.1}%), est. {:.0} µs\n",
        remap.moved,
        N,
        remap.moved_fraction() * 100.0,
        remap_time
    );

    let t1_block = phase_time(&machine, &block, &uniform);
    let t2_block = phase_time(&machine, &block, &skewed);
    let t2_bal = phase_time(&machine, &balanced, &skewed);

    println!(
        "{:>14} {:>16} {:>22} {:>10}",
        "phase-2 sweeps", "static BLOCK (µs)", "redistribute plan (µs)", "winner"
    );
    for sweeps in [0u32, 1, 2, 5, 10, 20, 50] {
        let s = sweeps as f64;
        let static_plan = t1_block + s * t2_block;
        let dynamic_plan = t1_block + remap_time + s * t2_bal;
        println!(
            "{sweeps:>14} {static_plan:>17.0} {dynamic_plan:>22.0} {:>10}",
            if dynamic_plan < static_plan { "dynamic" } else { "static" }
        );
    }
    println!(
        "\nthe paper's §4.2 point: REDISTRIBUTE is worth a one-off data motion\n\
         once enough skewed work follows — and GENERAL_BLOCK (not available\n\
         in HPF) is what the balanced target distribution is written in."
    );
}
