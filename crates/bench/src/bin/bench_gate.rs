//! CI perf-regression gate for the replay benchmarks.
//!
//! Measures warm-replay throughput (Melem/s) of the `b13` workload set
//! (compressed sequential replay), the `b14` set (the same plans through
//! both exchange backends), the `b15` set (the whole-timestep fusion
//! workload: fused program plan vs per-statement replay), and the `b16`
//! set (the self-adaptive redistribution hotspot, with deterministic
//! machine-model-priced before/after-remap entries) — the workloads
//! come from [`hpf_bench::replay`], the same builders the benches use, so
//! the gate always polices exactly what the benches report. Emits
//! `BENCH_b13.json` through `BENCH_b16.json` and compares
//! each entry against
//! the committed baselines under `crates/bench/baselines/` with a
//! relative tolerance (`BENCH_TOLERANCE`, default 0.30 = ±30%). A
//! measurement below `baseline × (1 − tolerance)` is a regression and
//! fails the process with a non-zero exit code.
//!
//! Each report also carries **hardware-neutral ratio entries** (e.g.
//! compressed vs per-element replay speedup, channels vs shared-mem) so
//! the gate keeps a machine-independent signal even when absolute
//! Melem/s baselines were recorded on different hardware than the CI
//! runner; on a slower machine the absolute floors can be relaxed via
//! `BENCH_TOLERANCE` while the ratios still bind.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p hpf-bench --bin bench_gate                  # gate
//! cargo run --release -p hpf-bench --bin bench_gate -- --write-baseline
//! ```
//!
//! Honors `CRITERION_SMOKE=1` (shorter measurement budget, tolerance
//! still enforced) and `BENCH_OUT_DIR` (where the JSON reports land,
//! default `.`).

use hpf_bench::replay::{
    arrays_1d, arrays_2d, cyclic_transpose, replay_elements, shift_1d, stencil_2d,
};
use hpf_core::FormatSpec;
use hpf_runtime::{
    ChannelsBackend, ExchangeBackend, ExecPlan, PlanWorkspace, SharedMemBackend,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Throughput of one warm replay routine in Melem/s: warm up once, then
/// take the best of `reps` bounded measurement windows (best-of dampens
/// scheduler noise, which only ever slows a run down).
fn measure(elems: usize, budget: Duration, reps: usize, mut replay: impl FnMut()) -> f64 {
    replay(); // warm: plans, workspaces, worker fleets
    let mut best = f64::MIN;
    for _ in 0..reps {
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget {
            replay();
            iters += 1;
        }
        let rate = (elems as f64 * iters as f64) / start.elapsed().as_secs_f64() / 1.0e6;
        best = best.max(rate);
    }
    best
}

struct Entry {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

impl Entry {
    fn rate(name: &'static str, value: f64) -> Entry {
        Entry { name, value, unit: "Melem/s" }
    }

    fn ratio(name: &'static str, value: f64) -> Entry {
        Entry { name, value, unit: "ratio" }
    }
}

/// The b13 set: warm compressed sequential replays, plus the
/// hardware-neutral compression-speedup ratio on the block stencil.
fn measure_b13(budget: Duration, reps: usize) -> Vec<Entry> {
    let mut out = Vec::new();
    let n1 = 65_536i64;
    for (fmt, name) in [
        (FormatSpec::Block, "shift_1d_block"),
        (FormatSpec::Cyclic(1), "shift_1d_cyclic1"),
    ] {
        let mut a = arrays_1d(n1, 8, &fmt);
        let s = shift_1d(n1, &a);
        let plan = ExecPlan::inspect(&a, &s).unwrap();
        let mut ws = PlanWorkspace::for_plan(&plan);
        let elems = replay_elements(&plan);
        let rate = measure(elems, budget, reps, || plan.execute_seq_with(&mut a, &mut ws));
        out.push(Entry::rate(name, rate));
    }
    let n2 = 192i64;
    for (fmt, name) in [
        (FormatSpec::Block, "stencil_2d_block"),
        (FormatSpec::Cyclic(1), "stencil_2d_cyclic1"),
    ] {
        let mut a = arrays_2d(n2, 2, &fmt);
        let s = stencil_2d(n2, &a);
        let plan = ExecPlan::inspect(&a, &s).unwrap();
        let mut ws = PlanWorkspace::for_plan(&plan);
        let elems = replay_elements(&plan);
        let rate = measure(elems, budget, reps, || plan.execute_seq_with(&mut a, &mut ws));
        if matches!(fmt, FormatSpec::Block) {
            // hardware-neutral: compressed replay vs the per-element
            // baseline of the *same plan*, on the same machine
            let elementwise =
                measure(elems, budget, reps, || plan.execute_seq_uncompressed(&mut a));
            out.push(Entry::ratio(
                "stencil_2d_block_compress_speedup",
                rate / elementwise,
            ));
        }
        out.push(Entry::rate(name, rate));
    }
    let (mut a, s) = cyclic_transpose(65_536, 8);
    let plan = ExecPlan::inspect(&a, &s).unwrap();
    let mut ws = PlanWorkspace::for_plan(&plan);
    let elems = replay_elements(&plan);
    let rate = measure(elems, budget, reps, || plan.execute_seq_with(&mut a, &mut ws));
    out.push(Entry::rate("cyclic_transpose", rate));
    out
}

/// The b14 set: the same plans through both exchange backends, plus the
/// hardware-neutral channels/shared-mem ratio on the block stencil.
fn measure_b14(budget: Duration, reps: usize) -> Vec<Entry> {
    let mut out = Vec::new();
    let n1 = 65_536i64;
    let a1 = arrays_1d(n1, 8, &FormatSpec::Block);
    let s1 = shift_1d(n1, &a1);
    let n2 = 192i64;
    let a2 = arrays_2d(n2, 2, &FormatSpec::Block);
    let s2 = stencil_2d(n2, &a2);
    let (a3, s3) = cyclic_transpose(65_536, 8);
    let names: [(&str, &'static str, &'static str); 3] = [
        ("shift_1d_block", "shift_1d_block_shared_mem", "shift_1d_block_channels"),
        ("stencil_2d_block", "stencil_2d_block_shared_mem", "stencil_2d_block_channels"),
        ("cyclic_transpose", "cyclic_transpose_shared_mem", "cyclic_transpose_channels"),
    ];
    for ((tag, shared_name, channels_name), (mut arrays, stmt)) in
        names.into_iter().zip([(a1, s1), (a2, s2), (a3, s3)])
    {
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::for_plan(&plan);
        let elems = replay_elements(&plan);
        let mut shared = SharedMemBackend::new();
        let shared_rate = measure(elems, budget, reps, || {
            shared.step(&plan, &mut arrays, &mut ws).expect("no faults injected")
        });
        let mut channels = ChannelsBackend::new();
        let channels_rate = measure(elems, budget, reps, || {
            channels.step(&plan, &mut arrays, &mut ws).expect("no faults injected")
        });
        out.push(Entry::rate(shared_name, shared_rate));
        out.push(Entry::rate(channels_name, channels_rate));
        if tag == "stencil_2d_block" {
            out.push(Entry::ratio(
                "stencil_2d_block_channels_vs_shared",
                channels_rate / shared_rate,
            ));
        }
    }
    out
}

/// The b15 set: the whole-timestep fusion workload through the fused
/// program plan vs the pre-fusion per-statement path, plus the
/// hardware-neutral fused/unfused warm-replay speedup — the entry that
/// pins the tentpole's payoff (coalesced messages + clean cyclic ghosts
/// never re-sent) independently of runner hardware.
fn measure_b15(budget: Duration, reps: usize) -> Vec<Entry> {
    use hpf_bench::replay::fusion_timestep;
    use hpf_runtime::{Program, Session};

    let mut out = Vec::new();
    let n = 65_536i64;
    let np = 8usize;
    let build = || {
        let (arrays, stmts) = fusion_timestep(n, np);
        let mut prog = Program::new(arrays);
        for s in stmts {
            prog.push(s).unwrap();
        }
        prog
    };
    // elements computed per timestep: every statement's full volume
    let elems = 3 * (n as usize - 2);

    let mut fused = Session::new(build());
    let fused_rate = measure(elems, budget, reps, || {
        fused.run(1).unwrap();
    });
    let fs = fused.program().fusion_stats();
    assert!(
        fs.ghost_bytes_avoided() > 0,
        "warm fused timesteps must skip the clean cyclic ghosts: {fs}"
    );
    assert!(
        fs.messages_after < fs.messages_before,
        "the shared cyclic pairs must coalesce: {fs}"
    );

    let mut unfused = Session::new(build()).fused(false);
    let unfused_rate = measure(elems, budget, reps, || {
        unfused.run(1).unwrap();
    });

    // absolute floor, independent of the committed baseline: warm fused
    // replay must beat the per-statement path by a clear margin or the
    // fusion layer is not paying for itself
    let ratio = fused_rate / unfused_rate;
    assert!(
        ratio >= 1.3,
        "fused warm replay must be >= 1.3x the unfused path, got {ratio:.2}x \
         (fused {fused_rate:.2} vs unfused {unfused_rate:.2} Melem/s)"
    );

    out.push(Entry::rate("fusion_timestep_fused", fused_rate));
    out.push(Entry::rate("fusion_timestep_unfused", unfused_rate));
    out.push(Entry::ratio("fusion_timestep_fused_vs_unfused", ratio));
    out
}

/// The b16 set: the self-adaptive redistribution workload. The headline
/// entries are **machine-model-priced** — the modeled cost of one warm
/// timestep before vs after the controller's live remap, expressed as
/// simulated throughput (elements per modeled µs ≡ Melem/s) — which is
/// deterministic and hardware-neutral, so the `adaptive/static` ratio
/// binds exactly on any runner. A wall-clock entry for the post-remap
/// warm replay guards the controller's per-timestep bookkeeping.
fn measure_b16(budget: Duration, reps: usize) -> Vec<Entry> {
    use hpf_bench::replay::adaptive_hotspot;
    use hpf_runtime::{AdaptPolicy, Program, Session};

    let mut out = Vec::new();
    let n = 65_536i64;
    let np = 4usize;
    let build = || {
        let (arrays, stmts) = adaptive_hotspot(n, np);
        let mut prog = Program::new(arrays);
        for s in stmts {
            prog.push(s).unwrap();
        }
        prog
    };
    // elements computed per timestep: the hot sweep's written volume
    let elems = (n / 4 - 49) as usize;

    let mut adaptive = Session::new(build()).adapt(AdaptPolicy::default());
    adaptive.run(6).unwrap();
    let report = adaptive.adapt_report().expect("adapt configured");
    assert!(
        report.remaps >= 1,
        "the hotspot workload must trigger a live remap: {report:?}"
    );
    let e = report.events[0].clone();

    // hard floor, independent of the committed baseline: the controller's
    // chosen mapping must be priced >= 1.3x cheaper per warm step than
    // staying on static BLOCK, or adaptation is not paying for itself
    let ratio = e.cost_stay / e.cost_candidate;
    assert!(
        ratio >= 1.3,
        "adaptive mapping must be >= 1.3x cheaper per warm step than static \
         BLOCK on the machine model, got {ratio:.2}x \
         (stay {:.1}us vs candidate {:.1}us)",
        e.cost_stay,
        e.cost_candidate
    );

    let adaptive_rate = measure(elems, budget, reps, || {
        adaptive.run(1).unwrap();
    });

    out.push(Entry {
        name: "hotspot_static_modeled",
        value: elems as f64 / e.cost_stay,
        unit: "Melem/s (modeled)",
    });
    out.push(Entry {
        name: "hotspot_adaptive_modeled",
        value: elems as f64 / e.cost_candidate,
        unit: "Melem/s (modeled)",
    });
    out.push(Entry::ratio("hotspot_adaptive_vs_static_modeled", ratio));
    out.push(Entry::rate("hotspot_adaptive_warm_replay", adaptive_rate));
    out
}

fn render_json(bench: &str, entries: &[Entry]) -> String {
    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"bench\": \"{bench}\",").unwrap();
    writeln!(s, "  \"entries\": [").unwrap();
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        writeln!(
            s,
            "    {{ \"name\": \"{}\", \"value\": {:.2}, \"unit\": \"{}\" }}{comma}",
            e.name, e.value, e.unit
        )
        .unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Minimal line-oriented parser for the JSON this binary writes: one
/// entry per line, `"name"` and `"value"` keys.
fn parse_entries(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(npos) = line.find("\"name\"") else { continue };
        let rest = &line[npos + 6..];
        let Some(q1) = rest.find('"') else { continue };
        let Some(q2) = rest[q1 + 1..].find('"') else { continue };
        let name = rest[q1 + 1..q1 + 1 + q2].to_string();
        let Some(vpos) = line.find("\"value\"") else { continue };
        let val: String = line[vpos + 7..]
            .chars()
            .skip_while(|c| !c.is_ascii_digit() && *c != '-' && *c != '.')
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = val.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Compare measured entries against a baseline file. Returns the
/// regression descriptions (empty = gate passes).
fn gate(
    bench: &str,
    entries: &[Entry],
    baseline_path: &std::path::Path,
    tolerance: f64,
) -> Vec<String> {
    let Ok(json) = std::fs::read_to_string(baseline_path) else {
        return vec![format!(
            "{bench}: missing baseline {} (run with --write-baseline to create it)",
            baseline_path.display()
        )];
    };
    let baseline = parse_entries(&json);
    let mut regressions = Vec::new();
    for e in entries {
        let Some((_, base)) = baseline.iter().find(|(n, _)| n == e.name) else {
            regressions.push(format!(
                "{bench}/{}: no baseline entry (regenerate the baseline)",
                e.name
            ));
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let status = if e.value < floor {
            regressions.push(format!(
                "{bench}/{}: {:.2} {} < floor {:.2} (baseline {:.2}, −{:.0}%)",
                e.name,
                e.value,
                e.unit,
                floor,
                base,
                (1.0 - e.value / base) * 100.0
            ));
            "REGRESSION"
        } else if e.value > base * (1.0 + tolerance) {
            "improved (consider refreshing the baseline)"
        } else {
            "ok"
        };
        println!(
            "bench_gate {bench}/{:<36} {:>9.2} {} (baseline {:>9.2})  {status}",
            e.name, e.value, e.unit, base
        );
    }
    regressions
}

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let smoke = std::env::var_os("CRITERION_SMOKE").is_some();
    let (budget, reps) = if smoke {
        (Duration::from_millis(40), 2)
    } else {
        (Duration::from_millis(120), 3)
    };
    let tolerance: f64 = std::env::var("BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
    let baseline_dir = std::env::var("BENCH_BASELINE_DIR")
        .unwrap_or_else(|_| "crates/bench/baselines".into());

    let b13 = measure_b13(budget, reps);
    let b14 = measure_b14(budget, reps);
    let b15 = measure_b15(budget, reps);
    let b16 = measure_b16(budget, reps);

    let mut regressions = Vec::new();
    for (bench, entries) in [("b13", &b13), ("b14", &b14), ("b15", &b15), ("b16", &b16)] {
        let json = render_json(bench, entries);
        let out = std::path::Path::new(&out_dir).join(format!("BENCH_{bench}.json"));
        std::fs::write(&out, &json).expect("write bench report");
        println!("bench_gate: wrote {}", out.display());
        let baseline =
            std::path::Path::new(&baseline_dir).join(format!("BENCH_{bench}.json"));
        if write_baseline {
            std::fs::create_dir_all(&baseline_dir).expect("create baseline dir");
            std::fs::write(&baseline, &json).expect("write baseline");
            println!("bench_gate: baseline refreshed at {}", baseline.display());
        } else {
            regressions.extend(gate(bench, entries, &baseline, tolerance));
        }
    }
    if !regressions.is_empty() {
        eprintln!("bench_gate: PERF REGRESSION (tolerance ±{:.0}%):", tolerance * 100.0);
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    if !write_baseline {
        println!(
            "bench_gate: all {} entries within ±{:.0}% of baseline",
            b13.len() + b14.len() + b15.len() + b16.len(),
            tolerance * 100.0
        );
    }
}
