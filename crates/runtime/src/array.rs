use hpf_core::EffectiveDist;
use hpf_index::{Idx, IndexDomain, Rect, Region};
use hpf_procs::ProcId;
use std::sync::Arc;

/// An array distributed over the simulated machine's processors.
///
/// Each processor holds a local buffer covering exactly the region the
/// mapping assigns to it (`owned_region`); replicated mappings give several
/// processors a copy of the same element, and writes keep all copies
/// coherent (the §2.2 footnote's replication semantics).
#[derive(Debug, Clone)]
pub struct DistArray<T> {
    name: String,
    mapping: Arc<EffectiveDist>,
    np: usize,
    regions: Vec<Region>,
    /// Per processor: cumulative base offset of each rect of its region in
    /// the local buffer, so addressing never re-sums preceding rect volumes.
    rect_bases: Vec<Vec<usize>>,
    locals: Vec<Vec<T>>,
    /// Per-shard write epochs: bumped on every mutable access to a shard
    /// (element writes, executor stores, SPMD shard restores). The fused
    /// program path snapshots these to detect out-of-band writes that
    /// would invalidate ghost data cached on the receiving side.
    versions: Vec<u64>,
}

impl<T: Clone> DistArray<T> {
    /// Create with every element initialized to `init`.
    pub fn new(name: &str, mapping: Arc<EffectiveDist>, np: usize, init: T) -> Self {
        Self::from_fn(name, mapping, np, |_| init.clone())
    }

    /// Create with `f(global_index)` as the initial value of each element.
    pub fn from_fn(
        name: &str,
        mapping: Arc<EffectiveDist>,
        np: usize,
        mut f: impl FnMut(&Idx) -> T,
    ) -> Self {
        let mut regions = Vec::with_capacity(np);
        let mut rect_bases = Vec::with_capacity(np);
        let mut locals = Vec::with_capacity(np);
        for p in 1..=np as u32 {
            let region = mapping.owned_region(ProcId(p));
            let mut buf = Vec::with_capacity(region.volume_disjoint());
            for i in region.iter() {
                buf.push(f(&i));
            }
            let mut bases = Vec::with_capacity(region.rects().len());
            let mut base = 0usize;
            for rect in region.rects() {
                bases.push(base);
                base += rect.volume();
            }
            regions.push(region);
            rect_bases.push(bases);
            locals.push(buf);
        }
        let versions = vec![0u64; np];
        DistArray { name: name.to_string(), mapping, np, regions, rect_bases, locals, versions }
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mapping the storage follows.
    pub fn mapping(&self) -> &Arc<EffectiveDist> {
        &self.mapping
    }

    /// Global index domain.
    pub fn domain(&self) -> &IndexDomain {
        self.mapping.domain()
    }

    /// Number of processors.
    pub fn np(&self) -> usize {
        self.np
    }

    /// The region processor `p` owns.
    pub fn region_of(&self, p: ProcId) -> &Region {
        &self.regions[p.zero_based()]
    }

    /// Local buffer length of processor `p` (its memory footprint).
    pub fn local_len(&self, p: ProcId) -> usize {
        self.locals[p.zero_based()].len()
    }

    /// Total storage over all processors (> domain size iff replicated).
    pub fn total_storage(&self) -> usize {
        self.locals.iter().map(Vec::len).sum()
    }

    /// Position of global index `i` within `p`'s local buffer: the
    /// precomputed base offset of the containing rect plus the column-major
    /// position inside it — O(rank) per rect checked, no volume re-summing.
    /// Returns `None` if `p` does not own `i`.
    pub fn local_offset(&self, p: ProcId, i: &Idx) -> Option<usize> {
        let region = &self.regions[p.zero_based()];
        let bases = &self.rect_bases[p.zero_based()];
        for (rect, &base) in region.rects().iter().zip(bases) {
            if rect.contains(i) {
                return Some(base + rect_position(rect, i));
            }
        }
        None
    }

    /// Read-only view of processor `p0`'s (zero-based) local buffer.
    pub(crate) fn local(&self, p0: usize) -> &[T] {
        &self.locals[p0]
    }

    /// Read element `i` from its (first) owner's local memory.
    ///
    /// # Panics
    /// Panics if `i` is outside the array domain.
    pub fn get(&self, i: &Idx) -> T {
        let p = self.mapping.owner(i);
        let off = self
            .local_offset(p, i)
            .unwrap_or_else(|| panic!("{}: owner {p} does not hold {i}", self.name));
        self.locals[p.zero_based()][off].clone()
    }

    /// Write element `i` into every owner's copy.
    pub fn set(&mut self, i: &Idx, v: T) {
        let owners = self.mapping.owners(i);
        for p in owners.iter() {
            let off = self
                .local_offset(p, i)
                .unwrap_or_else(|| panic!("{}: owner {p} does not hold {i}", self.name));
            self.locals[p.zero_based()][off] = v.clone();
            self.versions[p.zero_based()] += 1;
        }
    }

    /// Snapshot the whole array in column-major global order.
    ///
    /// Walks each processor's region rects in local-buffer fill order and
    /// scatters the values to their linearized global positions — one pass
    /// over the distributed storage, no per-element owner lookups or rect
    /// scans (this is the oracle of every equivalence test, so its cost
    /// dominates test time on large domains). Replicated mappings write
    /// each element once per copy; the copies are coherent, so the
    /// snapshot is the same whichever owner lands last.
    ///
    /// # Panics
    /// Panics if the mapping leaves some element of the domain unowned.
    pub fn to_dense(&self) -> Vec<T> {
        let dom = self.domain();
        let mut dense: Vec<Option<T>> = vec![None; dom.size()];
        for (region, buf) in self.regions.iter().zip(&self.locals) {
            let mut k = 0usize;
            for rect in region.rects() {
                for i in rect.iter() {
                    let lin = dom.linearize(&i).expect("owned region is in the domain");
                    dense[lin] = Some(buf[k].clone());
                    k += 1;
                }
            }
        }
        dense
            .into_iter()
            .map(|v| v.expect("every element of the domain has an owner"))
            .collect()
    }

    /// Per-processor `(region, mutable local buffer)` views, for the
    /// parallel executor. Every shard epoch is bumped: the caller gets
    /// mutable access to all of them, so all must be assumed written.
    pub(crate) fn parts_mut(&mut self) -> (&[Region], &mut [Vec<T>]) {
        for v in &mut self.versions {
            *v += 1;
        }
        (&self.regions, &mut self.locals)
    }

    /// Current write epoch of processor `p0`'s (zero-based) shard.
    pub(crate) fn shard_version(&self, p0: usize) -> u64 {
        self.versions[p0]
    }

    /// Move processor `p0`'s (zero-based) local buffer out of the array —
    /// the ownership handoff to an SPMD worker. The array keeps an empty
    /// placeholder until [`DistArray::put_local`] restores the shard; any
    /// access in between (even a read of a supposedly untouched element)
    /// fails loudly instead of returning stale data.
    pub(crate) fn take_local(&mut self, p0: usize) -> Vec<T> {
        std::mem::take(&mut self.locals[p0])
    }

    /// Re-install a shard moved out by [`DistArray::take_local`].
    ///
    /// # Panics
    /// Panics if `buf` does not have exactly the owned-region volume — a
    /// worker returning the wrong shard must not silently corrupt storage.
    pub(crate) fn put_local(&mut self, p0: usize, buf: Vec<T>) {
        assert_eq!(
            buf.len(),
            self.regions[p0].volume_disjoint(),
            "{}: returned shard has the wrong volume for processor {}",
            self.name,
            p0 + 1
        );
        self.locals[p0] = buf;
        self.versions[p0] += 1;
    }

    /// Re-establish the storage invariant after a fault: any local buffer
    /// whose length disagrees with its owned-region volume (a dead worker
    /// took its shard with it, leaving the empty [`DistArray::take_local`]
    /// placeholder) is rebuilt zero-filled, with its write epoch bumped so
    /// dirty tracking sees the loss. The *values* are garbage by
    /// construction — callers must overwrite them from a checkpoint
    /// before anything reads the array (see [`crate::ckpt`]).
    pub(crate) fn heal_locals(&mut self)
    where
        T: Default,
    {
        for (p0, buf) in self.locals.iter_mut().enumerate() {
            let want = self.regions[p0].volume_disjoint();
            if buf.len() != want {
                buf.clear();
                buf.resize(want, T::default());
                self.versions[p0] += 1;
            }
        }
    }
}

/// Column-major position of `i` within a rect (assumes membership).
pub(crate) fn rect_position(rect: &Rect, i: &Idx) -> usize {
    let mut pos = 0usize;
    let mut w = 1usize;
    for (d, t) in rect.dims().iter().enumerate() {
        pos += t.position(i[d]).expect("membership checked") * w;
        w *= t.len();
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec, ProcSet};

    fn block_array(n: usize, np: usize) -> DistArray<f64> {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64)
    }

    #[test]
    fn storage_partitions_elements() {
        let a = block_array(10, 4);
        assert_eq!(a.total_storage(), 10);
        assert_eq!(a.local_len(ProcId(1)), 3);
        assert_eq!(a.local_len(ProcId(4)), 1);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = block_array(16, 4);
        assert_eq!(a.get(&Idx::d1(7)), 7.0);
        a.set(&Idx::d1(7), 99.0);
        assert_eq!(a.get(&Idx::d1(7)), 99.0);
        let dense = a.to_dense();
        assert_eq!(dense[6], 99.0);
        assert_eq!(dense[0], 1.0);
    }

    #[test]
    fn cyclic_local_layout() {
        let mut ds = DataSpace::new(3);
        let id = ds.declare("C", IndexDomain::of_shape(&[10]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let c = DistArray::from_fn("C", ds.effective(id).unwrap(), 3, |i| i[0]);
        // P1 owns 1,4,7,10
        assert_eq!(c.local_len(ProcId(1)), 4);
        for v in [1i64, 4, 7, 10] {
            assert_eq!(c.get(&Idx::d1(v)), v);
        }
    }

    #[test]
    fn local_offsets_match_fill_order() {
        // CYCLIC(2): strided multi-rect ownership; the precomputed rect
        // bases must reproduce the construction fill order exactly
        let mut ds = DataSpace::new(3);
        let id = ds.declare("C", IndexDomain::of_shape(&[17]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![FormatSpec::Cyclic(2)])).unwrap();
        let c = DistArray::from_fn("C", ds.effective(id).unwrap(), 3, |i| i[0]);
        for p in (1..=3u32).map(ProcId) {
            for (k, i) in c.region_of(p).iter().enumerate() {
                assert_eq!(c.local_offset(p, &i), Some(k), "{p} {i}");
            }
        }
    }

    #[test]
    fn replicated_array_keeps_copies_coherent() {
        let dom = IndexDomain::of_shape(&[5]).unwrap();
        let mapping = Arc::new(hpf_core::EffectiveDist::Replicated {
            domain: dom,
            procs: ProcSet::all(3),
        });
        let mut r = DistArray::new("R", mapping, 3, 0i64);
        assert_eq!(r.total_storage(), 15); // 3 full copies
        r.set(&Idx::d1(2), 42);
        // every copy sees the write
        for p in 1..=3u32 {
            assert_eq!(r.local_len(ProcId(p)), 5);
        }
        assert_eq!(r.get(&Idx::d1(2)), 42);
        assert_eq!(r.to_dense(), vec![0, 42, 0, 0, 0]);
    }

    #[test]
    fn two_dim_storage() {
        let mut ds = DataSpace::new(4);
        ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        let id = ds.declare("M", IndexDomain::of_shape(&[6, 6]).unwrap()).unwrap();
        ds.distribute(
            id,
            &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
        )
        .unwrap();
        let m = DistArray::from_fn("M", ds.effective(id).unwrap(), 4, |i| i[0] * 10 + i[1]);
        assert_eq!(m.total_storage(), 36);
        for i in m.domain().clone().iter() {
            assert_eq!(m.get(&i), i[0] * 10 + i[1]);
        }
    }
}
