//! # hpf-machine — a distributed-memory machine simulator
//!
//! The paper's motivation (§1) is that "an operation on two or more data
//! objects is likely to be carried out much faster if they all reside in
//! the same processor". This crate is the substrate that makes that claim
//! measurable without 1993 hardware: a deterministic model of a
//! distributed-memory multiprocessor with
//!
//! * a [`Topology`] (linear array, ring, 2-D mesh, hypercube) giving hop
//!   distances between abstract processors,
//! * a [`CostModel`] in the classic `latency + volume/bandwidth` form, and
//! * [`CommStats`] — per-(source, destination) traffic matrices with
//!   BSP-style superstep time estimation ([`Machine::superstep_time`]).
//!
//! The mapping experiments (staggered grids, procedure boundaries, load
//! balancing) produce `CommStats` from owner maps; the machine turns them
//! into message counts, volumes, hop-weighted times and makespans. Absolute
//! times are synthetic; *ratios and orderings* between mapping schemes are
//! the reproducible quantities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod machine;
mod stats;
mod topology;

pub use cost::CostModel;
pub use machine::{Machine, SuperstepReport};
pub use stats::CommStats;
pub use topology::Topology;
