//! E6 (§2.3, §5.1) — CONSTRUCT and the two §5.1 alignment examples:
//! prints the image sets and verifies the collocation guarantee over
//! randomized affine alignments.

use hpf_core::{AlignExpr, AlignSpec, AligneeAxis, BaseSubscript, DataSpace, DistributeSpec, FormatSpec};
use hpf_index::{Idx, IndexDomain};

fn main() {
    println!("E6 — §5.1 alignment examples and the CONSTRUCT guarantee\n");

    // example 1: ALIGN A(:) WITH D(:,*)  (replication)
    let (n, m) = (4i64, 3i64);
    let mut ds = DataSpace::new(6);
    ds.declare_processors("G", IndexDomain::of_shape(&[2, 3]).unwrap()).unwrap();
    let d = ds.declare("D", IndexDomain::standard(&[(1, n), (1, m)]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    ds.distribute(d, &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"))
        .unwrap();
    ds.align(
        a,
        d,
        &AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Star],
        ),
    )
    .unwrap();
    println!("ALIGN A(:) WITH D(:,*)   [N={n}, M={m}, D is (BLOCK,BLOCK) on 2x3]");
    for j in 1..=n {
        println!(
            "  α({j}) = {{({j},k) | 1 ≤ k ≤ {m}}} → owners(A({j})) = {}",
            ds.owners(a, &Idx::d1(j)).unwrap()
        );
    }

    // example 2: ALIGN B(:,*) WITH E(:)  (collapse)
    let mut ds2 = DataSpace::new(4);
    let e = ds2.declare("E", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    let b = ds2.declare("B", IndexDomain::standard(&[(1, n), (1, m)]).unwrap()).unwrap();
    ds2.distribute(e, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    ds2.align(
        b,
        e,
        &AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Star],
            vec![BaseSubscript::COLON],
        ),
    )
    .unwrap();
    println!("\nALIGN B(:,*) WITH E(:)   [E is CYCLIC on 4]");
    for j1 in 1..=n {
        let owners: Vec<String> = (1..=m)
            .map(|j2| ds2.owners(b, &Idx::d2(j1, j2)).unwrap().to_string())
            .collect();
        println!("  B({j1},1..{m}) owners = {} (all equal)", owners[0]);
        assert!(owners.iter().all(|o| *o == owners[0]));
    }

    // randomized CONSTRUCT verification
    println!("\nCONSTRUCT(α, δ_B) collocation sweep (Definition 4):");
    let mut checked = 0usize;
    for fmt in [FormatSpec::Block, FormatSpec::Cyclic(1), FormatSpec::Cyclic(3)] {
        for (ac, cc) in [(1i64, 0i64), (2, 3), (3, 1)] {
            let nn = 24i64;
            let mut s = DataSpace::new(4);
            let base =
                s.declare("B", IndexDomain::standard(&[(1, ac * nn + cc)]).unwrap()).unwrap();
            let al = s.declare("A", IndexDomain::standard(&[(1, nn)]).unwrap()).unwrap();
            s.distribute(base, &DistributeSpec::new(vec![fmt.clone()])).unwrap();
            s.align(al, base, &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * ac + cc]))
                .unwrap();
            for i in 1..=nn {
                assert_eq!(
                    s.owners(al, &Idx::d1(i)).unwrap(),
                    s.owners(base, &Idx::d1(ac * i + cc)).unwrap()
                );
                checked += 1;
            }
        }
    }
    println!("  {checked} (array, element) pairs verified: owners(A,i) = owners(B,α(i))");
}
