//! The §8.1.1 staggered-grid experiment (C. A. Thole's example).
//!
//! The paper's claim: aligning `P`, `U`, `V` to a double-size template
//! `T(0:2N,0:2N)` and distributing it `(CYCLIC,CYCLIC)` "results in the
//! worst possible effect, viz. different processor allocations for any two
//! neighbors", while the paper's template-free alternative — distributing
//! the arrays `(BLOCK,BLOCK)` directly — collocates everything except true
//! partition boundaries.
//!
//! This example builds the same code under five mapping schemes, runs the
//! statement `P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)` on the
//! simulated machine, verifies the numerics, and prints the communication
//! table.
//!
//! Run with: `cargo run --release --example staggered_grid`

use hpf::prelude::*;
use std::sync::Arc;

const N: i64 = 64;
const NP_SIDE: usize = 2;

/// Build [P, U, V] mappings via the HPF template model.
fn template_scheme(formats: Vec<FormatSpec>) -> Vec<Arc<EffectiveDist>> {
    let np = NP_SIDE * NP_SIDE;
    let mut m = TemplateModel::new(np);
    m.declare_processors("G", IndexDomain::of_shape(&[NP_SIDE, NP_SIDE]).unwrap())
        .unwrap();
    let t = m
        .template("T", IndexDomain::standard(&[(0, 2 * N), (0, 2 * N)]).unwrap())
        .unwrap();
    let p = m.array("P", IndexDomain::standard(&[(1, N), (1, N)]).unwrap()).unwrap();
    let u = m.array("U", IndexDomain::standard(&[(0, N), (1, N)]).unwrap()).unwrap();
    let v = m.array("V", IndexDomain::standard(&[(1, N), (0, N)]).unwrap()).unwrap();
    let d = |k: usize| AlignExpr::dummy(k);
    m.align(p, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2 - 1])).unwrap();
    m.align(u, t, &AlignSpec::with_exprs(2, vec![d(0) * 2, d(1) * 2 - 1])).unwrap();
    m.align(v, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2])).unwrap();
    m.distribute(t, &DistributeSpec::to(formats, "G")).unwrap();
    vec![m.resolve(p).unwrap(), m.resolve(u).unwrap(), m.resolve(v).unwrap()]
}

/// Build [P, U, V] mappings with direct distribution (the paper's
/// template-free proposal): `!HPF$ DISTRIBUTE (fmt,fmt) :: U,V,P`.
fn direct_scheme(fmt: FormatSpec) -> Vec<Arc<EffectiveDist>> {
    let np = NP_SIDE * NP_SIDE;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[NP_SIDE, NP_SIDE]).unwrap())
        .unwrap();
    let p = ds.declare("P", IndexDomain::standard(&[(1, N), (1, N)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(0, N), (1, N)]).unwrap()).unwrap();
    let v = ds.declare("V", IndexDomain::standard(&[(1, N), (0, N)]).unwrap()).unwrap();
    for id in [p, u, v] {
        ds.distribute(id, &DistributeSpec::to(vec![fmt.clone(), fmt.clone()], "G"))
            .unwrap();
    }
    vec![
        ds.effective(p).unwrap(),
        ds.effective(u).unwrap(),
        ds.effective(v).unwrap(),
    ]
}

/// The §8.1.1 statement as an [`Assignment`]: arrays are [P, U, V].
fn statement(maps: &[Arc<EffectiveDist>]) -> Assignment {
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    Assignment::new(
        0,
        Section::from_triplets(vec![span(1, N), span(1, N)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, N - 1), span(1, N)])),
            Term::new(1, Section::from_triplets(vec![span(1, N), span(1, N)])),
            Term::new(2, Section::from_triplets(vec![span(1, N), span(0, N - 1)])),
            Term::new(2, Section::from_triplets(vec![span(1, N), span(1, N)])),
        ],
        Combine::Sum,
        &doms,
    )
    .expect("conforming sections")
}

fn run_scheme(label: &str, maps: Vec<Arc<EffectiveDist>>, machine: &Machine) -> StatementTrace {
    let np = machine.np();
    let stmt = statement(&maps);

    // build real distributed arrays and execute
    let mut arrays = vec![
        DistArray::new("P", maps[0].clone(), np, 0.0),
        DistArray::from_fn("U", maps[1].clone(), np, |i| (i[0] * 1000 + i[1]) as f64),
        DistArray::from_fn("V", maps[2].clone(), np, |i| (i[0] + i[1] * 1000) as f64),
    ];
    let expect = dense_reference(&arrays, &stmt);
    let analysis = SeqExecutor.execute(&mut arrays, &stmt).expect("execution");
    assert_eq!(arrays[0].to_dense(), expect, "{label}: numerics must match");

    StatementTrace::new(label, analysis, machine)
}

fn main() {
    let np = NP_SIDE * NP_SIDE;
    let machine = Machine::new(
        np,
        Topology::Mesh2D { rows: NP_SIDE, cols: NP_SIDE },
        CostModel::default(),
    );
    println!(
        "staggered grid, N = {N}, {np} processors ({NP_SIDE}x{NP_SIDE} mesh)\n\
         statement: P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)\n"
    );
    println!("{}", StatementTrace::header());

    let rows = vec![
        run_scheme(
            "template (CYCLIC,CYCLIC)",
            template_scheme(vec![FormatSpec::Cyclic(1), FormatSpec::Cyclic(1)]),
            &machine,
        ),
        run_scheme(
            "template 2N (BLOCK,BLOCK)",
            template_scheme(vec![FormatSpec::Block, FormatSpec::Block]),
            &machine,
        ),
        run_scheme("direct (BLOCK,BLOCK)", direct_scheme(FormatSpec::Block), &machine),
        run_scheme(
            "direct (BLOCK_BAL,BLOCK_BAL)",
            direct_scheme(FormatSpec::BlockBalanced),
            &machine,
        ),
    ];
    for r in &rows {
        println!("{}", r.row());
    }

    let worst = &rows[0];
    let best = rows
        .iter()
        .min_by(|a, b| a.report.elements.cmp(&b.report.elements))
        .unwrap();
    println!(
        "\ntemplate-CYCLIC moves {}x more data than `{}`\n\
         (the paper's §8.1.1 claim: cyclic template placement separates every\n\
          neighbour pair; direct block distribution collocates the interior)",
        if best.report.elements == 0 {
            "infinitely".to_string()
        } else {
            format!("{:.1}", worst.report.elements as f64 / best.report.elements as f64)
        },
        best.label,
    );
}
