use crate::gcd::solve_crt;
use crate::IndexError;
use std::fmt;

/// A Fortran 90 subscript triplet `lower : upper : stride`, viewed as the
/// *set* `{ lower + k·stride | k ≥ 0, value between lower and upper }`.
///
/// This is the atom of the paper's model: index domains (§2.1) are lists of
/// triplets, array sections are triplets, `GENERAL_BLOCK` inverses and
/// `CYCLIC` ownership sets are unions of triplets, and the §5.1 alignment
/// reduction rewrites triplets into affine expressions.
///
/// Triplets may be empty (e.g. `5:4:1`) and may have negative stride
/// (`10:2:-2`); as sets, `10:2:-2` and `2:10:2` are equal, and all the set
/// operations treat them so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triplet {
    lower: i64,
    upper: i64,
    stride: i64,
}

impl Triplet {
    /// Create a triplet; fails if `stride == 0` (Fortran 90 R619 constraint).
    pub fn new(lower: i64, upper: i64, stride: i64) -> Result<Self, IndexError> {
        if stride == 0 {
            return Err(IndexError::ZeroStride);
        }
        Ok(Triplet { lower, upper, stride })
    }

    /// Stride-1 triplet `lower:upper` (possibly empty).
    pub const fn unit(lower: i64, upper: i64) -> Self {
        Triplet { lower, upper, stride: 1 }
    }

    /// The singleton set `{v}`.
    pub const fn scalar(v: i64) -> Self {
        Triplet { lower: v, upper: v, stride: 1 }
    }

    /// An empty triplet.
    pub const fn empty() -> Self {
        Triplet { lower: 1, upper: 0, stride: 1 }
    }

    /// Declared lower bound (first element for non-empty ascending triplets).
    pub const fn lower(&self) -> i64 {
        self.lower
    }

    /// Declared upper bound.
    pub const fn upper(&self) -> i64 {
        self.upper
    }

    /// Declared stride (never 0, may be negative).
    pub const fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of elements, by the Fortran rule
    /// `MAX((upper − lower + stride) / stride, 0)`.
    pub fn len(&self) -> usize {
        let n = (self.upper as i128 - self.lower as i128 + self.stride as i128)
            / self.stride as i128;
        if n <= 0 {
            0
        } else {
            n as usize
        }
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th element in declaration order (`k` is 0-based).
    ///
    /// Returns `None` when `k ≥ len()`.
    pub fn nth(&self, k: usize) -> Option<i64> {
        if k >= self.len() {
            return None;
        }
        Some(self.lower + k as i64 * self.stride)
    }

    /// First element in declaration order, if non-empty.
    pub fn first(&self) -> Option<i64> {
        if self.is_empty() {
            None
        } else {
            Some(self.lower)
        }
    }

    /// Last element in declaration order, if non-empty.
    pub fn last(&self) -> Option<i64> {
        let n = self.len();
        if n == 0 {
            None
        } else {
            Some(self.lower + (n as i64 - 1) * self.stride)
        }
    }

    /// Smallest element of the set, if non-empty.
    pub fn min(&self) -> Option<i64> {
        if self.stride > 0 {
            self.first()
        } else {
            self.last()
        }
    }

    /// Largest element of the set, if non-empty.
    pub fn max(&self) -> Option<i64> {
        if self.stride > 0 {
            self.last()
        } else {
            self.first()
        }
    }

    /// Set membership.
    pub fn contains(&self, v: i64) -> bool {
        self.position(v).is_some()
    }

    /// Position of `v` in declaration order, or `None` if absent.
    pub fn position(&self, v: i64) -> Option<usize> {
        let d = v as i128 - self.lower as i128;
        let s = self.stride as i128;
        if d % s != 0 {
            return None;
        }
        let k = d / s;
        if k < 0 || k as usize >= self.len() {
            None
        } else {
            Some(k as usize)
        }
    }

    /// The same set with positive stride and `lower == min()`.
    ///
    /// Empty triplets normalize to [`Triplet::empty`].
    pub fn ascending(&self) -> Triplet {
        if self.is_empty() {
            return Triplet::empty();
        }
        if self.stride > 0 {
            // Trim the upper bound to the last actual member so that two
            // equal sets always compare equal after normalization.
            Triplet { lower: self.lower, upper: self.last().unwrap(), stride: self.stride }
        } else {
            Triplet { lower: self.last().unwrap(), upper: self.lower, stride: -self.stride }
        }
    }

    /// Set equality (ignores representation differences).
    pub fn set_eq(&self, other: &Triplet) -> bool {
        let (a, b) = (self.ascending(), other.ascending());
        if a.len() != b.len() {
            return false;
        }
        if a.is_empty() {
            return true;
        }
        a.lower == b.lower && (a.len() == 1 || a.stride == b.stride)
    }

    /// Set intersection of two triplets: the result is again an arithmetic
    /// progression, computed exactly via the Chinese remainder theorem.
    ///
    /// Returns an ascending triplet; empty intersections yield
    /// [`Triplet::empty`].
    pub fn intersect(&self, other: &Triplet) -> Triplet {
        let a = self.ascending();
        let b = other.ascending();
        if a.is_empty() || b.is_empty() {
            return Triplet::empty();
        }
        let lo = a.lower.max(b.lower);
        let hi = a.upper.min(b.upper);
        if lo > hi {
            return Triplet::empty();
        }
        let (sa, sb) = (a.stride, b.stride);
        let (ra, rb) = (a.lower.rem_euclid(sa), b.lower.rem_euclid(sb));
        match solve_crt(ra, sa, rb, sb) {
            None => Triplet::empty(),
            Some((x0, l)) => {
                // smallest member ≥ lo that is ≡ x0 (mod l)
                let delta = (lo as i128 - x0 as i128).rem_euclid(l as i128);
                let start = lo as i128 + ((l as i128 - delta) % l as i128);
                if start > hi as i128 {
                    Triplet::empty()
                } else {
                    Triplet { lower: start as i64, upper: hi, stride: l }.ascending()
                }
            }
        }
    }

    /// True iff every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &Triplet) -> bool {
        self.intersect(other).len() == self.len()
    }

    /// True iff the two sets share no element.
    pub fn is_disjoint(&self, other: &Triplet) -> bool {
        self.intersect(other).is_empty()
    }

    /// Affine image `{ a·x + c | x ∈ self }`.
    ///
    /// For `a == 0` this is the singleton `{c}` (if `self` is non-empty,
    /// else empty). Fails on `i64` overflow.
    pub fn affine_image(&self, a: i64, c: i64) -> Result<Triplet, IndexError> {
        if self.is_empty() {
            return Ok(Triplet::empty());
        }
        if a == 0 {
            return Ok(Triplet::scalar(c));
        }
        let map = |x: i64| -> Result<i64, IndexError> {
            let v = a as i128 * x as i128 + c as i128;
            i64::try_from(v).map_err(|_| IndexError::Overflow)
        };
        let lo = map(self.lower)?;
        let hi = map(self.last().unwrap())?;
        let s = (a as i128 * self.stride as i128).clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        if s == 0 {
            return Err(IndexError::Overflow);
        }
        Ok(Triplet { lower: lo, upper: hi, stride: s }.ascending())
    }

    /// Iterate over the members in declaration order.
    pub fn iter(&self) -> TripletIter {
        TripletIter { next: self.lower, remaining: self.len(), stride: self.stride }
    }

    /// Shift the whole set by `c` (image under `x ↦ x + c`).
    pub fn shifted(&self, c: i64) -> Triplet {
        Triplet { lower: self.lower + c, upper: self.upper + c, stride: self.stride }
    }

    /// Clamp an ascending stride-1 triplet to `[lo, hi]`; general triplets
    /// are first normalized with [`Triplet::ascending`] and then filtered to
    /// the window (the stride is preserved).
    pub fn clamped(&self, lo: i64, hi: i64) -> Triplet {
        self.intersect(&Triplet::unit(lo, hi))
    }
}

impl fmt::Display for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 1 {
            write!(f, "{}:{}", self.lower, self.upper)
        } else {
            write!(f, "{}:{}:{}", self.lower, self.upper, self.stride)
        }
    }
}

/// Iterator over the members of a [`Triplet`] in declaration order.
#[derive(Debug, Clone)]
pub struct TripletIter {
    next: i64,
    remaining: usize,
    stride: i64,
}

impl Iterator for TripletIter {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        if self.remaining == 0 {
            return None;
        }
        let v = self.next;
        self.remaining -= 1;
        self.next += self.stride;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TripletIter {}

impl IntoIterator for Triplet {
    type Item = i64;
    type IntoIter = TripletIter;
    fn into_iter(self) -> TripletIter {
        self.iter()
    }
}

impl IntoIterator for &Triplet {
    type Item = i64;
    type IntoIter = TripletIter;
    fn into_iter(self) -> TripletIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(l: i64, u: i64, s: i64) -> Triplet {
        Triplet::new(l, u, s).unwrap()
    }

    #[test]
    fn zero_stride_rejected() {
        assert_eq!(Triplet::new(1, 10, 0), Err(IndexError::ZeroStride));
    }

    #[test]
    fn length_rule_matches_fortran() {
        assert_eq!(t(1, 10, 1).len(), 10);
        assert_eq!(t(1, 10, 3).len(), 4); // 1,4,7,10
        assert_eq!(t(2, 996, 2).len(), 498); // the §8.1.2 section
        assert_eq!(t(10, 1, -2).len(), 5); // 10,8,6,4,2
        assert_eq!(t(5, 4, 1).len(), 0);
        assert_eq!(t(4, 5, -1).len(), 0);
        assert_eq!(t(7, 7, 5).len(), 1);
    }

    #[test]
    fn iteration_matches_nth() {
        let tr = t(3, 20, 4);
        let v: Vec<i64> = tr.iter().collect();
        assert_eq!(v, vec![3, 7, 11, 15, 19]);
        for (k, x) in v.iter().enumerate() {
            assert_eq!(tr.nth(k), Some(*x));
            assert_eq!(tr.position(*x), Some(k));
        }
        assert_eq!(tr.nth(5), None);
        assert_eq!(tr.position(4), None);
        assert_eq!(tr.position(23), None);
    }

    #[test]
    fn negative_stride_set_semantics() {
        let desc = t(10, 2, -2);
        let asc = desc.ascending();
        assert_eq!(asc, t(2, 10, 2));
        assert!(desc.set_eq(&t(2, 10, 2)));
        assert!(desc.contains(6));
        assert!(!desc.contains(5));
    }

    #[test]
    fn ascending_trims_upper() {
        assert_eq!(t(1, 11, 3).ascending(), t(1, 10, 3)); // 1,4,7,10
    }

    #[test]
    fn intersection_same_stride() {
        let a = t(1, 100, 2); // odds
        let b = t(51, 200, 2); // odds from 51
        assert!(a.intersect(&b).set_eq(&t(51, 99, 2)));
    }

    #[test]
    fn intersection_coprime_strides() {
        let a = t(0, 100, 3);
        let b = t(0, 100, 5);
        assert!(a.intersect(&b).set_eq(&t(0, 100, 15).ascending()));
    }

    #[test]
    fn intersection_incompatible_residues() {
        let a = t(0, 100, 4); // ≡0 mod 4
        let b = t(2, 100, 4); // ≡2 mod 4
        assert!(a.intersect(&b).is_empty());
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn intersection_brute_force() {
        let cases = [
            (t(1, 40, 3), t(2, 50, 5)),
            (t(-10, 10, 2), t(-9, 9, 3)),
            (t(0, 0, 1), t(0, 5, 1)),
            (t(5, 4, 1), t(1, 10, 1)),
            (t(30, -5, -7), t(-2, 28, 4)),
            (t(2, 996, 2), t(1, 1000, 3)),
        ];
        for (a, b) in cases {
            let got: Vec<i64> = a.intersect(&b).iter().collect();
            let want: Vec<i64> =
                (-100..1100).filter(|v| a.contains(*v) && b.contains(*v)).collect();
            assert_eq!(got, want, "a={a} b={b}");
        }
    }

    #[test]
    fn subset_relation() {
        assert!(t(2, 10, 4).is_subset_of(&t(2, 10, 2)));
        assert!(!t(2, 10, 2).is_subset_of(&t(2, 10, 4)));
        assert!(Triplet::empty().is_subset_of(&t(1, 3, 1)));
    }

    #[test]
    fn affine_images() {
        // 2*I - 1 over I=1:4 → 1,3,5,7  (the §8.1.1 template alignment)
        let img = t(1, 4, 1).affine_image(2, -1).unwrap();
        assert!(img.set_eq(&t(1, 7, 2)));
        // negative coefficient
        let img = t(1, 4, 1).affine_image(-1, 0).unwrap();
        assert!(img.set_eq(&t(-4, -1, 1)));
        // zero coefficient collapses
        let img = t(1, 4, 1).affine_image(0, 9).unwrap();
        assert!(img.set_eq(&Triplet::scalar(9)));
        // empty stays empty
        assert!(Triplet::empty().affine_image(3, 1).unwrap().is_empty());
    }

    #[test]
    fn affine_overflow_detected() {
        assert_eq!(
            t(1, 10, 1).affine_image(i64::MAX, i64::MAX),
            Err(IndexError::Overflow)
        );
    }

    #[test]
    fn clamp_window() {
        let tr = t(1, 100, 7); // 1,8,15,...
        let c = tr.clamped(10, 40);
        let v: Vec<i64> = c.iter().collect();
        assert_eq!(v, vec![15, 22, 29, 36]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(t(1, 9, 1).to_string(), "1:9");
        assert_eq!(t(1, 9, 2).to_string(), "1:9:2");
    }

    #[test]
    fn min_max() {
        assert_eq!(t(10, 2, -2).min(), Some(2));
        assert_eq!(t(10, 2, -2).max(), Some(10));
        assert_eq!(Triplet::empty().min(), None);
    }
}
