use crate::{Idx, IndexDomain, IndexError, Triplet};
use std::fmt;

/// One dimension of an array section: either a subscript triplet (keeps the
/// dimension) or a scalar subscript (reduces the rank, as in `A(3, 1:5)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionDim {
    /// A subscript triplet, e.g. `2:996:2`.
    Triplet(Triplet),
    /// A rank-reducing scalar subscript, e.g. the `3` in `A(3, :)`.
    Scalar(i64),
}

impl SectionDim {
    /// The set of subscript values selected in this dimension.
    pub fn as_triplet(&self) -> Triplet {
        match *self {
            SectionDim::Triplet(t) => t,
            SectionDim::Scalar(v) => Triplet::scalar(v),
        }
    }

    /// True for scalar (rank-reducing) subscripts.
    pub fn is_scalar(&self) -> bool {
        matches!(self, SectionDim::Scalar(_))
    }
}

impl fmt::Display for SectionDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionDim::Triplet(t) => write!(f, "{t}"),
            SectionDim::Scalar(v) => write!(f, "{v}"),
        }
    }
}

/// An array section `A(d1, ..., dn)` over the parent domain of `A`.
///
/// Sections appear in the paper as distribution targets (`TO Q(1:NOP:2)`,
/// §4), as the base subscripts of alignment directives (`WITH A(M::M,1::M)`,
/// §6), and as procedure actual arguments (`CALL SUB(A(2:996:2))`, §8.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Section {
    dims: Vec<SectionDim>,
}

impl Section {
    /// Build a section from explicit per-dimension selectors.
    pub fn new(dims: Vec<SectionDim>) -> Self {
        Section { dims }
    }

    /// The full section of a domain (every dimension `:`).
    pub fn full(domain: &IndexDomain) -> Self {
        Section { dims: domain.dims().iter().map(|t| SectionDim::Triplet(*t)).collect() }
    }

    /// Build from triplets only (no rank-reducing subscripts).
    pub fn from_triplets(ts: Vec<Triplet>) -> Self {
        Section { dims: ts.into_iter().map(SectionDim::Triplet).collect() }
    }

    /// Number of subscript positions (the parent array's rank).
    pub fn parent_rank(&self) -> usize {
        self.dims.len()
    }

    /// Rank of the section itself (non-scalar dimensions).
    pub fn rank(&self) -> usize {
        self.dims.iter().filter(|d| !d.is_scalar()).count()
    }

    /// Per-position selectors.
    pub fn dims(&self) -> &[SectionDim] {
        &self.dims
    }

    /// Number of elements selected.
    pub fn size(&self) -> usize {
        self.dims.iter().map(|d| d.as_triplet().len()).product()
    }

    /// Verify the section lies within `parent`, dimension by dimension.
    pub fn validate(&self, parent: &IndexDomain) -> Result<(), IndexError> {
        if self.dims.len() != parent.rank() {
            return Err(IndexError::RankMismatch {
                expected: parent.rank(),
                found: self.dims.len(),
            });
        }
        for (d, sd) in self.dims.iter().enumerate() {
            let t = sd.as_triplet();
            if t.is_empty() {
                continue;
            }
            let p = parent.dim(d);
            if !t.is_subset_of(p) {
                return Err(IndexError::SectionOutOfBounds { dim: d });
            }
        }
        Ok(())
    }

    /// The index domain of the selected set, *keeping* scalar dimensions as
    /// singleton triplets (rank equals the parent rank).
    pub fn domain_full_rank(&self) -> Result<IndexDomain, IndexError> {
        IndexDomain::new(self.dims.iter().map(|d| d.as_triplet()).collect())
    }

    /// The index domain of the section with scalar dimensions dropped —
    /// what a dummy argument sees when the section is passed (§7).
    pub fn domain(&self) -> Result<IndexDomain, IndexError> {
        IndexDomain::new(
            self.dims
                .iter()
                .filter(|d| !d.is_scalar())
                .map(|d| d.as_triplet())
                .collect(),
        )
    }

    /// Map a *section-relative* index (1-based positions within the
    /// section's standard domain, scalar dims dropped) to the parent
    /// array's subscript tuple.
    ///
    /// This is the affine embedding a dummy argument's inherited
    /// distribution composes with (§7, §8.1.2): position `p` of
    /// `A(2:996:2)` is parent element `2 + (p−1)·2`.
    pub fn embed(&self, rel: &Idx) -> Result<Idx, IndexError> {
        if rel.rank() != self.rank() {
            return Err(IndexError::RankMismatch { expected: self.rank(), found: rel.rank() });
        }
        let mut out = Idx::SCALAR;
        let mut r = 0usize;
        for sd in &self.dims {
            match sd {
                SectionDim::Scalar(v) => out.push(*v),
                SectionDim::Triplet(t) => {
                    let k = rel[r] - 1;
                    if k < 0 || k as usize >= t.len() {
                        return Err(IndexError::OutOfBounds { dim: r, value: rel[r] });
                    }
                    out.push(t.nth(k as usize).expect("in range"));
                    r += 1;
                }
            }
        }
        Ok(out)
    }

    /// Inverse of [`Section::embed`]: parent subscript tuple → 1-based
    /// section-relative index. `None` if the element is not in the section.
    pub fn project(&self, parent: &Idx) -> Option<Idx> {
        if parent.rank() != self.dims.len() {
            return None;
        }
        let mut out = Idx::SCALAR;
        for (d, sd) in self.dims.iter().enumerate() {
            match sd {
                SectionDim::Scalar(v) => {
                    if parent[d] != *v {
                        return None;
                    }
                }
                SectionDim::Triplet(t) => {
                    let p = t.position(parent[d])?;
                    out.push(p as i64 + 1);
                }
            }
        }
        Some(out)
    }

    /// Iterate the selected parent-array indices in column-major order.
    pub fn iter_parent(&self) -> impl Iterator<Item = Idx> + '_ {
        let dom = self.domain_full_rank().expect("rank checked at construction");
        dom.iter().collect::<Vec<_>>().into_iter()
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (d, sd) in self.dims.iter().enumerate() {
            if d > 0 {
                write!(f, ",")?;
            }
            write!(f, "{sd}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet;

    fn sec_8_1_2() -> Section {
        // A(2:996:2) from the paper's §8.1.2 example
        Section::from_triplets(vec![triplet(2, 996, 2)])
    }

    #[test]
    fn section_sizes() {
        assert_eq!(sec_8_1_2().size(), 498);
        let s = Section::new(vec![
            SectionDim::Scalar(3),
            SectionDim::Triplet(triplet(1, 5, 1)),
        ]);
        assert_eq!(s.size(), 5);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.parent_rank(), 2);
    }

    #[test]
    fn validation() {
        let parent = IndexDomain::standard(&[(1, 1000)]).unwrap();
        assert!(sec_8_1_2().validate(&parent).is_ok());
        let too_big = Section::from_triplets(vec![triplet(2, 1002, 2)]);
        assert_eq!(
            too_big.validate(&parent),
            Err(IndexError::SectionOutOfBounds { dim: 0 })
        );
        let wrong_rank = Section::from_triplets(vec![triplet(1, 2, 1), triplet(1, 2, 1)]);
        assert!(matches!(
            wrong_rank.validate(&parent),
            Err(IndexError::RankMismatch { .. })
        ));
    }

    #[test]
    fn embed_project_roundtrip() {
        let s = sec_8_1_2();
        assert_eq!(s.embed(&Idx::d1(1)).unwrap(), Idx::d1(2));
        assert_eq!(s.embed(&Idx::d1(498)).unwrap(), Idx::d1(996));
        assert_eq!(s.project(&Idx::d1(2)), Some(Idx::d1(1)));
        assert_eq!(s.project(&Idx::d1(3)), None); // odd, not in section
        for p in 1..=498 {
            let parent = s.embed(&Idx::d1(p)).unwrap();
            assert_eq!(s.project(&parent), Some(Idx::d1(p)));
        }
    }

    #[test]
    fn embed_with_scalar_dims() {
        // A(3, 1:5:2) — rank-1 section of a rank-2 array
        let s = Section::new(vec![
            SectionDim::Scalar(3),
            SectionDim::Triplet(triplet(1, 5, 2)),
        ]);
        assert_eq!(s.embed(&Idx::d1(2)).unwrap(), Idx::d2(3, 3));
        assert_eq!(s.project(&Idx::d2(3, 5)), Some(Idx::d1(3)));
        assert_eq!(s.project(&Idx::d2(4, 5)), None);
    }

    #[test]
    fn embed_bounds_checked() {
        let s = sec_8_1_2();
        assert!(s.embed(&Idx::d1(0)).is_err());
        assert!(s.embed(&Idx::d1(499)).is_err());
        assert!(s.embed(&Idx::d2(1, 1)).is_err());
    }

    #[test]
    fn full_section_is_identity() {
        let dom = IndexDomain::standard(&[(0, 3), (1, 2)]).unwrap();
        let s = Section::full(&dom);
        assert_eq!(s.size(), dom.size());
        for i in dom.iter() {
            // full section of a standard domain shifts to 1-based positions
            let rel = s.project(&i).unwrap();
            assert_eq!(s.embed(&rel).unwrap(), i);
        }
    }

    #[test]
    fn section_domains() {
        let s = Section::new(vec![
            SectionDim::Scalar(7),
            SectionDim::Triplet(triplet(2, 10, 4)),
        ]);
        assert_eq!(s.domain().unwrap().to_string(), "[2:10:4]");
        assert_eq!(s.domain_full_rank().unwrap().to_string(), "[7:7, 2:10:4]");
    }
}
