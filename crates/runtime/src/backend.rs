//! Pluggable exchange backends — the transport-neutral boundary between
//! compiled schedules and the wire.
//!
//! PR 2–3 compiled statements into per-processor [`CopyRun`] schedules but
//! still *executed* them by indexing directly into every processor's
//! buffer from one shared address space, so nothing validated that the
//! schedules are sufficient for a real distributed-memory machine. This
//! module closes that gap:
//!
//! * at inspect time, each plan's remote `CopyRun`s are **regrouped into
//!   per-`(sender, receiver)` message schedules** — a [`MessagePlan`]
//!   holding one [`PairSchedule`] per communicating processor pair, each a
//!   list of [`MsgSegment`]s (what the sender packs, where the receiver
//!   unpacks). This is exactly the vectorized-message aggregation the
//!   machine model prices: one message per pair per statement;
//! * [`ExchangeBackend`] abstracts *how* those messages move. A replay is
//!   always the same BSP superstep — local pack → exchange → compute —
//!   but the exchange leg is backend-owned;
//! * [`SharedMemBackend`] keeps today's direct-copy semantics (stage each
//!   pair's segments through a persistent, preallocated buffer in the
//!   [`PlanWorkspace`], then unpack into the receiver's operand buffers),
//!   preserving the **zero-allocation warm-replay contract**;
//! * [`ChannelsBackend`](crate::ChannelsBackend) (see [`crate::spmd`]) is
//!   a true message-passing SPMD executor: one long-lived worker per
//!   simulated processor, owning only its local shards, exchanging packed
//!   messages over channels — no worker ever reads another's buffer.
//!
//! Every backend cross-checks the bytes it actually moves per pair
//! against the frozen schedules, and [`MessagePlan::matches_analysis`]
//! records (verified at inspect time) that for partitioning mappings the
//! wire traffic is *exactly* the frozen [`CommAnalysis`] — the paper's
//! statically-computed communication sets are sufficient for a real
//! distributed-memory exchange.
//!
//! [`CopyRun`]: crate::CopyRun

use crate::array::DistArray;
use crate::commsets::CommAnalysis;
use crate::fault::{Fault, FaultPlan, FaultSwitch};
use crate::plan::{compute_proc, ExecPlan, ProcPlan};
use crate::workspace::PlanWorkspace;
use hpf_core::HpfError;
use hpf_procs::ProcId;
use std::sync::Arc;

/// A typed exchange failure — what used to be a mid-superstep panic.
///
/// Every variant carries the backend's superstep counter at detection
/// time, and [`ExchangeError::rank`] pins the failure to a zero-based
/// rank when one could be identified. Crossing the crate boundary it
/// becomes [`HpfError::Exchange`] (via `From`), which
/// [`crate::ckpt::run_trajectory`] matches on to drive
/// restore-and-replay recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// A worker thread died mid-superstep without completing its work
    /// order (crash, injected kill).
    WorkerDied {
        /// Zero-based rank of the dead worker.
        rank: u32,
        /// Superstep counter at detection.
        step: u64,
    },
    /// Every worker (and with them the completion channel) is gone.
    FleetDied {
        /// Superstep counter at detection.
        step: u64,
    },
    /// No worker progress within the step timeout — a dropped message or
    /// a schedule bug has the fleet waiting on data that will never
    /// arrive (a correct superstep cannot deadlock: channels are
    /// unbounded).
    Wedged {
        /// Superstep counter at detection.
        step: u64,
        /// How long the driver waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// A physically received message's length disagrees with the frozen
    /// schedule — the payload was damaged in flight, or sender and
    /// receiver executed different plans. Detected *before* unpacking,
    /// so garbage never reaches a kernel.
    CorruptMessage {
        /// Zero-based sending rank.
        sender: u32,
        /// Zero-based receiving rank (where the damage was detected).
        receiver: u32,
        /// Superstep counter at detection.
        step: u64,
        /// Elements physically received.
        got: usize,
        /// Elements the receiver's schedule promises.
        expected: usize,
    },
    /// A message arrived at a worker whose schedule has no entry for it.
    Misrouted {
        /// Zero-based rank that received the stray message.
        rank: u32,
        /// Superstep counter at detection.
        step: u64,
    },
}

impl ExchangeError {
    /// The zero-based rank the failure is pinned to, if identifiable
    /// (corruption is pinned to the receiving rank, where it was
    /// detected).
    pub fn rank(&self) -> Option<u32> {
        match *self {
            ExchangeError::WorkerDied { rank, .. }
            | ExchangeError::Misrouted { rank, .. } => Some(rank),
            ExchangeError::CorruptMessage { receiver, .. } => Some(receiver),
            ExchangeError::FleetDied { .. } | ExchangeError::Wedged { .. } => None,
        }
    }

    /// The backend's superstep counter when the failure was detected.
    pub fn step(&self) -> u64 {
        match *self {
            ExchangeError::WorkerDied { step, .. }
            | ExchangeError::FleetDied { step }
            | ExchangeError::Wedged { step, .. }
            | ExchangeError::CorruptMessage { step, .. }
            | ExchangeError::Misrouted { step, .. } => step,
        }
    }
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExchangeError::WorkerDied { rank, step } => {
                write!(f, "SPMD worker {} died mid-superstep (step {step})", rank + 1)
            }
            ExchangeError::FleetDied { step } => {
                write!(f, "every SPMD worker died mid-superstep (step {step})")
            }
            ExchangeError::Wedged { step, waited_ms } => write!(
                f,
                "superstep {step} wedged: no worker progress within {waited_ms}ms \
                 (a message was lost, or the schedule is wrong)"
            ),
            ExchangeError::CorruptMessage { sender, receiver, step, got, expected } => {
                write!(
                    f,
                    "worker {}: message from {} at step {step} has {got} element(s), \
                     schedule says {expected}",
                    receiver + 1,
                    sender + 1
                )
            }
            ExchangeError::Misrouted { rank, step } => write!(
                f,
                "worker {}: received a message its schedule has no entry for \
                 (step {step})",
                rank + 1
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<ExchangeError> for HpfError {
    fn from(e: ExchangeError) -> HpfError {
        HpfError::Exchange { rank: e.rank(), step: e.step(), reason: e.to_string() }
    }
}

/// One contiguous piece of a pair's message: `len` elements read from the
/// sender's local buffer of array `array` at `src_off`, landing in the
/// receiver's packed operand buffer for term `term` at `dst_off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSegment {
    /// RHS term index the data feeds (selects the receiver's operand
    /// buffer).
    pub term: usize,
    /// Operand array index (selects the sender's local buffer).
    pub array: usize,
    /// Flat offset into the sender's local buffer.
    pub src_off: usize,
    /// Position in the receiver's packed operand buffer for `term`.
    pub dst_off: usize,
    /// Elements moved.
    pub len: usize,
}

/// Everything one ordered processor pair exchanges for one statement: the
/// segments are packed into a single message in order (the standard
/// vectorized-message aggregation), so `elements` is both the message
/// length and the pair's wire traffic in elements.
#[derive(Debug, Clone)]
pub struct PairSchedule {
    /// Zero-based sending processor.
    pub sender: u32,
    /// Zero-based receiving processor.
    pub receiver: u32,
    /// Total elements in the message (= sum of segment lengths).
    pub elements: usize,
    /// The message layout, in pack order.
    pub segments: Vec<MsgSegment>,
}

/// How a [`MessagePlan`]'s wire traffic relates to the statement's frozen
/// region-algebraic [`CommAnalysis`] — the two are computed independently
/// (per-element gather enumeration vs. region algebra), so their agreement
/// is a meaningful cross-check, and their *disagreement* has two very
/// different causes that used to be conflated in a single silent boolean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AnalysisVerdict {
    /// The schedules match the analysis pair for pair — the strict
    /// contract that holds whenever every involved mapping partitions its
    /// array.
    #[default]
    Exact,
    /// An involved mapping replicates, so the comparison is inapplicable
    /// *by design*: the analysis models first-owner-computes plus a
    /// result broadcast, while execution has every replica compute its
    /// own copy (no broadcast ever rides the wire). Expected, documented
    /// divergence — not a schedule bug.
    ReplicatedDivergence,
    /// All mappings partition yet the schedules still disagree with the
    /// analysis — a genuine schedule or analysis bug.
    /// [`ExecPlan::inspect`] refuses to freeze such a plan.
    Divergent,
}

impl std::fmt::Display for AnalysisVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisVerdict::Exact => write!(f, "exact"),
            AnalysisVerdict::ReplicatedDivergence => write!(f, "replicated-divergence"),
            AnalysisVerdict::Divergent => write!(f, "divergent"),
        }
    }
}

/// A plan's remote traffic regrouped by processor pair — the message-level
/// view of the same schedule the per-processor [`CopyRun`]s describe
/// element-wise. Built once at inspect time; pairs are sorted by
/// `(sender, receiver)`.
///
/// [`CopyRun`]: crate::CopyRun
#[derive(Debug, Clone, Default)]
pub struct MessagePlan {
    pairs: Vec<PairSchedule>,
    wire_elements: u64,
    verdict: AnalysisVerdict,
}

impl MessagePlan {
    /// Regroup the remote runs of `per_proc` into per-pair message
    /// schedules and verify them against the statement's frozen
    /// communication analysis.
    pub(crate) fn build(per_proc: &[ProcPlan], analysis: &CommAnalysis) -> MessagePlan {
        let mut map: std::collections::BTreeMap<(u32, u32), Vec<MsgSegment>> =
            std::collections::BTreeMap::new();
        for pp in per_proc {
            let me = pp.proc.zero_based() as u32;
            for (t, ts) in pp.terms.iter().enumerate() {
                for r in ts.runs.iter().filter(|r| r.src != me) {
                    map.entry((r.src, me)).or_default().push(MsgSegment {
                        term: t,
                        array: ts.array,
                        src_off: r.src_off,
                        dst_off: r.dst_off,
                        len: r.len,
                    });
                }
            }
        }
        let pairs: Vec<PairSchedule> = map
            .into_iter()
            .map(|((sender, receiver), segments)| PairSchedule {
                sender,
                receiver,
                elements: segments.iter().map(|s| s.len).sum(),
                segments,
            })
            .collect();
        let wire_elements: u64 = pairs.iter().map(|p| p.elements as u64).sum();
        // Exact-match cross-check against the region-algebraic analysis:
        // for partitioning mappings the gather schedule *is* the
        // communication set, pair for pair. When they disagree, the
        // verdict separates the expected replication case from a genuine
        // schedule bug instead of collapsing both into one boolean.
        let exact = analysis.comm.messages() == pairs.len()
            && wire_elements == analysis.comm.total_elements()
            && pairs.iter().all(|p| {
                analysis.comm.elements_between(
                    ProcId(p.sender + 1),
                    ProcId(p.receiver + 1),
                ) == p.elements as u64
            });
        let verdict = if exact {
            AnalysisVerdict::Exact
        } else if analysis.region_exact {
            AnalysisVerdict::Divergent
        } else {
            AnalysisVerdict::ReplicatedDivergence
        };
        MessagePlan { pairs, wire_elements, verdict }
    }

    /// The per-pair message schedules, sorted by `(sender, receiver)`.
    pub fn pairs(&self) -> &[PairSchedule] {
        &self.pairs
    }

    /// The schedule for `sender → receiver`, if that pair communicates.
    pub fn pair(&self, sender: u32, receiver: u32) -> Option<&PairSchedule> {
        self.pairs
            .binary_search_by_key(&(sender, receiver), |p| (p.sender, p.receiver))
            .ok()
            .map(|i| &self.pairs[i])
    }

    /// Total elements crossing processor boundaries per replay.
    pub fn wire_elements(&self) -> u64 {
        self.wire_elements
    }

    /// Total bytes crossing processor boundaries per replay.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_elements * std::mem::size_of::<f64>() as u64
    }

    /// True iff the message schedules match the frozen [`CommAnalysis`]
    /// exactly, pair for pair (always the case when every involved
    /// mapping partitions its array). Shorthand for
    /// `analysis_verdict() == AnalysisVerdict::Exact`; callers that need
    /// to distinguish the expected replication divergence from a genuine
    /// bug should use [`MessagePlan::analysis_verdict`].
    pub fn matches_analysis(&self) -> bool {
        self.verdict == AnalysisVerdict::Exact
    }

    /// How the schedules relate to the frozen analysis — exact match,
    /// expected replication divergence, or a genuine mismatch.
    pub fn analysis_verdict(&self) -> AnalysisVerdict {
        self.verdict
    }

    /// Mutable pair schedules — only for the verifier's mutation tests,
    /// which corrupt frozen plans to prove the diagnostics fire.
    #[cfg(test)]
    pub(crate) fn pairs_mut(&mut self) -> &mut Vec<PairSchedule> {
        &mut self.pairs
    }

    /// Overwrite the cached wire total — only for the verifier's mutation
    /// tests.
    #[cfg(test)]
    pub(crate) fn set_wire_elements(&mut self, n: u64) {
        self.wire_elements = n;
    }
}

/// How a replay's exchange phase moves data between simulated processors.
///
/// Select one with [`Backend`] or instantiate directly. The contract:
/// `step` executes one full BSP superstep of `plan` over `arrays`
/// (semantically identical across backends — the backend-equivalence
/// property suite pins `Channels` ≡ `SharedMem` ≡ the dense reference),
/// and [`ExchangeBackend::bytes_sent`] reports the cumulative bytes the
/// backend actually put on its wire, which every implementation must
/// cross-check against the plan's frozen [`MessagePlan`].
pub trait ExchangeBackend {
    /// Human-readable backend name (for reports and benches).
    fn name(&self) -> &'static str;

    /// Execute one superstep: local pack → exchange → compute.
    ///
    /// Exchange failures (worker death, lost or damaged messages, a
    /// wedged fleet) come back as a typed [`ExchangeError`] — the arrays
    /// may then hold a partial timestep (a dead worker takes its shards
    /// with it) and must be reloaded from a checkpoint before the
    /// trajectory continues (see [`crate::ckpt`]).
    ///
    /// # Panics
    /// Panics if `plan` is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]) — staleness is a caller bug, not a
    /// runtime fault.
    fn step(
        &mut self,
        plan: &Arc<ExecPlan>,
        arrays: &mut [DistArray<f64>],
        ws: &mut PlanWorkspace,
    ) -> Result<(), ExchangeError>;

    /// Cumulative bytes this backend has moved between processors.
    fn bytes_sent(&self) -> u64;

    /// Arm deterministic fault injection (see [`FaultPlan`]): each
    /// fault in `plan` fires once when its superstep comes around. The
    /// default implementation ignores the plan — backends that support
    /// injection override it.
    fn inject(&mut self, plan: FaultPlan) {
        let _ = plan;
    }

    /// Injected faults that have fired so far (0 for backends without
    /// injection support).
    fn faults_fired(&self) -> usize {
        0
    }

    /// Measured wall-nanoseconds each simulated processor spent in its
    /// compute kernels during the *last* superstep — the adaptive
    /// controller's observed per-rank load vector. Empty for backends
    /// that do not sample compute time.
    fn rank_compute_ns(&self) -> &[u64] {
        &[]
    }
}

/// Backend selector, threaded through the executors and [`crate::Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Direct copies within one address space, staged through persistent
    /// per-pair buffers — today's semantics, zero-allocation warm replays.
    #[default]
    SharedMem,
    /// True message-passing SPMD: one long-lived worker per simulated
    /// processor, packed messages over channels, disjoint ownership.
    Channels,
}

impl Backend {
    /// Instantiate the selected backend.
    pub fn instantiate(self) -> Box<dyn ExchangeBackend + Send> {
        match self {
            Backend::SharedMem => Box::new(SharedMemBackend::new()),
            Backend::Channels => Box::new(crate::spmd::ChannelsBackend::new()),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::SharedMem => write!(f, "shared-mem"),
            Backend::Channels => write!(f, "channels"),
        }
    }
}

/// The shared-address-space backend: every pair's message is packed from
/// the sender's local buffers into a persistent, preallocated staging
/// buffer in the [`PlanWorkspace`] (the pair's send/recv buffer), then
/// unpacked into the receiver's packed operand buffers — the same
/// two-sided message discipline as the `Channels` backend, minus the
/// threads. The elements physically staged are counted and asserted
/// equal to the frozen schedule every step, so
/// [`ExchangeBackend::bytes_sent`] is measured, not assumed. Warm steps
/// perform **zero heap allocations**.
#[derive(Debug, Clone, Default)]
pub struct SharedMemBackend {
    bytes_sent: u64,
    steps: u64,
    /// Per-rank compute nanoseconds of the last step (see
    /// [`ExchangeBackend::rank_compute_ns`]); resized only when the
    /// simulated processor count changes, so warm steps stay
    /// allocation-free.
    rank_ns: Vec<u64>,
    /// Armed fault injection, if any. This backend has no threads, wire,
    /// or locks, so it simulates each fault's *detection outcome* at the
    /// step boundary (same typed errors, arrays untouched) instead of
    /// physically provoking it — see [`crate::fault`]. `None` on the
    /// warm path: one branch, no lock.
    faults: Option<Arc<FaultSwitch>>,
}

impl SharedMemBackend {
    /// A fresh backend with zeroed counters.
    pub fn new() -> Self {
        SharedMemBackend::default()
    }

    /// Supersteps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulate every injected fault scheduled for the current step:
    /// delays sleep, a pool poison is a no-op (there is no pool), and
    /// kill/drop/corrupt return the typed error their physical form
    /// would be detected as — before any array data moves, so the
    /// timestep simply did not happen.
    fn injected_failure(&mut self) -> Result<(), ExchangeError> {
        let Some(switch) = &self.faults else {
            return Ok(());
        };
        let step = self.steps;
        while let Some(fault) = switch.at_step(step) {
            match fault {
                Fault::DelayMessage { millis, .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                Fault::PoisonPool { .. } => {}
                Fault::KillWorker { rank, .. } => {
                    return Err(ExchangeError::WorkerDied { rank, step });
                }
                Fault::DropMessage { .. } => {
                    return Err(ExchangeError::Wedged { step, waited_ms: 0 });
                }
                Fault::CorruptMessage { sender, receiver, .. } => {
                    return Err(ExchangeError::CorruptMessage {
                        sender,
                        receiver,
                        step,
                        got: 0,
                        expected: 1,
                    });
                }
            }
        }
        Ok(())
    }

    /// Execute one whole fused timestep (see [`crate::ProgramPlan`]):
    /// per superstep, pack local runs, stage the *effective* segments of
    /// every fused pair hoisted to the phase (clean units are skipped —
    /// their receiver-side data is still current from an earlier
    /// timestep), and compute. Returns the elements actually staged,
    /// which the caller cross-checks against the dirty-tracking state's
    /// prediction. Warm calls perform zero heap allocations. Counts one
    /// step per timestep.
    pub(crate) fn step_fused(
        &mut self,
        plan: &crate::fuse::ProgramPlan,
        arrays: &mut [DistArray<f64>],
        state: &crate::fuse::FusedState,
        ws: &mut crate::workspace::FusedWorkspace,
    ) -> Result<u64, ExchangeError> {
        self.injected_failure()?;
        let staged = crate::fuse::execute_fused_seq(plan, arrays, state, ws);
        self.bytes_sent += staged * std::mem::size_of::<f64>() as u64;
        self.steps += 1;
        // adopt the executor's per-rank compute-time sample
        if self.rank_ns.len() != ws.rank_ns.len() {
            self.rank_ns.resize(ws.rank_ns.len(), 0);
        }
        self.rank_ns.copy_from_slice(&ws.rank_ns);
        Ok(staged)
    }
}

/// Pack phase for one processor restricted to its *own* data: copy the
/// local runs (`src == me`) into the packed operand buffers, leaving the
/// remote positions for the exchange phase to fill.
pub(crate) fn pack_local_runs(
    arrays: &[DistArray<f64>],
    pp: &ProcPlan,
    bufs: &mut [Vec<f64>],
) {
    let me = pp.proc.zero_based() as u32;
    for (ts, buf) in pp.terms.iter().zip(bufs) {
        let src_arr = &arrays[ts.array];
        for r in ts.runs.iter().filter(|r| r.src == me) {
            let src = &src_arr.local(r.src as usize)[r.src_off..r.src_off + r.len];
            buf[r.dst_off..r.dst_off + r.len].copy_from_slice(src);
        }
    }
}

impl ExchangeBackend for SharedMemBackend {
    fn name(&self) -> &'static str {
        "shared-mem"
    }

    fn step(
        &mut self,
        plan: &Arc<ExecPlan>,
        arrays: &mut [DistArray<f64>],
        ws: &mut PlanWorkspace,
    ) -> Result<(), ExchangeError> {
        assert!(plan.is_valid_for(arrays), "stale plan: an involved array was remapped");
        self.injected_failure()?;
        ws.ensure(plan);
        for (pp, bufs) in plan.per_proc().iter().zip(ws.bufs.iter_mut()) {
            pack_local_runs(arrays, pp, bufs);
        }
        // exchange: pack each pair's message into its persistent staging
        // buffer from the sender's locals, then unpack into the
        // receiver's packed operand buffers. The schedules were already
        // cross-checked against the independent region-algebraic analysis
        // at inspect time (see `ExecPlan::inspect`); here the physically
        // staged elements are measured and held to that schedule.
        let msgs = plan.message_plan();
        let mut staged = 0u64;
        for (pair, stage) in msgs.pairs().iter().zip(ws.stage.iter_mut()) {
            let mut off = 0usize;
            for seg in &pair.segments {
                let src = &arrays[seg.array].local(pair.sender as usize)
                    [seg.src_off..seg.src_off + seg.len];
                stage[off..off + seg.len].copy_from_slice(src);
                off += seg.len;
            }
            staged += off as u64;
            let bufs = &mut ws.bufs[pair.receiver as usize];
            let mut off = 0usize;
            for seg in &pair.segments {
                bufs[seg.term][seg.dst_off..seg.dst_off + seg.len]
                    .copy_from_slice(&stage[off..off + seg.len]);
                off += seg.len;
            }
        }
        assert_eq!(
            staged,
            msgs.wire_elements(),
            "measured wire traffic diverged from the frozen schedule"
        );
        self.bytes_sent += staged * std::mem::size_of::<f64>() as u64;
        self.steps += 1;
        let combine = plan.combine();
        if self.rank_ns.len() != plan.per_proc().len() {
            self.rank_ns.resize(plan.per_proc().len(), 0);
        }
        self.rank_ns.fill(0);
        let (_, locals) = arrays[plan.lhs()].parts_mut();
        for (pp, bufs) in plan.per_proc().iter().zip(&ws.bufs) {
            let t0 = std::time::Instant::now();
            compute_proc(pp, &mut locals[pp.proc.zero_based()], bufs, combine);
            self.rank_ns[pp.proc.zero_based()] += t0.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn rank_compute_ns(&self) -> &[u64] {
        &self.rank_ns
    }

    fn inject(&mut self, plan: FaultPlan) {
        self.faults = Some(Arc::new(FaultSwitch::arm(plan)));
    }

    fn faults_fired(&self) -> usize {
        self.faults.as_ref().map_or(0, |s| s.fired())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, Combine, Term};
    use crate::exec::dense_reference;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 2)) as f64,
            ));
        }
        out
    }

    fn shift_stmt(n: i64, arrays: &[DistArray<f64>]) -> Assignment {
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, n - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap()
    }

    #[test]
    fn message_plan_matches_comm_analysis_exactly() {
        let arrays = setup(64, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let stmt = shift_stmt(64, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let msgs = plan.message_plan();
        assert!(msgs.matches_analysis(), "partitioned mappings must match exactly");
        assert_eq!(msgs.analysis_verdict(), AnalysisVerdict::Exact);
        assert_eq!(msgs.wire_elements(), plan.analysis().comm.total_elements());
        assert_eq!(msgs.wire_bytes(), plan.analysis().total_bytes());
        assert_eq!(msgs.pairs().len(), plan.analysis().comm.messages());
        for p in msgs.pairs() {
            assert_ne!(p.sender, p.receiver, "local data never rides the wire");
            assert!(p.elements > 0);
            assert_eq!(p.elements, p.segments.iter().map(|s| s.len).sum::<usize>());
            assert!(msgs.pair(p.sender, p.receiver).is_some());
        }
        assert!(msgs.pair(63, 64).is_none());
    }

    #[test]
    fn collocated_statement_has_empty_message_plan() {
        let arrays = setup(32, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 32)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 32)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let msgs = plan.message_plan();
        assert!(msgs.pairs().is_empty());
        assert_eq!(msgs.wire_bytes(), 0);
        assert!(msgs.matches_analysis());
    }

    #[test]
    fn shared_mem_backend_matches_direct_replay() {
        let mut direct = setup(48, 4, &[FormatSpec::Block, FormatSpec::Cyclic(2)]);
        let mut staged = direct.clone();
        let stmt = shift_stmt(48, &direct);
        let plan = Arc::new(ExecPlan::inspect(&direct, &stmt).unwrap());
        let mut ws = PlanWorkspace::for_plan(&plan);
        let mut backend = SharedMemBackend::new();
        for _ in 0..3 {
            let expect = dense_reference(&direct, &stmt);
            plan.execute_seq(&mut direct);
            backend.step(&plan, &mut staged, &mut ws).unwrap();
            assert_eq!(direct[0].to_dense(), expect);
            assert_eq!(staged[0].to_dense(), expect);
        }
        assert_eq!(backend.steps(), 3);
        assert_eq!(backend.bytes_sent(), 3 * plan.message_plan().wire_bytes());
        assert_eq!(backend.name(), "shared-mem");
    }

    #[test]
    fn replicated_mapping_diverges_from_analysis_but_executes() {
        // replicated LHS: every replica computes, so the wire traffic is
        // legitimately different from the analysis's broadcast model
        let dom = IndexDomain::of_shape(&[12]).unwrap();
        let rep = Arc::new(hpf_core::EffectiveDist::Replicated {
            domain: dom,
            procs: hpf_core::ProcSet::all(3),
        });
        let mut ds = DataSpace::new(3);
        let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let mut arrays = vec![
            DistArray::new("R", rep, 3, 0.0),
            DistArray::from_fn("B", ds.effective(b).unwrap(), 3, |i| (i[0] * 5) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 12)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 12)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        assert!(!plan.message_plan().matches_analysis());
        assert_eq!(
            plan.message_plan().analysis_verdict(),
            AnalysisVerdict::ReplicatedDivergence,
            "replication must be reported as the expected divergence, not a bug"
        );
        let expect = dense_reference(&arrays, &stmt);
        let mut ws = PlanWorkspace::for_plan(&plan);
        SharedMemBackend::new().step(&plan, &mut arrays, &mut ws).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn shared_mem_simulates_injected_faults_at_step_boundary() {
        let mut arrays = setup(48, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let stmt = shift_stmt(48, &arrays);
        let plan = Arc::new(ExecPlan::inspect(&arrays, &stmt).unwrap());
        let mut ws = PlanWorkspace::for_plan(&plan);
        let mut backend = SharedMemBackend::new();
        backend.inject(FaultPlan::parse("kill:rank=2,step=1").unwrap());
        backend.step(&plan, &mut arrays, &mut ws).unwrap();
        let before = arrays[0].to_dense();
        let err = backend.step(&plan, &mut arrays, &mut ws).unwrap_err();
        assert_eq!(err, ExchangeError::WorkerDied { rank: 2, step: 1 });
        assert_eq!(err.rank(), Some(2));
        assert_eq!(err.step(), 1);
        // the failed timestep never happened: arrays untouched, step not
        // counted, and the one-shot fault is spent
        assert_eq!(arrays[0].to_dense(), before, "failed step must not move data");
        assert_eq!(backend.steps(), 1);
        assert_eq!(backend.faults_fired(), 1);
        backend.step(&plan, &mut arrays, &mut ws).unwrap();
        assert_eq!(backend.steps(), 2);
        assert_eq!(backend.faults_fired(), 1, "one-shot faults must not re-fire");
    }

    #[test]
    fn backend_selector_instantiates() {
        assert_eq!(Backend::default(), Backend::SharedMem);
        assert_eq!(Backend::SharedMem.to_string(), "shared-mem");
        assert_eq!(Backend::Channels.to_string(), "channels");
        assert_eq!(Backend::SharedMem.instantiate().name(), "shared-mem");
        assert_eq!(Backend::Channels.instantiate().name(), "channels");
    }
}
