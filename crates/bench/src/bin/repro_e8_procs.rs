//! E8 (§3) — processor arrangements: EQUIVALENCE-style storage
//! association onto AP, sections as distribution targets, scalar
//! arrangements.

use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
use hpf_index::{triplet, Idx, IndexDomain, Section};
use hpf_procs::{ProcSpace, ScalarPolicy};

fn main() {
    println!("E8 — §3 PROCESSORS: storage association and sections\n");

    // a 4×8 grid and a 32-vector share AP by storage association
    let mut ps = ProcSpace::new(32);
    let pr = ps.declare_array("PR", IndexDomain::of_shape(&[32]).unwrap()).unwrap();
    let grid = ps.declare_array("GRID", IndexDomain::of_shape(&[4, 8]).unwrap()).unwrap();
    println!("PROCESSORS PR(32), GRID(4,8) — column-major association:");
    for (i, j) in [(1i64, 1i64), (2, 1), (1, 2), (4, 8)] {
        let ap = ps.ap_of(grid, &Idx::d2(i, j)).unwrap();
        let lin = ps.index_of(pr, ap).unwrap();
        println!("  GRID({i},{j}) ≡ {ap} ≡ PR({})", lin[0]);
    }
    println!(
        "  overlap(PR, GRID) = {} (\"sharing of an abstract processor implies\n\
         \u{20}\u{20}the sharing of the associated physical processor\")",
        ps.overlap(pr, grid)
    );

    // scalar arrangements: the three §3 policies
    let ctl = ps.declare_scalar("CTL", ScalarPolicy::ControlProcessor).unwrap();
    let rep = ps.declare_scalar("REP", ScalarPolicy::ReplicateAll).unwrap();
    println!("\nscalar arrangements:");
    println!("  CTL (control processor) → {:?}", ps.scalar_residence(ctl).unwrap());
    println!("  REP (replicated) → {} processors", ps.scalar_residence(rep).unwrap().len());

    // distribution to a section: odd processors of Q(16)
    println!("\nDISTRIBUTE B(CYCLIC) TO Q(1:16:2)  [B(1:12)]:");
    let mut ds = DataSpace::new(16);
    ds.declare_processors("Q", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
    ds.distribute(
        b,
        &DistributeSpec::to_section(
            vec![FormatSpec::Cyclic(1)],
            "Q",
            Section::from_triplets(vec![triplet(1, 16, 2)]),
        ),
    )
    .unwrap();
    let mut line = String::from("  owners:");
    for i in 1..=12i64 {
        line.push_str(&format!(" {}", ds.owners(b, &Idx::d1(i)).unwrap()));
    }
    println!("{line}");
    println!("  (every owner is an odd processor — the even half stays free)");
}
