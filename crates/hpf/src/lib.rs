//! # hpf — HPF distribution & alignment without templates
//!
//! Facade crate for the reproduction of Chapman, Mehrotra & Zima,
//! *"High Performance Fortran Without Templates: An Alternative Model for
//! Distribution and Alignment"* (PPoPP 1993 / ICASE Report 93-17).
//!
//! Re-exports the whole workspace:
//!
//! * [`index`] — index domains, subscript triplets, regular-section algebra
//! * [`procs`] — processor arrangements and the abstract processor space
//! * [`core`] — distributions, alignments, `CONSTRUCT`, the alignment
//!   forest, procedure boundaries, inquiry
//! * [`template`] — the HPF template-model baseline (for §8 comparisons)
//! * [`machine`] — the distributed-memory machine simulator
//! * [`runtime`] — distributed arrays and owner-computes execution
//! * [`verify`] — static schedule verification (`hpf-lint`)
//! * [`frontend`] — the `!HPF$` directive sub-language
//!
//! ```
//! use hpf::prelude::*;
//!
//! let mut ds = DataSpace::new(4);
//! let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
//! let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
//! ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
//! ds.align(a, b, &AlignSpec::identity(1)).unwrap();
//! assert_eq!(ds.owners(a, &Idx::d1(7)).unwrap(), ds.owners(b, &Idx::d1(7)).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpf_core as core;
pub use hpf_frontend as frontend;
pub use hpf_index as index;
pub use hpf_machine as machine;
pub use hpf_procs as procs;
pub use hpf_runtime as runtime;
pub use hpf_template as template;
pub use hpf_verify as verify;

pub mod prelude;
