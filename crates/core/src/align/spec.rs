use crate::align::expr::AlignExpr;
use std::fmt;

/// One axis of the alignee in an `ALIGN`/`REALIGN` directive (§5):
///
/// > Every axis of the alignee is specified as either ":" or "*" or an
/// > align-dummy, which is a scalar integer variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AligneeAxis {
    /// `:` — spread along the matching base triplet.
    Colon,
    /// `*` — the axis is collapsed.
    Star,
    /// A named align-dummy (directive-scoped id).
    Dummy(usize),
}

/// One base subscript of an `ALIGN`/`REALIGN` directive (§5.1): a
/// dummyless expression, a dummy-use expression, a subscript triplet, or
/// `*` (replication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseSubscript {
    /// A scalar integer expression in zero or one align-dummies.
    Expr(AlignExpr),
    /// A subscript triplet with optional parts (`M::M` leaves the upper
    /// bound to default to the base dimension's upper bound).
    Triplet {
        /// Lower bound (default: the base dimension's lower bound).
        lower: Option<i64>,
        /// Upper bound (default: the base dimension's upper bound).
        upper: Option<i64>,
        /// Stride (default 1).
        stride: Option<i64>,
    },
    /// `*` — replication across this base dimension.
    Star,
}

impl BaseSubscript {
    /// The full-dimension triplet `:`.
    pub const COLON: BaseSubscript = BaseSubscript::Triplet { lower: None, upper: None, stride: None };
}

/// A parsed `ALIGN A(s1,...,sn) WITH B(t1,...,tm)` directive body —
/// everything §5.1 needs to construct the alignment function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignSpec {
    /// The alignee axes `s1..sn`.
    pub alignee: Vec<AligneeAxis>,
    /// The base subscripts `t1..tm`.
    pub base: Vec<BaseSubscript>,
}

impl AlignSpec {
    /// Build from explicit parts.
    pub fn new(alignee: Vec<AligneeAxis>, base: Vec<BaseSubscript>) -> Self {
        AlignSpec { alignee, base }
    }

    /// The identity alignment `A(:,...,:) WITH B(:,...,:)` of a given rank.
    pub fn identity(rank: usize) -> Self {
        AlignSpec {
            alignee: vec![AligneeAxis::Colon; rank],
            base: vec![BaseSubscript::COLON; rank],
        }
    }

    /// `A(I1,...,In) WITH B(e1,...,em)` from expressions, declaring the
    /// dummies `0..rank`.
    pub fn with_exprs(rank: usize, base: Vec<AlignExpr>) -> Self {
        AlignSpec {
            alignee: (0..rank).map(AligneeAxis::Dummy).collect(),
            base: base.into_iter().map(BaseSubscript::Expr).collect(),
        }
    }
}

impl fmt::Display for AlignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, a) in self.alignee.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            match a {
                AligneeAxis::Colon => write!(f, ":")?,
                AligneeAxis::Star => write!(f, "*")?,
                AligneeAxis::Dummy(d) => write!(f, "J{d}")?,
            }
        }
        write!(f, ") WITH (")?;
        for (k, b) in self.base.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            match b {
                BaseSubscript::Expr(e) => write!(f, "{e}")?,
                BaseSubscript::Triplet { lower, upper, stride } => {
                    if let Some(l) = lower {
                        write!(f, "{l}")?;
                    }
                    write!(f, ":")?;
                    if let Some(u) = upper {
                        write!(f, "{u}")?;
                    }
                    if let Some(s) = stride {
                        write!(f, ":{s}")?;
                    }
                }
                BaseSubscript::Star => write!(f, "*")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_shape() {
        let s = AlignSpec::identity(2);
        assert_eq!(s.alignee.len(), 2);
        assert!(matches!(s.alignee[0], AligneeAxis::Colon));
        assert!(matches!(s.base[1], BaseSubscript::Triplet { .. }));
    }

    #[test]
    fn display() {
        let s = AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Star],
            vec![
                BaseSubscript::Triplet { lower: Some(2), upper: None, stride: Some(2) },
                BaseSubscript::Star,
            ],
        );
        assert_eq!(s.to_string(), "(:,*) WITH (2::2,*)");
    }
}
