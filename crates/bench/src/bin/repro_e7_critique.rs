//! E7 (§8.2) — the template critique, executable: the two failure modes
//! of templates vs the paper's model handling the same needs.

use hpf_core::{
    Actual, AlignSpec, CallFrame, DataSpace, DistributeSpec, Dummy, DummySpec, FormatSpec,
    ProcedureDef,
};
use hpf_index::{triplet, IndexDomain, Section};
use hpf_template::TemplateModel;

fn main() {
    println!("E7 — §8.2: \"Language Problems with Templates\", executed\n");

    println!("problem 1: templates cannot handle allocatable arrays");
    let mut tm = TemplateModel::new(4);
    match tm.allocatable_template("T") {
        Err(e) => println!("  template model: {e}"),
        Ok(_) => println!("  UNEXPECTED"),
    }
    let mut ds = DataSpace::new(4);
    let w = ds.declare_allocatable("W", 1).unwrap();
    ds.distribute(w, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    for n in [100usize, 37, 2048] {
        ds.allocate(w, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.deallocate(w).unwrap();
    }
    println!(
        "  paper's model: ALLOCATABLE array re-mapped correctly across 3\n\
         \u{20}\u{20}allocations of different run-time shapes (directives propagate, §6)\n"
    );

    println!("problem 2: templates cannot be passed across procedure boundaries");
    let t = tm.template("T", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    let a = tm.array("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    tm.align(a, t, &AlignSpec::identity(1)).unwrap();
    tm.distribute(t, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    match tm.describe_in_procedure(a, "SUB") {
        Err(e) => println!("  template model: {e}"),
        Ok(_) => println!("  UNEXPECTED"),
    }
    let mut ds = DataSpace::new(4);
    let ar = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    ds.distribute(ar, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
    let frame = CallFrame::enter(
        &ds,
        &def,
        &[Actual::section(ar, Section::from_triplets(vec![triplet(2, 996, 2)]))],
    )
    .unwrap();
    let x = frame.dummy(0);
    let eff = frame.local().effective(x).unwrap();
    println!(
        "  paper's model: inside SUB, X's mapping is {:?} and fully inquirable\n\
         \u{20}\u{20}({} elements on P1..P4: {:?})",
        hpf_core::inquiry::mapping_kind(&eff),
        498,
        hpf_core::inquiry::ownership_histogram(frame.local(), x)
            .unwrap()
            .iter()
            .map(|&(_, n)| n)
            .collect::<Vec<_>>(),
    );

    println!(
        "\nconclusion (§10): the model \"is both simpler and more general than\n\
         the current High Performance Fortran model\" — no template directive,\n\
         simplified argument passing, generalized distribution functions."
    );
}
