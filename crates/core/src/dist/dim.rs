//! One dimension's distribution function (§4.1).
//!
//! A [`DimDist`] maps the 1-based *positions* `1..=n` of one array
//! dimension onto the 1-based coordinates `1..=np` of one target
//! dimension, and answers the three per-element questions every layer
//! above asks:
//!
//! * `coord(pos)` — which target coordinate owns the position (the paper's
//!   `δ` restricted to one dimension),
//! * `local(pos)` — the 1-based local index of the position within its
//!   owner (the `local` formulas of §4.1.1/§4.1.3),
//! * `global(coord, local)` — the inverse of `local` given the owner.
//!
//! All three are O(1) for `BLOCK`, `BLOCK_BALANCED`, `CYCLIC(k)`, and
//! `INDIRECT` (after construction), and O(log NP) via binary search for
//! `GENERAL_BLOCK`.

use super::format::DimFormat;
use crate::HpfError;
use hpf_index::Triplet;

/// The distribution of one array dimension onto one target dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimDist {
    format: DimFormat,
    /// Lower bound of the dimension's global index triplet.
    lower: i64,
    /// Stride of the dimension's global index triplet (1 for standard
    /// domains).
    stride: i64,
    /// Extent of the dimension.
    n: usize,
    /// Extent of the target dimension (1 for collapsed dimensions).
    np: usize,
    /// Precomputed `⌈n/np⌉` for `BLOCK`.
    q: i64,
    /// Precomputed `⌊n/np⌋` and `n mod np` for `BLOCK_BALANCED`.
    base: i64,
    rem: i64,
}

impl DimDist {
    /// Bind a format to a dimension described by its global index triplet
    /// and a target dimension of extent `np`.
    pub fn new(format: DimFormat, dim: &Triplet, np: usize) -> Result<Self, HpfError> {
        let n = dim.len();
        let np = if matches!(format, DimFormat::Collapsed) { 1 } else { np };
        if np == 0 {
            return Err(HpfError::BadGeneralBlock("zero-extent target dimension".into()));
        }
        let asc = dim.ascending();
        Ok(DimDist {
            format,
            lower: asc.min().unwrap_or(0),
            stride: asc.stride().abs().max(1),
            n,
            np,
            q: ((n as i64 + np as i64 - 1) / np as i64).max(1),
            base: n as i64 / np as i64,
            rem: (n % np) as i64,
        })
    }

    /// The bound format.
    pub fn format(&self) -> &DimFormat {
        &self.format
    }

    /// Extent of the dimension.
    pub fn extent(&self) -> usize {
        self.n
    }

    /// Extent of the target dimension.
    pub fn np(&self) -> usize {
        self.np
    }

    /// True iff the dimension is not distributed.
    pub fn is_collapsed(&self) -> bool {
        matches!(self.format, DimFormat::Collapsed)
    }

    /// 1-based position of a global subscript along this dimension.
    #[inline]
    pub fn pos_of(&self, global: i64) -> i64 {
        (global - self.lower) / self.stride + 1
    }

    /// Global subscript of a 1-based position.
    #[inline]
    pub fn global_at(&self, pos: i64) -> i64 {
        self.lower + (pos - 1) * self.stride
    }

    /// The 1-based target coordinate owning position `pos` — the §4.1
    /// distribution functions.
    #[inline]
    pub fn coord(&self, pos: i64) -> i64 {
        match &self.format {
            // §4.1.1: δ(i') = ⌈i'/q⌉
            DimFormat::Block => (pos + self.q - 1) / self.q,
            DimFormat::BlockBalanced => {
                let cut = self.rem * (self.base + 1);
                if pos <= cut {
                    (pos + self.base) / (self.base + 1)
                } else {
                    self.rem + (pos - cut + self.base - 1) / self.base
                }
            }
            DimFormat::GeneralBlock(g) => g.block_of(pos),
            // §4.1.3: δ(i') = ((⌈i'/k⌉ − 1) mod NP) + 1
            DimFormat::Cyclic(k) => {
                let k = *k as i64;
                ((pos + k - 1) / k - 1).rem_euclid(self.np as i64) + 1
            }
            DimFormat::Collapsed => 1,
            DimFormat::Indirect(m) => m.coord_of(pos),
        }
    }

    /// The 1-based local index of position `pos` within its owner.
    #[inline]
    pub fn local(&self, pos: i64) -> i64 {
        match &self.format {
            // §4.1.1: local(i') = i' − (j − 1)·q
            DimFormat::Block => pos - (self.coord(pos) - 1) * self.q,
            DimFormat::BlockBalanced => pos - self.balanced_start(self.coord(pos)) + 1,
            DimFormat::GeneralBlock(g) => pos - g.bound(self.coord(pos) as usize - 1),
            DimFormat::Cyclic(k) => {
                let k = *k as i64;
                let seg = (pos + k - 1) / k; // 1-based segment number
                let cycle = (seg - 1) / self.np as i64; // completed rounds
                cycle * k + (pos - 1).rem_euclid(k) + 1
            }
            DimFormat::Collapsed => pos,
            DimFormat::Indirect(m) => m.rank_of(pos),
        }
    }

    /// The position held by `(coord, local)`, or `None` if that owner has
    /// no such local index — the inverse of [`DimDist::local`].
    pub fn global(&self, coord: i64, local: i64) -> Option<i64> {
        if coord < 1 || coord > self.np as i64 || local < 1 {
            return None;
        }
        let pos = match &self.format {
            DimFormat::Block => {
                if local > self.q {
                    return None;
                }
                (coord - 1) * self.q + local
            }
            DimFormat::BlockBalanced => {
                let size = self.balanced_size(coord);
                if local > size {
                    return None;
                }
                self.balanced_start(coord) + local - 1
            }
            DimFormat::GeneralBlock(g) => {
                let j = coord as usize;
                if local > g.size(j) as i64 {
                    return None;
                }
                g.bound(j - 1) + local
            }
            DimFormat::Cyclic(k) => {
                let k = *k as i64;
                let cycle = (local - 1) / k;
                let off = (local - 1) % k;
                (cycle * self.np as i64 + coord - 1) * k + off + 1
            }
            DimFormat::Collapsed => local,
            DimFormat::Indirect(m) => {
                return m.positions_of(coord).get(local as usize - 1).copied();
            }
        };
        (pos >= 1 && pos <= self.n as i64).then_some(pos)
    }

    /// Number of positions owned by `coord`.
    pub fn count(&self, coord: i64) -> usize {
        if coord < 1 || coord > self.np as i64 {
            return 0;
        }
        match &self.format {
            DimFormat::Block => {
                let start = (coord - 1) * self.q + 1;
                let end = (coord * self.q).min(self.n as i64);
                (end - start + 1).max(0) as usize
            }
            DimFormat::BlockBalanced => self.balanced_size(coord) as usize,
            DimFormat::GeneralBlock(g) => g.size(coord as usize),
            DimFormat::Cyclic(k) => {
                let k = *k as i64;
                let (np, n) = (self.np as i64, self.n as i64);
                let segs = (n + k - 1) / k; // total segments (last may be short)
                if coord > segs {
                    return 0;
                }
                let owned_segs = (segs - coord) / np + 1; // s = coord, coord+np, ...
                let mut count = owned_segs * k;
                // if the short trailing segment is mine, trim the overhang
                let last_owned = coord + (owned_segs - 1) * np;
                if last_owned == segs {
                    count -= segs * k - n;
                }
                count.max(0) as usize
            }
            DimFormat::Collapsed => self.n,
            DimFormat::Indirect(m) => m.count(coord),
        }
    }

    /// The positions owned by `coord`, as a small set of disjoint triplets
    /// in *position* space (ascending).
    pub fn preimage(&self, coord: i64) -> Vec<Triplet> {
        if coord < 1 || coord > self.np as i64 {
            return Vec::new();
        }
        let n = self.n as i64;
        match &self.format {
            DimFormat::Block => {
                let start = (coord - 1) * self.q + 1;
                let end = (coord * self.q).min(n);
                if start > end {
                    Vec::new()
                } else {
                    vec![Triplet::unit(start, end)]
                }
            }
            DimFormat::BlockBalanced => {
                let start = self.balanced_start(coord);
                let end = start + self.balanced_size(coord) - 1;
                if start > end {
                    Vec::new()
                } else {
                    vec![Triplet::unit(start, end)]
                }
            }
            DimFormat::GeneralBlock(g) => {
                let j = coord as usize;
                let start = g.bound(j - 1) + 1;
                let end = g.bound(j);
                if start > end {
                    Vec::new()
                } else {
                    vec![Triplet::unit(start, end)]
                }
            }
            DimFormat::Cyclic(k) => {
                let k = *k as i64;
                let period = self.np as i64 * k;
                let mut out = Vec::with_capacity(k as usize);
                for off in 0..k {
                    let start = (coord - 1) * k + 1 + off;
                    if start <= n {
                        out.push(
                            Triplet::new(start, n, period).expect("positive stride"),
                        );
                    }
                }
                out
            }
            DimFormat::Collapsed => {
                if n == 0 {
                    Vec::new()
                } else {
                    vec![Triplet::unit(1, n)]
                }
            }
            DimFormat::Indirect(m) => runs_to_triplets(m.positions_of(coord)),
        }
    }

    /// The set of target coordinates hit by the positions of an ascending
    /// triplet, ascending and deduplicated. Uses block-jumping for the
    /// monotone formats and period capping for `CYCLIC`, so the cost is
    /// O(NP log NP) rather than O(len).
    pub fn coords_of(&self, positions: &Triplet) -> Vec<i64> {
        let t = positions.ascending();
        let t = t.clamped(1, self.n as i64);
        if t.is_empty() {
            return Vec::new();
        }
        let (first, last, step) = (
            t.min().expect("non-empty"),
            t.max().expect("non-empty"),
            t.stride().abs().max(1),
        );
        match &self.format {
            DimFormat::Collapsed => vec![1],
            DimFormat::Cyclic(k) => {
                // positions mod NP·k determine the coordinate: one period
                // of the triplet covers every reachable coordinate
                let period = self.np as i64 * *k as i64;
                let mut out = Vec::new();
                let mut pos = first;
                let mut steps = 0i64;
                while pos <= last && steps < period {
                    out.push(self.coord(pos));
                    pos += step;
                    steps += 1;
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            DimFormat::Indirect(_) => {
                let mut out: Vec<i64> = t.iter().map(|p| self.coord(p)).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            // monotone formats: jump from block boundary to block boundary
            _ => {
                let mut out = Vec::new();
                let mut pos = first;
                while pos <= last {
                    let c = self.coord(pos);
                    out.push(c);
                    // first position of the next non-empty block
                    let mut next = None;
                    let mut cc = c + 1;
                    while cc <= self.np as i64 {
                        if let Some(start) = self.global(cc, 1) {
                            next = Some(start);
                            break;
                        }
                        cc += 1;
                    }
                    let Some(next_start) = next else { break };
                    // first triplet member ≥ next_start
                    let jumps = (next_start - first + step - 1) / step;
                    pos = first + jumps * step;
                }
                out.dedup();
                out
            }
        }
    }

    /// First position of balanced block `j` (1-based).
    #[inline]
    fn balanced_start(&self, j: i64) -> i64 {
        if j <= self.rem {
            (j - 1) * (self.base + 1) + 1
        } else {
            self.rem * (self.base + 1) + (j - 1 - self.rem) * self.base + 1
        }
    }

    /// Size of balanced block `j`.
    #[inline]
    fn balanced_size(&self, j: i64) -> i64 {
        if j <= self.rem {
            self.base + 1
        } else {
            self.base
        }
    }
}

/// Compress an ascending position list into maximal stride-1 runs.
fn runs_to_triplets(positions: &[i64]) -> Vec<Triplet> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < positions.len() {
        let start = positions[i];
        let mut end = start;
        while i + 1 < positions.len() && positions[i + 1] == end + 1 {
            end += 1;
            i += 1;
        }
        out.push(Triplet::unit(start, end));
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::format::FormatSpec;
    use hpf_index::triplet;

    fn dim(fmt: FormatSpec, n: usize, np: usize) -> DimDist {
        let bound = fmt.bind(n, np).unwrap();
        DimDist::new(bound, &Triplet::unit(1, n as i64), np).unwrap()
    }

    /// Every format partitions positions: each owned exactly once, counts
    /// agree, and `global(coord, local)` inverts `local(pos)`.
    #[test]
    fn partition_and_roundtrip_all_formats() {
        let cases: Vec<(FormatSpec, usize, usize)> = vec![
            (FormatSpec::Block, 14, 4),
            (FormatSpec::Block, 4, 7),
            (FormatSpec::BlockBalanced, 17, 4),
            (FormatSpec::BlockBalanced, 3, 5),
            (FormatSpec::Cyclic(1), 12, 3),
            (FormatSpec::Cyclic(3), 20, 4),
            (FormatSpec::Cyclic(5), 7, 3),
            (FormatSpec::GeneralBlock(vec![2, 7, 99]), 10, 3),
            (FormatSpec::GeneralBlockSizes(vec![0, 6, 4]), 10, 3),
            (FormatSpec::Indirect(vec![2, 1, 2, 3, 3, 1, 1, 2]), 8, 3),
            (FormatSpec::Collapsed, 9, 1),
        ];
        for (fmt, n, np) in cases {
            let d = dim(fmt.clone(), n, np);
            let mut seen = vec![false; n];
            let mut per_coord = vec![0usize; d.np()];
            for pos in 1..=n as i64 {
                let c = d.coord(pos);
                assert!((1..=d.np() as i64).contains(&c), "{fmt:?}: coord {c} of {pos}");
                let l = d.local(pos);
                assert!(l >= 1, "{fmt:?}: local {l} of {pos}");
                let back = d.global(c, l);
                assert_eq!(back, Some(pos), "{fmt:?}: round-trip of {pos} via ({c},{l})");
                assert!(!seen[pos as usize - 1]);
                seen[pos as usize - 1] = true;
                per_coord[c as usize - 1] += 1;
            }
            assert!(seen.iter().all(|&s| s), "{fmt:?}: not total");
            for c in 1..=d.np() as i64 {
                assert_eq!(
                    d.count(c),
                    per_coord[c as usize - 1],
                    "{fmt:?}: count({c}) mismatch"
                );
                // locals are a bijection 1..=count
                for l in 1..=d.count(c) as i64 {
                    let pos = d.global(c, l).expect("within count");
                    assert_eq!(d.local(pos), l);
                    assert_eq!(d.coord(pos), c);
                }
                assert_eq!(d.global(c, d.count(c) as i64 + 1), None);
            }
        }
    }

    #[test]
    fn preimage_matches_pointwise_ownership() {
        let cases: Vec<(FormatSpec, usize, usize)> = vec![
            (FormatSpec::Block, 14, 4),
            (FormatSpec::BlockBalanced, 17, 4),
            (FormatSpec::Cyclic(3), 25, 4),
            (FormatSpec::GeneralBlockSizes(vec![3, 0, 7]), 10, 3),
            (FormatSpec::Indirect(vec![1, 2, 1, 1, 2, 1]), 6, 2),
            (FormatSpec::Collapsed, 6, 1),
        ];
        for (fmt, n, np) in cases {
            let d = dim(fmt.clone(), n, np);
            for c in 1..=d.np() as i64 {
                let mut covered = vec![false; n];
                for t in d.preimage(c) {
                    for pos in t.iter() {
                        assert_eq!(d.coord(pos), c, "{fmt:?}: preimage({c}) strayed");
                        assert!(!covered[pos as usize - 1], "{fmt:?}: duplicate in preimage");
                        covered[pos as usize - 1] = true;
                    }
                }
                let want: usize =
                    (1..=n as i64).filter(|&p| d.coord(p) == c).count();
                assert_eq!(covered.iter().filter(|&&b| b).count(), want, "{fmt:?}");
            }
        }
    }

    #[test]
    fn coords_of_strided_windows_exact() {
        let cases: Vec<(FormatSpec, usize, usize)> = vec![
            (FormatSpec::Block, 100, 8),
            (FormatSpec::BlockBalanced, 97, 8),
            (FormatSpec::Cyclic(4), 100, 6),
            (FormatSpec::GeneralBlockSizes(vec![50, 0, 30, 20]), 100, 4),
            (FormatSpec::Indirect((0..60).map(|i| (i % 5) + 1).collect()), 60, 5),
        ];
        for (fmt, n, np) in cases {
            let d = dim(fmt.clone(), n, np);
            for (lo, hi, s) in [(1, n as i64, 1), (3, 77, 2), (5, 98, 7), (10, 10, 1)] {
                let hi = hi.min(n as i64);
                if lo > hi {
                    continue;
                }
                let t = triplet(lo, hi, s);
                let got = d.coords_of(&t);
                let mut want: Vec<i64> = t.iter().map(|p| d.coord(p)).collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(got, want, "{fmt:?} window {lo}:{hi}:{s}");
            }
        }
    }

    #[test]
    fn block_formulas_match_paper() {
        // §4.1.1 with N = 14, NP = 4 → q = 4
        let d = dim(FormatSpec::Block, 14, 4);
        for pos in 1..=14i64 {
            let j = (pos + 3) / 4;
            assert_eq!(d.coord(pos), j);
            assert_eq!(d.local(pos), pos - (j - 1) * 4);
        }
        assert_eq!(d.count(4), 2);
    }

    #[test]
    fn balanced_blocks_differ_by_at_most_one() {
        for n in 1..=40usize {
            for np in 1..=8usize {
                let d = dim(FormatSpec::BlockBalanced, n, np);
                let counts: Vec<usize> = (1..=np as i64).map(|c| d.count(c)).collect();
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                assert!(max - min <= 1, "n={n} np={np}: {counts:?}");
                assert_eq!(counts.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn nonunit_lower_bound_positions() {
        let bound = FormatSpec::Cyclic(2).bind(10, 2).unwrap();
        let d = DimDist::new(bound, &Triplet::unit(-3, 6), 2).unwrap();
        assert_eq!(d.pos_of(-3), 1);
        assert_eq!(d.pos_of(6), 10);
        assert_eq!(d.global_at(1), -3);
        assert_eq!(d.global_at(10), 6);
    }
}
