//! E2 — communication analysis of the §8.1.1 staggered-grid statement
//! under the competing mapping schemes, and the analysis cost itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::{staggered_mappings, staggered_statement, StaggeredScheme};
use hpf_core::FormatSpec;
use hpf_runtime::comm_analysis;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("staggered_comm_analysis");
    for n in [64i64, 256] {
        for (label, scheme) in [
            ("template_cyclic", StaggeredScheme::Template(vec![
                FormatSpec::Cyclic(1),
                FormatSpec::Cyclic(1),
            ])),
            ("template_block", StaggeredScheme::Template(vec![
                FormatSpec::Block,
                FormatSpec::Block,
            ])),
            ("direct_block", StaggeredScheme::Direct(FormatSpec::Block)),
        ] {
            let maps = staggered_mappings(n, 2, &scheme);
            let stmt = staggered_statement(n, &maps);
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(comm_analysis(&maps, 4, &stmt)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
