//! Static schedule verification — prove a compiled plan safe before it
//! runs.
//!
//! The paper's central claim is that distribution/alignment mappings make
//! communication sets *statically computable*. The flip side: once a
//! statement is frozen into an [`ExecPlan`]/[`MessagePlan`](crate::MessagePlan), every safety
//! property of its execution is statically **decidable** from the plan
//! alone, before a single element moves. This module decides five of
//! them, per statement:
//!
//! 1. **Write coverage** — the union of all [`StoreRun`](crate::StoreRun)s
//!    equals exactly the LHS owned region (∩ the statement's section) of
//!    every processor: no gap, no overlapping or duplicate write, no write
//!    landing at an offset the owner-computes rule did not assign.
//! 2. **Bounds** — every [`CopyRun`](crate::CopyRun) / [`MsgSegment`](crate::MsgSegment)
//!    source addresses the statement-named element *inside the owning
//!    shard*, and every destination stays inside the pack-buffer extents.
//! 3. **Race freedom** — the parallel executor's partitioning gives every
//!    simulated processor to exactly one worker (store sets cannot
//!    intersect), and the pack → exchange → compute happens-before order
//!    is sound: every pack-buffer position is filled exactly once before
//!    compute reads it, and no remote read bypasses the exchange (the
//!    RAW/WAR hazard check that makes LHS-aliasing statements under
//!    shifted sections safe).
//! 4. **Deadlock freedom** — the per-pair [`PairSchedule`](crate::PairSchedule)s form a
//!    schedulable BSP superstep: no self-message, a strict total order
//!    over pairs, every send matched by the receive the receiver's gather
//!    schedule expects, with equal byte counts — no orphan message, no
//!    cyclic wait.
//! 5. **Conservation** — the wire bytes summed over pairs equal the
//!    frozen [`CommAnalysis`](crate::CommAnalysis) totals, pair for pair (promoting the
//!    scattered ad-hoc asserts into one reusable analysis). Replicated
//!    mappings legitimately diverge from the analysis's
//!    first-owner-computes model; that case is an explicit
//!    [`AnalysisVerdict::ReplicatedDivergence`] verdict, reported rather
//!    than silently skipped.
//!
//! The pass is a *re-derivation*: it recomputes, from the mappings and the
//! statement, what every schedule entry must say, and diagnoses any
//! divergence with exact processor/run/segment coordinates — so a plan
//! rewritten by a future fusion pass either provably preserves the
//! statement's semantics or fails loudly before executing. Entry points:
//! [`verify_plan`] for one statement,
//! [`Program::verify_all`](crate::Program::verify_all) for a whole
//! program, the `hpf-lint` binary (in the `hpf-verify` crate) for the
//! command line, and [`crate::PlanCache`], which runs the pass on every
//! plan insertion in debug builds and, behind the `verify` feature, in
//! release builds too.

use crate::array::DistArray;
use crate::assign::Assignment;
use crate::backend::AnalysisVerdict;
use crate::commsets::project_region;
use crate::plan::{ExecPlan, ProcPlan};
use hpf_index::Idx;
use hpf_procs::ProcId;
use std::collections::HashMap;
use std::fmt;

/// The five statically-decidable safety properties of a compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// Store runs tile each processor's owned LHS section exactly.
    WriteCoverage,
    /// Every source/destination offset stays inside the owning shard and
    /// pack-buffer extents, and addresses the statement-named element.
    Bounds,
    /// Disjoint worker store sets and a sound pack → exchange → compute
    /// happens-before order (RAW/WAR hazard freedom).
    RaceFreedom,
    /// The pair schedules form a schedulable BSP superstep with matched
    /// sends and receives.
    DeadlockFreedom,
    /// Wire bytes over pairs equal the frozen analysis totals.
    Conservation,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::WriteCoverage => "write-coverage",
            Property::Bounds => "bounds",
            Property::RaceFreedom => "race-freedom",
            Property::DeadlockFreedom => "deadlock-freedom",
            Property::Conservation => "conservation",
        };
        f.write_str(s)
    }
}

/// What exactly diverged, with processor/run/segment coordinates.
///
/// Processors are reported zero-based (`p0`, matching
/// [`PairSchedule`](crate::PairSchedule) sender/receiver numbering); offsets are flat positions
/// into the named buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// An involved array no longer carries the mapping allocation the
    /// plan was inspected from — nothing else can be decided.
    StaleMapping {
        /// Index of the remapped array.
        array: usize,
    },
    /// A processor with a non-empty owned LHS section has no schedule.
    WorkerMissing {
        /// Zero-based processor.
        proc: u32,
        /// Elements the owner-computes rule assigns it.
        expected_volume: usize,
    },
    /// A schedule names a processor outside the machine.
    WorkerOutOfRange {
        /// Zero-based processor as recorded in the plan.
        proc: u32,
        /// Machine size.
        np: usize,
    },
    /// Two per-processor schedules drive the same processor — their store
    /// sets alias the same local buffer.
    DuplicateWorker {
        /// Zero-based processor.
        proc: u32,
    },
    /// A processor's declared compute volume differs from the owned
    /// section volume.
    VolumeMismatch {
        /// Zero-based processor.
        proc: u32,
        /// Volume recorded in the plan.
        declared: usize,
        /// Volume the mapping assigns.
        expected: usize,
    },
    /// Owned LHS offsets that no store run writes.
    CoverageGap {
        /// Zero-based processor.
        proc: u32,
        /// First uncovered flat offset of the LHS local buffer.
        offset: usize,
        /// Consecutive uncovered offsets.
        len: usize,
    },
    /// LHS offsets (or computed positions) written more than once.
    CoverageOverlap {
        /// Zero-based processor.
        proc: u32,
        /// First duplicated flat offset.
        offset: usize,
        /// Consecutive duplicated offsets.
        len: usize,
    },
    /// A store run writes an offset the owner-computes rule assigned to a
    /// different computed position (or none at all).
    StrayWrite {
        /// Zero-based processor.
        proc: u32,
        /// Store-run index within the processor's schedule.
        run: usize,
        /// Offset actually written.
        offset: usize,
        /// Offset the statement assigns to that position.
        expected: usize,
    },
    /// A store run's computed positions exceed the processor's volume.
    StoreRunBeyondVolume {
        /// Zero-based processor.
        proc: u32,
        /// Store-run index.
        run: usize,
        /// One-past-the-end position of the run.
        end: usize,
        /// The processor's computed volume.
        volume: usize,
    },
    /// A store run writes past the end of the LHS local buffer.
    StoreRunOutOfBounds {
        /// Zero-based processor.
        proc: u32,
        /// Store-run index.
        run: usize,
        /// One-past-the-end offset of the run.
        end: usize,
        /// The LHS local buffer length.
        extent: usize,
    },
    /// A gather run names a source processor outside the machine.
    InvalidSourceProc {
        /// Zero-based gathering processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Gather-run index.
        run: usize,
        /// The invalid source.
        src: u32,
        /// Machine size.
        np: usize,
    },
    /// A gather run reads past the end of the source shard.
    CopyRunOutOfBounds {
        /// Zero-based gathering processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Gather-run index.
        run: usize,
        /// One-past-the-end source offset.
        end: usize,
        /// The source shard length.
        extent: usize,
    },
    /// A gather run lands past the end of the packed operand buffer.
    PackRunOutOfBounds {
        /// Zero-based gathering processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Gather-run index.
        run: usize,
        /// One-past-the-end pack position.
        end: usize,
        /// The pack buffer length.
        extent: usize,
    },
    /// A term's pack buffer is not sized to the processor's volume — the
    /// compute kernels would read out of extent.
    TermBufferMismatch {
        /// Zero-based processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Buffer length recorded in the plan.
        elements: usize,
        /// The processor's computed volume.
        volume: usize,
    },
    /// A term schedule names a different array than the statement's term.
    TermArrayMismatch {
        /// Zero-based processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Array index recorded in the plan.
        declared: usize,
        /// Array index the statement names.
        expected: usize,
    },
    /// A gather run reads an address that is not the statement-named
    /// element inside the source's owned shard (wrong element, or the
    /// source does not own it).
    GatherWrongElement {
        /// Zero-based gathering processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Packed position whose read is wrong.
        pos: usize,
        /// The source processor the run names.
        src: u32,
        /// The source offset the run names.
        offset: usize,
    },
    /// Pack-buffer positions never filled by any gather run or message —
    /// compute would read uninitialized (or stale) operand data.
    PackGap {
        /// Zero-based processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// First unfilled pack position.
        offset: usize,
        /// Consecutive unfilled positions.
        len: usize,
    },
    /// Pack-buffer positions filled more than once — two transfers race
    /// on the same slot.
    PackOverlap {
        /// Zero-based processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// First doubly-filled pack position.
        offset: usize,
        /// Consecutive doubly-filled positions.
        len: usize,
    },
    /// A remote gather has no delivering message: on a message-passing
    /// backend the position would be read before any exchange wrote it —
    /// a read-after-write hazard across the superstep phases.
    ReadBeforeExchange {
        /// Zero-based receiving processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// The remote source the gather expects data from.
        src: u32,
        /// Source offset of the unmatched gather run.
        src_off: usize,
        /// Elements expected.
        len: usize,
    },
    /// A pair schedule sends a processor data from itself.
    SelfMessage {
        /// Pair index within the message plan.
        pair: usize,
        /// The processor (zero-based).
        proc: u32,
    },
    /// A pair schedule names a processor outside the machine.
    InvalidPairProc {
        /// Pair index within the message plan.
        pair: usize,
        /// The invalid processor (zero-based).
        proc: u32,
        /// Machine size.
        np: usize,
    },
    /// Pair schedules are not strictly ordered by `(sender, receiver)` —
    /// a duplicate or out-of-order pair breaks the superstep's total
    /// order (and the binary-searched pair lookup).
    UnorderedPairs {
        /// Index of the offending pair.
        pair: usize,
    },
    /// A pair schedule carries no data — an empty send the receiver still
    /// has to wait for.
    EmptyMessage {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
    },
    /// A pair's declared message length differs from the sum of its
    /// segments — sender and receiver disagree on the byte count.
    PairByteMismatch {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Elements the pair schedule declares.
        declared: usize,
        /// Elements its segments actually carry.
        actual: usize,
    },
    /// A message segment out of a pair-schedule extent check: the sender
    /// would read past the end of its shard.
    SegmentOutOfBounds {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Segment index within the pair schedule.
        segment: usize,
        /// One-past-the-end source offset.
        end: usize,
        /// The sender's shard length.
        extent: usize,
    },
    /// A message segment lands past the end of the receiver's pack buffer.
    SegmentPackOutOfBounds {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Segment index within the pair schedule.
        segment: usize,
        /// One-past-the-end destination position.
        end: usize,
        /// The receiver's pack buffer length.
        extent: usize,
    },
    /// A message segment's term/array pairing contradicts the statement.
    SegmentTermMismatch {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Segment index within the pair schedule.
        segment: usize,
        /// Term index the segment names.
        term: usize,
        /// Array index the segment names.
        array: usize,
    },
    /// A message no gather run expects — a send nobody receives, which a
    /// matched-pair exchange can never schedule.
    OrphanMessage {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Segment index within the pair schedule.
        segment: usize,
    },
    /// The message plan's cached wire total differs from the sum of its
    /// pair schedules.
    WireTotalMismatch {
        /// Cached total (elements).
        declared: u64,
        /// Actual sum over pairs (elements).
        actual: u64,
    },
    /// The plan's total ghost (remote-read) volume differs from the
    /// frozen analysis's remote reads.
    GhostTotalMismatch {
        /// Remote elements the schedules gather.
        planned: u64,
        /// Remote reads the analysis froze.
        analysis: u64,
    },
    /// A term's declared ghost count differs from its runs' remote volume.
    TermGhostMismatch {
        /// Zero-based processor.
        proc: u32,
        /// RHS term index.
        term: usize,
        /// Ghost elements the term schedule declares.
        declared: usize,
        /// Remote elements its runs actually gather.
        actual: usize,
    },
    /// One pair's wire traffic differs from the frozen analysis entry.
    AnalysisPairMismatch {
        /// Zero-based sender.
        sender: u32,
        /// Zero-based receiver.
        receiver: u32,
        /// Elements the message plan moves.
        planned: u64,
        /// Elements the analysis froze.
        analysis: u64,
    },
    /// Total wire elements differ from the frozen analysis total.
    AnalysisTotalMismatch {
        /// Elements the message plan moves.
        planned: u64,
        /// Elements the analysis froze.
        analysis: u64,
    },
    /// A fused plan's constituent plan list disagrees with the statement
    /// list it claims to implement.
    FusedShapeMismatch {
        /// Statements the program has.
        statements: usize,
        /// Constituent plans the fused plan carries.
        plans: usize,
    },
    /// Two statements fused into the same superstep have a RAW or WAW
    /// conflict — their kernels would race on the shared array.
    FusedHazard {
        /// The superstep holding both statements.
        superstep: usize,
        /// Statement index of the earlier conflicting statement.
        earlier: usize,
        /// Statement index of the later conflicting statement.
        later: usize,
        /// The array both touch hazardously.
        array: usize,
    },
    /// A coalesced segment that no constituent per-statement message
    /// schedule produces — a fused send nobody's gather expects.
    FusedSegmentOrphan {
        /// Fused pair index.
        pair: usize,
        /// Segment index within the fused pair.
        segment: usize,
    },
    /// A constituent message segment the fused schedule dropped — data a
    /// statement's gather needs would never ride the wire.
    FusedSegmentMissing {
        /// Statement whose message was dropped.
        stmt: usize,
        /// Zero-based sender of the dropped segment.
        sender: u32,
        /// Zero-based receiver of the dropped segment.
        receiver: u32,
        /// Elements dropped.
        len: usize,
    },
    /// A fused pair's declared element count differs from the sum of its
    /// segments — conservation across coalescing is broken.
    FusedPairMismatch {
        /// Fused pair index.
        pair: usize,
        /// Elements the fused pair declares.
        declared: usize,
        /// Elements its coalesced segments actually carry.
        actual: usize,
    },
    /// A fused pair's pack phase is unsound: it differs from the earliest
    /// superstep at which every earlier in-timestep writer of the pair's
    /// source data has completed, or lies after the pair's home superstep
    /// — either way a kernel could read data packed too early or still
    /// in flight.
    FusedPhaseRace {
        /// Fused pair index.
        pair: usize,
        /// Pack phase the fused plan declares.
        declared: usize,
        /// Pack phase re-derived from the store schedules.
        required: usize,
        /// The pair's home superstep.
        superstep: usize,
    },
    /// A dirty-tracking unit's static flags disagree with the store
    /// schedules: ghost reuse would skip data a statement rewrites (or
    /// re-send data nothing writes).
    FusedDirtyUnsound {
        /// Unit index.
        unit: usize,
        /// `intra_dirty` the fused plan declares.
        intra: bool,
        /// `post_dirty` the fused plan declares.
        post: bool,
        /// `intra_dirty` re-derived from the store schedules.
        expected_intra: bool,
        /// `post_dirty` re-derived from the store schedules.
        expected_post: bool,
    },
    /// A coalesced segment and its dirty-tracking unit disagree about
    /// what data the segment moves.
    FusedUnitMismatch {
        /// Fused pair index.
        pair: usize,
        /// Segment index within the fused pair.
        segment: usize,
        /// The unit index the segment names.
        unit: usize,
    },
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DiagnosticKind::*;
        match self {
            StaleMapping { array } => {
                write!(f, "array #{array} was remapped since inspection; plan is stale")
            }
            WorkerMissing { proc, expected_volume } => write!(
                f,
                "p{proc}: no schedule, but its owned section holds {expected_volume} \
                 element(s)"
            ),
            WorkerOutOfRange { proc, np } => {
                write!(f, "schedule drives p{proc}, outside the {np}-processor machine")
            }
            DuplicateWorker { proc } => {
                write!(f, "p{proc}: two schedules drive the same processor")
            }
            VolumeMismatch { proc, declared, expected } => write!(
                f,
                "p{proc}: declared volume {declared} ≠ owned-section volume {expected}"
            ),
            CoverageGap { proc, offset, len } => write!(
                f,
                "p{proc}: owned offset(s) {offset}..{} never written",
                offset + len
            ),
            CoverageOverlap { proc, offset, len } => write!(
                f,
                "p{proc}: offset(s)/position(s) {offset}..{} written more than once",
                offset + len
            ),
            StrayWrite { proc, run, offset, expected } => write!(
                f,
                "p{proc} store run {run}: writes offset {offset} where the statement \
                 assigns {expected}"
            ),
            StoreRunBeyondVolume { proc, run, end, volume } => write!(
                f,
                "p{proc} store run {run}: positions end at {end}, beyond volume {volume}"
            ),
            StoreRunOutOfBounds { proc, run, end, extent } => write!(
                f,
                "p{proc} store run {run}: writes end at {end}, beyond the LHS shard \
                 extent {extent}"
            ),
            InvalidSourceProc { proc, term, run, src, np } => write!(
                f,
                "p{proc} term {term} run {run}: source p{src} outside the \
                 {np}-processor machine"
            ),
            CopyRunOutOfBounds { proc, term, run, end, extent } => write!(
                f,
                "p{proc} term {term} run {run}: reads end at {end}, beyond the source \
                 shard extent {extent}"
            ),
            PackRunOutOfBounds { proc, term, run, end, extent } => write!(
                f,
                "p{proc} term {term} run {run}: pack positions end at {end}, beyond \
                 the buffer extent {extent}"
            ),
            TermBufferMismatch { proc, term, elements, volume } => write!(
                f,
                "p{proc} term {term}: pack buffer holds {elements} element(s) but the \
                 processor computes {volume}"
            ),
            TermArrayMismatch { proc, term, declared, expected } => write!(
                f,
                "p{proc} term {term}: schedule reads array #{declared}, statement \
                 names #{expected}"
            ),
            GatherWrongElement { proc, term, pos, src, offset } => write!(
                f,
                "p{proc} term {term} position {pos}: p{src}[{offset}] is not the \
                 statement-named element inside the owning shard"
            ),
            PackGap { proc, term, offset, len } => write!(
                f,
                "p{proc} term {term}: pack position(s) {offset}..{} never filled \
                 before compute reads them",
                offset + len
            ),
            PackOverlap { proc, term, offset, len } => write!(
                f,
                "p{proc} term {term}: pack position(s) {offset}..{} filled more than \
                 once",
                offset + len
            ),
            ReadBeforeExchange { proc, term, src, src_off, len } => write!(
                f,
                "p{proc} term {term}: remote gather of {len} element(s) from \
                 p{src}[{src_off}] has no delivering message — read precedes the \
                 exchange"
            ),
            SelfMessage { pair, proc } => {
                write!(f, "pair {pair}: p{proc} sends a message to itself")
            }
            InvalidPairProc { pair, proc, np } => write!(
                f,
                "pair {pair}: processor p{proc} outside the {np}-processor machine"
            ),
            UnorderedPairs { pair } => write!(
                f,
                "pair {pair}: schedules not strictly ordered by (sender, receiver)"
            ),
            EmptyMessage { sender, receiver } => {
                write!(f, "pair {sender}→{receiver}: empty message")
            }
            PairByteMismatch { sender, receiver, declared, actual } => write!(
                f,
                "pair {sender}→{receiver}: declares {declared} element(s) but its \
                 segments carry {actual} — send/receive byte counts disagree"
            ),
            SegmentOutOfBounds { sender, receiver, segment, end, extent } => write!(
                f,
                "pair {sender}→{receiver} segment {segment}: send reads end at {end}, \
                 beyond the sender shard extent {extent}"
            ),
            SegmentPackOutOfBounds { sender, receiver, segment, end, extent } => write!(
                f,
                "pair {sender}→{receiver} segment {segment}: unpack ends at {end}, \
                 beyond the pack buffer extent {extent}"
            ),
            SegmentTermMismatch { sender, receiver, segment, term, array } => write!(
                f,
                "pair {sender}→{receiver} segment {segment}: term {term} / array \
                 #{array} pairing contradicts the statement"
            ),
            OrphanMessage { sender, receiver, segment } => write!(
                f,
                "pair {sender}→{receiver} segment {segment}: send matches no gather \
                 run — nobody receives it"
            ),
            WireTotalMismatch { declared, actual } => write!(
                f,
                "message plan caches {declared} wire element(s) but its pairs carry \
                 {actual}"
            ),
            GhostTotalMismatch { planned, analysis } => write!(
                f,
                "schedules gather {planned} remote element(s), analysis froze \
                 {analysis} remote reads"
            ),
            TermGhostMismatch { proc, term, declared, actual } => write!(
                f,
                "p{proc} term {term}: declares {declared} ghost element(s), runs \
                 gather {actual}"
            ),
            AnalysisPairMismatch { sender, receiver, planned, analysis } => write!(
                f,
                "pair {sender}→{receiver}: plan moves {planned} element(s), analysis \
                 froze {analysis}"
            ),
            AnalysisTotalMismatch { planned, analysis } => write!(
                f,
                "plan moves {planned} wire element(s), analysis froze {analysis}"
            ),
            FusedShapeMismatch { statements, plans } => write!(
                f,
                "fused plan carries {plans} constituent plan(s) for {statements} \
                 statement(s)"
            ),
            FusedHazard { superstep, earlier, later, array } => write!(
                f,
                "superstep {superstep}: statements #{earlier} and #{later} conflict \
                 on array #{array} (RAW/WAW) yet fused into one level"
            ),
            FusedSegmentOrphan { pair, segment } => write!(
                f,
                "fused pair {pair} segment {segment}: no constituent message \
                 schedule produces it — a send nobody's gather expects"
            ),
            FusedSegmentMissing { stmt, sender, receiver, len } => write!(
                f,
                "statement #{stmt} pair {sender}→{receiver}: {len} element(s) of its \
                 message schedule missing from the fused plan"
            ),
            FusedPairMismatch { pair, declared, actual } => write!(
                f,
                "fused pair {pair}: declares {declared} element(s) but its coalesced \
                 segments carry {actual}"
            ),
            FusedPhaseRace { pair, declared, required, superstep } => write!(
                f,
                "fused pair {pair}: pack phase {declared} but store schedules \
                 require {required} (home superstep {superstep})"
            ),
            FusedDirtyUnsound { unit, intra, post, expected_intra, expected_post } => {
                write!(
                    f,
                    "unit {unit}: declares intra/post dirty {intra}/{post}, store \
                     schedules derive {expected_intra}/{expected_post}"
                )
            }
            FusedUnitMismatch { pair, segment, unit } => write!(
                f,
                "fused pair {pair} segment {segment}: disagrees with its \
                 dirty-tracking unit {unit} about source array/shard/interval"
            ),
        }
    }
}

/// One verified divergence: which property failed and exactly where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The safety property the finding refutes.
    pub property: Property,
    /// What diverged, with coordinates.
    pub kind: DiagnosticKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.property, self.kind)
    }
}

/// What the verifier examined — the denominators of a clean report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Simulated processors.
    pub procs: usize,
    /// Store runs checked.
    pub store_runs: usize,
    /// Gather runs checked.
    pub copy_runs: usize,
    /// Communicating pairs checked.
    pub pairs: usize,
    /// Message segments checked.
    pub segments: usize,
    /// Wire elements accounted.
    pub wire_elements: u64,
}

/// The verifier's result for one statement: a verdict on the
/// analysis-conservation contract plus zero or more refuting diagnostics.
///
/// A report with no diagnostics is a *proof* (by exhaustive re-derivation
/// from the mappings) that the five properties hold for this plan. A
/// [`AnalysisVerdict::ReplicatedDivergence`] verdict is clean: it records
/// that the conservation comparison is inapplicable by design, not that it
/// failed.
#[derive(Debug, Clone)]
pub struct StatementReport {
    /// The statement, rendered.
    pub statement: String,
    /// How the message plan relates to the frozen analysis.
    pub verdict: AnalysisVerdict,
    /// Every property violation found (empty = all five properties hold).
    pub diagnostics: Vec<Diagnostic>,
    /// What was examined.
    pub stats: VerifyStats,
}

impl StatementReport {
    /// True iff no property was refuted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings refuting one specific property.
    pub fn findings_for(&self, property: Property) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.property == property)
    }
}

impl fmt::Display for StatementReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}  [{}; {} procs, {} store runs, {} copy runs, {} pairs, {} \
             segments, {} wire elements]",
            self.statement,
            self.verdict,
            self.stats.procs,
            self.stats.store_runs,
            self.stats.copy_runs,
            self.stats.pairs,
            self.stats.segments,
            self.stats.wire_elements,
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// A whole program's verification: one [`StatementReport`] per statement.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Per-statement reports, in program order.
    pub statements: Vec<StatementReport>,
}

impl VerifyReport {
    /// True iff every statement verified clean.
    pub fn is_clean(&self) -> bool {
        self.statements.iter().all(StatementReport::is_clean)
    }

    /// Total findings over all statements.
    pub fn finding_count(&self) -> usize {
        self.statements.iter().map(|s| s.diagnostics.len()).sum()
    }

    /// Statements whose conservation comparison was inapplicable because
    /// a mapping replicates (reported, not skipped).
    pub fn replicated_statements(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| s.verdict == AnalysisVerdict::ReplicatedDivergence)
            .count()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, s) in self.statements.iter().enumerate() {
            write!(f, "#{k} {s}")?;
        }
        Ok(())
    }
}

/// True iff every per-processor schedule drives a distinct processor — the
/// precondition for the parallel executor's store sets being disjoint.
pub fn workers_disjoint(per_proc: &[ProcPlan]) -> bool {
    let mut seen = vec![false; per_proc.len()];
    per_proc.iter().all(|pp| {
        let z = pp.proc.zero_based();
        z < seen.len() && !std::mem::replace(&mut seen[z], true)
    })
}

/// Coalesce a sorted-deduplicated index list into `(start, len)` ranges so
/// a contiguous corruption yields one diagnostic, not one per element.
fn coalesce(mut xs: Vec<usize>) -> Vec<(usize, usize)> {
    xs.sort_unstable();
    xs.dedup();
    let mut out: Vec<(usize, usize)> = Vec::new();
    for x in xs {
        match out.last_mut() {
            Some((s, l)) if *s + *l == x => *l += 1,
            _ => out.push((x, 1)),
        }
    }
    out
}

/// Statically verify `plan` against the statement and mappings it claims
/// to implement: prove (or refute, with precise coordinates) write
/// coverage, bounds, race freedom, deadlock freedom, and conservation.
///
/// The pass re-derives every schedule entry from `arrays`' mappings and
/// `stmt`, so it costs about as much as one inspection — run it at plan
/// build/insertion time (as [`crate::PlanCache`] does), never on the warm
/// replay path.
pub fn verify_plan(
    arrays: &[DistArray<f64>],
    stmt: &Assignment,
    plan: &ExecPlan,
) -> StatementReport {
    let statement = stmt.to_string();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let push = |property: Property, kind: DiagnosticKind, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic { property, kind });
    };

    // Precondition: the plan must still be bound to these mappings —
    // otherwise none of the extents below mean anything.
    for (k, id) in plan.mappings() {
        if !arrays.get(*k).is_some_and(|a| id.is(a.mapping())) {
            push(Property::Bounds, DiagnosticKind::StaleMapping { array: *k }, &mut diags);
        }
    }
    if !diags.is_empty() {
        return StatementReport {
            statement,
            verdict: AnalysisVerdict::Divergent,
            diagnostics: diags,
            stats: VerifyStats::default(),
        };
    }

    let lhs_arr = &arrays[plan.lhs()];
    let np = lhs_arr.np();
    let mut stats = VerifyStats { procs: np, ..VerifyStats::default() };

    // ---- race freedom (a): worker partition --------------------------------
    let mut driven = vec![false; np];
    for pp in plan.per_proc() {
        let z = pp.proc.zero_based();
        if z >= np {
            push(
                Property::Bounds,
                DiagnosticKind::WorkerOutOfRange { proc: z as u32, np },
                &mut diags,
            );
        } else if std::mem::replace(&mut driven[z], true) {
            push(
                Property::RaceFreedom,
                DiagnosticKind::DuplicateWorker { proc: z as u32 },
                &mut diags,
            );
        }
    }
    for (z, has) in driven.iter().enumerate() {
        if !has {
            let vol = project_region(lhs_arr.region_of(ProcId(z as u32 + 1)), &stmt.lhs_section)
                .volume_disjoint();
            if vol > 0 {
                push(
                    Property::WriteCoverage,
                    DiagnosticKind::WorkerMissing { proc: z as u32, expected_volume: vol },
                    &mut diags,
                );
            }
        }
    }

    // Remote gathers, keyed for the send/receive matching below:
    // (sender, receiver, term, src_off, dst_off, len) → outstanding count.
    type XchgKey = (u32, u32, usize, usize, usize, usize);
    let mut remote_runs: HashMap<XchgKey, i64> = HashMap::new();
    // Per-processor computed volume, for segment unpack extents.
    let mut volumes: HashMap<u32, usize> = HashMap::new();
    let mut planned_ghosts = 0u64;

    // ---- per-processor schedules -------------------------------------------
    for pp in plan.per_proc() {
        let p = pp.proc;
        let me = p.zero_based() as u32;
        if p.zero_based() >= np {
            continue; // already diagnosed above; extents below would panic
        }
        let positions = project_region(lhs_arr.region_of(p), &stmt.lhs_section);
        let rels: Vec<Idx> = positions.iter().collect();
        let volume = rels.len();
        volumes.insert(me, volume);
        if pp.volume != volume {
            push(
                Property::WriteCoverage,
                DiagnosticKind::VolumeMismatch {
                    proc: me,
                    declared: pp.volume,
                    expected: volume,
                },
                &mut diags,
            );
        }

        // -- write coverage + store bounds --
        let expected: Vec<usize> = rels
            .iter()
            .map(|rel| {
                lhs_arr
                    .local_offset(p, &stmt.lhs_index(rel))
                    .expect("owner holds its owned section")
            })
            .collect();
        let extent = lhs_arr.local_len(p);
        let mut seen_pos = vec![false; volume];
        let mut wrote = vec![false; extent];
        let mut overlaps = Vec::new();
        for (ri, r) in pp.lhs_runs.iter().enumerate() {
            stats.store_runs += 1;
            if r.pos + r.len > volume {
                push(
                    Property::Bounds,
                    DiagnosticKind::StoreRunBeyondVolume {
                        proc: me,
                        run: ri,
                        end: r.pos + r.len,
                        volume,
                    },
                    &mut diags,
                );
                continue;
            }
            if r.dst_off + r.len > extent {
                push(
                    Property::Bounds,
                    DiagnosticKind::StoreRunOutOfBounds {
                        proc: me,
                        run: ri,
                        end: r.dst_off + r.len,
                        extent,
                    },
                    &mut diags,
                );
                continue;
            }
            let mut strayed = false;
            for i in 0..r.len {
                let (pos, off) = (r.pos + i, r.dst_off + i);
                if std::mem::replace(&mut seen_pos[pos], true)
                    | std::mem::replace(&mut wrote[off], true)
                {
                    overlaps.push(off);
                }
                if expected[pos] != off && !strayed {
                    strayed = true; // one stray diagnostic per run
                    push(
                        Property::WriteCoverage,
                        DiagnosticKind::StrayWrite {
                            proc: me,
                            run: ri,
                            offset: off,
                            expected: expected[pos],
                        },
                        &mut diags,
                    );
                }
            }
        }
        for (offset, len) in coalesce(overlaps) {
            push(
                Property::WriteCoverage,
                DiagnosticKind::CoverageOverlap { proc: me, offset, len },
                &mut diags,
            );
        }
        let gaps: Vec<usize> = (0..volume).filter(|&k| !seen_pos[k]).map(|k| expected[k]).collect();
        for (offset, len) in coalesce(gaps) {
            push(
                Property::WriteCoverage,
                DiagnosticKind::CoverageGap { proc: me, offset, len },
                &mut diags,
            );
        }

        // -- gather bounds + correctness + pack happens-before --
        for (t, ts) in pp.terms.iter().enumerate() {
            let Some(term) = stmt.terms.get(t) else { continue };
            if ts.array != term.array {
                push(
                    Property::Bounds,
                    DiagnosticKind::TermArrayMismatch {
                        proc: me,
                        term: t,
                        declared: ts.array,
                        expected: term.array,
                    },
                    &mut diags,
                );
                continue;
            }
            if ts.elements != volume {
                push(
                    Property::Bounds,
                    DiagnosticKind::TermBufferMismatch {
                        proc: me,
                        term: t,
                        elements: ts.elements,
                        volume,
                    },
                    &mut diags,
                );
            }
            let src_arr = &arrays[ts.array];
            let mut filled = vec![false; ts.elements];
            let mut pack_overlaps = Vec::new();
            let mut remote = 0usize;
            for (ri, r) in ts.runs.iter().enumerate() {
                stats.copy_runs += 1;
                if (r.src as usize) >= np {
                    push(
                        Property::Bounds,
                        DiagnosticKind::InvalidSourceProc {
                            proc: me,
                            term: t,
                            run: ri,
                            src: r.src,
                            np,
                        },
                        &mut diags,
                    );
                    continue;
                }
                let src = ProcId(r.src + 1);
                if r.src_off + r.len > src_arr.local_len(src) {
                    push(
                        Property::Bounds,
                        DiagnosticKind::CopyRunOutOfBounds {
                            proc: me,
                            term: t,
                            run: ri,
                            end: r.src_off + r.len,
                            extent: src_arr.local_len(src),
                        },
                        &mut diags,
                    );
                    continue;
                }
                if r.dst_off + r.len > ts.elements {
                    push(
                        Property::Bounds,
                        DiagnosticKind::PackRunOutOfBounds {
                            proc: me,
                            term: t,
                            run: ri,
                            end: r.dst_off + r.len,
                            extent: ts.elements,
                        },
                        &mut diags,
                    );
                    continue;
                }
                if r.src != me {
                    remote += r.len;
                    planned_ghosts += r.len as u64;
                    *remote_runs
                        .entry((r.src, me, t, r.src_off, r.dst_off, r.len))
                        .or_insert(0) += 1;
                }
                let mut wrong = false;
                for i in 0..r.len {
                    let k = r.dst_off + i;
                    if std::mem::replace(&mut filled[k], true) {
                        pack_overlaps.push(k);
                    }
                    if !wrong && k < volume {
                        let gi = stmt.rhs_index(t, &rels[k]);
                        if src_arr.local_offset(src, &gi) != Some(r.src_off + i) {
                            wrong = true; // one wrong-element diagnostic per run
                            push(
                                Property::Bounds,
                                DiagnosticKind::GatherWrongElement {
                                    proc: me,
                                    term: t,
                                    pos: k,
                                    src: r.src,
                                    offset: r.src_off + i,
                                },
                                &mut diags,
                            );
                        }
                    }
                }
            }
            if remote != ts.ghost_elements {
                push(
                    Property::Conservation,
                    DiagnosticKind::TermGhostMismatch {
                        proc: me,
                        term: t,
                        declared: ts.ghost_elements,
                        actual: remote,
                    },
                    &mut diags,
                );
            }
            for (offset, len) in coalesce(pack_overlaps) {
                push(
                    Property::RaceFreedom,
                    DiagnosticKind::PackOverlap { proc: me, term: t, offset, len },
                    &mut diags,
                );
            }
            let gaps: Vec<usize> = (0..ts.elements).filter(|&k| !filled[k]).collect();
            for (offset, len) in coalesce(gaps) {
                push(
                    Property::RaceFreedom,
                    DiagnosticKind::PackGap { proc: me, term: t, offset, len },
                    &mut diags,
                );
            }
        }
    }

    // ---- deadlock freedom: the pair schedules ------------------------------
    let msgs = plan.message_plan();
    let mut prev: Option<(u32, u32)> = None;
    let mut wire = 0u64;
    for (pi, pair) in msgs.pairs().iter().enumerate() {
        stats.pairs += 1;
        let mut ok = true;
        for proc in [pair.sender, pair.receiver] {
            if proc as usize >= np {
                push(
                    Property::DeadlockFreedom,
                    DiagnosticKind::InvalidPairProc { pair: pi, proc, np },
                    &mut diags,
                );
                ok = false;
            }
        }
        if pair.sender == pair.receiver {
            push(
                Property::DeadlockFreedom,
                DiagnosticKind::SelfMessage { pair: pi, proc: pair.sender },
                &mut diags,
            );
            ok = false;
        }
        let key = (pair.sender, pair.receiver);
        if prev.is_some_and(|p| p >= key) {
            push(
                Property::DeadlockFreedom,
                DiagnosticKind::UnorderedPairs { pair: pi },
                &mut diags,
            );
        }
        prev = Some(key);
        let actual: usize = pair.segments.iter().map(|s| s.len).sum();
        if actual != pair.elements {
            push(
                Property::DeadlockFreedom,
                DiagnosticKind::PairByteMismatch {
                    sender: pair.sender,
                    receiver: pair.receiver,
                    declared: pair.elements,
                    actual,
                },
                &mut diags,
            );
        }
        if pair.elements == 0 && pair.segments.is_empty() {
            push(
                Property::DeadlockFreedom,
                DiagnosticKind::EmptyMessage { sender: pair.sender, receiver: pair.receiver },
                &mut diags,
            );
        }
        wire += actual as u64;
        if !ok {
            continue; // extent lookups below would index outside the machine
        }
        let recv_volume = volumes.get(&pair.receiver).copied().unwrap_or(0);
        for (si, seg) in pair.segments.iter().enumerate() {
            stats.segments += 1;
            let named = stmt.terms.get(seg.term).map(|t| t.array);
            if named != Some(seg.array) {
                push(
                    Property::Bounds,
                    DiagnosticKind::SegmentTermMismatch {
                        sender: pair.sender,
                        receiver: pair.receiver,
                        segment: si,
                        term: seg.term,
                        array: seg.array,
                    },
                    &mut diags,
                );
                continue;
            }
            let shard = arrays[seg.array].local_len(ProcId(pair.sender + 1));
            if seg.src_off + seg.len > shard {
                push(
                    Property::Bounds,
                    DiagnosticKind::SegmentOutOfBounds {
                        sender: pair.sender,
                        receiver: pair.receiver,
                        segment: si,
                        end: seg.src_off + seg.len,
                        extent: shard,
                    },
                    &mut diags,
                );
            }
            if seg.dst_off + seg.len > recv_volume {
                push(
                    Property::Bounds,
                    DiagnosticKind::SegmentPackOutOfBounds {
                        sender: pair.sender,
                        receiver: pair.receiver,
                        segment: si,
                        end: seg.dst_off + seg.len,
                        extent: recv_volume,
                    },
                    &mut diags,
                );
            }
            // send/receive matching: this segment must be a gather some
            // receiver run expects
            let key: XchgKey =
                (pair.sender, pair.receiver, seg.term, seg.src_off, seg.dst_off, seg.len);
            match remote_runs.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => push(
                    Property::DeadlockFreedom,
                    DiagnosticKind::OrphanMessage {
                        sender: pair.sender,
                        receiver: pair.receiver,
                        segment: si,
                    },
                    &mut diags,
                ),
            }
        }
    }
    // gathers still waiting for a message that never comes
    let mut unmatched: Vec<XchgKey> = remote_runs
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|(k, _)| k)
        .collect();
    unmatched.sort_unstable();
    for (src, me, term, src_off, _dst_off, len) in unmatched {
        push(
            Property::RaceFreedom,
            DiagnosticKind::ReadBeforeExchange { proc: me, term, src, src_off, len },
            &mut diags,
        );
    }

    // ---- conservation ------------------------------------------------------
    stats.wire_elements = wire;
    if msgs.wire_elements() != wire {
        push(
            Property::Conservation,
            DiagnosticKind::WireTotalMismatch {
                declared: msgs.wire_elements(),
                actual: wire,
            },
            &mut diags,
        );
    }
    let analysis = plan.analysis();
    let verdict = if !analysis.region_exact {
        // Replication: the analysis models first-owner-computes plus a
        // result broadcast while execution has every replica compute, so
        // the comparison is inapplicable by design. Reported, not skipped.
        AnalysisVerdict::ReplicatedDivergence
    } else {
        let before = diags.len();
        for pair in msgs.pairs() {
            let froze = analysis
                .comm
                .elements_between(ProcId(pair.sender + 1), ProcId(pair.receiver + 1));
            if froze != pair.elements as u64 {
                push(
                    Property::Conservation,
                    DiagnosticKind::AnalysisPairMismatch {
                        sender: pair.sender,
                        receiver: pair.receiver,
                        planned: pair.elements as u64,
                        analysis: froze,
                    },
                    &mut diags,
                );
            }
        }
        for (src, dst, n) in analysis.comm.iter() {
            if msgs.pair(src.zero_based() as u32, dst.zero_based() as u32).is_none() {
                push(
                    Property::Conservation,
                    DiagnosticKind::AnalysisPairMismatch {
                        sender: src.zero_based() as u32,
                        receiver: dst.zero_based() as u32,
                        planned: 0,
                        analysis: n,
                    },
                    &mut diags,
                );
            }
        }
        if wire != analysis.comm.total_elements() {
            push(
                Property::Conservation,
                DiagnosticKind::AnalysisTotalMismatch {
                    planned: wire,
                    analysis: analysis.comm.total_elements(),
                },
                &mut diags,
            );
        }
        if planned_ghosts != analysis.remote_reads {
            push(
                Property::Conservation,
                DiagnosticKind::GhostTotalMismatch {
                    planned: planned_ghosts,
                    analysis: analysis.remote_reads,
                },
                &mut diags,
            );
        }
        if diags.len() == before {
            AnalysisVerdict::Exact
        } else {
            AnalysisVerdict::Divergent
        }
    };

    StatementReport { statement, verdict, diagnostics: diags, stats }
}

/// The verifier's result for one fused [`ProgramPlan`](crate::ProgramPlan): the DAG's
/// denominators plus zero or more refuting diagnostics. A report with no
/// diagnostics proves (by re-derivation from the constituent schedules)
/// that the fusion preserved the per-statement semantics: no
/// same-superstep hazard, segment-for-segment conservation across
/// coalescing, sound pack phases, and dirty flags that exactly match the
/// store schedules.
#[derive(Debug, Clone, Default)]
pub struct FusionReport {
    /// Statements in the fused plan.
    pub statements: usize,
    /// Superstep levels.
    pub supersteps: usize,
    /// Coalesced pairs checked.
    pub pairs: usize,
    /// Coalesced segments checked.
    pub segments: usize,
    /// Every property violation found.
    pub diagnostics: Vec<Diagnostic>,
}

impl FusionReport {
    /// True iff no property was refuted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings refuting one specific property.
    pub fn findings_for(&self, property: Property) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.property == property)
    }
}

impl fmt::Display for FusionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fused program [{} statements, {} supersteps, {} pairs, {} segments]",
            self.statements, self.supersteps, self.pairs, self.segments,
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Statically verify a fused [`ProgramPlan`](crate::ProgramPlan) against the statements and
/// mappings it claims to implement — the fused layer *on top of*
/// [`verify_plan`] (which [`crate::PlanCache`] has already run on every
/// constituent plan at its own insertion):
///
/// * **race freedom** — no two statements fused into one superstep have a
///   RAW or WAW conflict; every pair's pack phase equals the earliest
///   superstep past all of its in-timestep writers and does not exceed
///   its home superstep; every dirty-tracking unit's static
///   `intra_dirty`/`post_dirty` flags match a re-derivation from the
///   store schedules (unsound flags would let ghost reuse skip data a
///   statement rewrites);
/// * **deadlock freedom** — the coalesced segments are exactly (as a
///   multiset) the constituent [`MessagePlan`](crate::MessagePlan)
///   segments: no orphan fused send, no dropped constituent message;
/// * **conservation** — each fused pair's declared element count equals
///   the sum of its coalesced segments, summed across the statements the
///   pair serves;
/// * **bounds** — every coalesced segment reads inside the sending shard
///   and agrees with its dirty-tracking unit about the source interval.
///
/// Like [`verify_plan`], this is a re-derivation pass run at plan
/// insertion (see [`crate::PlanCache`]), never on the warm replay path.
pub fn verify_program_plan(
    arrays: &[DistArray<f64>],
    stmts: &[Assignment],
    plan: &crate::fuse::ProgramPlan,
) -> FusionReport {
    use crate::fuse::{intersects, merge_intervals};

    let mut diags: Vec<Diagnostic> = Vec::new();
    let push = |property: Property, kind: DiagnosticKind, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic { property, kind });
    };
    let mut report = FusionReport {
        statements: stmts.len(),
        supersteps: plan.supersteps().len(),
        pairs: plan.pairs().len(),
        segments: 0,
        ..FusionReport::default()
    };

    if plan.plans().len() != stmts.len() {
        push(
            Property::Bounds,
            DiagnosticKind::FusedShapeMismatch {
                statements: stmts.len(),
                plans: plan.plans().len(),
            },
            &mut diags,
        );
        report.diagnostics = diags;
        return report;
    }
    // the constituent plans must still be bound to these mappings —
    // otherwise none of the extents or store schedules mean anything
    for p in plan.plans() {
        for (k, id) in p.mappings() {
            if !arrays.get(*k).is_some_and(|a| id.is(a.mapping())) {
                push(
                    Property::Bounds,
                    DiagnosticKind::StaleMapping { array: *k },
                    &mut diags,
                );
            }
        }
    }
    if !diags.is_empty() {
        report.diagnostics = diags;
        return report;
    }

    // ---- re-derive the level schedule and per-statement store intervals ----
    let n = stmts.len();
    let mut level = vec![0usize; n];
    for s in 0..n {
        for r in 0..s {
            let raw = stmts[s].terms.iter().any(|t| t.array == stmts[r].lhs);
            let waw = stmts[s].lhs == stmts[r].lhs;
            if raw || waw {
                level[s] = level[s].max(level[r] + 1);
            }
        }
    }
    let np = plan.np();
    let writes: Vec<Vec<Vec<(usize, usize)>>> = plan
        .plans()
        .iter()
        .map(|p| {
            let mut per: Vec<Vec<(usize, usize)>> = vec![Vec::new(); np];
            for pp in p.per_proc() {
                per[pp.proc.zero_based()] = merge_intervals(
                    pp.lhs_runs.iter().map(|r| (r.dst_off, r.dst_off + r.len)).collect(),
                );
            }
            per
        })
        .collect();

    // ---- race freedom (a): no same-superstep RAW/WAW --------------------
    for (j, step) in plan.supersteps().iter().enumerate() {
        for (i, &s) in step.stmts.iter().enumerate() {
            if level[s] != j {
                // a statement on the wrong level conflicts with whatever
                // forced its re-derived level
                push(
                    Property::RaceFreedom,
                    DiagnosticKind::FusedHazard {
                        superstep: j,
                        earlier: s,
                        later: s,
                        array: stmts[s].lhs,
                    },
                    &mut diags,
                );
            }
            for &r in &step.stmts[..i] {
                let raw = stmts[s].terms.iter().any(|t| t.array == stmts[r].lhs);
                let waw = stmts[s].lhs == stmts[r].lhs;
                if raw || waw {
                    push(
                        Property::RaceFreedom,
                        DiagnosticKind::FusedHazard {
                            superstep: j,
                            earlier: r,
                            later: s,
                            array: if waw { stmts[s].lhs } else { stmts[r].lhs },
                        },
                        &mut diags,
                    );
                }
            }
        }
    }

    // ---- deadlock freedom: fused segments ≡ constituent segments --------
    // the fused plan may regroup and *split* constituent message segments
    // (dirty-tracking units are per homogeneous write stretch), but the
    // element flow must be identical — so both sides are normalized to
    // maximal contiguous (src → dst) runs per (stmt, sender, receiver,
    // term) and compared as multisets
    type RunKey = (usize, u32, u32, usize);
    /// `(src_off, dst_off, len, pair, segment)` — the trailing pair/segment
    /// coordinates ride along for diagnostics and are ignored by merging.
    type Run = (usize, usize, usize, usize, usize);
    fn normalize(mut runs: Vec<Run>) -> Vec<Run> {
        runs.sort_unstable();
        let mut out: Vec<Run> = Vec::new();
        for r in runs {
            if let Some(last) = out.last_mut() {
                if last.0 + last.2 == r.0 && last.1 + last.2 == r.1 {
                    last.2 += r.2;
                    continue;
                }
            }
            out.push(r);
        }
        out
    }
    let mut expected_runs: HashMap<RunKey, Vec<Run>> = HashMap::new();
    for (s, p) in plan.plans().iter().enumerate() {
        for pair in p.message_plan().pairs() {
            for seg in &pair.segments {
                expected_runs
                    .entry((s, pair.sender, pair.receiver, seg.term))
                    .or_default()
                    .push((seg.src_off, seg.dst_off, seg.len, 0, 0));
            }
        }
    }
    let mut fused_runs: HashMap<RunKey, Vec<Run>> = HashMap::new();
    for (k, pair) in plan.pairs().iter().enumerate() {
        let actual: usize = pair.segments.iter().map(|s| s.len).sum();
        if actual != pair.elements {
            push(
                Property::Conservation,
                DiagnosticKind::FusedPairMismatch { pair: k, declared: pair.elements, actual },
                &mut diags,
            );
        }
        let mut required_phase = 0usize;
        for (si, seg) in pair.segments.iter().enumerate() {
            report.segments += 1;
            fused_runs
                .entry((seg.stmt, pair.sender, pair.receiver, seg.term))
                .or_default()
                .push((seg.src_off, seg.dst_off, seg.len, k, si));
            // bounds: the sender must be able to read the interval
            if let Some(arr) = arrays.get(seg.array) {
                let extent = arr.local_len(ProcId(pair.sender + 1));
                if seg.src_off + seg.len > extent {
                    push(
                        Property::Bounds,
                        DiagnosticKind::SegmentOutOfBounds {
                            sender: pair.sender,
                            receiver: pair.receiver,
                            segment: si,
                            end: seg.src_off + seg.len,
                            extent,
                        },
                        &mut diags,
                    );
                }
            }
            // the unit table must describe this segment's source data
            let (expected_intra, expected_post, unit_ok) = match plan.units().get(seg.unit)
            {
                Some(u)
                    if u.array == seg.array
                        && u.shard == pair.sender as usize
                        && u.src_off == seg.src_off
                        && u.len == seg.len
                        && u.superstep == pair.superstep =>
                {
                    // re-derive the writer split from the store schedules
                    let (mut intra, mut post) = (false, false);
                    for (w, stmt) in stmts.iter().enumerate() {
                        if stmt.lhs != seg.array
                            || !intersects(
                                &writes[w][pair.sender as usize],
                                seg.src_off,
                                seg.src_off + seg.len,
                            )
                        {
                            continue;
                        }
                        if level[w] < pair.superstep {
                            intra = true;
                            required_phase = required_phase.max(level[w] + 1);
                        } else {
                            post = true;
                        }
                    }
                    if u.intra_dirty != intra || u.post_dirty != post {
                        push(
                            Property::RaceFreedom,
                            DiagnosticKind::FusedDirtyUnsound {
                                unit: seg.unit,
                                intra: u.intra_dirty,
                                post: u.post_dirty,
                                expected_intra: intra,
                                expected_post: post,
                            },
                            &mut diags,
                        );
                    }
                    (intra, post, true)
                }
                _ => {
                    push(
                        Property::Bounds,
                        DiagnosticKind::FusedUnitMismatch {
                            pair: k,
                            segment: si,
                            unit: seg.unit,
                        },
                        &mut diags,
                    );
                    (false, false, false)
                }
            };
            let _ = (expected_intra, expected_post, unit_ok);
        }
        // pack phase: exactly past every in-timestep writer, never past
        // the home superstep
        if pair.pack_phase != required_phase || pair.pack_phase > pair.superstep {
            push(
                Property::RaceFreedom,
                DiagnosticKind::FusedPhaseRace {
                    pair: k,
                    declared: pair.pack_phase,
                    required: required_phase,
                    superstep: pair.superstep,
                },
                &mut diags,
            );
        }
    }
    // normalized comparison: every fused run must be a constituent run,
    // every constituent run must be shipped
    let mut expected_norm: HashMap<(RunKey, usize, usize, usize), usize> = HashMap::new();
    for (key, runs) in expected_runs {
        for (src, dst, len, _, _) in normalize(runs) {
            *expected_norm.entry((key, src, dst, len)).or_insert(0) += 1;
        }
    }
    let mut fused_keys: Vec<RunKey> = fused_runs.keys().copied().collect();
    fused_keys.sort_unstable();
    for key in fused_keys {
        for (src, dst, len, pair_k, seg_si) in normalize(fused_runs.remove(&key).unwrap()) {
            match expected_norm.get_mut(&(key, src, dst, len)) {
                Some(c) if *c > 0 => *c -= 1,
                _ => push(
                    Property::DeadlockFreedom,
                    DiagnosticKind::FusedSegmentOrphan { pair: pair_k, segment: seg_si },
                    &mut diags,
                ),
            }
        }
    }
    // constituent runs the fused plan never ships
    let mut missing: Vec<(RunKey, usize, usize, usize)> = expected_norm
        .into_iter()
        .filter(|&(_, c)| c > 0)
        .map(|(k, _)| k)
        .collect();
    missing.sort_unstable();
    for ((stmt, sender, receiver, _term), _src, _dst, len) in missing {
        push(
            Property::DeadlockFreedom,
            DiagnosticKind::FusedSegmentMissing { stmt, sender, receiver, len },
            &mut diags,
        );
    }

    report.diagnostics = diags;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use crate::backend::{MsgSegment, PairSchedule};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    /// BLOCK → CYCLIC(3) shift: plenty of remote traffic, several pairs.
    fn setup(n: usize, np: usize) -> (Vec<DistArray<f64>>, Assignment) {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        let arrays = vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 7) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
        let ni = n as i64;
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, ni)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, ni - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        (arrays, stmt)
    }

    fn kinds(report: &StatementReport) -> Vec<&DiagnosticKind> {
        report.diagnostics.iter().map(|d| &d.kind).collect()
    }

    #[test]
    fn clean_plan_proves_all_five_properties() {
        let (arrays, stmt) = setup(40, 4);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verdict, AnalysisVerdict::Exact);
        assert_eq!(report.stats.procs, 4);
        assert!(report.stats.store_runs > 0);
        assert!(report.stats.copy_runs > 0);
        assert!(report.stats.pairs > 0);
        assert!(report.stats.wire_elements > 0);
        // Display renders the statement plus the stats line, no findings
        let shown = report.to_string();
        assert!(shown.contains("exact"), "{shown}");
    }

    #[test]
    fn dropped_store_run_is_a_coverage_gap() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let pp = plan.per_proc_mut().iter_mut().find(|pp| !pp.lhs_runs.is_empty()).unwrap();
        pp.lhs_runs.pop().unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report).iter().any(|k| matches!(k, DiagnosticKind::CoverageGap { .. })),
            "{report}"
        );
        assert!(report
            .findings_for(Property::WriteCoverage)
            .next()
            .is_some());
    }

    #[test]
    fn duplicated_store_run_is_a_coverage_overlap() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let pp = plan.per_proc_mut().iter_mut().find(|pp| !pp.lhs_runs.is_empty()).unwrap();
        let dup = pp.lhs_runs[0];
        pp.lhs_runs.push(dup);
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::CoverageOverlap { .. })),
            "{report}"
        );
    }

    #[test]
    fn store_run_past_shard_extent_is_caught() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let pp = plan.per_proc_mut().iter_mut().find(|pp| !pp.lhs_runs.is_empty()).unwrap();
        pp.lhs_runs[0].dst_off = usize::MAX / 2; // far past any extent
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::StoreRunOutOfBounds { .. })),
            "{report}"
        );
    }

    #[test]
    fn copy_run_shifted_out_of_bounds_is_caught() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let r = plan.per_proc_mut()[0].terms[0].runs.first_mut().unwrap();
        r.src_off = usize::MAX / 2;
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::CopyRunOutOfBounds { .. })),
            "{report}"
        );
    }

    #[test]
    fn copy_run_shifted_within_bounds_reads_wrong_element() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        // pick a local run with room to shift down: stays inside the
        // shard, but no longer addresses the statement-named element
        let shifted = plan
            .per_proc_mut()
            .iter_mut()
            .flat_map(|pp| {
                let me = pp.proc.zero_based() as u32;
                pp.terms[0].runs.iter_mut().filter(move |r| r.src == me)
            })
            .find(|r| r.src_off > 0)
            .expect("some local gather starts past offset 0");
        shifted.src_off -= 1;
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::GatherWrongElement { .. })),
            "{report}"
        );
    }

    #[test]
    fn orphaned_pair_schedule_is_caught() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        plan.message_plan_mut().pairs_mut().push(PairSchedule {
            sender: 3,
            receiver: 0,
            elements: 2,
            segments: vec![MsgSegment { term: 0, array: 1, src_off: 0, dst_off: 0, len: 2 }],
        });
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::OrphanMessage { .. })),
            "{report}"
        );
        assert_eq!(report.verdict, AnalysisVerdict::Divergent);
    }

    #[test]
    fn dropped_pair_schedule_is_a_read_before_exchange() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        assert!(!plan.message_plan().pairs().is_empty());
        plan.message_plan_mut().pairs_mut().remove(0);
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::ReadBeforeExchange { .. })),
            "{report}"
        );
    }

    #[test]
    fn skewed_byte_count_is_caught() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        plan.message_plan_mut().pairs_mut()[0].elements += 1;
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::PairByteMismatch { .. })),
            "{report}"
        );
    }

    #[test]
    fn skewed_wire_total_is_caught() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let declared = plan.message_plan().wire_elements();
        plan.message_plan_mut().set_wire_elements(declared + 7);
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(
                    k,
                    DiagnosticKind::WireTotalMismatch { declared: _, actual: _ }
                )),
            "{report}"
        );
    }

    #[test]
    fn duplicate_worker_is_a_race() {
        let (arrays, stmt) = setup(40, 4);
        let mut plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let dup = plan.per_proc()[1].clone();
        plan.per_proc_mut().push(dup);
        assert!(!workers_disjoint(plan.per_proc()));
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::DuplicateWorker { proc: 1 })),
            "{report}"
        );
    }

    #[test]
    fn stale_mapping_is_reported_not_dereferenced() {
        let (mut arrays, stmt) = setup(40, 4);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        // remap B to a different allocation → verification must stop at
        // the precondition instead of checking meaningless extents
        let (fresh, _) = setup(40, 4);
        arrays[1] = fresh.into_iter().nth(1).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::StaleMapping { array: 1 })),
            "{report}"
        );
    }

    #[test]
    fn replication_verdict_is_reported_and_clean() {
        let dom = IndexDomain::of_shape(&[12]).unwrap();
        let rep = std::sync::Arc::new(hpf_core::EffectiveDist::Replicated {
            domain: dom,
            procs: hpf_core::ProcSet::all(3),
        });
        let mut ds = DataSpace::new(3);
        let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let arrays = vec![
            DistArray::new("R", rep, 3, 0.0),
            DistArray::from_fn("B", ds.effective(b).unwrap(), 3, |i| (i[0] * 5) as f64),
        ];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 12)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 12)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verdict, AnalysisVerdict::ReplicatedDivergence);
    }

    #[test]
    fn aliasing_shift_verifies_clean() {
        // A(2:16) = A(1:15): the LHS aliases the RHS under a shifted
        // section — the RAW/WAR case the happens-before check exists for
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let arrays =
            vec![DistArray::from_fn("A", ds.effective(a).unwrap(), 4, |i| i[0] as f64)];
        let doms: Vec<&IndexDomain> = arrays.iter().map(|x| x.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        let report = verify_plan(&arrays, &stmt, &plan);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.verdict, AnalysisVerdict::Exact);
    }

    #[test]
    fn coalesce_merges_contiguous_indices() {
        assert_eq!(coalesce(vec![]), vec![]);
        assert_eq!(coalesce(vec![5, 3, 4, 9, 4]), vec![(3, 3), (9, 1)]);
        assert_eq!(coalesce(vec![0]), vec![(0, 1)]);
    }
}
