//! Property tests on the §5.1 alignment machinery.

use hpf_core::{
    reduce, AlignExpr, AlignSpec, AligneeAxis, BaseSubscript, HpfError,
};
use hpf_index::{Idx, IndexDomain};
use proptest::prelude::*;

/// A random affine single-dummy alignment spec plus conforming domains.
#[derive(Debug, Clone)]
struct AffineCase {
    n: i64,
    a: i64,
    c: i64,
    base_pad: i64,
}

fn arb_affine() -> impl Strategy<Value = AffineCase> {
    (2i64..30, prop_oneof![-3i64..=-1, 1i64..=3], -10i64..10, 0i64..8)
        .prop_map(|(n, a, c, base_pad)| AffineCase { n, a, c, base_pad })
}

impl AffineCase {
    fn domains(&self) -> (IndexDomain, IndexDomain) {
        let alignee = IndexDomain::standard(&[(1, self.n)]).unwrap();
        // base covers the whole unclamped image plus padding
        let v1 = self.a + self.c;
        let v2 = self.a * self.n + self.c;
        let (lo, hi) = (v1.min(v2) - self.base_pad, v1.max(v2) + self.base_pad);
        (alignee, IndexDomain::standard(&[(lo, hi)]).unwrap())
    }
}

proptest! {
    /// Reduction of `A(I) WITH B(a*I + c)` yields the affine map exactly:
    /// every in-range image point equals a·i + c (no clamping needed when
    /// the base covers the image).
    #[test]
    fn affine_reduction_exact(case in arb_affine()) {
        let (alignee, base) = case.domains();
        let spec = AlignSpec::with_exprs(
            1,
            vec![AlignExpr::dummy(0) * case.a + case.c],
        );
        let f = reduce(&spec, &alignee, &base).unwrap();
        for i in 1..=case.n {
            let img = f.image_point(&Idx::d1(i));
            prop_assert_eq!(img, Idx::d1(case.a * i + case.c));
        }
    }

    /// Image rects are always within the base domain (Definition 1: the
    /// image is a subset of I^B), even when the expression overshoots —
    /// clamping guarantees it.
    #[test]
    fn images_stay_in_base(case in arb_affine(), shrink in 0i64..20) {
        let (alignee, base_full) = case.domains();
        // shrink the base so clamping must kick in
        let lo = base_full.lower(0);
        let hi = (base_full.upper(0) - shrink).max(lo);
        let base = IndexDomain::standard(&[(lo, hi)]).unwrap();
        let spec = AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * case.a + case.c]);
        let f = reduce(&spec, &alignee, &base).unwrap();
        for i in 1..=case.n {
            let img = f.image_rect(&Idx::d1(i));
            for j in img.iter() {
                prop_assert!(base.contains(&j), "image {} outside base {}", j, base);
            }
        }
    }

    /// preimage ∘ image round-trip: i is always in the preimage of its own
    /// image rect.
    #[test]
    fn preimage_contains_origin(case in arb_affine()) {
        let (alignee, base) = case.domains();
        let spec = AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * case.a + case.c]);
        let f = reduce(&spec, &alignee, &base).unwrap();
        for i in (1..=case.n).step_by(3) {
            let img = f.image_rect(&Idx::d1(i));
            let pre = f.preimage_region(&img);
            prop_assert!(pre.contains(&Idx::d1(i)), "i = {i} lost by round-trip");
        }
    }

    /// Colon-triplet reduction is equivalent to the explicit affine form:
    /// `A(:) WITH B(l:u:s)` ≡ `A(I) WITH B((I−1)·s + l)`.
    #[test]
    fn colon_triplet_equals_affine(n in 2i64..20, l in -5i64..5, s in 1i64..4) {
        let alignee = IndexDomain::standard(&[(1, n)]).unwrap();
        let u = l + (n - 1) * s + 2; // triplet long enough
        let base = IndexDomain::standard(&[(l - 1, u + 1)]).unwrap();
        let spec_colon = AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::Triplet { lower: Some(l), upper: Some(u), stride: Some(s) }],
        );
        let spec_affine = AlignSpec::with_exprs(
            1,
            vec![(AlignExpr::dummy(0) - 1) * s + l],
        );
        let f1 = reduce(&spec_colon, &alignee, &base).unwrap();
        let f2 = reduce(&spec_affine, &alignee, &base).unwrap();
        for i in 1..=n {
            prop_assert_eq!(
                f1.image_point(&Idx::d1(i)),
                f2.image_point(&Idx::d1(i)),
                "i = {}", i
            );
        }
    }

    /// Star alignee axes never influence the image: `A(J,*)` maps every
    /// (j, k) to the same base point regardless of k.
    #[test]
    fn star_collapse_ignores_axis(n in 2i64..12, m in 2i64..12) {
        let alignee = IndexDomain::standard(&[(1, n), (1, m)]).unwrap();
        let base = IndexDomain::standard(&[(1, n)]).unwrap();
        let spec = AlignSpec::new(
            vec![AligneeAxis::Dummy(0), AligneeAxis::Star],
            vec![BaseSubscript::Expr(AlignExpr::dummy(0))],
        );
        let f = reduce(&spec, &alignee, &base).unwrap();
        for j in 1..=n {
            let first = f.image_point(&Idx::d2(j, 1));
            for k in 2..=m {
                prop_assert_eq!(f.image_point(&Idx::d2(j, k)), first);
            }
        }
        prop_assert_eq!(f.collapsed_dims(), vec![1]);
    }

    /// Replicated base axes produce images spanning the full dimension.
    #[test]
    fn replication_spans_dimension(n in 2i64..12, m in 2i64..12) {
        let alignee = IndexDomain::standard(&[(1, n)]).unwrap();
        let base = IndexDomain::standard(&[(1, n), (1, m)]).unwrap();
        let spec = AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Star],
        );
        let f = reduce(&spec, &alignee, &base).unwrap();
        for i in 1..=n {
            let img = f.image_rect(&Idx::d1(i));
            prop_assert_eq!(img.volume(), m as usize);
        }
    }
}

/// Deterministic edge cases around the §5.1 extent rule.
#[test]
fn colon_extent_boundaries() {
    let alignee = IndexDomain::standard(&[(1, 10)]).unwrap();
    let base = IndexDomain::standard(&[(1, 30)]).unwrap();
    // triplet of exactly 10 members: fits
    let fit = AlignSpec::new(
        vec![AligneeAxis::Colon],
        vec![BaseSubscript::Triplet { lower: Some(1), upper: Some(28), stride: Some(3) }],
    );
    assert!(reduce(&fit, &alignee, &base).is_ok());
    // 9 members: too small
    let small = AlignSpec::new(
        vec![AligneeAxis::Colon],
        vec![BaseSubscript::Triplet { lower: Some(1), upper: Some(25), stride: Some(3) }],
    );
    assert!(matches!(
        reduce(&small, &alignee, &base),
        Err(HpfError::ColonExtent { .. })
    ));
    // descending triplet of 10 members: fits (array-assignment analogy)
    let desc = AlignSpec::new(
        vec![AligneeAxis::Colon],
        vec![BaseSubscript::Triplet { lower: Some(28), upper: Some(1), stride: Some(-3) }],
    );
    let f = reduce(&desc, &alignee, &base).unwrap();
    // A(1) ↦ B(28), A(10) ↦ B(1)
    assert_eq!(f.image_point(&Idx::d1(1)), Idx::d1(28));
    assert_eq!(f.image_point(&Idx::d1(10)), Idx::d1(1));
}
