//! E1/E8 — owner-lookup throughput per distribution format (§4.1).
//!
//! The paper claims `GENERAL_BLOCK` "can be implemented efficiently"; this
//! bench puts every format's `owner()` on the same footing, including a
//! processor-section target and a 2-D composed distribution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_bench::mapping_1d;
use hpf_core::{DataSpace, DistributeSpec, FormatSpec, GeneralBlock};
use hpf_index::{triplet, Idx, IndexDomain, Section};

fn bench(c: &mut Criterion) {
    let n = 1_000_000usize;
    let np = 32usize;
    let mut g = c.benchmark_group("owner_lookup");

    let weights: Vec<u64> = (0..n).map(|i| (i % 97 + 1) as u64).collect();
    let gb = GeneralBlock::balanced(&weights, np).unwrap();
    let bounds: Vec<i64> = (1..np).map(|j| gb.bound(j)).collect();

    let cases = vec![
        ("block", mapping_1d(n, np, FormatSpec::Block)),
        ("block_balanced", mapping_1d(n, np, FormatSpec::BlockBalanced)),
        ("cyclic1", mapping_1d(n, np, FormatSpec::Cyclic(1))),
        ("cyclic8", mapping_1d(n, np, FormatSpec::Cyclic(8))),
        ("general_block", mapping_1d(n, np, FormatSpec::GeneralBlock(bounds))),
    ];
    for (name, map) in &cases {
        g.bench_function(*name, |b| {
            let mut i = 1i64;
            b.iter(|| {
                i = i % n as i64 + 1;
                black_box(map.owner(&Idx::d1(black_box(i))))
            })
        });
    }

    // distribution to a processor section (every other processor)
    let mut ds = DataSpace::new(np);
    ds.declare_processors("Q", IndexDomain::of_shape(&[np]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(
        a,
        &DistributeSpec::to_section(
            vec![FormatSpec::Block],
            "Q",
            Section::from_triplets(vec![triplet(1, np as i64, 2)]),
        ),
    )
    .unwrap();
    let sec = ds.effective(a).unwrap();
    g.bench_function("block_to_section", |b| {
        let mut i = 1i64;
        b.iter(|| {
            i = i % n as i64 + 1;
            black_box(sec.owner(&Idx::d1(black_box(i))))
        })
    });

    // 2-D (CYCLIC(2), BLOCK) on a grid
    let side = 1000i64;
    let mut ds = DataSpace::new(16);
    ds.declare_processors("G", IndexDomain::of_shape(&[4, 4]).unwrap()).unwrap();
    let m = ds
        .declare("M", IndexDomain::standard(&[(1, side), (1, side)]).unwrap())
        .unwrap();
    ds.distribute(
        m,
        &DistributeSpec::to(vec![FormatSpec::Cyclic(2), FormatSpec::Block], "G"),
    )
    .unwrap();
    let m2 = ds.effective(m).unwrap();
    g.bench_function("cyclic2_block_2d", |b| {
        let mut i = 1i64;
        b.iter(|| {
            i = i % side + 1;
            black_box(m2.owner(&Idx::d2(black_box(i), black_box(side + 1 - i))))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
