//! Parser robustness: arbitrary input never panics, diagnostics carry
//! line numbers, and a corpus of realistic-but-wrong programs produces the
//! intended errors.

use hpf_frontend::{lex, parse, Elaborator, FrontendError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics on arbitrary bytes-as-strings.
    #[test]
    fn lexer_total(src in "\\PC*") {
        let _ = lex(&src);
    }

    /// The parser never panics on arbitrary ASCII-ish source soup.
    #[test]
    fn parser_total(src in "[A-Za-z0-9 ,():*+=!$\\n-]{0,200}") {
        let _ = parse(&src);
    }

    /// The full elaborator never panics either.
    #[test]
    fn elaborator_total(src in "[A-Za-z0-9 ,():*+=!$\\n-]{0,160}") {
        let _ = Elaborator::new(4).run(&src);
    }

    /// Directive soup built from real keywords also never panics.
    #[test]
    fn directive_soup(parts in prop::collection::vec(
        prop_oneof![
            Just("!HPF$ "), Just("DISTRIBUTE "), Just("ALIGN "), Just("WITH "),
            Just("PROCESSORS "), Just("REALIGN "), Just("DYNAMIC "), Just("TO "),
            Just("BLOCK"), Just("CYCLIC"), Just("A"), Just("B"), Just("("),
            Just(")"), Just(","), Just(":"), Just("*"), Just("\n"), Just("1"),
            Just("REAL "), Just("ALLOCATE"), Just("END"),
        ], 0..40))
    {
        let src: String = parts.concat();
        let _ = Elaborator::new(2).run(&src);
    }
}

#[test]
fn errors_carry_line_numbers() {
    let src = "REAL A(4)\nREAL B(4)\n!HPF$ DISTRIBUTE C(BLOCK)\n";
    match Elaborator::new(2).run(src) {
        Err(FrontendError::Undeclared { line, name }) => {
            assert_eq!(line, 3);
            assert_eq!(name, "C");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn error_corpus() {
    let np = 4;
    let cases: Vec<(&str, &str)> = vec![
        // (source, substring expected in the error message)
        ("!HPF$ DISTRIBUTE (BLOCK) :: ", "expected identifier"),
        ("!HPF$ ALIGN A(:) B(:)", "WITH"),
        ("REAL A(4)\n!HPF$ ALIGN A(:,:) WITH A(:)", "cannot be aligned to itself"),
        ("REAL A(4), B(2,2)\n!HPF$ ALIGN A(:,:) WITH B(:,:)", "rank"),
        ("REAL A(4)\n!HPF$ DISTRIBUTE A(BLOCK, BLOCK)", "rank"),
        ("REAL A(4)\n!HPF$ DISTRIBUTE A(CYCLIC(0))", "CYCLIC"),
        ("PARAMETER (N = 1/0)", "division by zero"),
        ("REAL A(N)", "unknown parameter"),
        ("!HPF$ TEMPLATE T(8)", "TEMPLATE"),
        ("CALL NOPE()", "unknown subroutine"),
        ("REAL A(4)\nALLOCATE(A(4))", "ALLOCATABLE"),
        ("REAL, ALLOCATABLE :: W(:)\nDEALLOCATE(W)", "not currently allocated"),
    ];
    for (src, needle) in cases {
        let err = Elaborator::new(np).run(src).expect_err(src);
        let msg = err.to_string();
        assert!(
            msg.to_lowercase().contains(&needle.to_lowercase()),
            "source {src:?}: expected {needle:?} in {msg:?}"
        );
    }
}

#[test]
fn deeply_nested_expressions_ok() {
    // deep but sane nesting parses fine
    let mut expr = String::from("1");
    for _ in 0..40 {
        expr = format!("({expr}+1)");
    }
    let src = format!("PARAMETER (N = {expr})\nREAL A(N)\nEND");
    let elab = Elaborator::new(2).run(&src).unwrap();
    assert!(elab.array("A").is_some());
}

#[test]
fn comments_and_blank_lines_everywhere() {
    let src = r#"

! leading comment
      PROGRAM T   ! trailing on program

      REAL A(8)   ! decl comment
! comment between
!HPF$ DISTRIBUTE A(BLOCK)   ! directive comment

      END ! the end
"#;
    let elab = Elaborator::new(2).run(src).unwrap();
    assert!(elab.array("A").is_some());
}
