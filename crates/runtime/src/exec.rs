use crate::assign::Assignment;
use crate::backend::ExchangeBackend;
use crate::commsets::CommAnalysis;
use crate::plan::ExecPlan;
use crate::workspace::PlanWorkspace;
use crate::DistArray;
use hpf_core::HpfError;
use hpf_index::IndexDomain;
use std::sync::Arc;

/// Sequential owner-computes executor: a thin driver that inspects a fresh
/// [`ExecPlan`] and replays it once.
///
/// Semantics: the whole right-hand side is packed before any element of
/// the left-hand side is stored (Fortran 90 array-assignment semantics),
/// so statements like `A(2:N) = A(1:N-1)` are safe.
///
/// For statements executed repeatedly (solver sweeps, timesteps), use
/// [`crate::Program`] or a [`crate::PlanCache`] so inspection is amortized
/// instead of re-run per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqExecutor;

impl SeqExecutor {
    /// Execute `stmt` over `arrays`, updating the LHS array's distributed
    /// storage and returning the communication analysis of the statement.
    pub fn execute(
        &self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
    ) -> Result<CommAnalysis, HpfError> {
        let plan = ExecPlan::inspect(arrays, stmt)?;
        plan.execute_seq(arrays);
        Ok(plan.analysis().clone())
    }

    /// Replay an already-inspected plan (the executor half of the
    /// inspector–executor split). Allocates a throwaway workspace; hot
    /// loops should use [`SeqExecutor::execute_plan_with`].
    ///
    /// # Panics
    /// Panics if `plan` is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_plan(&self, arrays: &mut [DistArray<f64>], plan: &ExecPlan) {
        plan.execute_seq(arrays);
    }

    /// Replay an already-inspected plan into a reusable
    /// [`PlanWorkspace`] — zero heap allocations once the workspace is
    /// warm.
    ///
    /// # Panics
    /// Panics if `plan` is stale for `arrays` (see
    /// [`ExecPlan::is_valid_for`]).
    pub fn execute_plan_with(
        &self,
        arrays: &mut [DistArray<f64>],
        plan: &ExecPlan,
        ws: &mut PlanWorkspace,
    ) {
        plan.execute_seq_with(arrays, ws);
    }

    /// Execute `stmt` through an explicit [`ExchangeBackend`]: inspect a
    /// fresh plan and run one superstep on the backend (which cross-checks
    /// its measured wire traffic against the plan's frozen schedules).
    /// For repeated statements, resolve plans through a
    /// [`crate::PlanCache`] and use [`crate::PlanCache::replay_on`]
    /// instead.
    pub fn execute_on(
        &self,
        arrays: &mut [DistArray<f64>],
        stmt: &Assignment,
        backend: &mut dyn ExchangeBackend,
    ) -> Result<CommAnalysis, HpfError> {
        let plan = Arc::new(ExecPlan::inspect(arrays, stmt)?);
        let mut ws = PlanWorkspace::new();
        backend.step(&plan, arrays, &mut ws)?;
        Ok(plan.analysis().clone())
    }
}

/// Compute the expected dense value of the LHS array after `stmt` by naive
/// element-wise evaluation, reading the arrays' *current* values — the
/// oracle the plan-based executors are tested against. Deliberately simple
/// and O(global size); never on the execution path.
pub fn dense_reference(arrays: &[DistArray<f64>], stmt: &Assignment) -> Vec<f64> {
    let lhs_dom = arrays[stmt.lhs].domain().clone();
    let mut dense = arrays[stmt.lhs].to_dense();
    let mut vals = vec![0.0f64; stmt.terms.len()];
    let mut updates = Vec::with_capacity(stmt.element_count());
    for rel in stmt.positions() {
        for (t, term) in stmt.terms.iter().enumerate() {
            vals[t] = arrays[term.array].get(&stmt.rhs_index(t, &rel));
        }
        updates.push((stmt.lhs_index(&rel), stmt.combine.apply(&vals)));
    }
    for (gi, v) in updates {
        dense[lhs_dom.linearize(&gi).expect("validated sections stay in bounds")] = v;
    }
    dense
}

/// Apply `stmt` to a set of dense mirrors in place — the multi-timestep
/// companion of [`dense_reference`]. `dense[k]` holds array `k` in
/// column-major global order over `domains[k]`; repeating this over every
/// statement of a program, timestep after timestep, yields the oracle the
/// end-to-end pipeline (`hpfrun --verify`) compares distributed results
/// against. Same aliasing discipline as [`dense_reference`]: all updates
/// are computed from the pre-statement values, then stored.
pub fn apply_dense(dense: &mut [Vec<f64>], domains: &[IndexDomain], stmt: &Assignment) {
    let mut vals = vec![0.0f64; stmt.terms.len()];
    let mut updates = Vec::with_capacity(stmt.element_count());
    for rel in stmt.positions() {
        for (t, term) in stmt.terms.iter().enumerate() {
            let gi = stmt.rhs_index(t, &rel);
            vals[t] = dense[term.array]
                [domains[term.array].linearize(&gi).expect("validated sections stay in bounds")];
        }
        updates.push((stmt.lhs_index(&rel), stmt.combine.apply(&vals)));
    }
    let lhs_dom = &domains[stmt.lhs];
    for (gi, v) in updates {
        dense[stmt.lhs][lhs_dom.linearize(&gi).expect("validated sections stay in bounds")] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Combine, Term};
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, triplet, IndexDomain, Section};

    fn setup(n: usize, np: usize, fmts: &[FormatSpec]) -> Vec<DistArray<f64>> {
        let mut ds = DataSpace::new(np);
        let mut out = Vec::new();
        for (k, f) in fmts.iter().enumerate() {
            let name = format!("A{k}");
            let id = ds.declare(&name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
            ds.distribute(id, &DistributeSpec::new(vec![f.clone()])).unwrap();
            out.push(DistArray::from_fn(
                &name,
                ds.effective(id).unwrap(),
                np,
                |i| (i[0] * (k as i64 + 1)) as f64,
            ));
        }
        out
    }

    #[test]
    fn copy_assignment_matches_reference() {
        let mut arrays = setup(32, 4, &[FormatSpec::Block, FormatSpec::Cyclic(1)]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 32)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 32)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        SeqExecutor.execute(&mut arrays, &stmt).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
        // A0(i) must now be 2*i (copied from A1)
        assert_eq!(arrays[0].get(&hpf_index::Idx::d1(5)), 10.0);
    }

    #[test]
    fn shift_with_aliasing_is_safe() {
        // A(2:16) = A(1:15): must read old values (Fortran semantics)
        let mut arrays = setup(16, 4, &[FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, 16)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, 15)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        SeqExecutor.execute(&mut arrays, &stmt).unwrap();
        let dense = arrays[0].to_dense();
        // original A(i) = i; after shift A(i) = i−1 for i ≥ 2
        assert_eq!(dense[0], 1.0);
        for i in 2..=16usize {
            assert_eq!(dense[i - 1], (i - 1) as f64, "A({i})");
        }
    }

    #[test]
    fn sum_of_two_terms() {
        let mut arrays = setup(20, 4, &[FormatSpec::Block, FormatSpec::Block]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        // A0(1:10) = A1(1:10) + A1(11:20)
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 10)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(1, 10)])),
                Term::new(1, Section::from_triplets(vec![span(11, 20)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        let analysis = SeqExecutor.execute(&mut arrays, &stmt).unwrap();
        for i in 1..=10i64 {
            // 2i + 2(i+10) = 4i + 20
            assert_eq!(arrays[0].get(&hpf_index::Idx::d1(i)), (4 * i + 20) as f64);
        }
        assert!(analysis.remote_reads > 0, "cross-half reads must communicate");
    }

    #[test]
    fn strided_gather() {
        let mut arrays = setup(40, 4, &[FormatSpec::Block, FormatSpec::Cyclic(3)]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        // A0(1:20) = A1(2:40:2)
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 20)]),
            vec![Term::new(1, Section::from_triplets(vec![triplet(2, 40, 2)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let expect = dense_reference(&arrays, &stmt);
        SeqExecutor.execute(&mut arrays, &stmt).unwrap();
        assert_eq!(arrays[0].to_dense(), expect);
    }

    #[test]
    fn execute_plan_replays() {
        let mut arrays = setup(24, 3, &[FormatSpec::Block, FormatSpec::Cyclic(2)]);
        let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, 24)]),
            vec![Term::new(1, Section::from_triplets(vec![span(1, 24)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let plan = crate::ExecPlan::inspect(&arrays, &stmt).unwrap();
        let expect = dense_reference(&arrays, &stmt);
        SeqExecutor.execute_plan(&mut arrays, &plan);
        assert_eq!(arrays[0].to_dense(), expect);
    }
}
