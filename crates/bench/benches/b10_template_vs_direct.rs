//! E7 — descriptor resolution: owner lookup through a height-2 template
//! chain vs the paper's height-1 forest, on identical mappings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_core::{AlignExpr, AlignSpec, DataSpace, DistributeSpec, FormatSpec};
use hpf_index::{Idx, IndexDomain};
use hpf_template::TemplateModel;

fn bench(c: &mut Criterion) {
    let n = 10_000i64;
    let d = AlignExpr::dummy;
    // template model: A → B → T (height 2)
    let mut tm = TemplateModel::new(8);
    let t = tm.template("T", IndexDomain::standard(&[(1, 4 * n)]).unwrap()).unwrap();
    let b_ = tm.array("B", IndexDomain::standard(&[(1, 2 * n)]).unwrap()).unwrap();
    let a_ = tm.array("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    tm.align(b_, t, &AlignSpec::with_exprs(1, vec![d(0) * 2])).unwrap();
    tm.align(a_, b_, &AlignSpec::with_exprs(1, vec![d(0) * 2])).unwrap();
    tm.distribute(t, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let chain = tm.resolve(a_).unwrap();

    // paper's model: composed height-1 alignment A(I) → TB(4I)
    let mut ds = DataSpace::new(8);
    let tb = ds.declare("TB", IndexDomain::standard(&[(1, 4 * n)]).unwrap()).unwrap();
    let ar = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    ds.distribute(tb, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    ds.align(ar, tb, &AlignSpec::with_exprs(1, vec![d(0) * 4])).unwrap();
    let flat = ds.effective(ar).unwrap();

    // sanity: same owners
    for i in [1i64, 17, n] {
        assert_eq!(chain.owners(&Idx::d1(i)), flat.owners(&Idx::d1(i)));
    }

    let mut g = c.benchmark_group("template_vs_direct");
    g.bench_function("height2_chain_lookup", |bch| {
        let mut i = 1i64;
        bch.iter(|| {
            i = i % n + 1;
            black_box(chain.owners(&Idx::d1(black_box(i))))
        })
    });
    g.bench_function("height1_forest_lookup", |bch| {
        let mut i = 1i64;
        bch.iter(|| {
            i = i % n + 1;
            black_box(flat.owners(&Idx::d1(black_box(i))))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
