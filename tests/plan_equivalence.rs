//! Property tests for the compiled-plan runtime: plan-based sequential and
//! parallel execution are bit-identical to the naive element-wise reference
//! executor across random block / cyclic / general-block / replicated
//! mappings in 1-D and 2-D, the run-length compressed schedules expand to
//! exactly the uncompressed per-element `(src, offset)` sequences, and a
//! cached plan replay equals a freshly inspected one — including across a
//! remap invalidation.

use hpf::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Independently recompute the *uncompressed* gather sequence of processor
/// `p` for term `t`: walk the LHS owner's region rects in local-buffer
/// order, keep the elements the LHS section selects, and resolve each read
/// to `(source processor, flat offset)` with first-owner ghost semantics —
/// the per-element schedule the compressed [`CopyRun`]s must expand to.
fn expected_gather_refs(
    arrays: &[DistArray<f64>],
    stmt: &Assignment,
    p: ProcId,
    t: usize,
) -> Vec<(u32, usize)> {
    let lhs = &arrays[stmt.lhs];
    let term_arr = &arrays[stmt.terms[t].array];
    let own = term_arr.region_of(p);
    let mut out = Vec::new();
    for rect in lhs.region_of(p).rects() {
        for gi in rect.iter() {
            let Some(rel) = stmt.lhs_section.project(&gi) else { continue };
            let ri = stmt.rhs_index(t, &rel);
            let src =
                if own.contains(&ri) { p } else { term_arr.mapping().owner(&ri) };
            let off = term_arr.local_offset(src, &ri).expect("owner holds its region");
            out.push((src.zero_based() as u32, off));
        }
    }
    out
}

/// The uncompressed LHS flat-offset sequence of processor `p`, recomputed
/// the same way.
fn expected_lhs_offsets(
    arrays: &[DistArray<f64>],
    stmt: &Assignment,
    p: ProcId,
) -> Vec<usize> {
    let lhs = &arrays[stmt.lhs];
    let mut out = Vec::new();
    for rect in lhs.region_of(p).rects() {
        for gi in rect.iter() {
            if stmt.lhs_section.project(&gi).is_some() {
                out.push(lhs.local_offset(p, &gi).expect("owner holds its region"));
            }
        }
    }
    out
}

/// Assert the compressed schedule of `plan` expands element-for-element to
/// the uncompressed sequences, and that every run list tiles the element
/// order contiguously.
fn assert_schedule_expands_exactly(arrays: &[DistArray<f64>], stmt: &Assignment, plan: &ExecPlan) {
    for pp in plan.per_proc() {
        let want_lhs = expected_lhs_offsets(arrays, stmt, pp.proc);
        assert_eq!(pp.volume, want_lhs.len(), "{}", pp.proc);
        let got_lhs: Vec<usize> = pp.iter_lhs_offsets().collect();
        assert_eq!(got_lhs, want_lhs, "{} store expansion", pp.proc);
        let mut pos = 0usize;
        for r in &pp.lhs_runs {
            assert_eq!(r.pos, pos, "{} store runs must tile", pp.proc);
            assert!(r.len > 0);
            pos += r.len;
        }
        assert_eq!(pos, pp.volume);
        for (t, ts) in pp.terms.iter().enumerate() {
            let want = expected_gather_refs(arrays, stmt, pp.proc, t);
            let got: Vec<(u32, usize)> =
                ts.iter_refs().map(|g| (g.src, g.offset)).collect();
            assert_eq!(got, want, "{} term {t} gather expansion", pp.proc);
            let mut k = 0usize;
            for r in &ts.runs {
                assert_eq!(r.dst_off, k, "{} term {t} gather runs must tile", pp.proc);
                assert!(r.len > 0);
                k += r.len;
            }
            assert_eq!(k, ts.elements);
        }
    }
}

/// Random GENERAL_BLOCK sizes: `np` non-negative lengths summing to `n`.
fn gb_sizes(n: usize, np: usize, seed: u64) -> Vec<i64> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cuts: Vec<i64> = (0..np.saturating_sub(1))
        .map(|_| rng.random_range(0..=n as u64) as i64)
        .collect();
    cuts.sort_unstable();
    cuts.push(n as i64);
    let mut prev = 0i64;
    cuts.into_iter()
        .map(|c| {
            let s = c - prev;
            prev = c;
            s
        })
        .collect()
}

/// One of the paper's mapping families, selected by `kind`.
fn mapping_of(kind: u8, n: usize, np: usize, seed: u64) -> Arc<EffectiveDist> {
    if kind % 6 == 5 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = match kind % 6 {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        3 => FormatSpec::Cyclic(3),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np, seed)),
    };
    let mut ds = DataSpace::new(np);
    let a = ds.declare("M", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

fn build_arrays(n: usize, np: usize, ka: u8, kb: u8, seed: u64) -> Vec<DistArray<f64>> {
    vec![
        DistArray::from_fn("A", mapping_of(ka, n, np, seed), np, |i| i[0] as f64),
        DistArray::from_fn("B", mapping_of(kb, n, np, seed ^ 0x9e37), np, |i| {
            (i[0] * 13 - 5) as f64
        }),
    ]
}

/// A random 2-D mapping over an `np_side × np_side` grid: per-dimension
/// block / cyclic(k) / general-block formats, or full replication
/// (`kind == 16`).
fn mapping_2d(kind: u8, n: usize, np_side: usize, seed: u64) -> Arc<EffectiveDist> {
    let np = np_side * np_side;
    if kind >= 16 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n, n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = |k: u8, s: u64| match k % 4 {
        0 => FormatSpec::Block,
        1 => FormatSpec::Cyclic(1),
        2 => FormatSpec::Cyclic(2),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np_side, s)),
    };
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[np_side, np_side]).unwrap())
        .unwrap();
    let a = ds.declare("M", IndexDomain::of_shape(&[n, n]).unwrap()).unwrap();
    ds.distribute(
        a,
        &DistributeSpec::to(vec![fmt(kind % 4, seed), fmt(kind / 4, seed ^ 0x55)], "G"),
    )
    .unwrap();
    ds.effective(a).unwrap()
}

/// A 2-D stencil-flavored statement over `A(2:n-1, 2:n-1)`, with shifted
/// `B` reads and (for some combiners) an aliasing `A` term.
fn build_stmt_2d(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let west = Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)]);
    let east = Section::from_triplets(vec![span(3, n), span(2, n - 1)]);
    let south = Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, west)]),
        1 => (
            Combine::Sum,
            vec![
                Term::new(1, west),
                Term::new(1, east.clone()),
                Term::new(1, south),
                Term::new(0, east),
            ],
        ),
        2 => (Combine::Average, vec![Term::new(1, west), Term::new(1, east)]),
        _ => (Combine::Max, vec![Term::new(1, west), Term::new(0, south)]),
    };
    Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        terms,
        combine,
        &doms,
    )
    .unwrap()
}

/// `A(2:n) = combine(B(1:n-1)[, A(1:n-1)])` — LHS aliasing included.
fn build_stmt(n: i64, combine_k: u8, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let rhs = Section::from_triplets(vec![span(1, n - 1)]);
    let (combine, terms) = match combine_k % 4 {
        0 => (Combine::Copy, vec![Term::new(1, rhs)]),
        1 => (Combine::Sum, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        2 => (Combine::Average, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
        _ => (Combine::Max, vec![Term::new(1, rhs.clone()), Term::new(0, rhs)]),
    };
    Assignment::new(0, Section::from_triplets(vec![span(2, n)]), terms, combine, &doms)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plan-based Seq and Par execution are bit-identical to the naive
    /// element-wise reference, for every mapping family combination.
    #[test]
    fn plan_execution_matches_naive_reference(
        n in 16usize..48,
        np in 1usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        seed in 0u64..1000,
        threads in 1usize..5,
        combine_k in 0u8..4,
    ) {
        let mut seq = build_arrays(n, np, ka, kb, seed);
        let mut par = build_arrays(n, np, ka, kb, seed);
        let stmt = build_stmt(n as i64, combine_k, &seq);
        let expect = dense_reference(&seq, &stmt);
        SeqExecutor.execute(&mut seq, &stmt).unwrap();
        ParExecutor::with_threads(threads).execute(&mut par, &stmt).unwrap();
        prop_assert_eq!(seq[0].to_dense(), expect);
        prop_assert_eq!(seq[0].to_dense(), par[0].to_dense());
        prop_assert_eq!(seq[1].to_dense(), par[1].to_dense());
    }

    /// The run-length compressed schedule expands to exactly the
    /// uncompressed per-element `(src, offset)` sequence, for every 1-D
    /// mapping family combination (and the runs tile the element order).
    #[test]
    fn compressed_schedule_expands_exactly_1d(
        n in 16usize..48,
        np in 1usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let arrays = build_arrays(n, np, ka, kb, seed);
        let stmt = build_stmt(n as i64, combine_k, &arrays);
        let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
        assert_schedule_expands_exactly(&arrays, &stmt, &plan);
        // expansion and replay agree with the naive reference too
        let mut seq = build_arrays(n, np, ka, kb, seed);
        let expect = dense_reference(&seq, &stmt);
        SeqExecutor.execute(&mut seq, &stmt).unwrap();
        prop_assert_eq!(seq[0].to_dense(), expect);
    }

    /// 2-D: compressed Seq and Par replay are bit-identical to the naive
    /// reference over random per-dimension block / cyclic(k) /
    /// general-block formats and replicated mappings; the compressed
    /// schedules expand exactly; and for partitioning mappings the plan's
    /// ghost volume equals the frozen analysis's remote reads.
    #[test]
    fn plan_execution_matches_reference_2d(
        n in 6usize..14,
        np_side in 1usize..3,
        ka in 0u8..17,
        kb in 0u8..17,
        seed in 0u64..1000,
        threads in 1usize..6,
        combine_k in 0u8..4,
    ) {
        let np = np_side * np_side;
        let mk = || vec![
            DistArray::from_fn("A", mapping_2d(ka, n, np_side, seed), np, |i| {
                (i[0] * 31 + i[1]) as f64
            }),
            DistArray::from_fn("B", mapping_2d(kb, n, np_side, seed ^ 0x77), np, |i| {
                (i[0] - 2 * i[1]) as f64
            }),
        ];
        let mut seq = mk();
        let mut par = mk();
        let stmt = build_stmt_2d(n as i64, combine_k, &seq);
        let plan = ExecPlan::inspect(&seq, &stmt).unwrap();
        assert_schedule_expands_exactly(&seq, &stmt, &plan);
        if ka < 16 && kb < 16 {
            // partitioning mappings: plan ghosts are exactly the remote
            // reads (replication changes who computes, so the quantities
            // deliberately differ there)
            prop_assert_eq!(plan.ghost_elements() as u64, plan.analysis().remote_reads);
        }
        let expect = dense_reference(&seq, &stmt);
        SeqExecutor.execute(&mut seq, &stmt).unwrap();
        ParExecutor::with_threads(threads).execute(&mut par, &stmt).unwrap();
        prop_assert_eq!(seq[0].to_dense(), expect);
        prop_assert_eq!(seq[0].to_dense(), par[0].to_dense());
        prop_assert_eq!(seq[1].to_dense(), par[1].to_dense());
    }

    /// A cached plan replay equals a freshly inspected plan on every
    /// timestep — before and after a remap invalidation.
    #[test]
    fn cached_replay_equals_fresh_inspection_across_remap(
        n in 16usize..48,
        np in 1usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        seed in 0u64..1000,
        combine_k in 0u8..4,
    ) {
        let mk_prog = || {
            let mut p = Program::new(build_arrays(n, np, ka, kb, seed));
            let stmt = build_stmt(n as i64, combine_k, &p.arrays);
            p.push(stmt).unwrap();
            p
        };
        let mut cached = Session::new(mk_prog());
        let mut fresh = Session::new(mk_prog());
        for _ in 0..3 {
            cached.run(1).unwrap();
            fresh.program_mut().clear_plan_cache(); // force re-inspection every timestep
            fresh.run(1).unwrap();
            prop_assert_eq!(
                cached.program().arrays[0].to_dense(),
                fresh.program().arrays[0].to_dense()
            );
        }
        prop_assert_eq!(cached.program().cache_misses(), 1);
        prop_assert_eq!(cached.program().cache_hits(), 2);

        // REDISTRIBUTE B to a different mapping family (same allocation
        // shared by both programs) — the cached program must re-inspect
        let new_map = mapping_of(kb + 1, n, np, seed ^ 0xbeef);
        cached.program_mut().remap(1, new_map.clone()).unwrap();
        fresh.program_mut().remap(1, new_map).unwrap();
        prop_assert_eq!(
            cached.program().arrays[1].to_dense(),
            fresh.program().arrays[1].to_dense()
        );
        for _ in 0..2 {
            cached.run(1).unwrap();
            fresh.program_mut().clear_plan_cache();
            fresh.run(1).unwrap();
            prop_assert_eq!(
                cached.program().arrays[0].to_dense(),
                fresh.program().arrays[0].to_dense()
            );
        }
        prop_assert_eq!(cached.program().cache_misses(), 2, "remap invalidates exactly once");
        prop_assert_eq!(cached.program().cache_hits(), 3);
    }
}

/// Deterministic acceptance check: an iterated 2-D stencil program replays
/// its compiled plans (hit counter), the plan's ghost volumes agree with
/// the region-algebraic ghost analysis, and numerics match the reference.
#[test]
fn iterated_stencil_amortizes_inspection() {
    let n = 16i64;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
    let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    for id in [p, u] {
        ds.distribute(id, &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"))
            .unwrap();
    }
    let mut prog = Program::new(vec![
        DistArray::new("P", ds.effective(p).unwrap(), np, 0.0),
        DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| (i[0] * 100 + i[1]) as f64),
    ]);
    let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|a| a.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(2, n - 1), span(2, n - 1)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(1, n - 2), span(2, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(3, n), span(2, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(1, n - 2)])),
            Term::new(1, Section::from_triplets(vec![span(2, n - 1), span(3, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();

    // the plan's gather schedules see exactly the SUPERB overlap areas
    let maps: Vec<Arc<EffectiveDist>> =
        prog.arrays.iter().map(|a| a.mapping().clone()).collect();
    let plan = ExecPlan::inspect(&prog.arrays, &stmt).unwrap();
    let ghosts = ghost_regions(&maps, np, &stmt);
    for (pp, g) in plan.per_proc().iter().zip(&ghosts) {
        assert_eq!(pp.ghost_elements(), g.volume, "{}", pp.proc);
    }
    assert_eq!(plan.ghost_elements() as u64, plan.analysis().remote_reads);

    prog.push(stmt.clone()).unwrap();
    let mut sess = Session::new(prog);
    let timesteps = 25u64;
    for _ in 0..timesteps {
        let expect = dense_reference(&sess.program().arrays, &stmt);
        sess.run(1).unwrap();
        assert_eq!(sess.program().arrays[0].to_dense(), expect);
    }
    assert_eq!(sess.program().cache_misses(), 1, "one inspection for the whole loop");
    assert_eq!(sess.program().cache_hits(), timesteps - 1);
}
