//! Full-pipeline integration: directive source → frontend elaboration →
//! core mappings → runtime execution → machine cost model.

use hpf::prelude::*;
use std::sync::Arc;

/// Elaborate the §8.1.1 program, pull the recognized assignment out of the
/// report, execute it on distributed storage, and price it on a mesh.
#[test]
fn staggered_program_through_all_crates() {
    let n = 32i64;
    let src = format!(
        r#"
      PROGRAM STAG
      PARAMETER (N = {n})
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ PROCESSORS G(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO G :: U,V,P
      P=U(0:N-1,:)+U(1:N,:)+V(:,0:N-1)+V(:,1:N)
      END
"#
    );
    let elab = Elaborator::new(4).run(&src).unwrap();
    let ev = &elab.report.assignments()[0];

    // assemble the runtime statement from the elaborated event
    let ids = {
        let mut v = vec![ev.lhs];
        v.extend(ev.terms.iter().map(|(_, id, _)| *id));
        v.sort_by_key(|id| id.0);
        v.dedup();
        v
    };
    let pos = |id: ArrayId| ids.iter().position(|&x| x == id).unwrap();
    let maps: Vec<Arc<EffectiveDist>> =
        ids.iter().map(|&id| elab.space.effective(id).unwrap()).collect();
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    let stmt = Assignment::new(
        pos(ev.lhs),
        ev.lhs_section.clone(),
        ev.terms
            .iter()
            .map(|(_, id, s)| Term::new(pos(*id), s.clone()))
            .collect(),
        Combine::Sum,
        &doms,
    )
    .unwrap();

    let mut arrays: Vec<DistArray<f64>> = ids
        .iter()
        .map(|&id| {
            DistArray::from_fn(elab.space.name(id), elab.space.effective(id).unwrap(), 4, |i| {
                (i[0] * 7 + i[1] * 3) as f64
            })
        })
        .collect();
    let expect = dense_reference(&arrays, &stmt);
    let analysis = SeqExecutor.execute(&mut arrays, &stmt).unwrap();
    assert_eq!(arrays[pos(ev.lhs)].to_dense(), expect);

    // machine pricing: boundary exchange only
    let machine = Machine::new(4, Topology::Mesh2D { rows: 2, cols: 2 }, CostModel::default());
    let trace = StatementTrace::new("direct blocks", analysis, &machine);
    assert!(trace.analysis.remote_fraction() < 0.1);
    assert!(trace.report.comm_time > 0.0);
    assert!(trace.report.compute_time > 0.0);
}

/// The same pipeline with the parallel executor, checking bit-equality.
#[test]
fn parallel_executor_through_pipeline() {
    let src = r#"
      PARAMETER (N = 24)
      REAL A(N,N), B(N,N)
!HPF$ PROCESSORS G(2,2)
!HPF$ DISTRIBUTE (BLOCK,CYCLIC) TO G :: A
!HPF$ DISTRIBUTE (CYCLIC,BLOCK) TO G :: B
      A = B
      END
"#;
    let elab = Elaborator::new(4).run(src).unwrap();
    let (a, b) = (elab.array("A").unwrap(), elab.array("B").unwrap());
    let build = || {
        vec![
            DistArray::from_fn("A", elab.space.effective(a).unwrap(), 4, |_| 0.0),
            DistArray::from_fn("B", elab.space.effective(b).unwrap(), 4, |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        ]
    };
    let ev = &elab.report.assignments()[0];
    let arrays0 = build();
    let doms: Vec<&IndexDomain> = arrays0.iter().map(|x| x.domain()).collect();
    let stmt = Assignment::new(
        0,
        ev.lhs_section.clone(),
        vec![Term::new(1, ev.terms[0].2.clone())],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let mut seq = build();
    let mut par = build();
    let s1 = SeqExecutor.execute(&mut seq, &stmt).unwrap();
    let s2 = ParExecutor::with_threads(4).execute(&mut par, &stmt).unwrap();
    assert_eq!(seq[0].to_dense(), par[0].to_dense());
    assert_eq!(s1.comm, s2.comm);
    // mismatched distributions → substantial traffic
    assert!(s1.remote_reads > 0);
}

/// Processor sections, EQUIVALENCE overlap and the machine topology all
/// cooperating: distribute onto the odd processors of a ring and check hop
/// accounting distinguishes near from far.
#[test]
fn processor_sections_and_topology() {
    let np = 8;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("Q", IndexDomain::of_shape(&[np]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[64]).unwrap()).unwrap();
    ds.distribute(
        a,
        &DistributeSpec::to_section(
            vec![FormatSpec::Block],
            "Q",
            Section::from_triplets(vec![triplet(1, 8, 2)]),
        ),
    )
    .unwrap();
    ds.distribute(
        b,
        &DistributeSpec::to_section(
            vec![FormatSpec::Block],
            "Q",
            Section::from_triplets(vec![triplet(2, 8, 2)]),
        ),
    )
    .unwrap();
    // A lives on odd processors, B on even — a copy must cross
    let maps = vec![ds.effective(a).unwrap(), ds.effective(b).unwrap()];
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, 64)]),
        vec![Term::new(1, Section::from_triplets(vec![span(1, 64)]))],
        Combine::Copy,
        &doms,
    )
    .unwrap();
    let analysis = comm_analysis(&maps, np, &stmt);
    assert_eq!(analysis.remote_fraction(), 1.0);
    // each message is odd ← even neighbour: 1 hop on the ring
    let ring = Machine::new(np, Topology::Ring, CostModel::default());
    for (s, d, _) in analysis.comm.iter() {
        assert_eq!(ring.hops(s, d), 1, "{s}->{d}");
    }
}

/// Inquiry + frontend: descriptors survive the whole path and report the
/// §8.2 facts.
#[test]
fn inquiry_across_pipeline() {
    let src = r#"
      REAL A(100), B(100)
!HPF$ DISTRIBUTE B(CYCLIC(5))
!HPF$ ALIGN A(I) WITH B(101-I)
      END
"#;
    let elab = Elaborator::new(5).run(src).unwrap();
    let a = elab.array("A").unwrap();
    let d = hpf::core::inquiry::describe(&elab.space, a);
    assert_eq!(
        d.role,
        hpf::core::inquiry::Role::Secondary { base: "B".into() }
    );
    assert_eq!(d.kind, Some(hpf::core::inquiry::MappingKind::Constructed));
    // reversal alignment: total elements preserved per processor
    let hist = hpf::core::inquiry::ownership_histogram(&elab.space, a).unwrap();
    assert_eq!(hist.iter().map(|&(_, n)| n).sum::<usize>(), 100);
}
