//! # hpf-core — HPF distribution & alignment without templates
//!
//! A faithful implementation of the mapping model of Chapman, Mehrotra &
//! Zima, *"High Performance Fortran Without Templates: An Alternative Model
//! for Distribution and Alignment"* (PPoPP 1993 / ICASE 93-17):
//!
//! * **Distributions** (§2.2, §4): total index mappings from array index
//!   domains to processor-target index domains — [`Distribution`], built
//!   from the per-dimension formats `BLOCK`, `GENERAL_BLOCK`, `CYCLIC(k)`
//!   and `:` ([`FormatSpec`]/[`DimFormat`]), targeting whole processor
//!   arrangements **or sections** of them.
//! * **Alignments** (§2.3, §5): index mappings between array index domains
//!   — [`AlignSpec`] directives reduced by [`reduce`] into [`AlignmentFn`]s
//!   (affine/expression axis maps, replication, collapse).
//! * **CONSTRUCT** (Definition 4): [`EffectiveDist`] composes alignments
//!   over distributions, and also represents inherited section mappings
//!   that no format list can express (§8.2).
//! * **The alignment forest** (§2.4): [`DataSpace`] enforces the two
//!   forest constraints (height ≤ 1) through `ALIGN`/`DISTRIBUTE` and the
//!   dynamic `REDISTRIBUTE`/`REALIGN` rules (§4.2, §5.2), plus the
//!   allocatable lifecycle (§6).
//! * **Procedure boundaries** (§7): [`CallFrame`] implements the four
//!   dummy-argument mapping modes (explicit, inherit, inheritance matching,
//!   implicit) with restore-on-exit and remap-volume accounting.
//! * **Inquiry** (§8.2): the [`inquiry`] module interrogates any mapping,
//!   format-expressible or not.
//!
//! ```
//! use hpf_core::{DataSpace, DistributeSpec, FormatSpec, AlignSpec};
//! use hpf_index::{IndexDomain, Idx};
//!
//! // 4 processors; B(1:16) CYCLIC; A(1:16) aligned identically to B
//! let mut ds = DataSpace::new(4);
//! let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
//! let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
//! ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
//! ds.align(a, b, &AlignSpec::identity(1)).unwrap();
//! // the collocation guarantee of §2.3:
//! assert_eq!(
//!     ds.owners(a, &Idx::d1(7)).unwrap(),
//!     ds.owners(b, &Idx::d1(7)).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
mod dist;
mod error;
mod forest;
pub mod inquiry;
mod mapping;
mod procedures;
mod procset;

pub use align::expr::AlignExpr;
pub use align::func::{AlignmentFn, AxisMap};
pub use align::reduce::reduce;
pub use align::spec::{AligneeAxis, AlignSpec, BaseSubscript};
pub use dist::dim::DimDist;
pub use dist::dist::{DistributeSpec, Distribution, TargetSpec};
pub use dist::format::{DimFormat, FormatSpec, GeneralBlock, IndirectMap};
pub use error::HpfError;
pub use forest::{ArrayId, DataSpace, MappingState, SpecMapping, AP_NAME};
pub use mapping::{EffectiveDist, MappingId};
pub use procedures::{
    Actual, CallFrame, CallReport, Dummy, DummySpec, ProcedureDef, RemapEvent, RemapPhase,
};
pub use procset::{ProcSet, ProcSetIter};
