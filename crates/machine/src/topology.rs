use hpf_procs::ProcId;

/// Interconnect topologies of 1993-era distributed-memory machines.
///
/// Abstract processors are numbered `1..=np` (the paper's AP); each
/// topology defines how many hops a message between two processors takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// All pairs one hop apart (an idealized crossbar; hop weighting off).
    FullCrossbar,
    /// A linear processor array: hop = |a − b|.
    Linear,
    /// A ring: hop = min(|a−b|, np − |a−b|).
    Ring,
    /// A 2-D mesh of `rows × cols` (column-major AP numbering, matching the
    /// §3 storage association); hop = Manhattan distance.
    Mesh2D {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
    },
    /// A hypercube (iPSC-style): hop = popcount((a−1) xor (b−1)).
    Hypercube,
}

impl Topology {
    /// Hop count between two abstract processors (0 for a == b).
    pub fn hops(&self, np: usize, a: ProcId, b: ProcId) -> u32 {
        if a == b {
            return 0;
        }
        let (x, y) = (a.zero_based(), b.zero_based());
        match self {
            Topology::FullCrossbar => 1,
            Topology::Linear => (x as i64 - y as i64).unsigned_abs() as u32,
            Topology::Ring => {
                let d = (x as i64 - y as i64).unsigned_abs() as usize;
                d.min(np - d) as u32
            }
            Topology::Mesh2D { rows, .. } => {
                let (r1, c1) = (x % rows, x / rows);
                let (r2, c2) = (y % rows, y / rows);
                ((r1 as i64 - r2 as i64).unsigned_abs()
                    + (c1 as i64 - c2 as i64).unsigned_abs()) as u32
            }
            Topology::Hypercube => (x ^ y).count_ones(),
        }
    }

    /// The largest hop count in the machine (network diameter).
    pub fn diameter(&self, np: usize) -> u32 {
        match self {
            Topology::FullCrossbar => 1,
            Topology::Linear => np as u32 - 1,
            Topology::Ring => (np / 2) as u32,
            Topology::Mesh2D { rows, cols } => (rows - 1 + (cols - 1)) as u32,
            Topology::Hypercube => usize::BITS - (np - 1).leading_zeros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    #[test]
    fn linear_hops() {
        let t = Topology::Linear;
        assert_eq!(t.hops(8, p(1), p(1)), 0);
        assert_eq!(t.hops(8, p(1), p(8)), 7);
        assert_eq!(t.hops(8, p(5), p(3)), 2);
        assert_eq!(t.diameter(8), 7);
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::Ring;
        assert_eq!(t.hops(8, p(1), p(8)), 1);
        assert_eq!(t.hops(8, p(1), p(5)), 4);
        assert_eq!(t.diameter(8), 4);
    }

    #[test]
    fn mesh_manhattan() {
        // 4×4 mesh, column-major: P1=(0,0), P2=(1,0), P5=(0,1)
        let t = Topology::Mesh2D { rows: 4, cols: 4 };
        assert_eq!(t.hops(16, p(1), p(2)), 1);
        assert_eq!(t.hops(16, p(1), p(5)), 1);
        assert_eq!(t.hops(16, p(1), p(16)), 6);
        assert_eq!(t.diameter(16), 6);
    }

    #[test]
    fn hypercube_popcount() {
        let t = Topology::Hypercube;
        assert_eq!(t.hops(8, p(1), p(2)), 1); // 000 vs 001
        assert_eq!(t.hops(8, p(1), p(8)), 3); // 000 vs 111
        assert_eq!(t.hops(8, p(4), p(7)), 2); // 011 vs 110
        assert_eq!(t.diameter(8), 3);
    }

    #[test]
    fn crossbar_uniform() {
        let t = Topology::FullCrossbar;
        assert_eq!(t.hops(64, p(3), p(60)), 1);
        assert_eq!(t.diameter(64), 1);
    }
}
