//! B13 — warm replay throughput of the run-length compressed schedules.
//!
//! Measures elements/second of a warm (cached-plan, preallocated
//! workspace, zero-allocation) replay for three statement shapes — 1-D
//! shift, 2-D 5-point stencil, and a block↔cyclic redistribution copy
//! ("cyclic transpose") — each under BLOCK and CYCLIC(1) distributions, to
//! show the coalescing spread: block mappings compress to a handful of
//! `copy_from_slice` runs per processor, while CYCLIC(1) degenerates to
//! length-1 runs. The `elementwise` variants replay the *same plans*
//! through the expanded per-element path
//! ([`ExecPlan::execute_seq_uncompressed`]) — the pre-compression
//! baseline the acceptance criterion compares against.
//!
//! [`ExecPlan::execute_seq_uncompressed`]: hpf_runtime::ExecPlan::execute_seq_uncompressed

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hpf_bench::replay::{
    arrays_1d, arrays_2d, cyclic_transpose, replay_elements, shift_1d, stencil_2d,
};
use hpf_core::FormatSpec;
use hpf_runtime::{ExecPlan, PlanWorkspace};
use std::time::Instant;

/// Headline numbers for the CI log: warm compressed vs uncompressed
/// replay of the block-distributed 2-D stencil (the acceptance-criterion
/// comparison), plus the per-format compression ratios.
fn print_summary() {
    let smoke = std::env::args().any(|a| a == "--test")
        || std::env::var_os("CRITERION_SMOKE").is_some();
    let iters = if smoke { 3 } else { 300 };
    let n = 192i64;
    let mut arrays = arrays_2d(n, 2, &FormatSpec::Block);
    let stmt = stencil_2d(n, &arrays);
    let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
    let mut ws = PlanWorkspace::for_plan(&plan);
    let elems = replay_elements(&plan);

    plan.execute_seq_with(&mut arrays, &mut ws); // warm
    let t = Instant::now();
    for _ in 0..iters {
        plan.execute_seq_with(&mut arrays, &mut ws);
    }
    let compressed = t.elapsed();

    plan.execute_seq_uncompressed(&mut arrays); // warm
    let t = Instant::now();
    for _ in 0..iters {
        plan.execute_seq_uncompressed(&mut arrays);
    }
    let elementwise = t.elapsed();

    let rate = |d: std::time::Duration| {
        (elems as f64 * iters as f64) / d.as_secs_f64() / 1.0e6
    };
    println!(
        "b13 summary: 2-D block stencil n={n} — compressed {:.0} Melem/s, \
         elementwise {:.0} Melem/s, speedup {:.1}x, \
         schedule {} runs for {} element entries ({:.0} elems/run, {} B vs {} B)",
        rate(compressed),
        rate(elementwise),
        elementwise.as_secs_f64() / compressed.as_secs_f64(),
        plan.schedule_runs(),
        plan.schedule_elements(),
        plan.compression_ratio(),
        plan.schedule_bytes(),
        plan.uncompressed_bytes(),
    );
    for fmt in [FormatSpec::Block, FormatSpec::Cyclic(1)] {
        let arrays = arrays_2d(n, 2, &fmt);
        let plan = ExecPlan::inspect(&arrays, &stencil_2d(n, &arrays)).unwrap();
        println!(
            "b13 summary: stencil {fmt:?} compression ratio {:.1} elems/run",
            plan.compression_ratio()
        );
        let n1 = 65_536i64;
        let a1 = arrays_1d(n1, 8, &fmt);
        let p1 = ExecPlan::inspect(&a1, &shift_1d(n1, &a1)).unwrap();
        println!(
            "b13 summary: shift_1d {fmt:?} compression ratio {:.1} elems/run",
            p1.compression_ratio()
        );
    }
    let (arrays, stmt) = cyclic_transpose(65_536, 8);
    let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
    println!(
        "b13 summary: block←cyclic(1) copy compression ratio {:.1} elems/run",
        plan.compression_ratio()
    );
}

fn bench(c: &mut Criterion) {
    print_summary();
    let mut g = c.benchmark_group("replay_throughput");
    g.sample_size(20);

    // 1-D shift and 2-D stencil, block vs cyclic(1): the coalescing spread
    for (fmt, tag) in [(FormatSpec::Block, "block"), (FormatSpec::Cyclic(1), "cyclic1")] {
        let n1 = 65_536i64;
        let mut a1 = arrays_1d(n1, 8, &fmt);
        let s1 = shift_1d(n1, &a1);
        let p1 = ExecPlan::inspect(&a1, &s1).unwrap();
        let mut w1 = PlanWorkspace::for_plan(&p1);
        g.bench_function(BenchmarkId::new("shift_1d", tag), |b| {
            b.iter(|| {
                p1.execute_seq_with(&mut a1, &mut w1);
                black_box(());
            })
        });

        let n2 = 192i64;
        let mut a2 = arrays_2d(n2, 2, &fmt);
        let s2 = stencil_2d(n2, &a2);
        let p2 = ExecPlan::inspect(&a2, &s2).unwrap();
        let mut w2 = PlanWorkspace::for_plan(&p2);
        g.bench_function(BenchmarkId::new("stencil_2d", tag), |b| {
            b.iter(|| {
                p2.execute_seq_with(&mut a2, &mut w2);
                black_box(());
            })
        });
        // the uncompressed per-element baseline on the same plans
        g.bench_function(BenchmarkId::new("stencil_2d_elementwise", tag), |b| {
            b.iter(|| p2.execute_seq_uncompressed(&mut a2))
        });
    }

    // block ← cyclic(1) redistribution copy: all-to-all, length-1 runs
    let n = 65_536i64;
    let (mut arrays, stmt) = cyclic_transpose(n, 8);
    let plan = ExecPlan::inspect(&arrays, &stmt).unwrap();
    let mut ws = PlanWorkspace::for_plan(&plan);
    g.bench_function(BenchmarkId::new("cyclic_transpose", "compressed"), |b| {
        b.iter(|| {
            plan.execute_seq_with(&mut arrays, &mut ws);
            black_box(());
        })
    });
    g.bench_function(BenchmarkId::new("cyclic_transpose", "elementwise"), |b| {
        b.iter(|| plan.execute_seq_uncompressed(&mut arrays))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
