//! E3 — procedure-boundary cost (§7, §8.1.2): entering/leaving a call
//! frame under inheritance (free) vs explicit redistribution (remap both
//! ways), for the paper's A(1000) CYCLIC(3) & A(2:996:2) scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpf_core::{
    Actual, CallFrame, DataSpace, DistributeSpec, Dummy, DummySpec, FormatSpec, ProcedureDef,
};
use hpf_index::{triplet, IndexDomain, Section};

fn bench(c: &mut Criterion) {
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let sec = Section::from_triplets(vec![triplet(2, 996, 2)]);

    let mut g = c.benchmark_group("procedure_boundary");
    let inherit = ProcedureDef::new("S", vec![Dummy::new("X", DummySpec::Inherit)]);
    g.bench_function("inherit_enter_exit", |b| {
        b.iter(|| {
            let f = CallFrame::enter(&ds, &inherit, &[Actual::section(a, sec.clone())])
                .unwrap();
            black_box(f.exit().unwrap())
        })
    });
    let explicit = ProcedureDef::new(
        "S",
        vec![Dummy::new(
            "X",
            DummySpec::Explicit(DistributeSpec::new(vec![FormatSpec::Block])),
        )],
    );
    g.bench_function("explicit_remap_enter_exit", |b| {
        b.iter(|| {
            let f = CallFrame::enter(&ds, &explicit, &[Actual::section(a, sec.clone())])
                .unwrap();
            black_box(f.exit().unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
