//! Abstract syntax of the directive sub-language.

use crate::token::Span;

/// An integer specification/alignment expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Named parameter or align-dummy.
    Name(String),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a − b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b` (integer division).
    Div(Box<Expr>, Box<Expr>),
    /// `−a`.
    Neg(Box<Expr>),
    /// `MAX(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// `MIN(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `LBOUND(array, dim)` — folded to a constant at elaboration.
    LBound(String, Box<Expr>),
    /// `UBOUND(array, dim)`.
    UBound(String, Box<Expr>),
    /// `SIZE(array, dim)`.
    Size(String, Box<Expr>),
}

/// One dimension of a declaration or allocation shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimDecl {
    /// `expr` (lower bound 1) or `lo:hi`.
    Explicit {
        /// Lower bound (default 1).
        lower: Option<Expr>,
        /// Upper bound.
        upper: Expr,
    },
    /// `:` — deferred shape (allocatable) or assumed shape (dummy).
    Deferred,
}

/// A declared entity: name plus optional per-entity shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Entity name.
    pub name: String,
    /// Shape given directly on the entity (overrides `DIMENSION`).
    pub dims: Option<Vec<DimDecl>>,
}

/// One dimension of an array section reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionDimAst {
    /// A scalar subscript.
    Scalar(Expr),
    /// `l : u : s` with optional parts (`:` is all-None).
    Triplet {
        /// Lower (defaults to the array's lower bound).
        lower: Option<Expr>,
        /// Upper (defaults to the array's upper bound).
        upper: Option<Expr>,
        /// Stride (defaults to 1).
        stride: Option<Expr>,
    },
}

/// An array reference `NAME` or `NAME(section)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array name.
    pub name: String,
    /// Section, if subscripts were given.
    pub section: Option<Vec<SectionDimAst>>,
}

/// A distribution format as parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatAst {
    /// `BLOCK`.
    Block,
    /// `BLOCK_BALANCED` (Vienna extension).
    BlockBalanced,
    /// `GENERAL_BLOCK(e1, e2, ...)`.
    GeneralBlock(Vec<Expr>),
    /// `CYCLIC` / `CYCLIC(k)`.
    Cyclic(Option<Expr>),
    /// `INDIRECT(e1, ...)` — extension: explicit owner table (§1's
    /// user-defined distribution functions).
    Indirect(Vec<Expr>),
    /// `:`.
    Colon,
}

/// The `TO` clause of a distribution directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetAst {
    /// Processor arrangement name.
    pub name: String,
    /// Optional section of it.
    pub section: Option<Vec<SectionDimAst>>,
}

/// How a `DISTRIBUTE` directive relates to inheritance (§7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InheritAst {
    /// Plain `DISTRIBUTE A (formats)`.
    None,
    /// `DISTRIBUTE A *` — inherit.
    Inherit,
    /// `DISTRIBUTE A * (formats)` — inheritance matching.
    InheritMatching,
}

/// One alignee axis in an `ALIGN` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxisAst {
    /// `:`
    Colon,
    /// `*`
    Star,
    /// A named align-dummy.
    Dummy(String),
}

/// One base subscript in an `ALIGN` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseSubAst {
    /// An expression (dummyless or with one align-dummy).
    Expr(Expr),
    /// A subscript triplet.
    Triplet {
        /// Lower (defaults to the base's lower bound).
        lower: Option<Expr>,
        /// Upper (defaults to the base's upper bound).
        upper: Option<Expr>,
        /// Stride (defaults to 1).
        stride: Option<Expr>,
    },
    /// `*` — replication.
    Star,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `PROGRAM name`.
    Program(String),
    /// `END` / `END PROGRAM` / `END SUBROUTINE`.
    End,
    /// `PARAMETER (N = 64, ...)`.
    Parameter(Vec<(String, Expr)>),
    /// A type declaration.
    Declaration {
        /// Type keyword as written (`REAL`, `INTEGER`, ...) — mapping
        /// semantics do not depend on it.
        ty: String,
        /// `ALLOCATABLE` attribute present.
        allocatable: bool,
        /// `DIMENSION(...)` attribute shape.
        dimension: Option<Vec<DimDecl>>,
        /// Declared entities.
        entities: Vec<Entity>,
    },
    /// `!HPF$ PROCESSORS P(32), Q(8)` (no shape = scalar arrangement).
    Processors(Vec<Entity>),
    /// `!HPF$ DISTRIBUTE ...` / `!HPF$ REDISTRIBUTE ...`.
    Distribute {
        /// True for `REDISTRIBUTE`.
        redistribute: bool,
        /// Distributee names.
        distributees: Vec<String>,
        /// Formats (empty for bare `DISTRIBUTE A *`).
        formats: Vec<FormatAst>,
        /// `TO` clause.
        target: Option<TargetAst>,
        /// Inheritance marker (§7 dummy arguments).
        inherit: InheritAst,
    },
    /// `!HPF$ ALIGN ...` / `!HPF$ REALIGN ...`.
    Align {
        /// True for `REALIGN`.
        realign: bool,
        /// Alignee name.
        alignee: String,
        /// Alignee axes.
        axes: Vec<AxisAst>,
        /// Base name.
        base: String,
        /// Base subscripts.
        subscripts: Vec<BaseSubAst>,
    },
    /// `!HPF$ DYNAMIC A, B`.
    Dynamic(Vec<String>),
    /// `ALLOCATE(A(shape), ...)`.
    Allocate(Vec<(String, Vec<DimDecl>)>),
    /// `DEALLOCATE(A, ...)`.
    Deallocate(Vec<String>),
    /// `READ unit, names...` — values come from the elaborator's inputs.
    Read(Vec<String>),
    /// `CALL SUB(args...)`.
    Call {
        /// Subroutine name.
        name: String,
        /// Actual arguments.
        args: Vec<ArrayRef>,
    },
    /// `SUBROUTINE SUB(X, Y)` — opens a subroutine unit.
    Subroutine {
        /// Name.
        name: String,
        /// Dummy argument names.
        dummies: Vec<String>,
    },
    /// An array assignment `LHS = T1 + T2 + ...` (element-wise sum).
    ArrayAssign {
        /// Left-hand side reference.
        lhs: ArrayRef,
        /// Summed terms.
        terms: Vec<ArrayRef>,
    },
    /// A scalar-valued fill `LHS = expr` (e.g. `A = 0`, `A(1:N) = 2*N`):
    /// every selected element takes the expression's value.
    ScalarAssign {
        /// Left-hand side reference.
        lhs: ArrayRef,
        /// The (dummyless) value expression.
        value: Expr,
    },
    /// `FORALL (I = l:u[:s], ...) LHS(subs) = rhs` — an element-wise
    /// assignment over the cartesian product of the index ranges.
    Forall {
        /// The forall index variables with their ranges.
        indices: Vec<ForallIndex>,
        /// Left-hand side reference (subscripts may use the indices).
        lhs: ArrayRef,
        /// Right-hand side.
        rhs: ForallRhs,
    },
}

/// One `I = lower : upper [: stride]` control of a `FORALL` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForallIndex {
    /// Index variable name.
    pub name: String,
    /// Lower bound.
    pub lower: Expr,
    /// Upper bound.
    pub upper: Expr,
    /// Stride (defaults to 1).
    pub stride: Option<Expr>,
}

/// The right-hand side of a `FORALL` assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForallRhs {
    /// `T1(subs) + T2(subs) + ...` — array references whose subscripts
    /// are affine in the forall indices (lowers to a section assignment).
    Refs(Vec<ArrayRef>),
    /// A scalar expression over the forall indices (an evaluated fill).
    Scalar(Expr),
}

/// A parsed statement with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedStmt {
    /// The statement.
    pub stmt: Stmt,
    /// Source line (1-based) — shorthand for `span.line`.
    pub line: usize,
    /// Span of the statement's first token.
    pub span: Span,
}

/// A program unit: the main program or one subroutine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Unit name.
    pub name: String,
    /// Dummy names (empty for the main program).
    pub dummies: Vec<String>,
    /// Statements in order.
    pub stmts: Vec<SpannedStmt>,
}

/// A whole parsed source file: one main unit plus any subroutines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// The main program unit.
    pub main: Unit,
    /// Subroutines by declaration order.
    pub subroutines: Vec<Unit>,
}
