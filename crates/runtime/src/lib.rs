//! # hpf-runtime — distributed arrays and owner-computes execution
//!
//! The substrate that turns the paper's mapping model into running code:
//! global-index-space array assignments (the programming style HPF's
//! directives support — "these languages allow a programming style in which
//! global data references are used", §1) executed over distributed storage
//! with the **owner-computes rule**, exactly as a 1993 HPF compiler would
//! lower them:
//!
//! * [`DistArray`] — an array whose elements live in per-processor local
//!   buffers according to an `hpf-core` [`hpf_core::EffectiveDist`];
//! * [`Assignment`] — `LHS(section) = f(RHS1(section1), ...)`, the §8.1.1
//!   staggered-grid statement being the canonical instance;
//! * [`comm_analysis`] — *exact* communication sets computed with the
//!   regular-section algebra (no per-element enumeration for affine
//!   mappings);
//! * [`ExecPlan`] / [`PlanCache`] — the inspector–executor split: a
//!   statement is lowered **once** into per-processor *run-length
//!   compressed* store/gather schedules ([`StoreRun`]/[`CopyRun`] block
//!   transfers instead of per-element entries), then replayed every
//!   timestep from a cache keyed by statement shape and mapping identity;
//!   each cached plan carries a preallocated [`PlanWorkspace`], making
//!   warm replays zero-allocation;
//! * [`ExchangeBackend`] — the transport-neutral boundary between
//!   compiled schedules and the wire: each plan's remote runs are
//!   regrouped at inspect time into per-(sender, receiver)
//!   [`MessagePlan`] schedules, and a backend decides how those messages
//!   move — [`SharedMemBackend`] (direct copies staged through persistent
//!   buffers, zero-allocation warm) or [`ChannelsBackend`] (a true
//!   message-passing SPMD executor: one long-lived worker per simulated
//!   processor owning only its local shards, packed messages over
//!   channels, measured wire bytes cross-checked against the frozen
//!   analysis);
//! * [`SeqExecutor`] / [`ParExecutor`] — sequential and
//!   crossbeam-parallel owner-computes execution, thin drivers over the
//!   same compiled plans, verified element-for-element against a dense
//!   reference;
//! * [`remap_analysis`] — the exact traffic of a `REDISTRIBUTE`/`REALIGN`
//!   event (§4.2/§5.2) and of §7 copy-in/copy-out;
//! * [`ghost_regions`] — SUPERB-style overlap areas per processor and
//!   operand (the paper's reference \[11\]);
//! * [`ProgramPlan`] — program-level plan fusion: the statements of a
//!   timestep scheduled into a superstep DAG (level scheduling over
//!   RAW/WAW hazards — Fortran 90 copy-in/copy-out semantics make WAR
//!   safe inside a superstep), their [`MessagePlan`]s coalesced into one
//!   aggregated schedule per (sender, receiver, superstep), and every
//!   coalesced segment bound to a dirty-tracking unit so ghost data whose
//!   source shard no statement wrote is never re-packed or re-sent on
//!   warm timesteps;
//! * [`Program`] — multi-statement execution with cumulative statistics,
//!   routing whole timesteps through the fused plan (with
//!   [`FusionStats`] counting supersteps, coalesced messages, and ghost
//!   bytes avoided);
//! * [`verify_plan`] — static schedule verification: prove (or refute
//!   with precise diagnostics) write coverage, bounds, race freedom,
//!   deadlock freedom, and analysis conservation of a compiled plan
//!   before it runs. [`PlanCache`] runs it on every insertion in debug
//!   builds and behind the `verify` feature in release;
//! * [`ckpt`] / [`FaultPlan`] — fault-tolerant execution: exchange
//!   faults surface as typed [`ExchangeError`]s instead of panics,
//!   deterministic fault injection (worker kills, dropped/corrupted/
//!   delayed messages, pool poisoning) exercises the failure paths,
//!   and distribution-aware checkpoints restore across *different*
//!   mappings and processor counts ([`run_trajectory`] ties it into a
//!   restore-and-replay recovery loop with bounded retries and
//!   graceful degradation to `SharedMem`);
//! * [`Session`] — the unified execution-session API: one builder for
//!   backend, thread bound, fusion, checkpoint cadence, fault recovery,
//!   and adaptive redistribution, replacing the legacy `run`/`run_on`/
//!   `run_parallel`/`run_unfused`/`run_trajectory` entry points;
//! * [`adapt`] — self-adaptive redistribution: a controller that watches
//!   the measured per-rank load of warm replay ([`Program::stats`]
//!   exposes the per-processor breakdown), prices candidate remappings
//!   (`GENERAL_BLOCK` fitted to observed load, re-blocking, grid
//!   reshapes) against the machine model with an amortization horizon,
//!   and performs live [`Program::remap`]s under hysteresis + cooldown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
mod array;
mod assign;
mod backend;
mod cache;
pub mod ckpt;
mod commsets;
mod exec;
mod fault;
mod fuse;
mod ghost;
mod par;
mod plan;
mod program;
mod remap;
mod session;
mod spmd;
mod trace;
pub mod verify;
mod workspace;

pub use array::DistArray;
pub use assign::{Assignment, Combine, Term};
pub use backend::{
    AnalysisVerdict, Backend, ExchangeBackend, ExchangeError, MessagePlan, MsgSegment,
    PairSchedule, SharedMemBackend,
};
pub use adapt::{AdaptController, AdaptEvent, AdaptPolicy, AdaptReport};
pub use cache::{FusedTarget, PlanCache};
#[allow(deprecated)]
pub use ckpt::run_trajectory;
pub use ckpt::{
    latest_checkpoint, restore_checkpoint, save_checkpoint, CheckpointSpec, CkptError,
    CkptReport, RecoveryPolicy, RestoreReport, TrajectoryReport,
};
pub use fault::{Fault, FaultPlan};
pub use commsets::{comm_analysis, CommAnalysis};
pub use exec::{apply_dense, dense_reference, SeqExecutor};
pub use fuse::{FusedPair, FusedSegment, FusionStats, ProgramPlan, Superstep, UnitMeta};
pub use ghost::{ghost_regions, GhostReport};
pub use par::ParExecutor;
pub use plan::{CopyRun, ExecPlan, GatherRef, ProcPlan, StoreRun, TermSchedule};
pub use program::{Program, ProgramStats};
pub use remap::{remap_analysis, RemapAnalysis};
pub use session::{Session, SessionReport};
pub use spmd::ChannelsBackend;
pub use trace::StatementTrace;
pub use verify::{
    verify_plan, verify_program_plan, Diagnostic, DiagnosticKind, FusionReport, Property,
    StatementReport, VerifyReport, VerifyStats,
};
pub use workspace::{FusedWorkspace, PlanWorkspace};
