use crate::align::expr::AlignExpr;
use crate::HpfError;
use hpf_index::{Idx, IndexDomain, Rect, Region, Triplet};
use std::fmt;

/// How one base dimension's subscript depends on the alignee index, after
/// the §5.1 reduction: the `y_j` of the alignment base set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxisMap {
    /// A dummyless expression, evaluated and clamped at reduction time.
    Const(i64),
    /// `a·J + c` where `J` is alignee dimension `dim` (0-based).
    Affine {
        /// Alignee dimension supplying the dummy.
        dim: usize,
        /// Coefficient (nonzero).
        a: i64,
        /// Offset.
        c: i64,
    },
    /// A general single-dummy expression (contains `MAX`/`MIN`).
    Expr {
        /// Alignee dimension supplying the dummy.
        dim: usize,
        /// The expression, with [`AlignExpr::Dummy`] ids rewritten to `dim`.
        expr: AlignExpr,
    },
    /// `*` — replication over the whole base dimension.
    Replicated,
}

/// The alignment function `α : I^A → P(I^B) − {∅}` of Definition 3, in the
/// reduced normal form §5.1 constructs: one [`AxisMap`] per base dimension,
/// with every alignee dimension feeding at most one base dimension (no
/// skew) and unused alignee dimensions collapsed.
///
/// Evaluation clamps each base subscript into the base dimension's bounds
/// (`ŷ = MIN(U_j, y)`, §5.1 — extended symmetrically to the lower bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentFn {
    alignee: IndexDomain,
    base: IndexDomain,
    axes: Vec<AxisMap>,
}

impl AlignmentFn {
    /// Assemble directly from parts (the reducer is the usual entry point).
    pub fn from_parts(
        alignee: IndexDomain,
        base: IndexDomain,
        axes: Vec<AxisMap>,
    ) -> Result<Self, HpfError> {
        if axes.len() != base.rank() {
            return Err(HpfError::BaseRank {
                array: "<base>".to_string(),
                subscripts: axes.len(),
                rank: base.rank(),
            });
        }
        let mut used = vec![false; alignee.rank()];
        for ax in &axes {
            if let AxisMap::Affine { dim, a, .. } = ax {
                if *a == 0 {
                    return Err(HpfError::BadAlignExpr(
                        "affine axis with zero coefficient".into(),
                    ));
                }
                if used[*dim] {
                    return Err(HpfError::DummyReused(*dim));
                }
                used[*dim] = true;
            } else if let AxisMap::Expr { dim, .. } = ax {
                if used[*dim] {
                    return Err(HpfError::DummyReused(*dim));
                }
                used[*dim] = true;
            }
        }
        Ok(AlignmentFn { alignee, base, axes })
    }

    /// The alignee's index domain (`I^A`).
    pub fn alignee(&self) -> &IndexDomain {
        &self.alignee
    }

    /// The base's index domain (`I^B`).
    pub fn base(&self) -> &IndexDomain {
        &self.base
    }

    /// The per-base-dimension maps.
    pub fn axes(&self) -> &[AxisMap] {
        &self.axes
    }

    /// Alignee dimensions that do not occur in any base subscript — the
    /// collapsed dimensions ("positions along that axis make no difference",
    /// §5).
    pub fn collapsed_dims(&self) -> Vec<usize> {
        let mut used = vec![false; self.alignee.rank()];
        for ax in &self.axes {
            match ax {
                AxisMap::Affine { dim, .. } | AxisMap::Expr { dim, .. } => used[*dim] = true,
                _ => {}
            }
        }
        (0..self.alignee.rank()).filter(|&d| !used[d]).collect()
    }

    /// True iff any base dimension is replicated.
    pub fn is_replicating(&self) -> bool {
        self.axes.iter().any(|a| matches!(a, AxisMap::Replicated))
    }

    #[inline]
    fn clamp(&self, j: usize, y: i64) -> i64 {
        y.clamp(self.base.lower(j), self.base.upper(j))
    }

    /// The image `α(i)` as a rect over the base domain: singleton triplets
    /// for constant/affine/expression axes, the full base triplet for
    /// replicated axes. Never empty for in-domain `i` (Definition 1's
    /// non-empty-image requirement, guaranteed by clamping).
    pub fn image_rect(&self, i: &Idx) -> Rect {
        let mut dims = Vec::with_capacity(self.axes.len());
        for (j, ax) in self.axes.iter().enumerate() {
            let t = match ax {
                AxisMap::Const(c) => Triplet::scalar(self.clamp(j, *c)),
                AxisMap::Affine { dim, a, c } => {
                    Triplet::scalar(self.clamp(j, a * i[*dim] + c))
                }
                AxisMap::Expr { dim, expr } => {
                    let y = expr.eval(*dim, i[*dim]).expect("validated at reduction");
                    Triplet::scalar(self.clamp(j, y))
                }
                AxisMap::Replicated => *self.base.dim(j),
            };
            dims.push(t);
        }
        Rect::new(dims)
    }

    /// First element of the image (the unique element when the alignment
    /// does not replicate).
    pub fn image_point(&self, i: &Idx) -> Idx {
        let r = self.image_rect(i);
        let mut out = Idx::SCALAR;
        for t in r.dims() {
            out.push(t.first().expect("image is never empty"));
        }
        out
    }

    /// The preimage `{ i ∈ I^A | α(i) ∩ r ≠ ∅ }` as a region over the
    /// alignee domain. Exact, including clamp saturation at either end.
    pub fn preimage_region(&self, r: &Rect) -> Region {
        let rank = self.alignee.rank();
        // start unconstrained: every alignee dim ranges over its triplet
        let mut per_dim: Vec<Vec<Triplet>> = self
            .alignee
            .dims()
            .iter()
            .map(|t| vec![*t])
            .collect();
        for (j, ax) in self.axes.iter().enumerate() {
            let t = r.dim(j).intersect(self.base.dim(j));
            match ax {
                AxisMap::Const(c) => {
                    if !t.contains(self.clamp(j, *c)) {
                        return Region::empty(rank);
                    }
                }
                AxisMap::Replicated => {
                    if t.is_empty() {
                        return Region::empty(rank);
                    }
                }
                AxisMap::Affine { dim, a, c } => {
                    let pieces = self.affine_preimage_pieces(j, *dim, *a, *c, &t);
                    if pieces.is_empty() {
                        return Region::empty(rank);
                    }
                    per_dim[*dim] = pieces;
                }
                AxisMap::Expr { dim, expr } => {
                    let dt = self.alignee.dim(*dim);
                    let mut vals = Vec::new();
                    for v in dt.iter() {
                        let y = expr.eval(*dim, v).expect("validated at reduction");
                        if t.contains(self.clamp(j, y)) {
                            vals.push(v);
                        }
                    }
                    let pieces = compress_to_triplets(&vals);
                    if pieces.is_empty() {
                        return Region::empty(rank);
                    }
                    per_dim[*dim] = pieces;
                }
            }
        }
        // cartesian product of the per-dimension piece choices
        let mut region = Region::empty(rank);
        let mut choice = vec![0usize; rank];
        if rank == 0 {
            region.push(Rect::new(Vec::new()));
            return region;
        }
        loop {
            region.push(Rect::new(
                (0..rank).map(|d| per_dim[d][choice[d]]).collect::<Vec<_>>(),
            ));
            let mut d = 0;
            loop {
                if d == rank {
                    return region;
                }
                choice[d] += 1;
                if choice[d] < per_dim[d].len() {
                    break;
                }
                choice[d] = 0;
                d += 1;
            }
        }
    }

    /// Solve `clamp(a·J + c) ∈ t` for `J` in alignee dimension `dim`:
    /// interior solutions plus saturated ranges at either clamp boundary.
    fn affine_preimage_pieces(
        &self,
        j: usize,
        dim: usize,
        a: i64,
        c: i64,
        t: &Triplet,
    ) -> Vec<Triplet> {
        let dom = *self.alignee.dim(dim);
        let (lj, uj) = (self.base.lower(j), self.base.upper(j));
        let mut pieces: Vec<Triplet> = Vec::new();
        let mut add = |tr: Triplet| {
            if !tr.is_empty() {
                pieces.push(tr);
            }
        };
        // interior: a·J + c ∈ t (already within [lj, uj] by intersection)
        let interior = t.intersect(&Triplet::unit(lj, uj));
        if !interior.is_empty() {
            // J ≡ (v − c)/a for v ∈ interior with a | (v − c):
            // intersect with the congruence class {c mod |a|}
            let aa = a.abs();
            let cong = {
                let lo = interior.min().unwrap();
                // smallest value ≥ lo congruent to c (mod |a|)
                let delta = (lo - c).rem_euclid(aa);
                let start = lo + ((aa - delta) % aa);
                Triplet::new(start, interior.max().unwrap(), aa).unwrap_or(Triplet::empty())
            };
            let hits = interior.intersect(&cong);
            if !hits.is_empty() {
                let first = (hits.min().unwrap() - c) / a;
                let last = (hits.max().unwrap() - c) / a;
                let stride = (hits.stride() / a).abs().max(1);
                let (lo, hi) = if first <= last { (first, last) } else { (last, first) };
                add(Triplet::new(lo, hi, stride).unwrap().intersect(&dom));
            }
        }
        // lower saturation: clamp hit lj — any J with a·J + c ≤ lj
        if t.contains(lj) {
            if a > 0 {
                let jmax = div_floor(lj - c, a);
                add(dom.intersect(&Triplet::unit(i64::MIN / 4, jmax)));
            } else {
                let jmin = div_ceil(lj - c, a);
                add(dom.intersect(&Triplet::unit(jmin, i64::MAX / 4)));
            }
        }
        // upper saturation: clamp hit uj — any J with a·J + c ≥ uj
        if t.contains(uj) {
            if a > 0 {
                let jmin = div_ceil(uj - c, a);
                add(dom.intersect(&Triplet::unit(jmin, i64::MAX / 4)));
            } else {
                let jmax = div_floor(uj - c, a);
                add(dom.intersect(&Triplet::unit(i64::MIN / 4, jmax)));
            }
        }
        merge_triplet_pieces(pieces)
    }
}

impl fmt::Display for AlignmentFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α: {} → {} [", self.alignee, self.base)?;
        for (j, ax) in self.axes.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            match ax {
                AxisMap::Const(c) => write!(f, "{c}")?,
                AxisMap::Affine { dim, a, c } => write!(f, "{a}·J{dim}{c:+}")?,
                AxisMap::Expr { dim, expr } => write!(f, "{expr}[J{dim}]")?,
                AxisMap::Replicated => write!(f, "*")?,
            }
        }
        write!(f, "]")
    }
}

/// Floor division (rounds toward −∞).
fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division (rounds toward +∞).
fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Compress a sorted-or-not list of values into maximal constant-stride
/// triplets (exact, used by the expression fallback paths).
pub(crate) fn compress_to_triplets(vals: &[i64]) -> Vec<Triplet> {
    let mut v: Vec<i64> = vals.to_vec();
    v.sort_unstable();
    v.dedup();
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < v.len() {
        if k + 1 == v.len() {
            out.push(Triplet::scalar(v[k]));
            break;
        }
        let stride = v[k + 1] - v[k];
        let mut end = k + 1;
        while end + 1 < v.len() && v[end + 1] - v[end] == stride {
            end += 1;
        }
        out.push(Triplet::new(v[k], v[end], stride).expect("stride > 0"));
        k = end + 1;
    }
    out
}

/// Deduplicate/merge overlapping preimage pieces (keeps exactness by
/// removing pieces fully contained in another).
fn merge_triplet_pieces(mut pieces: Vec<Triplet>) -> Vec<Triplet> {
    pieces.retain(|t| !t.is_empty());
    if pieces.len() <= 1 {
        return pieces;
    }
    let mut out: Vec<Triplet> = Vec::with_capacity(pieces.len());
    'outer: for p in pieces {
        for q in &out {
            if p.is_subset_of(q) {
                continue 'outer;
            }
        }
        out.retain(|q| !q.is_subset_of(&p));
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_index::span;

    /// Brute-force preimage for validation.
    fn brute_preimage(f: &AlignmentFn, r: &Rect) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for i in f.alignee().clone().iter() {
            let img = f.image_rect(&i);
            if img.iter().any(|j| r.contains(&j)) {
                out.push(i.as_slice().to_vec());
            }
        }
        out.sort();
        out
    }

    fn region_points(r: &Region) -> Vec<Vec<i64>> {
        let mut out: Vec<Vec<i64>> = r.iter().map(|i| i.as_slice().to_vec()).collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn paper_example_replication() {
        // REAL A(1:N), D(1:N,1:M); ALIGN A(:) WITH D(:,*)  [N=4, M=3]
        // α(J) = {(J,k) | 1 ≤ k ≤ M}
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 4)]).unwrap(),
            IndexDomain::standard(&[(1, 4), (1, 3)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }, AxisMap::Replicated],
        )
        .unwrap();
        let img = f.image_rect(&Idx::d1(2));
        assert_eq!(img.dims()[0], Triplet::scalar(2));
        assert_eq!(img.dims()[1], span(1, 3));
        assert!(f.is_replicating());
        assert!(f.collapsed_dims().is_empty());
    }

    #[test]
    fn paper_example_collapse() {
        // REAL B(1:N,1:M), E(1:N); ALIGN B(:,*) WITH E(:)  [N=4, M=3]
        // α(J1,J2) = {(J1)}
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 4), (1, 3)]).unwrap(),
            IndexDomain::standard(&[(1, 4)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }],
        )
        .unwrap();
        assert_eq!(f.image_point(&Idx::d2(3, 2)), Idx::d1(3));
        assert_eq!(f.image_point(&Idx::d2(3, 1)), Idx::d1(3));
        assert_eq!(f.collapsed_dims(), vec![1]);
        // preimage of {3} is (3, anything)
        let pre = f.preimage_region(&Rect::new(vec![Triplet::scalar(3)]));
        let pts = region_points(&pre);
        assert_eq!(pts, vec![vec![3, 1], vec![3, 2], vec![3, 3]]);
    }

    #[test]
    fn staggered_alignment_2i_minus_1() {
        // ALIGN P(I,J) WITH T(2*I−1, 2*J−1), T(0:2N, 0:2N), N=4
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 4), (1, 4)]).unwrap(),
            IndexDomain::standard(&[(0, 8), (0, 8)]).unwrap(),
            vec![
                AxisMap::Affine { dim: 0, a: 2, c: -1 },
                AxisMap::Affine { dim: 1, a: 2, c: -1 },
            ],
        )
        .unwrap();
        assert_eq!(f.image_point(&Idx::d2(1, 1)), Idx::d2(1, 1));
        assert_eq!(f.image_point(&Idx::d2(4, 2)), Idx::d2(7, 3));
    }

    #[test]
    fn clamping_to_base_bounds() {
        // α(J) = J + 3 into base 1:5 — J=4,5 clamp to 5
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 5)]).unwrap(),
            IndexDomain::standard(&[(1, 5)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 1, c: 3 }],
        )
        .unwrap();
        assert_eq!(f.image_point(&Idx::d1(1)), Idx::d1(4));
        assert_eq!(f.image_point(&Idx::d1(2)), Idx::d1(5));
        assert_eq!(f.image_point(&Idx::d1(5)), Idx::d1(5)); // clamped
    }

    #[test]
    fn preimage_affine_exact() {
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 20)]).unwrap(),
            IndexDomain::standard(&[(1, 50)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 2, c: -1 }],
        )
        .unwrap();
        for r in [
            Rect::new(vec![span(1, 10)]),
            Rect::new(vec![Triplet::new(3, 33, 3).unwrap()]),
            Rect::new(vec![span(45, 50)]),
            Rect::new(vec![Triplet::scalar(7)]),
            Rect::new(vec![Triplet::scalar(8)]), // even: no odd image hits it
        ] {
            let got = region_points(&f.preimage_region(&r));
            let want = brute_preimage(&f, &r);
            assert_eq!(got, want, "rect {r}");
        }
    }

    #[test]
    fn preimage_with_clamp_saturation() {
        // α(J) = J + 3 into 1:5: preimage of {5} = {2,3,4,5} (3,4,5 saturate)
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 5)]).unwrap(),
            IndexDomain::standard(&[(1, 5)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 1, c: 3 }],
        )
        .unwrap();
        for v in 1..=5 {
            let r = Rect::new(vec![Triplet::scalar(v)]);
            let got = region_points(&f.preimage_region(&r));
            let want = brute_preimage(&f, &r);
            assert_eq!(got, want, "point {v}");
        }
    }

    #[test]
    fn preimage_negative_coefficient() {
        // reversal: α(J) = 21 − J over 1:20
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 20)]).unwrap(),
            IndexDomain::standard(&[(1, 20)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: -1, c: 21 }],
        )
        .unwrap();
        for r in [
            Rect::new(vec![span(1, 5)]),
            Rect::new(vec![Triplet::new(2, 20, 2).unwrap()]),
            Rect::new(vec![Triplet::scalar(20)]),
        ] {
            let got = region_points(&f.preimage_region(&r));
            let want = brute_preimage(&f, &r);
            assert_eq!(got, want, "rect {r}");
        }
    }

    #[test]
    fn preimage_expr_axis() {
        // α(J) = MIN(J+1, 8) over 1:10 into 1:8 — nonlinear (truncated)
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 10)]).unwrap(),
            IndexDomain::standard(&[(1, 8)]).unwrap(),
            vec![AxisMap::Expr {
                dim: 0,
                expr: (AlignExpr::dummy(0) + 1).min(AlignExpr::c(8)),
            }],
        )
        .unwrap();
        for v in 1..=8 {
            let r = Rect::new(vec![Triplet::scalar(v)]);
            let got = region_points(&f.preimage_region(&r));
            let want = brute_preimage(&f, &r);
            assert_eq!(got, want, "point {v}");
        }
    }

    #[test]
    fn preimage_2d_with_replication() {
        let f = AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 6)]).unwrap(),
            IndexDomain::standard(&[(1, 6), (1, 4)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }, AxisMap::Replicated],
        )
        .unwrap();
        let r = Rect::new(vec![span(2, 4), span(3, 3)]);
        let got = region_points(&f.preimage_region(&r));
        let want = brute_preimage(&f, &r);
        assert_eq!(got, want);
    }

    #[test]
    fn zero_coefficient_rejected() {
        assert!(AlignmentFn::from_parts(
            IndexDomain::standard(&[(1, 4)]).unwrap(),
            IndexDomain::standard(&[(1, 4)]).unwrap(),
            vec![AxisMap::Affine { dim: 0, a: 0, c: 1 }],
        )
        .is_err());
    }

    #[test]
    fn skew_rejected() {
        // two base dims using the same alignee dim
        assert!(matches!(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 4)]).unwrap(),
                IndexDomain::standard(&[(1, 4), (1, 4)]).unwrap(),
                vec![
                    AxisMap::Affine { dim: 0, a: 1, c: 0 },
                    AxisMap::Affine { dim: 0, a: 1, c: 0 },
                ],
            ),
            Err(HpfError::DummyReused(0))
        ));
    }

    #[test]
    fn compress_triplets() {
        assert_eq!(compress_to_triplets(&[]), Vec::<Triplet>::new());
        assert_eq!(compress_to_triplets(&[5]), vec![Triplet::scalar(5)]);
        assert_eq!(compress_to_triplets(&[1, 2, 3]), vec![span(1, 3)]);
        assert_eq!(
            compress_to_triplets(&[1, 3, 5, 10]),
            vec![Triplet::new(1, 5, 2).unwrap(), Triplet::scalar(10)]
        );
        assert_eq!(compress_to_triplets(&[4, 2, 2, 0]), vec![Triplet::new(0, 4, 2).unwrap()]);
    }

    #[test]
    fn div_helpers() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_floor(-7, -2), 3);
        assert_eq!(div_ceil(-7, -2), 4);
    }
}
