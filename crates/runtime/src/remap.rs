//! Redistribution analysis (§4.2/§5.2/§7): the exact communication a
//! dynamic remapping performs, computed with the region algebra.
//!
//! When an array moves from mapping `old` to mapping `new`, processor `q`
//! must send processor `p` exactly `owned_old(q) ∩ owned_new(p)` (p ≠ q).
//! For partitioned mappings this is a handful of strided-rect
//! intersections — no element enumeration.

use hpf_core::EffectiveDist;
use hpf_index::Region;
use hpf_machine::CommStats;
use hpf_procs::ProcId;

/// The cost picture of one remapping event.
#[derive(Debug, Clone)]
pub struct RemapAnalysis {
    /// Traffic matrix of the remap (one vectorized message per pair).
    pub comm: CommStats,
    /// Elements that stayed in place.
    pub stationary: usize,
    /// Elements that moved.
    pub moved: usize,
}

impl RemapAnalysis {
    /// Fraction of the array that moved.
    pub fn moved_fraction(&self) -> f64 {
        let total = self.stationary + self.moved;
        if total == 0 {
            0.0
        } else {
            self.moved as f64 / total as f64
        }
    }
}

/// Analyze the remapping `old → new` over `np` processors.
///
/// Both mappings must cover the same index domain. Replicated mappings are
/// handled conservatively: an element counts as stationary if *some* new
/// owner already held it, and each missing new owner receives a copy from
/// the first old owner.
///
/// ```
/// use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
/// use hpf_index::IndexDomain;
/// use hpf_runtime::remap_analysis;
///
/// let mut ds = DataSpace::new(4);
/// let a = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
/// ds.set_dynamic(a);
/// ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
/// let before = ds.effective(a).unwrap();
/// ds.redistribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
/// let after = ds.effective(a).unwrap();
/// let r = remap_analysis(&before, &after, 4);
/// // BLOCK → CYCLIC moves ≈ (NP−1)/NP of the elements
/// assert_eq!(r.moved + r.stationary, 1000);
/// assert!(r.moved_fraction() > 0.7);
/// ```
pub fn remap_analysis(
    old: &EffectiveDist,
    new: &EffectiveDist,
    np: usize,
) -> RemapAnalysis {
    debug_assert_eq!(old.domain(), new.domain());
    let old_regions: Vec<Region> =
        (1..=np as u32).map(|p| old.owned_region(ProcId(p))).collect();
    let new_regions: Vec<Region> =
        (1..=np as u32).map(|p| new.owned_region(ProcId(p))).collect();
    let partitioned = old_regions.iter().map(Region::volume_disjoint).sum::<usize>()
        == old.domain().size()
        && new_regions.iter().map(Region::volume_disjoint).sum::<usize>()
            == new.domain().size();

    if partitioned {
        let mut comm = CommStats::new();
        let mut stationary = 0usize;
        let mut moved = 0usize;
        for (q, old_region) in old_regions.iter().enumerate() {
            for (p, new_region) in new_regions.iter().enumerate() {
                let vol = old_region.intersection_volume(new_region);
                if vol == 0 {
                    continue;
                }
                if p == q {
                    stationary += vol;
                } else {
                    moved += vol;
                    comm.record(ProcId(q as u32 + 1), ProcId(p as u32 + 1), vol as u64);
                }
            }
        }
        RemapAnalysis { comm, stationary, moved }
    } else {
        // exact element-wise fallback for replicated mappings
        let mut comm = CommStats::new();
        let mut stationary = 0usize;
        let mut moved = 0usize;
        for i in old.domain().clone().iter() {
            let from = old.owners(&i);
            let to = new.owners(&i);
            if to.iter().any(|p| from.contains(p)) {
                stationary += 1;
            } else {
                moved += 1;
            }
            let src = from.iter().next().expect("total mapping");
            for p in to.iter() {
                if !from.contains(p) {
                    comm.record(src, p, 1);
                }
            }
        }
        RemapAnalysis { comm, stationary, moved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec, ProcSet};
    use hpf_index::{Idx, IndexDomain};
    use std::sync::Arc;

    fn mapping(n: usize, np: usize, f: FormatSpec) -> Arc<EffectiveDist> {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![f])).unwrap();
        ds.effective(a).unwrap()
    }

    #[test]
    fn identity_remap_moves_nothing() {
        let m = mapping(100, 4, FormatSpec::Block);
        let r = remap_analysis(&m, &m, 4);
        assert_eq!(r.moved, 0);
        assert_eq!(r.stationary, 100);
        assert!(r.comm.is_empty());
    }

    #[test]
    fn block_to_cyclic_matches_elementwise() {
        let old = mapping(1000, 8, FormatSpec::Block);
        let new = mapping(1000, 8, FormatSpec::Cyclic(1));
        let r = remap_analysis(&old, &new, 8);
        // oracle: element-wise owner comparison
        let moved_oracle = old.remap_volume(&new);
        assert_eq!(r.moved, moved_oracle);
        assert_eq!(r.stationary + r.moved, 1000);
        // §E5's analytic fraction ≈ (NP−1)/NP
        assert!((r.moved_fraction() - 0.875).abs() < 0.01);
        assert_eq!(r.comm.total_elements(), r.moved as u64);
    }

    #[test]
    fn traffic_matrix_is_exact() {
        let old = mapping(64, 4, FormatSpec::Block);
        let new = mapping(64, 4, FormatSpec::Cyclic(2));
        let r = remap_analysis(&old, &new, 4);
        // oracle per pair
        let mut want = CommStats::new();
        for i in 1..=64i64 {
            let q = old.owner(&Idx::d1(i));
            let p = new.owner(&Idx::d1(i));
            want.record(q, p, 1);
        }
        assert_eq!(r.comm, want);
    }

    #[test]
    fn replication_fallback() {
        let old = mapping(20, 4, FormatSpec::Block);
        let new = Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[20]).unwrap(),
            procs: ProcSet::all(4),
        });
        let r = remap_analysis(&old, &new, 4);
        // every element already lives on one of its new owners (its old one)
        assert_eq!(r.stationary, 20);
        // but the 3 other copies must be shipped: 20 × 3
        assert_eq!(r.comm.total_elements(), 60);
    }

    #[test]
    fn general_block_rebalance_cost() {
        // shifting one boundary by k moves exactly k elements
        let mut ds = DataSpace::new(2);
        let a = ds.declare("A", IndexDomain::of_shape(&[100]).unwrap()).unwrap();
        ds.set_dynamic(a);
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(vec![50])]))
            .unwrap();
        let old = ds.effective(a).unwrap();
        ds.redistribute(a, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(vec![60])]))
            .unwrap();
        let new = ds.effective(a).unwrap();
        let r = remap_analysis(&old, &new, 2);
        assert_eq!(r.moved, 10);
        assert_eq!(r.comm.messages(), 1); // one vectorized message P2 → P1
    }
}
