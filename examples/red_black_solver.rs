//! Red-black Gauss–Seidel on the distributed runtime: a real numerical
//! solver whose sweeps are *strided-section* assignments — the section
//! algebra the model is built on (§2.1), exercised until convergence.
//!
//! Solves u″ = 0 on [0, N+1] with u(0) = 0, u(N+1) = 1 (exact solution is
//! the straight line u(i) = i/(N+1)), by alternating:
//!
//! ```text
//! U(2:N:2)   = (U(1:N-1:2) + U(3:N+1:2)) / 2    ! even (red) sweep
//! U(3:N-1:2) = (U(2:N-2:2) + U(4:N:2)) / 2      ! odd (black) sweep
//! ```
//!
//! and compares the per-sweep communication of BLOCK vs CYCLIC mappings:
//! BLOCK pays only block-boundary ghosts; CYCLIC makes *every* read remote
//! — the same §1 collocation story, now on a converging computation.
//!
//! Run with: `cargo run --release --example red_black_solver`

use hpf::prelude::*;

const N: i64 = 255; // interior points; boundaries at 0 and N+1
const NP: usize = 4;

fn solve(fmt: FormatSpec, label: &str) -> (usize, u64) {
    let mut ds = DataSpace::new(NP);
    let u = ds
        .declare("U", IndexDomain::standard(&[(0, N + 1)]).unwrap())
        .unwrap();
    let cyclic = matches!(fmt, FormatSpec::Cyclic(_));
    ds.distribute(u, &DistributeSpec::new(vec![fmt])).unwrap();
    let map = ds.effective(u).unwrap();

    // boundary conditions: u(0) = 0, u(N+1) = 1, interior starts at 0
    let arrays = vec![DistArray::from_fn("U", map, NP, |i| {
        if i[0] == N + 1 {
            1.0
        } else {
            0.0
        }
    })];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();

    let red = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(2, N, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(1, N - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(3, N + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();
    let black = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(1, N, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(0, N - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(2, N + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();

    // a Program caches each sweep's compiled plan: the two statements are
    // inspected once, and every later sweep replays the schedule without
    // re-running the communication analysis or any ownership lookups
    let mut prog = Program::new(arrays);
    prog.push(red).unwrap();
    prog.push(black).unwrap();

    // prove the compiled sweeps safe before the first timestep runs: the
    // static verifier checks write coverage, bounds, race freedom,
    // deadlock freedom, and conservation on the cached plans
    let report = prog.verify_all().unwrap();
    assert!(report.is_clean(), "sweep plans failed static verification:\n{report}");
    let (runs, pairs) = report.statements.iter().fold((0, 0), |(r, p), s| {
        (r + s.stats.store_runs + s.stats.copy_runs, p + s.stats.pairs)
    });
    println!(
        "  {label:<8} plans verified safe before running \
         ({runs} schedule runs, {pairs} message pairs checked)"
    );

    let mut sess = Session::new(prog);
    let mut sweeps = 0usize;
    let mut comm_per_iter;
    loop {
        sess.run(1).unwrap();
        let analyses = sess.last_analyses();
        comm_per_iter = analyses.iter().map(|a| a.comm.total_elements()).sum::<u64>();
        sweeps += 1;
        let prog = sess.program();
        // convergence: max deviation from the exact line
        let err = prog.arrays[0]
            .domain()
            .clone()
            .iter()
            .map(|i| (prog.arrays[0].get(&i) - i[0] as f64 / (N + 1) as f64).abs())
            .fold(0.0f64, f64::max);
        if err < 1e-3 || sweeps >= 200_000 {
            println!(
                "  {label:<8} converged to max|err| < 1e-3 in {sweeps} red+black sweeps, \
                 comm {comm_per_iter} elems/sweep \
                 (plans: {} inspected, {} cached replays)",
                prog.cache_misses(),
                prog.cache_hits(),
            );
            break;
        }
    }
    let prog = sess.into_program();
    assert_eq!(prog.cache_misses(), 2, "one inspection per sweep statement");

    // the whole timestep ran through the fused program plan: both sweeps
    // level-scheduled (black reads what red writes → two supersteps),
    // same-pair messages coalesced, and ghost units dirty-tracked
    let fs = prog.fusion_stats();
    println!("  {label:<8} {fs}");
    assert_eq!(fs.supersteps, 2, "black RAW-depends on red");
    assert_eq!(fs.fused_timesteps as usize, sweeps);
    if cyclic {
        // under CYCLIC every sweep's reads are remote — but the fixed
        // boundary values U(0)/U(N+1) are never written by either sweep,
        // so after the cold timestep their ghost units are permanently
        // clean and the runtime stops re-sending them
        assert!(
            fs.ghost_bytes_avoided() > 0,
            "clean boundary ghosts must be skipped on warm sweeps: {fs}"
        );
    }
    (sweeps, comm_per_iter)
}

fn main() {
    println!(
        "red-black Gauss-Seidel, u'' = 0, N = {N} interior points, NP = {NP}\n\
         (strided-section sweeps: U(2:N:2) = avg of odd neighbours, etc.)\n"
    );
    let (s1, c1) = solve(FormatSpec::Block, "BLOCK");
    let (s2, c2) = solve(FormatSpec::Cyclic(1), "CYCLIC");
    assert_eq!(s1, s2, "mapping must not change the numerics");
    println!(
        "\nidentical convergence ({s1} sweeps — mappings never change numerics),\n\
         but CYCLIC moves {c2} elements per sweep where BLOCK moves {c1}\n\
         ({}x): §1's collocation argument on a live solver.",
        c2.checked_div(c1).unwrap_or(0)
    );
}
