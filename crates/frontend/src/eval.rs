use crate::ast::{DimDecl, Expr, SectionDimAst};
use crate::error::FrontendError;
use hpf_core::AlignExpr;
use hpf_index::{IndexDomain, Section, SectionDim, Triplet};
use std::collections::HashMap;

/// The specification-expression environment: named integer parameters
/// (from `PARAMETER` and `READ`), integer parameter arrays (for
/// `GENERAL_BLOCK(S)`), and the bounds of declared arrays (for `LBOUND`,
/// `UBOUND`, `SIZE` folding).
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Scalar integer parameters.
    pub params: HashMap<String, i64>,
    /// Integer parameter arrays.
    pub param_arrays: HashMap<String, Vec<i64>>,
    /// Array bounds by name: `(lower, upper)` per dimension.
    pub array_bounds: HashMap<String, Vec<(i64, i64)>>,
}

impl Env {
    /// Evaluate a dummyless specification expression.
    pub fn eval(&self, e: &Expr) -> Result<i64, FrontendError> {
        match e {
            Expr::Int(v) => Ok(*v),
            Expr::Name(n) => self
                .params
                .get(n)
                .copied()
                .ok_or_else(|| FrontendError::UnknownParameter(n.clone())),
            Expr::Add(a, b) => Ok(self.eval(a)? + self.eval(b)?),
            Expr::Sub(a, b) => Ok(self.eval(a)? - self.eval(b)?),
            Expr::Mul(a, b) => Ok(self.eval(a)? * self.eval(b)?),
            Expr::Div(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    return Err(FrontendError::Eval("division by zero".into()));
                }
                Ok(self.eval(a)? / d)
            }
            Expr::Neg(a) => Ok(-self.eval(a)?),
            Expr::Max(a, b) => Ok(self.eval(a)?.max(self.eval(b)?)),
            Expr::Min(a, b) => Ok(self.eval(a)?.min(self.eval(b)?)),
            Expr::LBound(arr, d) | Expr::UBound(arr, d) | Expr::Size(arr, d) => {
                let dim = self.eval(d)? - 1;
                let bounds = self
                    .array_bounds
                    .get(arr)
                    .ok_or_else(|| FrontendError::UnknownParameter(arr.clone()))?;
                let (lo, up) = *bounds.get(dim as usize).ok_or_else(|| {
                    FrontendError::Eval(format!("dimension {} out of range for `{arr}`", dim + 1))
                })?;
                Ok(match e {
                    Expr::LBound(..) => lo,
                    Expr::UBound(..) => up,
                    _ => (up - lo + 1).max(0),
                })
            }
        }
    }

    /// Evaluate an expression with an overlay of extra named values (the
    /// `FORALL` index variables): overlay names shadow parameters.
    pub fn eval_with(
        &self,
        e: &Expr,
        overlay: &HashMap<String, i64>,
    ) -> Result<i64, FrontendError> {
        match e {
            Expr::Name(n) => {
                if let Some(v) = overlay.get(n) {
                    return Ok(*v);
                }
                self.eval(e)
            }
            Expr::Int(_) => self.eval(e),
            Expr::Add(a, b) => Ok(self.eval_with(a, overlay)? + self.eval_with(b, overlay)?),
            Expr::Sub(a, b) => Ok(self.eval_with(a, overlay)? - self.eval_with(b, overlay)?),
            Expr::Mul(a, b) => Ok(self.eval_with(a, overlay)? * self.eval_with(b, overlay)?),
            Expr::Div(a, b) => {
                let d = self.eval_with(b, overlay)?;
                if d == 0 {
                    return Err(FrontendError::Eval("division by zero".into()));
                }
                Ok(self.eval_with(a, overlay)? / d)
            }
            Expr::Neg(a) => Ok(-self.eval_with(a, overlay)?),
            Expr::Max(a, b) => {
                Ok(self.eval_with(a, overlay)?.max(self.eval_with(b, overlay)?))
            }
            Expr::Min(a, b) => {
                Ok(self.eval_with(a, overlay)?.min(self.eval_with(b, overlay)?))
            }
            Expr::LBound(..) | Expr::UBound(..) | Expr::Size(..) => self.eval(e),
        }
    }

    /// Translate an alignment expression into a core [`AlignExpr`]: names
    /// that match a declared align-dummy become [`AlignExpr::Dummy`];
    /// everything else is folded to constants (`LBOUND`/`UBOUND`/`SIZE`
    /// are specification-time constants, as DESIGN.md documents).
    pub fn to_align_expr(
        &self,
        e: &Expr,
        dummies: &HashMap<String, usize>,
    ) -> Result<AlignExpr, FrontendError> {
        // fully constant subtrees fold immediately
        if let Ok(v) = self.try_fold(e, dummies) {
            return Ok(AlignExpr::Const(v));
        }
        Ok(match e {
            Expr::Int(v) => AlignExpr::Const(*v),
            Expr::Name(n) => match dummies.get(n) {
                Some(id) => AlignExpr::Dummy(*id),
                None => AlignExpr::Const(self.eval(e)?),
            },
            Expr::Add(a, b) => {
                self.to_align_expr(a, dummies)? + self.to_align_expr(b, dummies)?
            }
            Expr::Sub(a, b) => {
                self.to_align_expr(a, dummies)? - self.to_align_expr(b, dummies)?
            }
            Expr::Mul(a, b) => {
                self.to_align_expr(a, dummies)? * self.to_align_expr(b, dummies)?
            }
            Expr::Div(_, _) => {
                return Err(FrontendError::Eval(
                    "division of an align-dummy is not a linear alignment".into(),
                ))
            }
            Expr::Neg(a) => -self.to_align_expr(a, dummies)?,
            Expr::Max(a, b) => self
                .to_align_expr(a, dummies)?
                .max(self.to_align_expr(b, dummies)?),
            Expr::Min(a, b) => self
                .to_align_expr(a, dummies)?
                .min(self.to_align_expr(b, dummies)?),
            Expr::LBound(..) | Expr::UBound(..) | Expr::Size(..) => {
                AlignExpr::Const(self.eval(e)?)
            }
        })
    }

    /// Fold a subtree to a constant if it references no align-dummy.
    fn try_fold(&self, e: &Expr, dummies: &HashMap<String, usize>) -> Result<i64, FrontendError> {
        if self.uses_dummy(e, dummies) {
            return Err(FrontendError::Eval("uses dummy".into()));
        }
        self.eval(e)
    }

    fn uses_dummy(&self, e: &Expr, dummies: &HashMap<String, usize>) -> bool {
        match e {
            Expr::Int(_) => false,
            Expr::Name(n) => dummies.contains_key(n),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Max(a, b)
            | Expr::Min(a, b) => {
                self.uses_dummy(a, dummies) || self.uses_dummy(b, dummies)
            }
            Expr::Neg(a) => self.uses_dummy(a, dummies),
            Expr::LBound(..) | Expr::UBound(..) | Expr::Size(..) => false,
        }
    }

    /// Evaluate a declaration shape to an index domain.
    pub fn eval_shape(&self, dims: &[DimDecl]) -> Result<IndexDomain, FrontendError> {
        let mut bounds = Vec::with_capacity(dims.len());
        for d in dims {
            match d {
                DimDecl::Deferred => {
                    return Err(FrontendError::Eval(
                        "deferred shape where an explicit shape is required".into(),
                    ))
                }
                DimDecl::Explicit { lower, upper } => {
                    let lo = match lower {
                        Some(e) => self.eval(e)?,
                        None => 1,
                    };
                    let up = self.eval(upper)?;
                    bounds.push((lo, up));
                }
            }
        }
        IndexDomain::standard(&bounds)
            .map_err(|e| FrontendError::Eval(e.to_string()))
    }

    /// Evaluate a section reference against its parent domain, applying
    /// Fortran defaults (`:` spans the whole dimension, stride defaults 1).
    pub fn eval_section(
        &self,
        dims: &[SectionDimAst],
        parent: &IndexDomain,
    ) -> Result<Section, FrontendError> {
        if dims.len() != parent.rank() {
            return Err(FrontendError::Eval(format!(
                "section has {} subscripts, array has rank {}",
                dims.len(),
                parent.rank()
            )));
        }
        let mut out = Vec::with_capacity(dims.len());
        for (d, sd) in dims.iter().enumerate() {
            match sd {
                SectionDimAst::Scalar(e) => out.push(SectionDim::Scalar(self.eval(e)?)),
                SectionDimAst::Triplet { lower, upper, stride } => {
                    let lo = match lower {
                        Some(e) => self.eval(e)?,
                        None => parent.lower(d),
                    };
                    let up = match upper {
                        Some(e) => self.eval(e)?,
                        None => parent.upper(d),
                    };
                    let st = match stride {
                        Some(e) => self.eval(e)?,
                        None => 1,
                    };
                    let t = Triplet::new(lo, up, st)
                        .map_err(|e| FrontendError::Eval(e.to_string()))?;
                    out.push(SectionDim::Triplet(t));
                }
            }
        }
        Ok(Section::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::ast::Stmt;

    fn env() -> Env {
        let mut e = Env::default();
        e.params.insert("N".into(), 64);
        e.params.insert("M".into(), 3);
        e.array_bounds.insert("A".into(), vec![(1, 100), (0, 9)]);
        e
    }

    fn expr_of(src: &str) -> Expr {
        // parse "X = <expr>" as a parameter to extract the expression
        match parse(&format!("PARAMETER (X = {src})")).unwrap().main.stmts[0].stmt.clone() {
            Stmt::Parameter(p) => p[0].1.clone(),
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn arithmetic() {
        let e = env();
        assert_eq!(e.eval(&expr_of("2*N - 1")).unwrap(), 127);
        assert_eq!(e.eval(&expr_of("N/M")).unwrap(), 21);
        assert_eq!(e.eval(&expr_of("-(N + 1)")).unwrap(), -65);
        assert_eq!(e.eval(&expr_of("MAX(N, 100)")).unwrap(), 100);
        assert_eq!(e.eval(&expr_of("MIN(N, 100)")).unwrap(), 64);
    }

    #[test]
    fn bounds_intrinsics() {
        let e = env();
        assert_eq!(e.eval(&expr_of("LBOUND(A, 2)")).unwrap(), 0);
        assert_eq!(e.eval(&expr_of("UBOUND(A, 1)")).unwrap(), 100);
        assert_eq!(e.eval(&expr_of("SIZE(A, 2)")).unwrap(), 10);
    }

    #[test]
    fn unknown_parameter() {
        assert!(matches!(
            env().eval(&expr_of("Q + 1")),
            Err(FrontendError::UnknownParameter(_))
        ));
    }

    #[test]
    fn division_by_zero() {
        assert!(env().eval(&expr_of("N/0")).is_err());
    }

    #[test]
    fn align_expr_translation() {
        let e = env();
        let mut dummies = HashMap::new();
        dummies.insert("I".into(), 0usize);
        // 2*I - 1 with I a dummy
        let ae = e.to_align_expr(&expr_of("2*I - 1"), &dummies).unwrap();
        assert_eq!(ae.linear_in(0), Some((2, -1)));
        // M*I + N folds M and N
        let ae = e.to_align_expr(&expr_of("M*I + N"), &dummies).unwrap();
        assert_eq!(ae.linear_in(0), Some((3, 64)));
        // fully constant folds to Const
        let ae = e.to_align_expr(&expr_of("N*M"), &dummies).unwrap();
        assert_eq!(ae, AlignExpr::Const(192));
    }

    #[test]
    fn shapes_and_sections() {
        let e = env();
        let dom = e
            .eval_shape(&[
                DimDecl::Explicit { lower: Some(Expr::Int(0)), upper: expr_of("N") },
                DimDecl::Explicit { lower: None, upper: expr_of("N") },
            ])
            .unwrap();
        assert_eq!(dom.to_string(), "[0:64, 1:64]");
        let sec = e
            .eval_section(
                &[
                    SectionDimAst::Triplet { lower: None, upper: None, stride: None },
                    SectionDimAst::Scalar(Expr::Int(3)),
                ],
                &dom,
            )
            .unwrap();
        assert_eq!(sec.rank(), 1);
        assert_eq!(sec.size(), 65);
    }
}
