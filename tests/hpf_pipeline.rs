//! End-to-end pipeline suite: every `.hpf` program under
//! `examples/programs/` must elaborate cleanly, lower into a runtime
//! program, statically verify, and execute timesteps on *both* exchange
//! backends with results identical to the dense element-wise oracle.
//! Plus the acceptance test for the recovering frontend: a source with
//! several distinct syntax errors reports them all, with spans, in one
//! run.

use hpf::prelude::*;
use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/programs"))
}

fn program_sources() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(programs_dir()).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("hpf") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    out.sort();
    assert!(out.len() >= 4, "expected the shipped .hpf programs, found {}", out.len());
    out
}

/// Processor count each program was written for (directive_tour needs 8
/// for `PROCESSORS P(NOP)`; everything else runs on the default 4).
fn np_for(name: &str) -> usize {
    if name.contains("directive_tour") {
        8
    } else {
        4
    }
}

#[test]
fn every_program_runs_verified_on_both_backends() {
    for (name, src) in program_sources() {
        for backend in [Backend::SharedMem, Backend::Channels] {
            let (elab, diags) = Elaborator::new(np_for(&name)).run_recover(&src);
            assert!(diags.is_empty(), "{name}: {diags:?}");
            let (mut lowered, diags) = Lowerer::lower(&elab);
            assert!(diags.is_empty(), "{name}: {diags:?}");
            assert!(!lowered.statements.is_empty(), "{name} has no statements");

            // static schedule verification before anything runs
            let report = lowered.program.verify_all().expect("plans compile");
            assert!(report.is_clean(), "{name}: {report}");

            // three timesteps (cold plan + warm replays) against the oracle
            lowered
                .run_verified(3, backend)
                .unwrap_or_else(|e| panic!("{name} on {backend:?}: {e}"));
        }
    }
}

#[test]
fn backends_agree_bit_for_bit() {
    for (name, src) in program_sources() {
        let run = |backend: Backend| {
            let elab = Elaborator::new(np_for(&name)).run(&src).expect("elaborates");
            let (lowered, diags) = Lowerer::lower(&elab);
            assert!(diags.is_empty(), "{diags:?}");
            let mut sess = Session::new(lowered.program).backend(backend);
            sess.run(2).expect("runs");
            sess.program().arrays.iter().map(|a| a.to_dense()).collect::<Vec<_>>()
        };
        assert_eq!(
            run(Backend::SharedMem),
            run(Backend::Channels),
            "{name}: backends diverge"
        );
    }
}

#[test]
fn warm_timesteps_replay_from_the_plan_cache() {
    let (name, src) = program_sources()
        .into_iter()
        .find(|(n, _)| n.contains("relaxation"))
        .expect("relaxation.hpf ships");
    let elab = Elaborator::new(np_for(&name)).run(&src).expect("elaborates");
    let (lowered, diags) = Lowerer::lower(&elab);
    assert!(diags.is_empty(), "{diags:?}");
    let mut sess = Session::new(lowered.program);
    sess.run(5).expect("runs");
    assert_eq!(sess.program().cache_misses(), 2, "one inspection per statement");
    assert_eq!(sess.program().cache_hits(), 8, "4 warm timesteps × 2 statements");
    let fs = sess.program().fusion_stats();
    assert_eq!(fs.supersteps, 2, "RAW dependency forces two supersteps");
}

/// Acceptance: a source with three or more distinct syntax errors reports
/// every one of them, each with a span, in a single run.
#[test]
fn multi_error_source_reports_all_spans() {
    let src = "\
      PROGRAM BAD
      REAL A(4
!HPF$ TEMPLATE T(100)
!HPF$ DISTRIBUTE A(BLOCK TO P
      REAL OK(8)
      END
";
    let (_, diags) = Elaborator::new(4).run_recover(src);
    assert!(diags.len() >= 3, "expected >=3 diagnostics, got {diags:?}");
    let lines: Vec<usize> = diags.iter().map(|d| d.span.line).collect();
    assert!(lines.contains(&2), "{lines:?}");
    assert!(lines.contains(&3), "{lines:?}");
    assert!(lines.contains(&4), "{lines:?}");
    for d in &diags {
        assert!(d.span.line >= 1 && d.span.col >= 1, "degenerate span in {d}");
    }
    let rendered = render_diagnostics(src, &diags);
    assert!(rendered.contains("errors found"), "{rendered}");
    // every diagnostic rendered its source line with a caret
    assert_eq!(rendered.matches("-->").count(), diags.len(), "{rendered}");
}
