//! Differential testing: programs generated from random mapping specs must
//! elaborate to exactly the owner maps the programmatic `hpf-core` API
//! produces for the same specs.

use hpf_core::{
    AlignExpr, AlignSpec, DataSpace, DistributeSpec, FormatSpec,
};
use hpf_frontend::Elaborator;
use hpf_index::{Idx, IndexDomain};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenCase {
    n: i64,
    np: usize,
    fmt: u8,
    k: u64,
    align_a: i64,
    align_c: i64,
}

fn arb_case() -> impl Strategy<Value = GenCase> {
    (4i64..60, 2usize..8, 0u8..4, 1u64..5, 1i64..3, 0i64..6).prop_map(
        |(n, np, fmt, k, align_a, align_c)| GenCase { n, np, fmt, k, align_a, align_c },
    )
}

fn fmt_directive(fmt: u8, k: u64) -> String {
    match fmt {
        0 => "BLOCK".into(),
        1 => "BLOCK_BALANCED".into(),
        2 => "CYCLIC".into(),
        _ => format!("CYCLIC({k})"),
    }
}

fn fmt_spec(fmt: u8, k: u64) -> FormatSpec {
    match fmt {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        _ => FormatSpec::Cyclic(k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Source text generated from the spec elaborates to the same owners
    /// as driving `DataSpace` directly.
    #[test]
    fn frontend_matches_api(case in arb_case()) {
        let base_n = case.align_a * case.n + case.align_c;
        // --- through the directive language ---
        let src = format!(
            r#"
      PARAMETER (N = {n}, M = {base_n})
      REAL B(M), A(N)
!HPF$ PROCESSORS P({np})
!HPF$ DISTRIBUTE B({fmt}) TO P
!HPF$ ALIGN A(I) WITH B({a}*I + {c})
      END
"#,
            n = case.n,
            base_n = base_n,
            np = case.np,
            fmt = fmt_directive(case.fmt, case.k),
            a = case.align_a,
            c = case.align_c,
        );
        let elab = Elaborator::new(case.np).run(&src).unwrap();
        let (fa, fb) = (elab.array("A").unwrap(), elab.array("B").unwrap());

        // --- through the programmatic API ---
        let mut ds = DataSpace::new(case.np);
        ds.declare_processors("P", IndexDomain::of_shape(&[case.np]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::standard(&[(1, base_n)]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::standard(&[(1, case.n)]).unwrap()).unwrap();
        ds.distribute(b, &DistributeSpec::to(vec![fmt_spec(case.fmt, case.k)], "P"))
            .unwrap();
        ds.align(
            a,
            b,
            &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * case.align_a + case.align_c]),
        )
        .unwrap();

        for i in 1..=case.n {
            prop_assert_eq!(
                elab.space.owners(fa, &Idx::d1(i)).unwrap(),
                ds.owners(a, &Idx::d1(i)).unwrap(),
                "A({}) differs", i
            );
        }
        for i in 1..=base_n {
            prop_assert_eq!(
                elab.space.owners(fb, &Idx::d1(i)).unwrap(),
                ds.owners(b, &Idx::d1(i)).unwrap(),
                "B({}) differs", i
            );
        }
    }

    /// The same for REDISTRIBUTE: a generated dynamic program tracks the
    /// API's forest evolution.
    #[test]
    fn dynamic_program_matches_api(case in arb_case(), fmt2 in 0u8..4) {
        let src = format!(
            r#"
      REAL X({n})
!HPF$ DYNAMIC X
!HPF$ DISTRIBUTE X({f1})
!HPF$ REDISTRIBUTE X({f2})
      END
"#,
            n = case.n,
            f1 = fmt_directive(case.fmt, case.k),
            f2 = fmt_directive(fmt2, case.k + 1),
        );
        let elab = Elaborator::new(case.np).run(&src).unwrap();
        let fx = elab.array("X").unwrap();

        let mut ds = DataSpace::new(case.np);
        let x = ds.declare("X", IndexDomain::standard(&[(1, case.n)]).unwrap()).unwrap();
        ds.set_dynamic(x);
        ds.distribute(x, &DistributeSpec::new(vec![fmt_spec(case.fmt, case.k)])).unwrap();
        ds.redistribute(x, &DistributeSpec::new(vec![fmt_spec(fmt2, case.k + 1)])).unwrap();

        for i in 1..=case.n {
            prop_assert_eq!(
                elab.space.owners(fx, &Idx::d1(i)).unwrap(),
                ds.owners(x, &Idx::d1(i)).unwrap()
            );
        }
    }
}
