//! B12 — compiled execution plans: cold (inspect + execute every call)
//! vs warm (cached-plan replay) timesteps of the §8.1.1 staggered-grid
//! statement. The warm path skips validation, ownership lookups, and the
//! region-algebraic communication analysis, executing pack → exchange →
//! compute straight from the compiled schedule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::{staggered_mappings, staggered_statement, StaggeredScheme};
use hpf_core::FormatSpec;
use hpf_runtime::{Assignment, DistArray, PlanCache, SeqExecutor};

fn arrays(n: i64) -> (Vec<DistArray<f64>>, Assignment) {
    let maps = staggered_mappings(n, 2, &StaggeredScheme::Direct(FormatSpec::Block));
    let stmt = staggered_statement(n, &maps);
    let arrays = vec![
        DistArray::new("P", maps[0].clone(), 4, 0.0),
        DistArray::from_fn("U", maps[1].clone(), 4, |i| (i[0] + i[1]) as f64),
        DistArray::from_fn("V", maps[2].clone(), 4, |i| (i[0] - i[1]) as f64),
    ];
    (arrays, stmt)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_cache");
    g.sample_size(20);
    for n in [128i64, 512] {
        let (base, stmt) = arrays(n);
        // cold: every timestep pays inspection (the pre-plan behavior)
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            let mut arr = base.clone();
            b.iter(|| black_box(SeqExecutor.execute(&mut arr, &stmt).unwrap()))
        });
        // warm: one inspection, then zero-allocation cached replays into
        // the cache's per-plan workspace
        g.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            let mut arr = base.clone();
            let mut cache = PlanCache::new();
            cache.replay_seq(&mut arr, &stmt).unwrap(); // populate
            b.iter(|| {
                let analysis = cache.replay_seq(&mut arr, &stmt).unwrap();
                black_box(analysis.remote_reads)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
