//! The unified execution-session API: one builder, every execution
//! concern.
//!
//! Running a [`Program`] used to mean choosing among `run`, `run_on`,
//! `run_parallel`, `run_unfused`, and `run_trajectory`, each with its
//! own knobs threaded through positional arguments. A [`Session`]
//! collapses them into one builder:
//!
//! ```
//! use hpf_runtime::{Backend, Program, Session};
//! # let program = Program::new(Vec::new());
//! let mut session = Session::new(program)
//!     .backend(Backend::SharedMem); // .threads(8), .checkpoint(spec),
//!                                   // .adapt(policy), .fused(false), ...
//! let report = session.run(10).unwrap();
//! assert_eq!(report.timesteps, 10);
//! ```
//!
//! Migration from the legacy entry points:
//!
//! | legacy                                  | session                                           |
//! |-----------------------------------------|---------------------------------------------------|
//! | `prog.run()`                            | `Session::new(prog).run(1)`                       |
//! | `prog.run_on(b)`                        | `Session::new(prog).backend(b).run(1)`            |
//! | `prog.run_parallel(t)`                  | `Session::new(prog).threads(t).run(1)`            |
//! | `prog.run_unfused()`                    | `Session::new(prog).fused(false).run(1)`          |
//! | `run_trajectory(&mut p, b, n, 0, c, r)` | `Session::new(p).backend(b).checkpoint(c).recovery(r).run(n)` |
//!
//! A session owns its program ([`Session::program`] /
//! [`Session::program_mut`] / [`Session::into_program`] give it back),
//! tracks the absolute timestep across `run` calls, executes the same
//! restore-and-replay recovery loop `run_trajectory` did whenever a
//! checkpoint cadence is configured, and — the part no legacy entry
//! point offered — hosts the [`AdaptController`] so mappings are
//! re-balanced *live* between timesteps (see [`crate::adapt`]).
//!
//! Warm sequential `run` calls preserve the zero-allocation replay
//! contract: the session's own bookkeeping is plain field updates, so
//! everything the timestep allocates is what the program's replay path
//! allocates — nothing.

use crate::adapt::{AdaptController, AdaptPolicy, AdaptReport};
use crate::backend::Backend;
use crate::ckpt::{CheckpointSpec, RecoveryPolicy};
use crate::commsets::CommAnalysis;
use crate::fault::FaultPlan;
use crate::program::Program;
use hpf_core::HpfError;
use hpf_machine::Machine;
use std::sync::Arc;
use std::time::Duration;

/// What a [`Session::run`] call did (cumulative across the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// Absolute timestep the session has reached.
    pub timesteps: u64,
    /// Exchange faults survived so far.
    pub failures: u64,
    /// Timesteps re-executed after restores (work lost to faults).
    pub replayed: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// True iff recovery degraded from `Channels` to `SharedMem`.
    pub degraded: bool,
    /// Backend the session currently executes on.
    pub final_backend: Backend,
    /// Live remaps the adaptive controller performed.
    pub remaps: u64,
}

/// Builder-style driver for a [`Program`]: backend, thread bound,
/// fusion, checkpoint cadence, fault recovery, and adaptive
/// redistribution in one place. The module-level docs carry the
/// migration table from the legacy `run*` entry points.
#[derive(Debug)]
pub struct Session {
    program: Program,
    backend: Backend,
    threads: usize,
    fused: bool,
    checkpoint: Option<CheckpointSpec>,
    recovery: RecoveryPolicy,
    adapt_policy: Option<AdaptPolicy>,
    machine: Option<Machine>,
    controller: Option<AdaptController>,
    timestep: u64,
    report: SessionReport,
}

impl Session {
    /// A session over `program` with the defaults of the legacy
    /// `Program::run`: `SharedMem` backend, fused timesteps, no
    /// checkpoints, no adaptation.
    pub fn new(program: Program) -> Self {
        Session {
            program,
            backend: Backend::SharedMem,
            threads: 0,
            fused: true,
            checkpoint: None,
            recovery: RecoveryPolicy::default(),
            adapt_policy: None,
            machine: None,
            controller: None,
            timestep: 0,
            report: SessionReport {
                timesteps: 0,
                failures: 0,
                replayed: 0,
                checkpoints: 0,
                degraded: false,
                final_backend: Backend::SharedMem,
                remaps: 0,
            },
        }
    }

    /// Select the exchange backend (default `SharedMem`).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.report.final_backend = backend;
        self
    }

    /// Bound the worker threads per timestep. `t >= np` routes through
    /// the persistent `Channels` SPMD fleet; `1 < t < np` uses the
    /// bounded scoped-thread executor; `t <= 1` (the default) defers to
    /// the configured [`Session::backend`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Route timesteps through the fused program plan (default `true`).
    /// `fused(false)` executes per-statement supersteps with full ghost
    /// exchange on the `SharedMem` backend — the pre-fusion baseline.
    pub fn fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Checkpoint on `spec`'s cadence and recover from exchange faults
    /// by restore-and-replay (the former `run_trajectory` loop).
    pub fn checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    /// How to react to exchange faults (default [`RecoveryPolicy::default`];
    /// only consulted when a checkpoint cadence is configured).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Enable adaptive redistribution: between timesteps the
    /// [`AdaptController`] watches measured load, prices candidate
    /// remappings on the machine model, and remaps live when one pays
    /// for itself within the policy's horizon.
    pub fn adapt(mut self, policy: AdaptPolicy) -> Self {
        self.adapt_policy = Some(policy);
        self.controller = None;
        self
    }

    /// Price adaptive decisions on this machine model instead of
    /// `Machine::simple(np)`.
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machine = Some(machine);
        self.controller = None;
        self
    }

    /// Arm deterministic fault injection on the backend the next
    /// timestep selects (see [`Program::inject_faults`]).
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.program.inject_faults(plan);
        self
    }

    /// Override the `Channels` driver's wedge-detection timeout.
    pub fn exchange_timeout(mut self, timeout: Duration) -> Self {
        self.program.set_exchange_timeout(timeout);
        self
    }

    /// The driven program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Mutable access to the driven program — for mid-session
    /// statement swaps ([`Program::set_statements`]) or manual remaps.
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }

    /// Dissolve the session, returning the program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Absolute timestep reached so far.
    pub fn timestep(&self) -> u64 {
        self.timestep
    }

    /// The adaptive controller's decisions so far (`None` unless
    /// [`Session::adapt`] was configured and `run` was called).
    pub fn adapt_report(&self) -> Option<&AdaptReport> {
        self.controller.as_ref().map(|c| c.report())
    }

    /// The per-statement analyses of the most recent timestep.
    pub fn last_analyses(&self) -> &[Arc<CommAnalysis>] {
        self.program.last_analyses()
    }

    /// Execute one timestep on the configured executor.
    fn step_once(&mut self, backend: Backend) -> Result<(), HpfError> {
        if !self.fused {
            self.program.step_unfused()?;
        } else if self.threads > 1 {
            self.program.step_par(self.threads)?;
        } else if self.threads == 1 {
            self.program.step_seq()?;
        } else {
            self.program.step_on(backend)?;
        }
        Ok(())
    }

    /// Advance the session by `steps` timesteps, applying every
    /// configured concern per timestep: adaptive remap decision →
    /// execute → observe → checkpoint cadence — with the
    /// restore-and-replay recovery loop around the execute when a
    /// checkpoint cadence is configured. Returns the cumulative report.
    ///
    /// On an exchange fault with no checkpoint configured (or with
    /// retries exhausted) the fault propagates to the caller, exactly
    /// as the legacy entry points did.
    pub fn run(&mut self, steps: u64) -> Result<SessionReport, HpfError> {
        if self.adapt_policy.is_some() && self.controller.is_none() {
            let np = self.program.np();
            let machine =
                self.machine.clone().unwrap_or_else(|| Machine::simple(np.max(1)));
            let policy = self.adapt_policy.clone().expect("checked");
            self.controller = Some(AdaptController::new(policy, machine));
        }
        let mut backend = self.report.final_backend;
        let end = self.timestep + steps;
        let mut consecutive = 0u32;
        // baseline snapshot: a fault in the very first timestep of this
        // run call must have something to restore
        if let Some(spec) = &self.checkpoint {
            if steps > 0 {
                self.program.checkpoint(&spec.dir, self.timestep)?;
                self.report.checkpoints += 1;
            }
        }
        while self.timestep < end {
            if let Some(ctrl) = &mut self.controller {
                if ctrl.decide(&mut self.program, self.timestep)? {
                    self.report.remaps += 1;
                    // a remap changes the mapping identity every later
                    // restore must target; snapshot the moved state so
                    // recovery replays from the adapted layout
                    if let Some(spec) = &self.checkpoint {
                        self.program.checkpoint(&spec.dir, self.timestep)?;
                        self.report.checkpoints += 1;
                    }
                }
            }
            match self.step_once(backend) {
                Ok(()) => {
                    self.timestep += 1;
                    consecutive = 0;
                    if let Some(ctrl) = &mut self.controller {
                        ctrl.observe(&self.program);
                    }
                    if let Some(spec) = &self.checkpoint {
                        if self.timestep == end
                            || (spec.every > 0 && self.timestep % spec.every == 0)
                        {
                            self.program.checkpoint(&spec.dir, self.timestep)?;
                            self.report.checkpoints += 1;
                        }
                    }
                }
                Err(e @ HpfError::Exchange { .. }) => {
                    self.report.failures += 1;
                    consecutive += 1;
                    let Some(spec) = &self.checkpoint else {
                        return Err(e);
                    };
                    if consecutive > self.recovery.max_retries {
                        return Err(e);
                    }
                    if backend == Backend::Channels
                        && consecutive >= self.recovery.degrade_after
                    {
                        backend = Backend::SharedMem;
                        self.report.degraded = true;
                    }
                    std::thread::sleep(self.recovery.backoff * consecutive);
                    let restored = self.program.restore_latest(&spec.dir)?;
                    debug_assert!(restored.timestep <= self.timestep);
                    self.report.replayed += self.timestep - restored.timestep;
                    self.timestep = restored.timestep;
                }
                Err(e) => return Err(e),
            }
        }
        self.report.timesteps = self.timestep;
        self.report.final_backend = backend;
        Ok(self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{Assignment, Combine, Term};
    use crate::DistArray;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::{span, IndexDomain, Section};

    fn stencil(n: usize, np: usize) -> Program {
        let mut ds = DataSpace::new(np);
        let a = ds.declare("A", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        let b = ds.declare("B", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
        let mut prog = Program::new(vec![
            DistArray::from_fn("A", ds.effective(a).unwrap(), np, |i| i[0] as f64),
            DistArray::from_fn("B", ds.effective(b).unwrap(), np, |i| (i[0] * 2) as f64),
        ]);
        let doms: Vec<&IndexDomain> = prog.arrays.iter().map(|x| x.domain()).collect();
        let n = n as i64;
        let sweep = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, n)]),
            vec![
                Term::new(0, Section::from_triplets(vec![span(1, n - 1)])),
                Term::new(1, Section::from_triplets(vec![span(2, n)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        prog.push(sweep).unwrap();
        prog
    }

    #[test]
    fn session_matches_legacy_sequential_run() {
        let mut legacy = stencil(48, 4);
        let mut session = Session::new(stencil(48, 4));
        for _ in 0..5 {
            legacy.step_seq().unwrap();
        }
        let report = session.run(5).unwrap();
        assert_eq!(report.timesteps, 5);
        assert_eq!(report.failures, 0);
        assert_eq!(
            legacy.arrays[0].to_dense(),
            session.program().arrays[0].to_dense()
        );
    }

    #[test]
    fn session_accumulates_across_run_calls() {
        let mut s = Session::new(stencil(32, 4));
        s.run(3).unwrap();
        let rep = s.run(2).unwrap();
        assert_eq!(rep.timesteps, 5);
        assert_eq!(s.timestep(), 5);
        assert_eq!(s.program().cache_misses(), 1, "plans stay warm across calls");
    }

    #[test]
    fn threads_route_to_channels_fleet() {
        let mut s = Session::new(stencil(32, 4)).threads(4);
        s.run(3).unwrap();
        assert_eq!(s.program().spmd_workers_spawned(), 4);
        let mut twin = Session::new(stencil(32, 4));
        twin.run(3).unwrap();
        assert_eq!(
            s.program().arrays[0].to_dense(),
            twin.program().arrays[0].to_dense(),
            "channels ≡ shared-mem bit for bit"
        );
    }

    #[test]
    fn unfused_session_matches_fused() {
        let mut fused = Session::new(stencil(40, 4));
        let mut unfused = Session::new(stencil(40, 4)).fused(false);
        fused.run(4).unwrap();
        unfused.run(4).unwrap();
        assert_eq!(
            fused.program().arrays[0].to_dense(),
            unfused.program().arrays[0].to_dense()
        );
    }

    #[test]
    fn empty_program_runs_trivially() {
        let mut s = Session::new(Program::new(Vec::new()));
        let rep = s.run(3).unwrap();
        assert_eq!(rep.timesteps, 3);
    }

    #[test]
    fn into_program_returns_the_driven_program() {
        let mut s = Session::new(stencil(32, 4));
        s.run(2).unwrap();
        let prog = s.into_program();
        assert_eq!(prog.len(), 1);
        assert!(prog.cache_hits() > 0);
    }
}
