//! Distribution-aware checkpoint/restore and the fault-tolerant
//! trajectory driver.
//!
//! A checkpoint snapshots every [`DistArray`]'s distributed shards in
//! parallel: each simulated processor serializes exactly the rects it
//! owns (no dense gather anywhere), and a text manifest records the
//! index domains, processor counts, layout fingerprints, mapping
//! descriptions, and per-shard FNV-1a checksums. Because the manifest
//! carries the *global rect description* of every shard, a checkpoint
//! written under one distribution restores into any other: same
//! mapping and processor count take the fast path (whole-shard
//! installs that preserve mapping identity, so cached plans stay
//! valid), while a different layout or `np` scatters element-wise
//! through the rect descriptions into the current distribution.
//!
//! On-disk layout of one checkpoint:
//!
//! ```text
//! <dir>/step-<T:08>/manifest.txt       text, written last via tmp+rename
//! <dir>/step-<T:08>/<array>.p<k>.shard binary, one per (array, processor)
//! ```
//!
//! A shard file is `HPFSHRD1` magic, a little-endian `u64` element
//! count, a little-endian `u64` FNV-1a checksum of the payload, then
//! the elements as little-endian `f64`s in owned-region fill order
//! (rects in region order, column-major within each rect — the same
//! order [`DistArray`] buffers use in memory). The manifest is written
//! only after every shard hit the disk, so a crash mid-checkpoint
//! leaves a directory [`latest_checkpoint`] ignores rather than a
//! half-readable snapshot.
//!
//! [`run_trajectory`] combines the pieces into the recovery loop the
//! fault-injection suite exercises: run timesteps, checkpoint on a
//! cadence, and on an [`HpfError::Exchange`] fault restore the newest
//! checkpoint and replay forward — with bounded retries, backoff, and
//! graceful degradation from `Channels` to `SharedMem` when the worker
//! fleet keeps dying.

use crate::backend::Backend;
use crate::program::Program;
use crate::DistArray;
use hpf_core::HpfError;
use hpf_index::{Idx, Triplet};
use hpf_procs::ProcId;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic prefix of a shard file.
const MAGIC: &[u8; 8] = b"HPFSHRD1";
/// Shard header: magic + element count + checksum.
const HEADER: usize = 24;
/// Manifest file name inside a `step-<T>` directory.
const MANIFEST: &str = "manifest.txt";

/// Errors of the checkpoint subsystem — every variant pins the file (and
/// for manifests the line) that broke, so a corrupted snapshot is
/// diagnosable from the message alone.
#[derive(Debug)]
pub enum CkptError {
    /// An OS-level file operation failed.
    Io {
        /// File or directory the operation targeted.
        path: PathBuf,
        /// Operation that failed (`create`, `write`, `read`, `rename`, ...).
        op: &'static str,
        /// The underlying error text.
        detail: String,
    },
    /// The manifest is malformed.
    Manifest {
        /// Manifest file.
        path: PathBuf,
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// A shard file is corrupt (bad magic, truncation, checksum mismatch).
    Shard {
        /// Shard file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The checkpoint does not fit the program it is being restored into.
    Mismatch {
        /// What disagreed.
        detail: String,
    },
    /// No usable checkpoint exists under the directory.
    NoCheckpoint {
        /// Directory that was scanned.
        dir: PathBuf,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, op, detail } => {
                write!(f, "{op} {}: {detail}", path.display())
            }
            CkptError::Manifest { path, line, detail } => {
                write!(f, "{}:{line}: {detail}", path.display())
            }
            CkptError::Shard { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            CkptError::Mismatch { detail } => write!(f, "{detail}"),
            CkptError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint found under {}", dir.display())
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<CkptError> for HpfError {
    fn from(e: CkptError) -> Self {
        HpfError::NotConforming(format!("checkpoint: {e}"))
    }
}

/// What [`save_checkpoint`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptReport {
    /// The `step-<T>` directory the snapshot lives in.
    pub dir: PathBuf,
    /// Timestep the snapshot captures.
    pub timestep: u64,
    /// Arrays snapshotted.
    pub arrays: usize,
    /// Shard files written.
    pub shards: usize,
    /// Total bytes written (shards + manifest).
    pub bytes: u64,
}

/// What [`restore_checkpoint`] installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// Timestep the restored snapshot captures.
    pub timestep: u64,
    /// Arrays restored.
    pub arrays: usize,
    /// Arrays restored by the fast path (identical layout and `np`:
    /// whole-shard installs, mapping identity preserved).
    pub fast: usize,
    /// Arrays restored by element-wise scatter into a *different*
    /// distribution than the checkpoint was written under.
    pub remapped: usize,
    /// Elements written into distributed storage.
    pub elements: u64,
}

/// FNV-1a (64-bit) — the checksum of shard payloads and the layout
/// fingerprint hash. Offline-friendly, allocation-free, and stable
/// across platforms (all serialization is explicitly little-endian).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fmt_triplet(t: &Triplet) -> String {
    format!("{}:{}:{}", t.lower(), t.upper(), t.stride())
}

/// A region as manifest text: rects joined by `;`, dims of a rect
/// joined by `x`, each dim `lower:upper:stride`; `-` for the empty
/// region (a processor owning nothing still writes an empty shard).
fn fmt_region(region: &hpf_index::Region) -> String {
    if region.rects().iter().all(|r| r.is_empty()) {
        return "-".to_string();
    }
    region
        .rects()
        .iter()
        .map(|r| r.dims().iter().map(fmt_triplet).collect::<Vec<_>>().join("x"))
        .collect::<Vec<_>>()
        .join(";")
}

/// One parsed rect: per-dimension `(lower, upper, stride)`.
type RectSpec = Vec<(i64, i64, i64)>;

fn parse_rects(spec: &str) -> Result<Vec<RectSpec>, String> {
    if spec == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for rect in spec.split(';') {
        let mut dims = Vec::new();
        for dim in rect.split('x') {
            let parts: Vec<&str> = dim.split(':').collect();
            if parts.len() != 3 {
                return Err(format!("rect dim `{dim}` is not lower:upper:stride"));
            }
            let mut vals = [0i64; 3];
            for (v, p) in vals.iter_mut().zip(&parts) {
                *v = p
                    .parse::<i64>()
                    .map_err(|_| format!("rect bound `{p}` is not an integer"))?;
            }
            if vals[2] == 0 {
                return Err(format!("rect dim `{dim}` has zero stride"));
            }
            dims.push((vals[0], vals[1], vals[2]));
        }
        out.push(dims);
    }
    Ok(out)
}

/// Elements of one triplet spec, by the Fortran rule.
fn spec_len((lo, hi, stride): (i64, i64, i64)) -> usize {
    let n = (hi as i128 - lo as i128 + stride as i128) / stride as i128;
    if n <= 0 {
        0
    } else {
        n as usize
    }
}

fn spec_volume(rect: &RectSpec) -> usize {
    rect.iter().map(|&d| spec_len(d)).product()
}

/// Iterate a rect spec in shard fill order (column-major, dimension 0
/// fastest — matching [`hpf_index::Rect::iter`] and hence the order
/// shard payloads were written in), calling `f` with each global index.
fn for_each_index(
    rect: &RectSpec,
    f: &mut impl FnMut(&Idx) -> Result<(), CkptError>,
) -> Result<(), CkptError> {
    let lens: Vec<usize> = rect.iter().map(|&d| spec_len(d)).collect();
    if lens.contains(&0) {
        return Ok(());
    }
    let mut counters = vec![0usize; rect.len()];
    let mut idx =
        Idx::new(&rect.iter().map(|&(lo, _, _)| lo).collect::<Vec<_>>()).expect("rank checked");
    loop {
        f(&idx)?;
        let mut d = 0;
        loop {
            if d == rect.len() {
                return Ok(());
            }
            counters[d] += 1;
            if counters[d] < lens[d] {
                idx = idx.with(d, rect[d].0 + counters[d] as i64 * rect[d].2);
                break;
            }
            counters[d] = 0;
            idx = idx.with(d, rect[d].0);
            d += 1;
        }
    }
}

/// Fingerprint of an array's physical layout: `np` plus the rect
/// decomposition of every processor's owned region. Two arrays with
/// equal fingerprints store their elements in bit-identical shard
/// order, which is exactly the precondition of the fast restore path.
fn layout_fingerprint(arr: &DistArray<f64>) -> u64 {
    let mut s = format!("np={}", arr.np());
    for p0 in 0..arr.np() {
        s.push('|');
        s.push_str(&fmt_region(arr.region_of(ProcId(p0 as u32 + 1))));
    }
    fnv1a64(s.as_bytes())
}

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> CkptError {
    CkptError::Io { path: path.to_path_buf(), op, detail: e.to_string() }
}

/// Serialize one shard to `path`. Returns the bytes written.
fn write_shard(path: &Path, data: &[f64]) -> Result<(u64, u64), CkptError> {
    let mut payload = Vec::with_capacity(data.len() * 8);
    for v in data {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a64(&payload);
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf.extend_from_slice(&payload);
    fs::write(path, &buf).map_err(|e| io_err(path, "write", e))?;
    Ok((buf.len() as u64, checksum))
}

/// Read and validate one shard file: magic, element count, payload
/// length, and checksum all have to agree before any value is trusted.
fn read_shard(path: &Path) -> Result<(Vec<f64>, u64), CkptError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, "read", e))?;
    let fail = |detail: String| CkptError::Shard { path: path.to_path_buf(), detail };
    if bytes.len() < HEADER {
        return Err(fail(format!("truncated shard: {} byte(s), header needs {HEADER}", bytes.len())));
    }
    if &bytes[..8] != MAGIC {
        return Err(fail("bad magic (not an HPF shard file)".to_string()));
    }
    let elements = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let stored = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let want = HEADER + elements * 8;
    if bytes.len() != want {
        return Err(fail(format!(
            "truncated shard: header promises {elements} element(s) ({want} bytes), file holds {}",
            bytes.len()
        )));
    }
    let payload = &bytes[HEADER..];
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(fail(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }
    let mut data = Vec::with_capacity(elements);
    for chunk in payload.chunks_exact(8) {
        data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    Ok((data, stored))
}

struct ShardMeta {
    array: usize,
    proc: usize,
    elements: usize,
    checksum: u64,
    file: String,
    rects: String,
    bytes: u64,
}

/// Snapshot `arrays` at `timestep` into `dir/step-<timestep>/`.
///
/// Shards are written in parallel — one writer thread per simulated
/// processor, each serializing only the rects that processor owns, of
/// every array. The manifest is written last (tmp + rename), so a
/// directory containing a manifest always describes fully-written
/// shards.
pub fn save_checkpoint(
    arrays: &[DistArray<f64>],
    timestep: u64,
    dir: &Path,
) -> Result<CkptReport, CkptError> {
    for arr in arrays {
        if arr.name().chars().any(|c| c.is_whitespace() || c == '/') {
            return Err(CkptError::Mismatch {
                detail: format!("array name `{}` cannot be checkpointed", arr.name()),
            });
        }
    }
    let step_dir = dir.join(format!("step-{timestep:08}"));
    fs::create_dir_all(&step_dir).map_err(|e| io_err(&step_dir, "create", e))?;
    let max_np = arrays.iter().map(DistArray::np).max().unwrap_or(0);

    let mut metas: Vec<ShardMeta> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..max_np)
            .map(|p0| {
                let step_dir = &step_dir;
                s.spawn(move || -> Result<Vec<ShardMeta>, CkptError> {
                    let mut out = Vec::new();
                    for (k, arr) in arrays.iter().enumerate() {
                        if p0 >= arr.np() {
                            continue;
                        }
                        let region = arr.region_of(ProcId(p0 as u32 + 1));
                        let data = arr.local(p0);
                        if data.len() != region.volume_disjoint() {
                            return Err(CkptError::Mismatch {
                                detail: format!(
                                    "array `{}` shard {} holds {} element(s) but owns {} — \
                                     storage is mid-exchange or fault-damaged; checkpoint \
                                     only between timesteps",
                                    arr.name(),
                                    p0 + 1,
                                    data.len(),
                                    region.volume_disjoint()
                                ),
                            });
                        }
                        let file = format!("{}.p{}.shard", arr.name(), p0);
                        let (bytes, checksum) = write_shard(&step_dir.join(&file), data)?;
                        out.push(ShardMeta {
                            array: k,
                            proc: p0,
                            elements: data.len(),
                            checksum,
                            file,
                            rects: fmt_region(region),
                            bytes,
                        });
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut first_err = None;
        for h in handles {
            match h.join().expect("checkpoint writer thread panicked") {
                Ok(mut metas) => all.append(&mut metas),
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(all),
        }
    })?;
    metas.sort_by_key(|m| (m.array, m.proc));

    let mut manifest = String::new();
    manifest.push_str("hpf-checkpoint v1\n");
    manifest.push_str(&format!("timestep {timestep}\n"));
    manifest.push_str(&format!("np {max_np}\n"));
    manifest.push_str(&format!("arrays {}\n", arrays.len()));
    for (k, arr) in arrays.iter().enumerate() {
        let shape =
            arr.domain().dims().iter().map(fmt_triplet).collect::<Vec<_>>().join(",");
        manifest.push_str(&format!(
            "array {} np {} shape {} layout {:016x} mapping {}\n",
            arr.name(),
            arr.np(),
            shape,
            layout_fingerprint(arr),
            arr.mapping()
        ));
        for m in metas.iter().filter(|m| m.array == k) {
            manifest.push_str(&format!(
                "shard {} {} elements {} checksum {:016x} file {} rects {}\n",
                arr.name(),
                m.proc,
                m.elements,
                m.checksum,
                m.file,
                m.rects
            ));
        }
    }
    manifest.push_str("end\n");

    let tmp = step_dir.join("manifest.tmp");
    let final_path = step_dir.join(MANIFEST);
    fs::write(&tmp, &manifest).map_err(|e| io_err(&tmp, "write", e))?;
    fs::rename(&tmp, &final_path).map_err(|e| io_err(&final_path, "rename", e))?;

    Ok(CkptReport {
        dir: step_dir,
        timestep,
        arrays: arrays.len(),
        shards: metas.len(),
        bytes: metas.iter().map(|m| m.bytes).sum::<u64>() + manifest.len() as u64,
    })
}

struct ShardEntry {
    proc: usize,
    elements: usize,
    checksum: u64,
    file: String,
    rects: Vec<RectSpec>,
}

struct ArrayEntry {
    name: String,
    np: usize,
    shape: Vec<(i64, i64, i64)>,
    layout: u64,
    shards: Vec<ShardEntry>,
}

struct Manifest {
    timestep: u64,
    arrays: Vec<ArrayEntry>,
}

fn parse_manifest(step_dir: &Path) -> Result<Manifest, CkptError> {
    let path = step_dir.join(MANIFEST);
    let text = fs::read_to_string(&path).map_err(|e| io_err(&path, "read", e))?;
    let err = |line: usize, detail: String| CkptError::Manifest {
        path: path.clone(),
        line,
        detail,
    };
    let mut timestep = None;
    let mut declared_arrays = None;
    let mut arrays: Vec<ArrayEntry> = Vec::new();
    let mut saw_header = false;
    let mut saw_end = false;
    for (n0, raw) in text.lines().enumerate() {
        let lineno = n0 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if saw_end {
            return Err(err(lineno, "content after `end`".to_string()));
        }
        if !saw_header {
            if line != "hpf-checkpoint v1" {
                return Err(err(
                    lineno,
                    format!("not an hpf-checkpoint v1 manifest (got `{line}`)"),
                ));
            }
            saw_header = true;
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let int = |pos: usize, what: &str| -> Result<u64, CkptError> {
            toks.get(pos)
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| err(lineno, format!("expected {what} at token {}", pos + 1)))
        };
        let hex = |pos: usize, what: &str| -> Result<u64, CkptError> {
            toks.get(pos)
                .and_then(|t| u64::from_str_radix(t, 16).ok())
                .ok_or_else(|| err(lineno, format!("expected hex {what} at token {}", pos + 1)))
        };
        let key = |pos: usize, want: &str| -> Result<(), CkptError> {
            if toks.get(pos) == Some(&want) {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!(
                        "expected keyword `{want}` at token {}, got `{}`",
                        pos + 1,
                        toks.get(pos).unwrap_or(&"<eol>")
                    ),
                ))
            }
        };
        match toks[0] {
            "timestep" => timestep = Some(int(1, "timestep")?),
            "np" => {
                int(1, "processor count")?;
            }
            "arrays" => declared_arrays = Some(int(1, "array count")? as usize),
            "array" => {
                let name = toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "array line without a name".to_string()))?
                    .to_string();
                key(2, "np")?;
                let np = int(3, "processor count")? as usize;
                key(4, "shape")?;
                let shape_tok = toks
                    .get(5)
                    .ok_or_else(|| err(lineno, "array line without a shape".to_string()))?;
                // shape dims are comma-joined triplets (rect dims use `x`)
                let shape = parse_rects(&shape_tok.replace(',', "x"))
                    .map_err(|e| err(lineno, e))?
                    .into_iter()
                    .next()
                    .ok_or_else(|| err(lineno, "empty shape".to_string()))?;
                key(6, "layout")?;
                let layout = hex(7, "layout fingerprint")?;
                key(8, "mapping")?;
                arrays.push(ArrayEntry { name, np, shape, layout, shards: Vec::new() });
            }
            "shard" => {
                let arr = arrays.last_mut().ok_or_else(|| {
                    err(lineno, "shard line before any array line".to_string())
                })?;
                let name = toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "shard line without a name".to_string()))?;
                if *name != arr.name {
                    return Err(err(
                        lineno,
                        format!("shard of `{name}` under array `{}`", arr.name),
                    ));
                }
                let proc = int(2, "processor index")? as usize;
                key(3, "elements")?;
                let elements = int(4, "element count")? as usize;
                key(5, "checksum")?;
                let checksum = hex(6, "checksum")?;
                key(7, "file")?;
                let file = toks
                    .get(8)
                    .ok_or_else(|| err(lineno, "shard line without a file".to_string()))?
                    .to_string();
                key(9, "rects")?;
                let rects_tok = toks
                    .get(10)
                    .ok_or_else(|| err(lineno, "shard line without rects".to_string()))?;
                let rects = parse_rects(rects_tok).map_err(|e| err(lineno, e))?;
                let volume: usize = rects.iter().map(spec_volume).sum();
                if volume != elements {
                    return Err(err(
                        lineno,
                        format!("rects cover {volume} element(s) but shard declares {elements}"),
                    ));
                }
                arr.shards.push(ShardEntry { proc, elements, checksum, file, rects });
            }
            "end" => saw_end = true,
            other => return Err(err(lineno, format!("unknown record `{other}`"))),
        }
    }
    if !saw_end {
        return Err(err(
            text.lines().count() + 1,
            "manifest has no `end` line (truncated write?)".to_string(),
        ));
    }
    let timestep = timestep
        .ok_or_else(|| err(0, "manifest declares no timestep".to_string()))?;
    if let Some(n) = declared_arrays {
        if n != arrays.len() {
            return Err(err(
                0,
                format!("manifest declares {n} array(s) but describes {}", arrays.len()),
            ));
        }
    }
    Ok(Manifest { timestep, arrays })
}

/// Restore array values from the checkpoint in `step_dir`.
///
/// Arrays are matched to checkpoint entries **by name**; the index
/// domain must agree exactly, but the mapping and processor count need
/// not: an array whose current layout fingerprint and `np` match the
/// checkpoint's is restored by whole-shard installs (fast — and the
/// mapping `Arc` is untouched, so every cached plan keyed on it stays
/// valid), while anything else is scattered element-wise through the
/// manifest's rect descriptions into the current distribution. Every
/// shard checksum is verified before a single element is written.
pub fn restore_checkpoint(
    arrays: &mut [DistArray<f64>],
    step_dir: &Path,
) -> Result<RestoreReport, CkptError> {
    let manifest = parse_manifest(step_dir)?;
    let mut used = vec![false; manifest.arrays.len()];
    let mut report = RestoreReport {
        timestep: manifest.timestep,
        arrays: 0,
        fast: 0,
        remapped: 0,
        elements: 0,
    };
    for arr in arrays.iter_mut() {
        let (slot, entry) = manifest
            .arrays
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == arr.name())
            .ok_or_else(|| CkptError::Mismatch {
                detail: format!(
                    "checkpoint at {} has no data for array `{}`",
                    step_dir.display(),
                    arr.name()
                ),
            })?;
        used[slot] = true;
        let dom = arr.domain();
        if dom.rank() != entry.shape.len()
            || dom.dims().iter().zip(&entry.shape).any(|(t, &(lo, hi, st))| {
                t.lower() != lo || t.upper() != hi || t.stride() != st
            })
        {
            let shape =
                dom.dims().iter().map(fmt_triplet).collect::<Vec<_>>().join(",");
            let want = entry
                .shape
                .iter()
                .map(|&(lo, hi, st)| format!("{lo}:{hi}:{st}"))
                .collect::<Vec<_>>()
                .join(",");
            return Err(CkptError::Mismatch {
                detail: format!(
                    "array `{}` has domain {shape} but the checkpoint was written for {want}",
                    arr.name()
                ),
            });
        }
        let fast = entry.np == arr.np() && entry.layout == layout_fingerprint(arr);
        if fast {
            restore_fast(arr, entry, step_dir)?;
            report.fast += 1;
        } else {
            restore_scatter(arr, entry, step_dir)?;
            report.remapped += 1;
        }
        report.arrays += 1;
        report.elements += entry.shards.iter().map(|s| s.elements as u64).sum::<u64>();
    }
    if let Some(slot) = used.iter().position(|&u| !u) {
        return Err(CkptError::Mismatch {
            detail: format!(
                "checkpoint contains array `{}` unknown to the program",
                manifest.arrays[slot].name
            ),
        });
    }
    Ok(report)
}

/// Read a shard named by a manifest entry and cross-check it against
/// the manifest's own element count and checksum — catching a shard
/// file swapped in from a different snapshot even when the file itself
/// is internally consistent.
fn read_manifest_shard(
    step_dir: &Path,
    se: &ShardEntry,
) -> Result<(Vec<f64>, u64), CkptError> {
    let path = step_dir.join(&se.file);
    let (data, checksum) = read_shard(&path)?;
    if data.len() != se.elements {
        return Err(CkptError::Shard {
            path,
            detail: format!(
                "manifest promises {} element(s), shard holds {}",
                se.elements,
                data.len()
            ),
        });
    }
    if checksum != se.checksum {
        return Err(CkptError::Shard {
            path,
            detail: format!(
                "shard checksum {checksum:016x} disagrees with the manifest's {:016x} \
                 (shard from a different snapshot?)",
                se.checksum
            ),
        });
    }
    Ok((data, checksum))
}

/// Fast path: the current layout is bit-identical to the checkpoint's,
/// so each shard file *is* the local buffer. All shards are read and
/// verified before any is installed — a corrupt file leaves the array
/// untouched.
fn restore_fast(
    arr: &mut DistArray<f64>,
    entry: &ArrayEntry,
    step_dir: &Path,
) -> Result<(), CkptError> {
    let mut shards: Vec<Option<Vec<f64>>> = (0..arr.np()).map(|_| None).collect();
    for se in &entry.shards {
        if se.proc >= arr.np() {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "array `{}` shard names processor {} but np is {}",
                    entry.name,
                    se.proc + 1,
                    arr.np()
                ),
            });
        }
        let (data, _) = read_manifest_shard(step_dir, se)?;
        let want = arr.region_of(ProcId(se.proc as u32 + 1)).volume_disjoint();
        if data.len() != want {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "array `{}` shard {} holds {} element(s) but the region owns {want}",
                    entry.name,
                    se.proc + 1,
                    data.len()
                ),
            });
        }
        shards[se.proc] = Some(data);
    }
    for (p0, slot) in shards.into_iter().enumerate() {
        let data = slot.ok_or_else(|| CkptError::Mismatch {
            detail: format!(
                "array `{}` has no shard for processor {} in the checkpoint",
                entry.name,
                p0 + 1
            ),
        })?;
        arr.put_local(p0, data);
    }
    Ok(())
}

/// Scatter path: the checkpoint was written under a different layout
/// or processor count. Re-establish the storage invariant (a dead
/// worker may have taken shards with it), then walk each checkpoint
/// shard's rects in fill order and write every element into the
/// current distribution through the global index space.
fn restore_scatter(
    arr: &mut DistArray<f64>,
    entry: &ArrayEntry,
    step_dir: &Path,
) -> Result<(), CkptError> {
    let dom = arr.domain().clone();
    for se in &entry.shards {
        for rect in &se.rects {
            if rect.len() != dom.rank() {
                return Err(CkptError::Mismatch {
                    detail: format!(
                        "array `{}` shard {} has a rank-{} rect but the domain is rank {}",
                        entry.name,
                        se.proc + 1,
                        rect.len(),
                        dom.rank()
                    ),
                });
            }
            for (d, &spec) in rect.iter().enumerate() {
                let (lo, hi, stride) = spec;
                let n = spec_len(spec);
                if n == 0 {
                    continue;
                }
                let last = lo + (n as i64 - 1) * stride;
                let (min, max) = (lo.min(last), lo.max(last));
                let t = dom.dim(d);
                if min < t.min().unwrap_or(i64::MAX) || max > t.max().unwrap_or(i64::MIN) {
                    return Err(CkptError::Mismatch {
                        detail: format!(
                            "array `{}` shard {} rect dim {d} spans {lo}:{hi}:{stride}, \
                             outside the domain",
                            entry.name,
                            se.proc + 1
                        ),
                    });
                }
            }
        }
    }
    arr.heal_locals();
    for se in &entry.shards {
        let (data, _) = read_manifest_shard(step_dir, se)?;
        let mut k = 0usize;
        for rect in &se.rects {
            for_each_index(rect, &mut |idx| {
                arr.set(idx, data[k]);
                k += 1;
                Ok(())
            })?;
        }
    }
    Ok(())
}

/// The newest complete checkpoint under `dir` (its `step-<T>`
/// directory), or `None` if the directory is missing or holds no
/// directory with a manifest — half-written snapshots (no manifest
/// yet) are invisible by construction.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, CkptError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(dir, "scan", e)),
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in rd {
        let entry = entry.map_err(|e| io_err(dir, "scan", e))?;
        let name = entry.file_name();
        let Some(t) = name
            .to_str()
            .and_then(|n| n.strip_prefix("step-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let path = entry.path();
        if !path.join(MANIFEST).is_file() {
            continue;
        }
        if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
            best = Some((t, path));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Checkpoint cadence for [`run_trajectory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding the `step-<T>` snapshots.
    pub dir: PathBuf,
    /// Checkpoint after every `every` completed timesteps (0 = only the
    /// baseline at the start and the final state).
    pub every: u64,
}

impl CheckpointSpec {
    /// Checkpoint into `dir` every `every` timesteps.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        CheckpointSpec { dir: dir.into(), every }
    }
}

/// How [`run_trajectory`] reacts to exchange faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Give up after this many *consecutive* failed timesteps.
    pub max_retries: u32,
    /// Base backoff slept before a retry (multiplied by the consecutive
    /// failure count).
    pub backoff: Duration,
    /// After this many consecutive failures on the `Channels` backend,
    /// degrade to `SharedMem` for the remainder of the trajectory.
    pub degrade_after: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            backoff: Duration::from_millis(25),
            degrade_after: 3,
        }
    }
}

/// What [`run_trajectory`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryReport {
    /// Timesteps completed (the trajectory's end timestep).
    pub timesteps: u64,
    /// Exchange faults survived.
    pub failures: u64,
    /// Timesteps re-executed after restores (work lost to faults).
    pub replayed: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// True iff the trajectory degraded from `Channels` to `SharedMem`.
    pub degraded: bool,
    /// Backend the trajectory finished on.
    pub final_backend: Backend,
}

/// Drive `program` from timestep `start` to `steps`, checkpointing on
/// the `ckpt` cadence and recovering from exchange faults.
///
/// On a fault ([`HpfError::Exchange`]) the driver restores the newest
/// checkpoint — whole-shard fast path, mapping identity preserved, so
/// the plan cache survives — waits out a linear backoff, and replays
/// forward from the restored timestep. The `Channels` worker fleet
/// respawns lazily on the retry. After `degrade_after` consecutive
/// failures a `Channels` trajectory degrades to `SharedMem`; after
/// `max_retries` consecutive failures (or any fault with no checkpoint
/// to restore) the fault is returned to the caller. Non-exchange
/// errors propagate immediately.
///
/// Deprecated: drive the program through a
/// [`Session`](crate::Session) instead —
/// `Session::new(program).backend(b).checkpoint(spec).recovery(policy).run(steps)`
/// executes the same recovery loop (and composes with adaptive
/// redistribution).
#[deprecated(note = "use `Session::new(program).checkpoint(spec).run(steps)` instead")]
pub fn run_trajectory(
    program: &mut Program,
    backend: Backend,
    steps: u64,
    start: u64,
    ckpt: Option<&CheckpointSpec>,
    policy: &RecoveryPolicy,
) -> Result<TrajectoryReport, HpfError> {
    let mut backend = backend;
    let mut t = start;
    let mut consecutive = 0u32;
    let mut report = TrajectoryReport {
        timesteps: start,
        failures: 0,
        replayed: 0,
        checkpoints: 0,
        degraded: false,
        final_backend: backend,
    };
    // Baseline snapshot: a fault in the very first timestep must have
    // something to restore.
    if let Some(spec) = ckpt {
        program.checkpoint(&spec.dir, t)?;
        report.checkpoints += 1;
    }
    while t < steps {
        match program.step_on(backend) {
            Ok(_) => {
                t += 1;
                consecutive = 0;
                if let Some(spec) = ckpt {
                    if t == steps || (spec.every > 0 && t % spec.every == 0) {
                        program.checkpoint(&spec.dir, t)?;
                        report.checkpoints += 1;
                    }
                }
            }
            Err(e @ HpfError::Exchange { .. }) => {
                report.failures += 1;
                consecutive += 1;
                let Some(spec) = ckpt else {
                    return Err(e);
                };
                if consecutive > policy.max_retries {
                    return Err(e);
                }
                if backend == Backend::Channels && consecutive >= policy.degrade_after {
                    backend = Backend::SharedMem;
                    report.degraded = true;
                }
                std::thread::sleep(policy.backoff * consecutive);
                let restored = program.restore_latest(&spec.dir)?;
                debug_assert!(restored.timestep <= t);
                report.replayed += t - restored.timestep;
                t = restored.timestep;
            }
            Err(e) => return Err(e),
        }
    }
    report.timesteps = t;
    report.final_backend = backend;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
    use hpf_index::IndexDomain;

    fn mk(name: &str, n: usize, np: usize, fmt: FormatSpec) -> DistArray<f64> {
        let mut ds = DataSpace::new(np);
        let id = ds.declare(name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![fmt])).unwrap();
        DistArray::from_fn(name, ds.effective(id).unwrap(), np, |i| (i[0] * 3) as f64)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("hpf-ckpt-unit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fnv_test_vectors() {
        // The canonical FNV-1a reference values.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roundtrip_same_layout_takes_fast_path() {
        let dir = tmpdir("fast");
        let mut arrays = vec![mk("A", 37, 4, FormatSpec::Block), mk("B", 37, 4, FormatSpec::Cyclic(3))];
        let want: Vec<Vec<f64>> = arrays.iter().map(DistArray::to_dense).collect();
        let rep = save_checkpoint(&arrays, 7, &dir).unwrap();
        assert_eq!((rep.timestep, rep.arrays, rep.shards), (7, 2, 8));
        // clobber the values, then restore
        for a in &mut arrays {
            for i in a.domain().clone().iter() {
                a.set(&i, -1.0);
            }
        }
        let r = restore_checkpoint(&mut arrays, &rep.dir).unwrap();
        assert_eq!((r.timestep, r.arrays, r.fast, r.remapped), (7, 2, 2, 0));
        assert_eq!(r.elements, 74);
        for (a, w) in arrays.iter().zip(&want) {
            assert_eq!(&a.to_dense(), w, "{} must restore bit-for-bit", a.name());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_scatters_into_different_np_and_layout() {
        let dir = tmpdir("scatter");
        let saved = vec![mk("A", 41, 8, FormatSpec::Block)];
        let want = saved[0].to_dense();
        let rep = save_checkpoint(&saved, 3, &dir).unwrap();
        // same name + domain, different np and format
        let mut target = vec![mk("A", 41, 4, FormatSpec::Cyclic(2))];
        for i in target[0].domain().clone().iter() {
            target[0].set(&i, -9.0);
        }
        let r = restore_checkpoint(&mut target, &rep.dir).unwrap();
        assert_eq!((r.fast, r.remapped), (0, 1));
        assert_eq!(target[0].to_dense(), want, "cross-distribution restore is exact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_shard_is_rejected_by_checksum() {
        let dir = tmpdir("corrupt");
        let mut arrays = vec![mk("A", 16, 2, FormatSpec::Block)];
        let rep = save_checkpoint(&arrays, 1, &dir).unwrap();
        let shard = rep.dir.join("A.p0.shard");
        let mut bytes = fs::read(&shard).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit
        fs::write(&shard, &bytes).unwrap();
        let err = restore_checkpoint(&mut arrays, &rep.dir).unwrap_err();
        assert!(
            matches!(&err, CkptError::Shard { detail, .. } if detail.contains("checksum mismatch")),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_shard_is_rejected_with_byte_counts() {
        let dir = tmpdir("truncate");
        let mut arrays = vec![mk("A", 16, 2, FormatSpec::Block)];
        let rep = save_checkpoint(&arrays, 1, &dir).unwrap();
        let shard = rep.dir.join("A.p1.shard");
        let bytes = fs::read(&shard).unwrap();
        fs::write(&shard, &bytes[..bytes.len() - 5]).unwrap();
        let err = restore_checkpoint(&mut arrays, &rep.dir).unwrap_err();
        assert!(
            matches!(&err, CkptError::Shard { detail, .. } if detail.contains("truncated")),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mangled_manifest_reports_the_line() {
        let dir = tmpdir("manifest");
        let mut arrays = vec![mk("A", 16, 2, FormatSpec::Block)];
        let rep = save_checkpoint(&arrays, 1, &dir).unwrap();
        let mpath = rep.dir.join(MANIFEST);
        let text = fs::read_to_string(&mpath).unwrap().replace("elements", "elephants");
        fs::write(&mpath, text).unwrap();
        let err = restore_checkpoint(&mut arrays, &rep.dir).unwrap_err();
        match err {
            CkptError::Manifest { line, ref detail, .. } => {
                assert_eq!(line, 6, "first shard line");
                assert!(detail.contains("elements"), "got {detail}");
            }
            other => panic!("expected Manifest error, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn domain_mismatch_is_a_precise_diagnostic() {
        let dir = tmpdir("domain");
        let arrays = vec![mk("A", 16, 2, FormatSpec::Block)];
        let rep = save_checkpoint(&arrays, 1, &dir).unwrap();
        let mut other = vec![mk("A", 32, 2, FormatSpec::Block)];
        let err = restore_checkpoint(&mut other, &rep.dir).unwrap_err();
        assert!(
            matches!(&err, CkptError::Mismatch { detail } if detail.contains("domain")),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_checkpoint_picks_the_newest_complete_one() {
        let dir = tmpdir("latest");
        assert_eq!(latest_checkpoint(&dir.join("nope")).unwrap(), None);
        let arrays = vec![mk("A", 8, 2, FormatSpec::Block)];
        save_checkpoint(&arrays, 2, &dir).unwrap();
        let newest = save_checkpoint(&arrays, 11, &dir).unwrap();
        // an incomplete (manifest-less) later snapshot must be invisible
        fs::create_dir_all(dir.join("step-00000099")).unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(newest.dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_shards_roundtrip() {
        // np larger than the extent: trailing processors own nothing
        let dir = tmpdir("empty");
        let mut arrays = vec![mk("A", 3, 6, FormatSpec::Block)];
        let want = arrays[0].to_dense();
        let rep = save_checkpoint(&arrays, 1, &dir).unwrap();
        assert_eq!(rep.shards, 6);
        let r = restore_checkpoint(&mut arrays, &rep.dir).unwrap();
        assert_eq!(r.elements, 3);
        assert_eq!(arrays[0].to_dense(), want);
        let _ = fs::remove_dir_all(&dir);
    }
}
