//! Inquiry functions (§7/§8.2).
//!
//! The paper's closing argument against templates is that distributions are
//! *attributes of arrays*: "Even in the case of inherited distributions
//! which cannot be explicitly specified, inquiry functions can be used to
//! determine every aspect of the distribution passed into the procedure."
//! This module is those inquiry functions.

use crate::dist::format::DimFormat;
use crate::forest::{ArrayId, DataSpace};
use crate::mapping::EffectiveDist;
use crate::HpfError;
use hpf_index::Idx;
use hpf_procs::ProcId;
use std::fmt;

/// The format kind of one dimension, as reported by inquiry (mirrors the
/// HPF `HPF_DISTRIBUTION` intrinsic's per-dimension answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimKind {
    /// HPF `BLOCK`.
    Block,
    /// Vienna balanced block.
    BlockBalanced,
    /// `GENERAL_BLOCK`.
    GeneralBlock,
    /// `CYCLIC(k)`.
    Cyclic(u64),
    /// Not distributed.
    Collapsed,
    /// User-defined (extension).
    Indirect,
}

impl fmt::Display for DimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimKind::Block => write!(f, "BLOCK"),
            DimKind::BlockBalanced => write!(f, "BLOCK_BALANCED"),
            DimKind::GeneralBlock => write!(f, "GENERAL_BLOCK"),
            DimKind::Cyclic(1) => write!(f, "CYCLIC"),
            DimKind::Cyclic(k) => write!(f, "CYCLIC({k})"),
            DimKind::Collapsed => write!(f, "*"),
            DimKind::Indirect => write!(f, "INDIRECT"),
        }
    }
}

/// What kind of mapping an array currently has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Format-expressible direct distribution.
    Direct,
    /// `CONSTRUCT(α, δ_B)` of a secondary array.
    Constructed,
    /// Inherited through a section at a procedure boundary.
    Inherited,
    /// Replicated over a fixed processor set.
    Replicated,
}

/// A full inquiry report for one array.
#[derive(Debug, Clone)]
pub struct ArrayDescriptor {
    /// Array name.
    pub name: String,
    /// Index domain rendering (e.g. `[1:100, 0:9]`), if allocated.
    pub domain: Option<String>,
    /// Primary or secondary, with the base name for secondaries.
    pub role: Role,
    /// `DYNAMIC` attribute.
    pub dynamic: bool,
    /// `ALLOCATABLE` attribute.
    pub allocatable: bool,
    /// Currently created.
    pub allocated: bool,
    /// Mapping classification.
    pub kind: Option<MappingKind>,
    /// Per-dimension formats (only for direct mappings).
    pub dims: Vec<DimKind>,
    /// Names of arrays aligned to this one.
    pub children: Vec<String>,
}

/// The forest role of an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Root of an alignment tree (possibly degenerate).
    Primary,
    /// Aligned to the named base.
    Secondary {
        /// The alignment base's name.
        base: String,
    },
    /// Not currently part of the forest (unallocated allocatable).
    Absent,
}

impl fmt::Display for ArrayDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(d) = &self.domain {
            write!(f, "{d}")?;
        }
        match &self.role {
            Role::Primary => write!(f, "  primary")?,
            Role::Secondary { base } => write!(f, "  aligned→{base}")?,
            Role::Absent => write!(f, "  (unallocated)")?,
        }
        if let Some(k) = self.kind {
            write!(f, "  [{k:?}")?;
            if !self.dims.is_empty() {
                write!(f, ": ")?;
                for (i, d) in self.dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
            }
            write!(f, "]")?;
        }
        if self.dynamic {
            write!(f, " DYNAMIC")?;
        }
        if self.allocatable {
            write!(f, " ALLOCATABLE")?;
        }
        Ok(())
    }
}

/// Classify an effective distribution.
pub fn mapping_kind(eff: &EffectiveDist) -> MappingKind {
    match eff {
        EffectiveDist::Direct(_) => MappingKind::Direct,
        EffectiveDist::Aligned { .. } => MappingKind::Constructed,
        EffectiveDist::Embedded { .. } => MappingKind::Inherited,
        EffectiveDist::Replicated { .. } => MappingKind::Replicated,
    }
}

/// Per-dimension format kinds of a direct mapping (empty for composed
/// mappings, which have no format-list rendering — exactly the §8.2 point).
pub fn dim_kinds(eff: &EffectiveDist) -> Vec<DimKind> {
    match eff.as_direct() {
        None => Vec::new(),
        Some(d) => d
            .dim_formats()
            .iter()
            .map(|f| match f {
                None => DimKind::Collapsed,
                Some(DimFormat::Block) => DimKind::Block,
                Some(DimFormat::BlockBalanced) => DimKind::BlockBalanced,
                Some(DimFormat::GeneralBlock(_)) => DimKind::GeneralBlock,
                Some(DimFormat::Cyclic(k)) => DimKind::Cyclic(*k),
                Some(DimFormat::Collapsed) => DimKind::Collapsed,
                Some(DimFormat::Indirect(_)) => DimKind::Indirect,
            })
            .collect(),
    }
}

/// Build the full descriptor for an array.
pub fn describe(space: &DataSpace, id: ArrayId) -> ArrayDescriptor {
    let allocated = space.is_alive(id);
    let (kind, dims) = match space.effective(id) {
        Ok(eff) => (Some(mapping_kind(&eff)), dim_kinds(&eff)),
        Err(_) => (None, Vec::new()),
    };
    ArrayDescriptor {
        name: space.name(id).to_string(),
        domain: space.domain(id).map(|d| d.to_string()),
        role: if !allocated {
            Role::Absent
        } else if space.is_primary(id) {
            Role::Primary
        } else {
            Role::Secondary {
                base: space.name(space.base_of(id).expect("secondary")).to_string(),
            }
        },
        dynamic: space.is_dynamic(id),
        allocatable: space.is_allocatable(id),
        allocated,
        kind,
        dims,
        children: space.children(id).iter().map(|&c| space.name(c).to_string()).collect(),
    }
}

/// One axis of an alignment, as reported by inquiry (mirrors the HPF
/// `HPF_ALIGNMENT` intrinsic's per-dimension answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignAxis {
    /// The base dimension takes the constant subscript.
    Constant(i64),
    /// `a·(alignee dim d) + c`.
    Affine {
        /// Alignee dimension (0-based) feeding this base dimension.
        dim: usize,
        /// Stride.
        stride: i64,
        /// Offset.
        offset: i64,
    },
    /// General expression of one alignee dimension (MAX/MIN truncation).
    Expression(usize),
    /// Replicated over the base dimension.
    Replicated,
}

impl fmt::Display for AlignAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignAxis::Constant(c) => write!(f, "{c}"),
            AlignAxis::Affine { dim, stride, offset } => {
                write!(f, "{stride}*J{dim}{offset:+}")
            }
            AlignAxis::Expression(d) => write!(f, "expr(J{d})"),
            AlignAxis::Replicated => write!(f, "*"),
        }
    }
}

/// The alignment of a secondary array, axis by axis — `None` for primary
/// arrays. This is the §8.2 capability: the alignment is an attribute of
/// the array, queryable without any template.
pub fn align_descriptor(space: &DataSpace, id: ArrayId) -> Option<Vec<AlignAxis>> {
    let f = space.alignment_of(id)?;
    Some(
        f.axes()
            .iter()
            .map(|ax| match ax {
                crate::AxisMap::Const(c) => AlignAxis::Constant(*c),
                crate::AxisMap::Affine { dim, a, c } => {
                    AlignAxis::Affine { dim: *dim, stride: *a, offset: *c }
                }
                crate::AxisMap::Expr { dim, .. } => AlignAxis::Expression(*dim),
                crate::AxisMap::Replicated => AlignAxis::Replicated,
            })
            .collect(),
    )
}

/// Number of elements of the array each processor owns — the load picture
/// used by the §1 load-balancing experiments.
pub fn ownership_histogram(
    space: &DataSpace,
    id: ArrayId,
) -> Result<Vec<(ProcId, usize)>, HpfError> {
    let eff = space.effective(id)?;
    let mut out = Vec::with_capacity(space.np());
    for p in space.procs().all_procs() {
        out.push((p, eff.owned_region(p).volume_disjoint()));
    }
    Ok(out)
}

/// The owner set of one element by name — the simplest inquiry.
pub fn owners_of(
    space: &DataSpace,
    name: &str,
    i: &Idx,
) -> Result<crate::procset::ProcSet, HpfError> {
    let id = space.by_name(name)?;
    space.owners(id, i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::spec::AlignSpec;
    use crate::dist::dist::DistributeSpec;
    use crate::dist::format::FormatSpec;
    use hpf_index::IndexDomain;

    #[test]
    fn descriptor_for_direct_mapping() {
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::of_shape(&[16, 8]).unwrap()).unwrap();
        ds.distribute(
            a,
            &DistributeSpec::new(vec![FormatSpec::Cyclic(3), FormatSpec::Collapsed]),
        )
        .unwrap();
        let d = describe(&ds, a);
        assert_eq!(d.role, Role::Primary);
        assert_eq!(d.kind, Some(MappingKind::Direct));
        assert_eq!(d.dims, vec![DimKind::Cyclic(3), DimKind::Collapsed]);
        assert!(d.to_string().contains("CYCLIC(3)"));
    }

    #[test]
    fn descriptor_for_secondary() {
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.align(a, b, &AlignSpec::identity(1)).unwrap();
        let d = describe(&ds, a);
        assert_eq!(d.role, Role::Secondary { base: "B".into() });
        assert_eq!(d.kind, Some(MappingKind::Constructed));
        assert!(d.dims.is_empty(), "composed mappings have no format list");
        let db = describe(&ds, b);
        assert_eq!(db.children, vec!["A".to_string()]);
    }

    #[test]
    fn histogram_counts_block() {
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::of_shape(&[10]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
        let h = ownership_histogram(&ds, a).unwrap();
        let sizes: Vec<usize> = h.iter().map(|&(_, n)| n).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]); // q = ⌈10/4⌉ = 3
    }

    #[test]
    fn align_descriptor_reports_axes() {
        use crate::align::spec::{AligneeAxis, BaseSubscript};
        use crate::AlignExpr;
        let mut ds = DataSpace::new(4);
        let b = ds.declare("B", IndexDomain::of_shape(&[32, 8]).unwrap()).unwrap();
        let a = ds.declare("A", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        ds.align(
            a,
            b,
            &AlignSpec::new(
                vec![AligneeAxis::Dummy(0)],
                vec![
                    BaseSubscript::Expr(AlignExpr::dummy(0) * 2 - 1),
                    BaseSubscript::Star,
                ],
            ),
        )
        .unwrap();
        let d = align_descriptor(&ds, a).unwrap();
        assert_eq!(
            d,
            vec![
                AlignAxis::Affine { dim: 0, stride: 2, offset: -1 },
                AlignAxis::Replicated
            ]
        );
        assert_eq!(d[0].to_string(), "2*J0-1");
        assert!(align_descriptor(&ds, b).is_none(), "primary has no alignment");
    }

    #[test]
    fn unallocated_descriptor() {
        let mut ds = DataSpace::new(2);
        let c = ds.declare_allocatable("C", 1).unwrap();
        let d = describe(&ds, c);
        assert_eq!(d.role, Role::Absent);
        assert!(d.allocatable);
        assert!(!d.allocated);
        assert_eq!(d.kind, None);
    }
}
