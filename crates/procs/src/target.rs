use crate::{ArrangementId, ProcId, ProcSpace, ProcsError};
use hpf_index::{Idx, IndexDomain, Section};
use std::fmt;

/// A distribution target (§4): a processor array arrangement **or a section
/// thereof** — one of the paper's generalizations over HPF:
///
/// > 1. Arrays may be distributed to processor sections.
///
/// A target presents a *standard* index domain `[1:e1, ..., 1:er]` to the
/// distribution functions (the `I^R` of Definition 2); `ap_at` resolves a
/// target-relative index through the section embedding and the §3 storage
/// association down to an abstract processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcTarget {
    arrangement: ArrangementId,
    section: Section,
}

impl ProcTarget {
    /// Target the whole arrangement.
    pub fn whole(ps: &ProcSpace, id: ArrangementId) -> Result<Self, ProcsError> {
        let arr = ps.get(id);
        let dom = arr
            .domain()
            .ok_or_else(|| ProcsError::ScalarArrangement(arr.name().to_string()))?;
        Ok(ProcTarget { arrangement: id, section: Section::full(dom) })
    }

    /// Target a section of an arrangement, e.g. `Q(1:NOP:2)`.
    pub fn section(ps: &ProcSpace, id: ArrangementId, section: Section) -> Result<Self, ProcsError> {
        let arr = ps.get(id);
        let dom = arr
            .domain()
            .ok_or_else(|| ProcsError::ScalarArrangement(arr.name().to_string()))?;
        section
            .validate(dom)
            .map_err(|_| ProcsError::BadSection(arr.name().to_string()))?;
        if section.size() == 0 {
            return Err(ProcsError::BadSection(arr.name().to_string()));
        }
        Ok(ProcTarget { arrangement: id, section })
    }

    /// The targeted arrangement.
    pub fn arrangement(&self) -> ArrangementId {
        self.arrangement
    }

    /// The section of the arrangement being targeted.
    pub fn section_ref(&self) -> &Section {
        &self.section
    }

    /// Rank of the target (scalar section subscripts reduce rank).
    pub fn rank(&self) -> usize {
        self.section.rank()
    }

    /// Extent of target dimension `d` (0-based over non-scalar dims) —
    /// the `NP` of the §4.1 distribution-function definitions.
    pub fn extent(&self, d: usize) -> usize {
        self.domain().extent(d)
    }

    /// Total number of processors in the target.
    pub fn size(&self) -> usize {
        self.section.size()
    }

    /// The standard index domain `[1:e1, ..., 1:er]` the distribution
    /// functions map into.
    pub fn domain(&self) -> IndexDomain {
        self.section.domain().expect("validated at construction").standardized()
    }

    /// Resolve a target-relative index (1-based per dimension) to the
    /// abstract processor that owns it.
    pub fn ap_at(&self, ps: &ProcSpace, rel: &Idx) -> Result<ProcId, ProcsError> {
        let arr_idx = self
            .section
            .embed(rel)
            .map_err(|_| ProcsError::BadProcessorIndex(ps.get(self.arrangement).name().into()))?;
        ps.ap_of(self.arrangement, &arr_idx)
    }

    /// Every abstract processor covered by the target, in column-major
    /// target order.
    pub fn all_aps(&self, ps: &ProcSpace) -> Vec<ProcId> {
        self.domain()
            .iter()
            .map(|rel| self.ap_at(ps, &rel).expect("validated target"))
            .collect()
    }
}

impl fmt::Display for ProcTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "target#{}{}", self.arrangement.0, self.section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_index::{triplet, SectionDim};

    fn space() -> (ProcSpace, ArrangementId) {
        let mut ps = ProcSpace::new(16);
        let q = ps.declare_array("Q", IndexDomain::of_shape(&[16]).unwrap()).unwrap();
        (ps, q)
    }

    #[test]
    fn whole_target() {
        let (ps, q) = space();
        let t = ProcTarget::whole(&ps, q).unwrap();
        assert_eq!(t.rank(), 1);
        assert_eq!(t.extent(0), 16);
        assert_eq!(t.ap_at(&ps, &Idx::d1(1)).unwrap(), ProcId(1));
        assert_eq!(t.ap_at(&ps, &Idx::d1(16)).unwrap(), ProcId(16));
    }

    #[test]
    fn odd_processor_section() {
        // the paper's `DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)` target
        let (ps, q) = space();
        let t = ProcTarget::section(
            &ps,
            q,
            Section::from_triplets(vec![triplet(1, 16, 2)]),
        )
        .unwrap();
        assert_eq!(t.extent(0), 8);
        // target position k lives on Q(2k−1) → AP P(2k−1)
        for k in 1..=8i64 {
            assert_eq!(t.ap_at(&ps, &Idx::d1(k)).unwrap(), ProcId(2 * k as u32 - 1));
        }
        assert_eq!(
            t.all_aps(&ps),
            (1..=16).step_by(2).map(ProcId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rank_reducing_section_of_grid() {
        let mut ps = ProcSpace::new(32);
        let g = ps.declare_array("G", IndexDomain::of_shape(&[4, 8]).unwrap()).unwrap();
        // row 3 of the grid: G(3, :) — a rank-1 target of 8 processors
        let t = ProcTarget::section(
            &ps,
            g,
            Section::new(vec![
                SectionDim::Scalar(3),
                SectionDim::Triplet(triplet(1, 8, 1)),
            ]),
        )
        .unwrap();
        assert_eq!(t.rank(), 1);
        assert_eq!(t.size(), 8);
        // G(3,j) is AP 3 + (j−1)*4
        assert_eq!(t.ap_at(&ps, &Idx::d1(1)).unwrap(), ProcId(3));
        assert_eq!(t.ap_at(&ps, &Idx::d1(2)).unwrap(), ProcId(7));
    }

    #[test]
    fn bad_sections_rejected() {
        let (ps, q) = space();
        assert!(ProcTarget::section(
            &ps,
            q,
            Section::from_triplets(vec![triplet(1, 17, 1)])
        )
        .is_err());
        assert!(ProcTarget::section(
            &ps,
            q,
            Section::from_triplets(vec![triplet(5, 4, 1)])
        )
        .is_err());
    }

    #[test]
    fn scalar_arrangement_cannot_be_target() {
        let mut ps = ProcSpace::new(4);
        let s = ps
            .declare_scalar("S", crate::ScalarPolicy::ControlProcessor)
            .unwrap();
        assert!(ProcTarget::whole(&ps, s).is_err());
    }
}
