//! E10 (§1) — owner-computes execution end to end: correctness against a
//! dense reference, sequential vs parallel executors, ghost regions and
//! the full machine pricing of the staggered-grid statement.

use hpf_bench::{staggered_mappings, staggered_statement, StaggeredScheme};
use hpf_core::FormatSpec;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_runtime::{
    dense_reference, ghost_regions, DistArray, ParExecutor, SeqExecutor,
};
use std::time::Instant;

fn main() {
    let n = 512i64;
    let np_side = 2usize;
    let np = np_side * np_side;
    println!("E10 — owner-computes runtime, staggered grid N = {n}, NP = {np}\n");

    let maps = staggered_mappings(n, np_side, &StaggeredScheme::Direct(FormatSpec::Block));
    let stmt = staggered_statement(n, &maps);
    let build = || {
        vec![
            DistArray::new("P", maps[0].clone(), np, 0.0),
            DistArray::from_fn("U", maps[1].clone(), np, |i| (i[0] * 3 + i[1]) as f64),
            DistArray::from_fn("V", maps[2].clone(), np, |i| (i[0] - 2 * i[1]) as f64),
        ]
    };

    // correctness: both executors equal the dense reference
    let mut seq = build();
    let expect = dense_reference(&seq, &stmt);
    let t0 = Instant::now();
    let analysis = SeqExecutor.execute(&mut seq, &stmt).unwrap();
    let t_seq = t0.elapsed();
    assert_eq!(seq[0].to_dense(), expect);

    let mut par = build();
    let t0 = Instant::now();
    ParExecutor::with_threads(4).execute(&mut par, &stmt).unwrap();
    let t_par = t0.elapsed();
    assert_eq!(par[0].to_dense(), expect);
    println!("numerics: seq == par == dense reference  ✓");
    println!(
        "wall-clock (host): seq {:.1} ms, par(4 threads) {:.1} ms\n",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3
    );

    // ghost regions per processor
    println!("ghost (overlap) volumes per processor, per the 4 operand terms:");
    for g in ghost_regions(&maps, np, &stmt) {
        let per: Vec<usize> = g.per_term.iter().map(|r| r.volume_disjoint()).collect();
        println!("  {}: {:?} → total {}", g.proc, per, g.volume);
    }

    // machine pricing
    let machine = Machine::new(
        np,
        Topology::Mesh2D { rows: np_side, cols: np_side },
        CostModel::default(),
    );
    let rep = machine.superstep_time(&analysis.loads, &analysis.comm);
    println!("\nmachine estimate: {rep}");
    println!(
        "remote fraction {:.2}% — the §1 collocation payoff on the\n\
         template-free (BLOCK,BLOCK) mapping.",
        analysis.remote_fraction() * 100.0
    );
}
