//! Every worked example in the paper, executed against the library.
//!
//! Section references are to Chapman, Mehrotra & Zima, ICASE 93-17.

use hpf::prelude::*;
use std::sync::Arc;

/// §4.1.1: BLOCK divides into contiguous blocks of q = ⌈N/NP⌉, with the
/// stated owner and local-index formulas.
#[test]
fn s411_block_formulas() {
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[14]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Block])).unwrap();
    let eff = ds.effective(a).unwrap();
    let dist = eff.as_direct().unwrap();
    let q = 4; // ⌈14/4⌉
    for i in 1..=14i64 {
        let j = (i + q - 1) / q;
        assert_eq!(dist.owner(&Idx::d1(i)), ProcId(j as u32), "owner of {i}");
        assert_eq!(dist.local(&Idx::d1(i)), Idx::d1(i - (j - 1) * q), "local of {i}");
    }
    // last block is short: P4 owns only 13..14
    assert_eq!(eff.owned_region(ProcId(4)).volume_disjoint(), 2);
}

/// §4.1.2: GENERAL_BLOCK(G) — block i is [G(i−1)+1 : G(i)], block NP ends
/// at N; M ≥ NP−1 entries allowed.
#[test]
fn s412_general_block() {
    let mut ds = DataSpace::new(3);
    let c = ds.declare("C", IndexDomain::of_shape(&[10]).unwrap()).unwrap();
    ds.distribute(c, &DistributeSpec::new(vec![FormatSpec::GeneralBlock(vec![2, 7, 99])]))
        .unwrap();
    let owners: Vec<u32> = (1..=10)
        .map(|i| ds.owners(c, &Idx::d1(i)).unwrap().as_single().unwrap().0)
        .collect();
    assert_eq!(owners, vec![1, 1, 2, 2, 2, 2, 2, 3, 3, 3]);
}

/// §4.1.3: CYCLIC(k) deals segments of length k cyclically; CYCLIC ≡
/// CYCLIC(1).
#[test]
fn s413_cyclic() {
    let mut ds = DataSpace::new(3);
    let a = ds.declare("A", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[12]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(2)])).unwrap();
    ds.distribute(b, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    let owners_a: Vec<u32> = (1..=12)
        .map(|i| ds.owners(a, &Idx::d1(i)).unwrap().as_single().unwrap().0)
        .collect();
    assert_eq!(owners_a, vec![1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3]);
    let owners_b: Vec<u32> = (1..=6)
        .map(|i| ds.owners(b, &Idx::d1(i)).unwrap().as_single().unwrap().0)
        .collect();
    assert_eq!(owners_b, vec![1, 2, 3, 1, 2, 3]);
}

/// §4 examples: the four DISTRIBUTE directives, including the processor
/// section target `Q(1:NOP:2)`.
#[test]
fn s4_distribute_directive_examples() {
    let mut ds = DataSpace::new(8);
    ds.declare_processors("Q", IndexDomain::of_shape(&[8]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::of_shape(&[8]).unwrap()).unwrap();
    ds.distribute(
        b,
        &DistributeSpec::to_section(
            vec![FormatSpec::Cyclic(1)],
            "Q",
            Section::from_triplets(vec![triplet(1, 8, 2)]),
        ),
    )
    .unwrap();
    // odd processors only
    for i in 1..=8i64 {
        let p = ds.owners(b, &Idx::d1(i)).unwrap().as_single().unwrap();
        assert_eq!(p.0 % 2, 1, "element {i} on even processor {p}");
    }
}

/// §5.1 example 1: `ALIGN A(:) WITH D(:,*)` — "aligns a copy of A with
/// every column of D"; α(J) = {(J,k) | 1 ≤ k ≤ M}.
#[test]
fn s51_replication_example() {
    let (n, m) = (6i64, 4i64);
    let mut ds = DataSpace::new(6);
    let d = ds.declare("D", IndexDomain::standard(&[(1, n), (1, m)]).unwrap()).unwrap();
    let a = ds.declare("A", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    ds.declare_processors("G", IndexDomain::of_shape(&[3, 2]).unwrap()).unwrap();
    ds.distribute(d, &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"))
        .unwrap();
    ds.align(
        a,
        d,
        &AlignSpec::new(
            vec![AligneeAxis::Colon],
            vec![BaseSubscript::COLON, BaseSubscript::Star],
        ),
    )
    .unwrap();
    // A(J) owners = union of owners of D(J, 1..m)
    for j in 1..=n {
        let mut want: Vec<ProcId> = (1..=m)
            .map(|k| ds.owners(d, &Idx::d2(j, k)).unwrap().as_single().unwrap())
            .collect();
        want.sort_unstable();
        want.dedup();
        let got: Vec<ProcId> = ds.owners(a, &Idx::d1(j)).unwrap().iter().collect();
        assert_eq!(got, want, "A({j})");
    }
}

/// §5.1 example 2: `ALIGN B(:,*) WITH E(:)` — α(J1,J2) = {(J1)}.
#[test]
fn s51_collapse_example() {
    let (n, m) = (6i64, 4i64);
    let mut ds = DataSpace::new(3);
    let e = ds.declare("E", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    let b = ds.declare("B", IndexDomain::standard(&[(1, n), (1, m)]).unwrap()).unwrap();
    ds.distribute(e, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    ds.align(
        b,
        e,
        &AlignSpec::new(
            vec![AligneeAxis::Colon, AligneeAxis::Star],
            vec![BaseSubscript::COLON],
        ),
    )
    .unwrap();
    for j1 in 1..=n {
        for j2 in 1..=m {
            assert_eq!(
                ds.owners(b, &Idx::d2(j1, j2)).unwrap(),
                ds.owners(e, &Idx::d1(j1)).unwrap()
            );
        }
    }
}

/// §8.1.1: the template-free rendering of Thole's staggered grid —
/// `DISTRIBUTE (BLOCK,BLOCK) :: U,V,P` — plus the executable statement,
/// with exact numerics.
#[test]
fn s811_staggered_grid_direct_blocks() {
    let n = 16i64;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    ds.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
    let p = ds.declare("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(0, n), (1, n)]).unwrap()).unwrap();
    let v = ds.declare("V", IndexDomain::standard(&[(1, n), (0, n)]).unwrap()).unwrap();
    for id in [p, u, v] {
        ds.distribute(
            id,
            &DistributeSpec::to(vec![FormatSpec::Block, FormatSpec::Block], "G"),
        )
        .unwrap();
    }
    let maps: Vec<Arc<EffectiveDist>> =
        [p, u, v].iter().map(|&id| ds.effective(id).unwrap()).collect();
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, n), span(1, n)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, n - 1), span(1, n)])),
            Term::new(1, Section::from_triplets(vec![span(1, n), span(1, n)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(0, n - 1)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(1, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let mut arrays = vec![
        DistArray::new("P", maps[0].clone(), np, 0.0),
        DistArray::from_fn("U", maps[1].clone(), np, |i| (i[0] * 100 + i[1]) as f64),
        DistArray::from_fn("V", maps[2].clone(), np, |i| (i[0] + i[1] * 100) as f64),
    ];
    let expect = dense_reference(&arrays, &stmt);
    let analysis = SeqExecutor.execute(&mut arrays, &stmt).unwrap();
    assert_eq!(arrays[0].to_dense(), expect);
    // P(i,j) = U(i-1,j) + U(i,j) + V(i,j-1) + V(i,j)
    let val = arrays[0].get(&Idx::d2(5, 5));
    let want = (4 * 100 + 5) + (5 * 100 + 5) + (5 + 4 * 100) + (5 + 5 * 100);
    assert_eq!(val, want as f64);
    // and the communication is only block-boundary ghost exchange
    assert!(analysis.remote_fraction() < 0.05, "{}", analysis.remote_fraction());
}

/// §8.1.1 contrast: the same code with a (CYCLIC,CYCLIC) template is 100%
/// remote — "different processor allocations for any two neighbors".
#[test]
fn s811_cyclic_template_worst_case() {
    let n = 16i64;
    let np = 4usize;
    let mut tm = TemplateModel::new(np);
    tm.declare_processors("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
    let t = tm
        .template("T", IndexDomain::standard(&[(0, 2 * n), (0, 2 * n)]).unwrap())
        .unwrap();
    let p = tm.array("P", IndexDomain::standard(&[(1, n), (1, n)]).unwrap()).unwrap();
    let u = tm.array("U", IndexDomain::standard(&[(0, n), (1, n)]).unwrap()).unwrap();
    let v = tm.array("V", IndexDomain::standard(&[(1, n), (0, n)]).unwrap()).unwrap();
    let d = AlignExpr::dummy;
    tm.align(p, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2 - 1])).unwrap();
    tm.align(u, t, &AlignSpec::with_exprs(2, vec![d(0) * 2, d(1) * 2 - 1])).unwrap();
    tm.align(v, t, &AlignSpec::with_exprs(2, vec![d(0) * 2 - 1, d(1) * 2])).unwrap();
    tm.distribute(
        t,
        &DistributeSpec::to(vec![FormatSpec::Cyclic(1), FormatSpec::Cyclic(1)], "G"),
    )
    .unwrap();

    let maps = vec![
        tm.resolve(p).unwrap(),
        tm.resolve(u).unwrap(),
        tm.resolve(v).unwrap(),
    ];
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, n), span(1, n)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, n - 1), span(1, n)])),
            Term::new(1, Section::from_triplets(vec![span(1, n), span(1, n)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(0, n - 1)])),
            Term::new(2, Section::from_triplets(vec![span(1, n), span(1, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    let analysis = comm_analysis(&maps, np, &stmt);
    assert_eq!(
        analysis.remote_fraction(),
        1.0,
        "every operand read must be remote under the cyclic template"
    );
}

/// §8.1.1 footnote: Vienna vs HPF BLOCK differ — "with the HPF definition,
/// this will cause a problem if and only if the number of processors
/// divides N exactly". When NP | N, U(0:N) has N+1 elements and HPF's
/// q = ⌈(N+1)/NP⌉ = N/NP + 1 makes U's block boundaries drift away from
/// P's, turning the 1-D stencil P(i) = U(i-1) + U(i) heavily remote;
/// Vienna's balanced blocks (and HPF blocks when NP ∤ N) keep it to the
/// unavoidable ghost boundary.
#[test]
fn s811_footnote_block_definitions() {
    let np = 4usize;
    let stencil_remote = |n: i64, fmt: FormatSpec| -> u64 {
        let mut ds = DataSpace::new(np);
        let p = ds.declare("P", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
        let u = ds.declare("U", IndexDomain::standard(&[(0, n)]).unwrap()).unwrap();
        ds.distribute(p, &DistributeSpec::new(vec![fmt.clone()])).unwrap();
        ds.distribute(u, &DistributeSpec::new(vec![fmt])).unwrap();
        let maps = vec![ds.effective(p).unwrap(), ds.effective(u).unwrap()];
        let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
        // P(1:N) = U(0:N-1) + U(1:N)
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(1, n)]),
            vec![
                Term::new(1, Section::from_triplets(vec![span(0, n - 1)])),
                Term::new(1, Section::from_triplets(vec![span(1, n)])),
            ],
            Combine::Sum,
            &doms,
        )
        .unwrap();
        comm_analysis(&maps, np, &stmt).remote_reads
    };
    let hpf_divisible = stencil_remote(16, FormatSpec::Block); // NP | N
    let hpf_coprime = stencil_remote(15, FormatSpec::Block); // NP ∤ N
    let vienna_divisible = stencil_remote(16, FormatSpec::BlockBalanced);
    assert!(
        hpf_divisible > hpf_coprime,
        "HPF BLOCK must degrade exactly when NP | N: {hpf_divisible} vs {hpf_coprime}"
    );
    assert!(
        hpf_divisible > vienna_divisible,
        "Vienna BLOCK avoids the NP | N problem: {hpf_divisible} vs {vienna_divisible}"
    );
    // scale check: the drift grows with NP | N across sizes
    for n in [32i64, 64, 128] {
        assert!(
            stencil_remote(n, FormatSpec::Block) > stencil_remote(n - 1, FormatSpec::Block),
            "N = {n}"
        );
    }
}

/// §8.1.2: the dummy inheriting `A(2:996:2)` from `A(1000) CYCLIC(3)`;
/// inheritance is free, the alternative `ALIGN X(I) WITH A(2*I)` rendering
/// describes the same mapping.
#[test]
fn s812_section_passing() {
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();

    // inheritance: zero movement
    let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
    let sec = Section::from_triplets(vec![triplet(2, 996, 2)]);
    let frame = CallFrame::enter(&ds, &def, &[Actual::section(a, sec.clone())]).unwrap();
    assert_eq!(frame.events().len(), 0);

    // the ALIGN X(I) WITH A(2*I) alternative describes the same owners
    let x = frame.dummy(0);
    let align = hpf::core::reduce(
        &AlignSpec::with_exprs(1, vec![AlignExpr::dummy(0) * 2]),
        frame.local().domain(x).unwrap(),
        ds.domain(a).unwrap(),
    )
    .unwrap();
    let constructed = EffectiveDist::Aligned {
        align: Arc::new(align),
        base: ds.effective(a).unwrap(),
    };
    let inherited = frame.local().effective(x).unwrap();
    assert!(inherited.equal_exhaustive(&constructed));
    assert_eq!(frame.exit().unwrap().total_volume(), 0);
}

/// §2.2: scalars live on an index domain of exactly one element and can be
/// replicated (footnote: "every array element can be distributed to an
/// arbitrary (positive) number of processors").
#[test]
fn s22_scalars_and_replication() {
    let mut ds = DataSpace::new(4);
    let s = ds.declare("S", IndexDomain::scalar()).unwrap();
    let owners = ds.owners(s, &Idx::SCALAR).unwrap();
    assert_eq!(owners.len(), 4);
    let region = ds.owned_region(s, ProcId(2)).unwrap();
    assert_eq!(region.volume_disjoint(), 1);
}

/// §2.4: the alignment forest constraints as stated.
#[test]
fn s24_forest_constraints() {
    let mut ds = DataSpace::new(2);
    let dom = IndexDomain::of_shape(&[8]).unwrap();
    let b = ds.declare("B", dom.clone()).unwrap();
    let a = ds.declare("A", dom.clone()).unwrap();
    let c = ds.declare("C", dom.clone()).unwrap();
    ds.align(a, b, &AlignSpec::identity(1)).unwrap();
    // "Each array occurring as an alignment base must not be aligned to
    // another array."
    assert!(matches!(
        ds.align(c, a, &AlignSpec::identity(1)),
        Err(HpfError::BaseIsSecondary(_))
    ));
    // "Each array occurring as an alignee can be aligned with only one
    // alignment base."
    assert!(matches!(
        ds.align(a, c, &AlignSpec::identity(1)),
        Err(HpfError::AlreadyAligned(_))
    ));
    // trees have height ≤ 1: a base with children cannot become an alignee
    assert!(matches!(
        ds.align(b, c, &AlignSpec::identity(1)),
        Err(HpfError::AligneeHasChildren(_))
    ));
}
