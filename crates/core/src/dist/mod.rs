//! Distributions (§2.2, §4): total index mappings from array index domains
//! to processor-target index domains.
//!
//! The module is split the way the paper presents the material:
//!
//! * [`format`] — the distribution *formats* of §4.1: `BLOCK` (HPF and
//!   Vienna-balanced), `GENERAL_BLOCK` (§4.1.2, by bounds or by sizes, plus
//!   the [`format::GeneralBlock::balanced`] weighted partitioner),
//!   `CYCLIC(k)` (§4.1.3), the collapsing `:`, and the `INDIRECT`
//!   extension;
//! * [`dim`] — [`dim::DimDist`], one dimension's distribution function
//!   with O(1) owner/local↔global answers for the regular formats and
//!   binary search for `GENERAL_BLOCK`;
//! * [`dist`] — [`dist::Distribution`] (Definition 2's `δ`), composed per
//!   dimension and resolved onto a [`hpf_procs::ProcTarget`] — a whole
//!   processor arrangement *or a section of one* (§4's generalization) —
//!   plus the directive-level [`dist::DistributeSpec`]/[`dist::TargetSpec`].

pub mod dim;
#[allow(clippy::module_inception)]
pub mod dist;
pub mod format;
