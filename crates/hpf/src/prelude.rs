//! The most common imports in one place: `use hpf::prelude::*;`.
//!
//! Re-exports the surface every test, example, and downstream program
//! touches:
//!
//! * from `hpf-core` — the mapping model: [`DataSpace`], the directive
//!   bodies [`DistributeSpec`]/[`FormatSpec`]/[`TargetSpec`] and
//!   [`AlignSpec`], the resolved [`Distribution`]/[`EffectiveDist`],
//!   procedure boundaries ([`CallFrame`] and friends), and [`inquiry`];
//! * from `hpf-index` — [`IndexDomain`], [`Idx`], [`Section`],
//!   [`Triplet`], the region algebra, and the [`span`]/[`triplet`]
//!   constructors;
//! * from `hpf-procs` — [`ProcId`], [`ProcSpace`], [`ProcTarget`];
//! * from `hpf-machine` — the machine simulator entry points;
//! * from `hpf-runtime` — distributed arrays and the owner-computes
//!   executors;
//! * from `hpf-frontend` — the `!HPF$` [`Elaborator`];
//! * from `hpf-template` — the §8 template-model baseline.

pub use hpf_core::{
    inquiry, Actual, AlignExpr, AlignSpec, AligneeAxis, AlignmentFn, ArrayId, AxisMap,
    BaseSubscript, CallFrame, DataSpace, DistributeSpec, Distribution, Dummy, DummySpec,
    EffectiveDist, FormatSpec, GeneralBlock, HpfError, MappingId, ProcSet, ProcedureDef,
    TargetSpec,
};
pub use hpf_frontend::{
    render_diagnostics, Elaboration, Elaborator, FrontendError, LoweredProgram, Lowerer,
    SourceDiagnostic, Span,
};
pub use hpf_index::{
    span, triplet, Idx, IndexDomain, Rect, Region, Section, SectionDim, Triplet,
};
pub use hpf_machine::{CommStats, CostModel, Machine, Topology};
pub use hpf_procs::{ProcId, ProcSpace, ProcTarget, ScalarPolicy};
#[allow(deprecated)]
pub use hpf_runtime::run_trajectory;
pub use hpf_runtime::{
    apply_dense, comm_analysis, dense_reference, ghost_regions, latest_checkpoint,
    remap_analysis, restore_checkpoint, save_checkpoint, verify_plan,
    verify_program_plan, AdaptController, AdaptEvent, AdaptPolicy, AdaptReport,
    AnalysisVerdict, Assignment, Backend, ChannelsBackend,
    CheckpointSpec, CkptError, CkptReport, Combine, CommAnalysis, CopyRun, Diagnostic,
    DiagnosticKind, DistArray, ExchangeBackend, ExchangeError, ExecPlan, Fault, FaultPlan,
    FusedPair, FusedSegment, FusedWorkspace, FusionReport, FusionStats, GatherRef,
    GhostReport, MessagePlan, MsgSegment, PairSchedule, ParExecutor, PlanCache,
    PlanWorkspace, ProcPlan, Program, ProgramPlan, ProgramStats, Property, RecoveryPolicy,
    RemapAnalysis, RestoreReport, SeqExecutor, Session, SessionReport, SharedMemBackend,
    StatementReport, StatementTrace, StoreRun, Superstep, Term, TermSchedule,
    TrajectoryReport, UnitMeta, VerifyReport, VerifyStats,
};
pub use hpf_template::{TemplateError, TemplateModel};
