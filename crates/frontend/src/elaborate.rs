use crate::ast::*;
use crate::error::FrontendError;
use crate::eval::Env;
use crate::parser::parse_recover;
use crate::report::{AssignEvent, ElaborationReport, Event, FillEvent, SourceDiagnostic};
use hpf_core::{
    Actual, AligneeAxis, AlignSpec, ArrayId, BaseSubscript, CallFrame,
    DataSpace, DistributeSpec, Dummy, DummySpec, FormatSpec, ProcedureDef, TargetSpec,
};
use hpf_index::{Idx, IndexDomain, Section, SectionDim, Triplet};
use std::collections::HashMap;

/// The result of elaborating a source file: the final data space, the
/// event narrative, and the name → id map.
#[derive(Debug)]
pub struct Elaboration {
    /// The main unit's data space after all statements executed.
    pub space: DataSpace,
    /// What happened, in order.
    pub report: ElaborationReport,
    /// Array ids by name.
    pub arrays: HashMap<String, ArrayId>,
}

impl Elaboration {
    /// Look up an array id by (case-insensitive) name.
    pub fn array(&self, name: &str) -> Option<ArrayId> {
        self.arrays.get(&name.to_ascii_uppercase()).copied()
    }
}

/// Configurable elaborator.
pub struct Elaborator {
    np: usize,
    inputs: HashMap<String, i64>,
    param_arrays: HashMap<String, Vec<i64>>,
    interface_blocks: bool,
}

impl Elaborator {
    /// Elaborate onto `np` abstract processors.
    pub fn new(np: usize) -> Self {
        Elaborator {
            np,
            inputs: HashMap::new(),
            param_arrays: HashMap::new(),
            interface_blocks: false,
        }
    }

    /// Provide a value for a `READ` name (and as a pre-set parameter).
    pub fn with_input(mut self, name: &str, value: i64) -> Self {
        self.inputs.insert(name.to_ascii_uppercase(), value);
        self
    }

    /// Provide an integer parameter array (e.g. the `S` of
    /// `GENERAL_BLOCK(S)`).
    pub fn with_param_array(mut self, name: &str, values: Vec<i64>) -> Self {
        self.param_arrays.insert(name.to_ascii_uppercase(), values);
        self
    }

    /// Treat every call as if interface blocks were visible: §7(3)
    /// inheritance-matching mismatches remap instead of failing.
    pub fn with_interface_blocks(mut self, on: bool) -> Self {
        self.interface_blocks = on;
        self
    }

    /// Parse and elaborate a source text, failing on the first error.
    ///
    /// This is the fail-fast wrapper around [`Elaborator::run_recover`]:
    /// the first accumulated diagnostic (lexical, then syntactic, then
    /// semantic, in statement order) becomes the `Err`.
    pub fn run(&self, src: &str) -> Result<Elaboration, FrontendError> {
        let (elab, diags) = self.run_recover(src);
        match diags.into_iter().next() {
            Some(d) => Err(d.error),
            None => Ok(elab),
        }
    }

    /// Parse and elaborate a source text, recovering from errors: every
    /// problem — lexical, syntactic, or semantic — is accumulated as a
    /// span-carrying [`SourceDiagnostic`] while the remaining statements
    /// keep elaborating, so one pass reports them all. The returned
    /// [`Elaboration`] reflects every statement that succeeded.
    pub fn run_recover(&self, src: &str) -> (Elaboration, Vec<SourceDiagnostic>) {
        let (file, mut diags) = parse_recover(src);
        let mut ctx = Ctx {
            space: DataSpace::new(self.np),
            env: Env {
                params: self.inputs.clone(),
                param_arrays: self.param_arrays.clone(),
                array_bounds: HashMap::new(),
            },
            arrays: HashMap::new(),
            report: ElaborationReport::default(),
            subroutines: file
                .subroutines
                .iter()
                .map(|u| (u.name.clone(), u.clone()))
                .collect(),
            inputs: self.inputs.clone(),
            interface_blocks: self.interface_blocks,
        };
        for s in &file.main.stmts {
            if let Err(e) = ctx.statement(s) {
                diags.push(SourceDiagnostic::new(e, s.span));
            }
        }
        (
            Elaboration { space: ctx.space, report: ctx.report, arrays: ctx.arrays },
            diags,
        )
    }
}

struct Ctx {
    space: DataSpace,
    env: Env,
    arrays: HashMap<String, ArrayId>,
    report: ElaborationReport,
    subroutines: HashMap<String, Unit>,
    inputs: HashMap<String, i64>,
    interface_blocks: bool,
}

impl Ctx {
    fn array(&self, name: &str, line: usize) -> Result<ArrayId, FrontendError> {
        self.arrays
            .get(name)
            .copied()
            .ok_or_else(|| FrontendError::Undeclared { line, name: name.to_string() })
    }

    fn statement(&mut self, s: &SpannedStmt) -> Result<(), FrontendError> {
        let line = s.line;
        match &s.stmt {
            Stmt::Program(_) | Stmt::End | Stmt::Subroutine { .. } => Ok(()),
            Stmt::Parameter(pairs) => {
                for (name, e) in pairs {
                    let v = self.env.eval(e)?;
                    self.env.params.insert(name.clone(), v);
                }
                Ok(())
            }
            Stmt::Declaration { allocatable, dimension, entities, .. } => {
                for ent in entities {
                    let dims = ent.dims.as_ref().or(dimension.as_ref());
                    self.declare_entity(&ent.name, dims, *allocatable, line)?;
                }
                Ok(())
            }
            Stmt::Processors(ents) => {
                for ent in ents {
                    match &ent.dims {
                        Some(dims) => {
                            let dom = self.env.eval_shape(dims)?;
                            let shape = dom.to_string();
                            self.space.declare_processors(&ent.name, dom)?;
                            self.report.events.push(Event::Processors {
                                name: ent.name.clone(),
                                shape,
                            });
                        }
                        None => {
                            self.space.declare_scalar_processors(&ent.name)?;
                            self.report.events.push(Event::Processors {
                                name: ent.name.clone(),
                                shape: String::new(),
                            });
                        }
                    }
                }
                Ok(())
            }
            Stmt::Distribute { redistribute, distributees, formats, target, inherit } => {
                if *inherit != InheritAst::None {
                    return Err(FrontendError::Parse {
                        line,
                        what: "inheritance forms (`DISTRIBUTE A *`) are only valid for \
                               dummy arguments inside subroutines (§7)"
                            .into(),
                    });
                }
                let spec = self.distribute_spec(formats, target)?;
                for name in distributees {
                    let id = self.array(name, line)?;
                    if *redistribute {
                        let before = self.space.effective(id).map_err(FrontendError::Semantic)?;
                        self.space.redistribute(id, &spec)?;
                        let after = self.space.effective(id).map_err(FrontendError::Semantic)?;
                        let moved = before.remap_volume(&after);
                        self.report
                            .events
                            .push(Event::Redistributed { name: name.clone(), moved });
                    } else {
                        self.space.distribute(id, &spec)?;
                        self.report.events.push(Event::Distributed {
                            name: name.clone(),
                            spec: spec.to_string(),
                        });
                    }
                }
                Ok(())
            }
            Stmt::Align { realign, alignee, axes, base, subscripts } => {
                let a = self.array(alignee, line)?;
                let b = self.array(base, line)?;
                let spec = self.align_spec(axes, subscripts)?;
                if *realign {
                    let before = self.space.effective(a).ok();
                    self.space.realign(a, b, &spec)?;
                    let after = self.space.effective(a).map_err(FrontendError::Semantic)?;
                    let moved = before.map(|x| x.remap_volume(&after)).unwrap_or(0);
                    self.report.events.push(Event::Realigned {
                        alignee: alignee.clone(),
                        base: base.clone(),
                        moved,
                    });
                } else {
                    self.space.align(a, b, &spec)?;
                    self.report.events.push(Event::Aligned {
                        alignee: alignee.clone(),
                        base: base.clone(),
                    });
                }
                Ok(())
            }
            Stmt::Dynamic(names) => {
                for n in names {
                    let id = self.array(n, line)?;
                    self.space.set_dynamic(id);
                    self.report.events.push(Event::Dynamic(n.clone()));
                }
                Ok(())
            }
            Stmt::Allocate(allocs) => {
                for (name, dims) in allocs {
                    let id = self.array(name, line)?;
                    let dom = self.env.eval_shape(dims)?;
                    self.env.array_bounds.insert(
                        name.clone(),
                        dom.dims().iter().map(|t| (t.lower(), t.upper())).collect(),
                    );
                    let rendered = dom.to_string();
                    self.space.allocate(id, dom)?;
                    self.report
                        .events
                        .push(Event::Allocated { name: name.clone(), domain: rendered });
                }
                Ok(())
            }
            Stmt::Deallocate(names) => {
                for name in names {
                    let id = self.array(name, line)?;
                    let promoted: Vec<String> = self
                        .space
                        .children(id)
                        .iter()
                        .map(|&c| self.space.name(c).to_string())
                        .collect();
                    self.space.deallocate(id)?;
                    self.report
                        .events
                        .push(Event::Deallocated { name: name.clone(), promoted });
                }
                Ok(())
            }
            Stmt::Read(names) => {
                for n in names {
                    let v = *self
                        .inputs
                        .get(n)
                        .ok_or_else(|| FrontendError::MissingInput(n.clone()))?;
                    self.env.params.insert(n.clone(), v);
                    self.report.events.push(Event::Read { name: n.clone(), value: v });
                }
                Ok(())
            }
            Stmt::Call { name, args } => self.call(name, args, line),
            Stmt::ArrayAssign { lhs, terms } => {
                let (lhs_id, lhs_sec) = self.resolve_ref(lhs, line)?;
                let mut rterms = Vec::with_capacity(terms.len());
                for t in terms {
                    let (id, sec) = self.resolve_ref(t, line)?;
                    rterms.push((t.name.clone(), id, sec));
                }
                self.report.events.push(Event::Assignment(AssignEvent {
                    lhs_name: lhs.name.clone(),
                    lhs: lhs_id,
                    lhs_section: lhs_sec,
                    terms: rterms,
                    span: s.span,
                }));
                Ok(())
            }
            Stmt::ScalarAssign { lhs, value } => {
                self.check_scalar_expr(value, line)?;
                let v = self.env.eval(value)? as f64;
                let (id, sec) = self.resolve_ref(lhs, line)?;
                let elements: Vec<(Idx, f64)> = sec.iter_parent().map(|i| (i, v)).collect();
                self.report.events.push(Event::Fill(FillEvent {
                    name: lhs.name.clone(),
                    array: id,
                    elements,
                    span: s.span,
                }));
                Ok(())
            }
            Stmt::Forall { indices, lhs, rhs } => self.forall(indices, lhs, rhs, line, s.span),
        }
    }

    /// Reject array references inside a scalar-valued expression: the
    /// statement surface keeps array terms (`A = B + C`) and scalar fills
    /// (`A = 2*N`) as disjoint forms, so a name in a scalar position must
    /// be a parameter, a `READ` binding, or a FORALL index.
    fn check_scalar_expr(&self, e: &Expr, line: usize) -> Result<(), FrontendError> {
        match e {
            Expr::Int(_) => Ok(()),
            Expr::Name(n) => {
                if self.arrays.contains_key(n) && !self.env.params.contains_key(n) {
                    Err(FrontendError::Parse {
                        line,
                        what: format!(
                            "`{n}` names an array — array references cannot appear in a \
                             scalar expression (use an array assignment `LHS = {n}` instead)"
                        ),
                    })
                } else {
                    Ok(())
                }
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Max(a, b)
            | Expr::Min(a, b) => {
                self.check_scalar_expr(a, line)?;
                self.check_scalar_expr(b, line)
            }
            Expr::Neg(a) => self.check_scalar_expr(a, line),
            Expr::LBound(_, d) | Expr::UBound(_, d) | Expr::Size(_, d) => {
                self.check_scalar_expr(d, line)
            }
        }
    }

    /// Elaborate a `FORALL`. Reference right-hand sides lower to a section
    /// assignment (§5.1: affine subscripts become subscript triplets);
    /// scalar right-hand sides evaluate to an element-by-element fill.
    fn forall(
        &mut self,
        indices: &[ForallIndex],
        lhs: &ArrayRef,
        rhs: &ForallRhs,
        line: usize,
        span: crate::token::Span,
    ) -> Result<(), FrontendError> {
        let mut dummies: HashMap<String, usize> = HashMap::new();
        let mut ranges: Vec<Triplet> = Vec::with_capacity(indices.len());
        for (k, ix) in indices.iter().enumerate() {
            if dummies.insert(ix.name.clone(), k).is_some() {
                return Err(FrontendError::Parse {
                    line,
                    what: format!("duplicate FORALL index `{}`", ix.name),
                });
            }
            let lo = self.env.eval(&ix.lower)?;
            let up = self.env.eval(&ix.upper)?;
            let st = match &ix.stride {
                Some(e) => self.env.eval(e)?,
                None => 1,
            };
            let t = Triplet::new(lo, up, st).map_err(|e| FrontendError::Eval(e.to_string()))?;
            if t.is_empty() {
                return Err(FrontendError::Eval(format!(
                    "FORALL index `{}` has an empty range {lo}:{up}:{st}",
                    ix.name
                )));
            }
            ranges.push(t);
        }
        match rhs {
            ForallRhs::Refs(terms) => {
                let (lhs_id, lhs_sec, lhs_order) =
                    self.forall_section(lhs, &dummies, indices, &ranges, line)?;
                let mut rterms = Vec::with_capacity(terms.len());
                for t in terms {
                    let (id, sec, order) =
                        self.forall_section(t, &dummies, indices, &ranges, line)?;
                    if let (Some(lo), Some(to)) = (&lhs_order, &order) {
                        if lo != to {
                            return Err(FrontendError::Parse {
                                line,
                                what: format!(
                                    "FORALL indices must appear in the same order on `{}` \
                                     as on the left-hand side (transposes are not supported)",
                                    t.name
                                ),
                            });
                        }
                    }
                    rterms.push((t.name.clone(), id, sec));
                }
                self.report.events.push(Event::Assignment(AssignEvent {
                    lhs_name: lhs.name.clone(),
                    lhs: lhs_id,
                    lhs_section: lhs_sec,
                    terms: rterms,
                    span,
                }));
                Ok(())
            }
            ForallRhs::Scalar(value) => {
                self.check_scalar_expr(value, line)?;
                let id = self.array(&lhs.name, line)?;
                let dom = self.space.domain(id).cloned().ok_or_else(|| {
                    FrontendError::Semantic(hpf_core::HpfError::NotAllocated(lhs.name.clone()))
                })?;
                let subs = lhs.section.as_deref().ok_or_else(|| FrontendError::Parse {
                    line,
                    what: format!(
                        "FORALL left-hand side `{}` needs explicit subscripts",
                        lhs.name
                    ),
                })?;
                if subs.len() != dom.rank() {
                    return Err(FrontendError::Eval(format!(
                        "`{}` has rank {} but {} subscripts were given",
                        lhs.name,
                        dom.rank(),
                        subs.len()
                    )));
                }
                let sets: Vec<Vec<i64>> = ranges.iter().map(|t| t.iter().collect()).collect();
                let lens: Vec<usize> = sets.iter().map(|s| s.len()).collect();
                let total: usize = lens.iter().product();
                let mut elements = Vec::with_capacity(total);
                for flat in 0..total {
                    let mut rem = flat;
                    let mut overlay = HashMap::new();
                    for (k, ix) in indices.iter().enumerate() {
                        overlay.insert(ix.name.clone(), sets[k][rem % lens[k]]);
                        rem /= lens[k];
                    }
                    let mut idx = Idx::SCALAR;
                    for sd in subs {
                        let v = match sd {
                            SectionDimAst::Scalar(e) => self.env.eval_with(e, &overlay)?,
                            SectionDimAst::Triplet { .. } => {
                                return Err(FrontendError::Parse {
                                    line,
                                    what: "subscript triplets are not allowed in a FORALL \
                                           assignment"
                                        .into(),
                                })
                            }
                        };
                        idx.push(v);
                    }
                    if !dom.contains(&idx) {
                        return Err(FrontendError::Eval(format!(
                            "FORALL writes `{}{}` outside its domain {}",
                            lhs.name, idx, dom
                        )));
                    }
                    elements.push((idx, self.env.eval_with(value, &overlay)? as f64));
                }
                self.report.events.push(Event::Fill(FillEvent {
                    name: lhs.name.clone(),
                    array: id,
                    elements,
                    span,
                }));
                Ok(())
            }
        }
    }

    /// Resolve one FORALL array reference into a concrete section by
    /// classifying each subscript: a constant becomes a scalar selector, an
    /// expression affine in exactly one FORALL index `I = l:u:s` with
    /// positive coefficient `a` (so `a*I + c`) becomes the triplet
    /// `a·l+c : a·u+c : a·s`. Also returns the order in which the FORALL
    /// indices appear across the dimensions (`None` for a bare reference,
    /// which imposes no order constraint).
    #[allow(clippy::type_complexity)]
    fn forall_section(
        &self,
        r: &ArrayRef,
        dummies: &HashMap<String, usize>,
        indices: &[ForallIndex],
        ranges: &[Triplet],
        line: usize,
    ) -> Result<(ArrayId, Section, Option<Vec<usize>>), FrontendError> {
        let id = self.array(&r.name, line)?;
        let dom = self.space.domain(id).cloned().ok_or_else(|| {
            FrontendError::Semantic(hpf_core::HpfError::NotAllocated(r.name.clone()))
        })?;
        let subs = match &r.section {
            None => return Ok((id, Section::full(&dom), None)),
            Some(s) => s,
        };
        if subs.len() != dom.rank() {
            return Err(FrontendError::Eval(format!(
                "`{}` has rank {} but {} subscripts were given",
                r.name,
                dom.rank(),
                subs.len()
            )));
        }
        let mut dims = Vec::with_capacity(subs.len());
        let mut order = Vec::new();
        for sd in subs {
            let e = match sd {
                SectionDimAst::Scalar(e) => e,
                SectionDimAst::Triplet { .. } => {
                    return Err(FrontendError::Parse {
                        line,
                        what: "subscript triplets are not allowed in a FORALL assignment"
                            .into(),
                    })
                }
            };
            let ax = self.env.to_align_expr(e, dummies)?;
            let mut hit: Option<(usize, i64, i64)> = None;
            let mut constant: Option<i64> = None;
            for k in 0..ranges.len() {
                if let Some((a, c)) = ax.linear_in(k) {
                    if a != 0 {
                        hit = Some((k, a, c));
                        break;
                    }
                    constant = Some(c);
                }
            }
            match hit {
                Some((k, a, c)) => {
                    if a < 0 {
                        return Err(FrontendError::Parse {
                            line,
                            what: format!(
                                "FORALL subscript on `{}` runs backwards in index `{}` — \
                                 only increasing affine subscripts are supported",
                                r.name, indices[k].name
                            ),
                        });
                    }
                    let t = &ranges[k];
                    let sec_t =
                        Triplet::new(a * t.lower() + c, a * t.upper() + c, a * t.stride())
                            .map_err(|e| FrontendError::Eval(e.to_string()))?;
                    dims.push(SectionDim::Triplet(sec_t));
                    order.push(k);
                }
                None => match constant {
                    Some(c) => dims.push(SectionDim::Scalar(c)),
                    None => {
                        return Err(FrontendError::Parse {
                            line,
                            what: format!(
                                "subscript on `{}` must be affine in at most one FORALL \
                                 index",
                                r.name
                            ),
                        })
                    }
                },
            }
        }
        let sec = Section::new(dims);
        sec.validate(&dom)
            .map_err(|e| FrontendError::Eval(format!("`{}`: {e}", r.name)))?;
        Ok((id, sec, Some(order)))
    }

    fn declare_entity(
        &mut self,
        name: &str,
        dims: Option<&Vec<DimDecl>>,
        allocatable: bool,
        _line: usize,
    ) -> Result<(), FrontendError> {
        let id = match dims {
            None => {
                // scalar
                let id = self.space.declare(name, IndexDomain::scalar())?;
                self.report.events.push(Event::Declared {
                    name: name.to_string(),
                    domain: "".into(),
                    allocatable: false,
                });
                id
            }
            Some(ds) if allocatable || ds.iter().any(|d| matches!(d, DimDecl::Deferred)) => {
                let id = self.space.declare_allocatable(name, ds.len())?;
                self.report.events.push(Event::Declared {
                    name: name.to_string(),
                    domain: "<deferred>".into(),
                    allocatable: true,
                });
                id
            }
            Some(ds) => {
                let dom = self.env.eval_shape(ds)?;
                self.env.array_bounds.insert(
                    name.to_string(),
                    dom.dims().iter().map(|t| (t.lower(), t.upper())).collect(),
                );
                let rendered = dom.to_string();
                let id = self.space.declare(name, dom)?;
                self.report.events.push(Event::Declared {
                    name: name.to_string(),
                    domain: rendered,
                    allocatable: false,
                });
                id
            }
        };
        self.arrays.insert(name.to_string(), id);
        Ok(())
    }

    fn distribute_spec(
        &self,
        formats: &[FormatAst],
        target: &Option<TargetAst>,
    ) -> Result<DistributeSpec, FrontendError> {
        let mut fs = Vec::with_capacity(formats.len());
        for f in formats {
            fs.push(match f {
                FormatAst::Block => FormatSpec::Block,
                FormatAst::BlockBalanced => FormatSpec::BlockBalanced,
                FormatAst::Cyclic(None) => FormatSpec::Cyclic(1),
                FormatAst::Cyclic(Some(e)) => {
                    let k = self.env.eval(e)?;
                    if k < 1 {
                        return Err(FrontendError::Semantic(hpf_core::HpfError::BadCyclicArg(k)));
                    }
                    FormatSpec::Cyclic(k as u64)
                }
                FormatAst::Colon => FormatSpec::Collapsed,
                FormatAst::GeneralBlock(es) => {
                    // a single name may refer to a parameter array
                    if let [Expr::Name(n)] = es.as_slice() {
                        if let Some(values) = self.env.param_arrays.get(n) {
                            fs.push(FormatSpec::GeneralBlock(values.clone()));
                            continue;
                        }
                    }
                    let mut g = Vec::with_capacity(es.len());
                    for e in es {
                        g.push(self.env.eval(e)?);
                    }
                    FormatSpec::GeneralBlock(g)
                }
                FormatAst::Indirect(es) => {
                    let values: Vec<i64> = if let [Expr::Name(n)] = es.as_slice() {
                        match self.env.param_arrays.get(n) {
                            Some(v) => v.clone(),
                            None => vec![self.env.eval(&es[0])?],
                        }
                    } else {
                        es.iter()
                            .map(|e| self.env.eval(e))
                            .collect::<Result<_, _>>()?
                    };
                    let coords: Result<Vec<u32>, FrontendError> = values
                        .iter()
                        .map(|&v| {
                            u32::try_from(v).map_err(|_| {
                                FrontendError::Eval(format!(
                                    "INDIRECT coordinate {v} is not a processor number"
                                ))
                            })
                        })
                        .collect();
                    FormatSpec::Indirect(coords?)
                }
            });
        }
        let t = match target {
            None => None,
            Some(TargetAst { name, section: None }) => Some(TargetSpec::Whole(name.clone())),
            Some(TargetAst { name, section: Some(dims) }) => {
                let arr_id = self
                    .space
                    .procs()
                    .by_name(name)
                    .map_err(hpf_core::HpfError::from)?;
                let dom = self
                    .space
                    .procs()
                    .get(arr_id)
                    .domain()
                    .cloned()
                    .ok_or_else(|| {
                        FrontendError::Eval(format!("`{name}` is a scalar arrangement"))
                    })?;
                let sec = self.env.eval_section(dims, &dom)?;
                Some(TargetSpec::Section(name.clone(), sec))
            }
        };
        Ok(DistributeSpec { formats: fs, target: t })
    }

    fn align_spec(
        &self,
        axes: &[AxisAst],
        subscripts: &[BaseSubAst],
    ) -> Result<AlignSpec, FrontendError> {
        let mut dummies: HashMap<String, usize> = HashMap::new();
        let mut alignee = Vec::with_capacity(axes.len());
        for ax in axes {
            alignee.push(match ax {
                AxisAst::Colon => AligneeAxis::Colon,
                AxisAst::Star => AligneeAxis::Star,
                AxisAst::Dummy(n) => {
                    let next = dummies.len();
                    let id = *dummies.entry(n.clone()).or_insert(next);
                    AligneeAxis::Dummy(id)
                }
            });
        }
        let mut base = Vec::with_capacity(subscripts.len());
        for sub in subscripts {
            base.push(match sub {
                BaseSubAst::Star => BaseSubscript::Star,
                BaseSubAst::Expr(e) => {
                    BaseSubscript::Expr(self.env.to_align_expr(e, &dummies)?)
                }
                BaseSubAst::Triplet { lower, upper, stride } => BaseSubscript::Triplet {
                    lower: lower.as_ref().map(|e| self.env.eval(e)).transpose()?,
                    upper: upper.as_ref().map(|e| self.env.eval(e)).transpose()?,
                    stride: stride.as_ref().map(|e| self.env.eval(e)).transpose()?,
                },
            });
        }
        Ok(AlignSpec::new(alignee, base))
    }

    fn resolve_ref(
        &self,
        r: &ArrayRef,
        line: usize,
    ) -> Result<(ArrayId, Section), FrontendError> {
        let id = self.array(&r.name, line)?;
        let dom = self
            .space
            .domain(id)
            .cloned()
            .ok_or_else(|| FrontendError::Semantic(hpf_core::HpfError::NotAllocated(r.name.clone())))?;
        let sec = match &r.section {
            None => Section::full(&dom),
            Some(dims) => self.env.eval_section(dims, &dom)?,
        };
        Ok((id, sec))
    }

    /// Elaborate a `CALL`: build the §7 procedure definition from the
    /// subroutine's specification part, enter the frame, execute the body's
    /// dynamic directives, and exit (restoring distributions).
    fn call(&mut self, name: &str, args: &[ArrayRef], line: usize) -> Result<(), FrontendError> {
        let unit = self
            .subroutines
            .get(name)
            .cloned()
            .ok_or_else(|| FrontendError::UnknownSubroutine(name.to_string()))?;

        // scan the subroutine's statements for dummy mapping directives
        let mut dummy_specs: HashMap<String, DummySpec> = HashMap::new();
        let mut dummy_dynamic: HashMap<String, bool> = HashMap::new();
        let dummy_pos: HashMap<&str, usize> = unit
            .dummies
            .iter()
            .enumerate()
            .map(|(k, d)| (d.as_str(), k))
            .collect();
        for s in &unit.stmts {
            match &s.stmt {
                Stmt::Distribute { distributees, formats, target, inherit, redistribute: false } => {
                    for d in distributees {
                        if !dummy_pos.contains_key(d.as_str()) {
                            continue;
                        }
                        let spec = match inherit {
                            InheritAst::Inherit => DummySpec::Inherit,
                            InheritAst::InheritMatching => DummySpec::InheritMatching {
                                spec: self.distribute_spec(formats, target)?,
                                interface_block: self.interface_blocks,
                            },
                            InheritAst::None => {
                                DummySpec::Explicit(self.distribute_spec(formats, target)?)
                            }
                        };
                        dummy_specs.insert(d.clone(), spec);
                    }
                }
                Stmt::Align { realign: false, alignee, axes, base, subscripts } => {
                    if let (Some(_), Some(&bpos)) =
                        (dummy_pos.get(alignee.as_str()), dummy_pos.get(base.as_str()))
                    {
                        let spec = self.align_spec(axes, subscripts)?;
                        dummy_specs.insert(
                            alignee.clone(),
                            DummySpec::AlignToDummy { base: bpos, spec },
                        );
                    }
                }
                Stmt::Dynamic(names) => {
                    for n in names {
                        if dummy_pos.contains_key(n.as_str()) {
                            dummy_dynamic.insert(n.clone(), true);
                        }
                    }
                }
                _ => {}
            }
        }
        let def = ProcedureDef::new(
            name,
            unit.dummies
                .iter()
                .map(|d| {
                    let mut dm = Dummy::new(
                        d,
                        dummy_specs.get(d).cloned().unwrap_or(DummySpec::Implicit),
                    );
                    if dummy_dynamic.get(d).copied().unwrap_or(false) {
                        dm.dynamic = true;
                    }
                    dm
                })
                .collect(),
        );

        // resolve actuals
        let mut actuals = Vec::with_capacity(args.len());
        for a in args {
            let id = self.array(&a.name, line)?;
            match &a.section {
                None => actuals.push(Actual::whole(id)),
                Some(dims) => {
                    let dom = self.space.domain(id).cloned().ok_or_else(|| {
                        FrontendError::Semantic(hpf_core::HpfError::NotAllocated(a.name.clone()))
                    })?;
                    actuals.push(Actual::section(id, self.env.eval_section(dims, &dom)?));
                }
            }
        }

        let mut frame = CallFrame::enter(&self.space, &def, &actuals)?;

        // elaborate the body: local declarations, local mapping directives
        // (§7: "a local data object may be aligned to a dummy argument"),
        // and dynamic directives on dummies and locals
        let mut local_names: HashMap<String, ArrayId> = unit
            .dummies
            .iter()
            .enumerate()
            .map(|(k, d)| (d.clone(), frame.dummy(k)))
            .collect();
        let mut local_env = self.env.clone();
        for s in &unit.stmts {
            match &s.stmt {
                Stmt::Declaration { allocatable, dimension, entities, .. } => {
                    for ent in entities {
                        if dummy_pos.contains_key(ent.name.as_str()) {
                            continue; // dummy shape declaration, already handled
                        }
                        let dims = ent.dims.as_ref().or(dimension.as_ref());
                        let id = match dims {
                            None => frame
                                .local_mut()
                                .declare(&ent.name, IndexDomain::scalar())?,
                            Some(ds) if *allocatable
                                || ds.iter().any(|d| matches!(d, DimDecl::Deferred)) =>
                            {
                                frame.local_mut().declare_allocatable(&ent.name, ds.len())?
                            }
                            Some(ds) => {
                                let dom = local_env.eval_shape(ds)?;
                                local_env.array_bounds.insert(
                                    ent.name.clone(),
                                    dom.dims()
                                        .iter()
                                        .map(|t| (t.lower(), t.upper()))
                                        .collect(),
                                );
                                frame.local_mut().declare(&ent.name, dom)?
                            }
                        };
                        local_names.insert(ent.name.clone(), id);
                    }
                }
                Stmt::Distribute { redistribute, distributees, formats, target, inherit } => {
                    if *inherit != InheritAst::None {
                        continue; // dummy mapping directive, already handled
                    }
                    let spec = self.distribute_spec(formats, target)?;
                    for d in distributees {
                        let is_dummy = dummy_pos.contains_key(d.as_str());
                        if *redistribute {
                            let Some(&id) = local_names.get(d) else { continue };
                            frame
                                .local_mut()
                                .redistribute(id, &spec)
                                .map_err(FrontendError::Semantic)?;
                        } else if !is_dummy {
                            // explicit DISTRIBUTE on a local
                            let Some(&id) = local_names.get(d) else {
                                return Err(FrontendError::Undeclared {
                                    line: s.line,
                                    name: d.clone(),
                                });
                            };
                            frame
                                .local_mut()
                                .distribute(id, &spec)
                                .map_err(FrontendError::Semantic)?;
                        }
                    }
                }
                Stmt::Align { realign, alignee, base, axes, subscripts } => {
                    let alignee_is_dummy = dummy_pos.contains_key(alignee.as_str());
                    if !*realign && alignee_is_dummy {
                        continue; // dummy-to-dummy spec, already handled
                    }
                    let (Some(&a_id), Some(&b_id)) =
                        (local_names.get(alignee), local_names.get(base))
                    else {
                        return Err(FrontendError::Undeclared {
                            line: s.line,
                            name: alignee.clone(),
                        });
                    };
                    let spec = self.align_spec(axes, subscripts)?;
                    if *realign {
                        frame
                            .local_mut()
                            .realign(a_id, b_id, &spec)
                            .map_err(FrontendError::Semantic)?;
                    } else {
                        frame
                            .local_mut()
                            .align(a_id, b_id, &spec)
                            .map_err(FrontendError::Semantic)?;
                    }
                }
                Stmt::Dynamic(names) => {
                    for n in names {
                        if let Some(&id) = local_names.get(n) {
                            frame.local_mut().set_dynamic(id);
                        }
                    }
                }
                _ => {}
            }
        }

        let report = frame.exit()?;
        self.report.events.push(Event::Call(report));
        Ok(())
    }
}
