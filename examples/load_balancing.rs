//! `GENERAL_BLOCK` load balancing (paper §1, §4.1.2).
//!
//! The paper generalizes HPF with `GENERAL_BLOCK`, "which is important for
//! the support of load balancing, and can be implemented efficiently". This
//! example distributes a triangular workload — row `i` of a lower-triangular
//! solve costs `i` operations — three ways and compares the resulting
//! compute makespans on the simulated machine:
//!
//! * `BLOCK` — equal element counts, terrible load balance;
//! * `CYCLIC` — good balance but (for a sweep reading the previous row)
//!   heavy neighbour communication;
//! * `GENERAL_BLOCK` with weight-balanced bounds — balanced *and* local.
//!
//! Run with: `cargo run --release --example load_balancing`

use hpf::prelude::*;
use std::sync::Arc;

const N: usize = 4096;
const NP: usize = 8;

fn mapping(ds: &mut DataSpace, name: &str, spec: DistributeSpec) -> Arc<EffectiveDist> {
    let id = ds.declare(name, IndexDomain::of_shape(&[N]).unwrap()).unwrap();
    ds.distribute(id, &spec).unwrap();
    ds.effective(id).unwrap()
}

fn main() {
    // triangular weights: row i costs i element-operations
    let weights: Vec<u64> = (1..=N as u64).collect();
    let machine = Machine::new(NP, Topology::Ring, CostModel::default());

    let mut ds = DataSpace::new(NP);
    let block = mapping(&mut ds, "B", DistributeSpec::new(vec![FormatSpec::Block]));
    let cyclic = mapping(&mut ds, "C", DistributeSpec::new(vec![FormatSpec::Cyclic(1)]));
    // the §4.1.2 bound array G, computed by the library's balancer
    let gb = GeneralBlock::balanced(&weights, NP).unwrap();
    let bounds: Vec<i64> = (1..NP).map(|j| gb.bound(j)).collect();
    let general = mapping(
        &mut ds,
        "G",
        DistributeSpec::new(vec![FormatSpec::GeneralBlock(bounds.clone())]),
    );

    println!("triangular workload, N = {N}, NP = {NP} (ring)\n");
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "scheme", "max proc load", "mean load", "imbalance", "comm elems"
    );

    for (label, map) in [
        ("BLOCK", &block),
        ("CYCLIC", &cyclic),
        ("GENERAL_BLOCK", &general),
    ] {
        // per-processor weighted loads
        let mut loads = vec![0u64; NP];
        for p in 1..=NP as u32 {
            for i in map.owned_region(ProcId(p)).iter() {
                loads[(p - 1) as usize] += weights[(i[0] - 1) as usize];
            }
        }
        // the sweep statement X(2:N) = X(1:N-1): neighbour communication
        let doms = vec![map.domain()];
        let stmt = Assignment::new(
            0,
            Section::from_triplets(vec![span(2, N as i64)]),
            vec![Term::new(0, Section::from_triplets(vec![span(1, N as i64 - 1)]))],
            Combine::Copy,
            &doms,
        )
        .unwrap();
        let analysis = comm_analysis(std::slice::from_ref(map), NP, &stmt);
        let rep = machine.superstep_time(&loads, &analysis.comm);
        let max = *loads.iter().max().unwrap();
        let mean = loads.iter().sum::<u64>() as f64 / NP as f64;
        println!(
            "{label:<16} {max:>14} {mean:>12.0} {:>11.2}x {:>10}",
            rep.imbalance,
            analysis.comm.total_elements(),
        );
    }

    println!(
        "\nGENERAL_BLOCK bounds G = {bounds:?}\n\
         → near-perfect balance (imbalance ≈ 1.0) with only {} boundary\n\
         transfers, vs CYCLIC's full-array neighbour traffic.",
        NP - 1
    );
}
