//! E3 (§7, §8.1.2) — procedure-boundary table: movement cost of the four
//! dummy mapping modes for `CALL SUB(A(2:996:2))` with `A(1000) CYCLIC(3)`.

use hpf_core::{
    Actual, CallFrame, DataSpace, DistributeSpec, Dummy, DummySpec, FormatSpec, ProcedureDef,
};
use hpf_index::{triplet, IndexDomain, Section};

fn main() {
    println!("E3 — §8.1.2: A(1000) CYCLIC(3) over 4 processors; CALL SUB(A(2:996:2))\n");
    let mut ds = DataSpace::new(4);
    let a = ds.declare("A", IndexDomain::of_shape(&[1000]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
    let sec = Section::from_triplets(vec![triplet(2, 996, 2)]);

    println!(
        "{:<46} {:>10} {:>10} {:>10}",
        "dummy mapping mode", "enter", "exit", "total"
    );
    let modes: Vec<(&str, DummySpec)> = vec![
        ("DISTRIBUTE X *              (inherit)", DummySpec::Inherit),
        (
            "DISTRIBUTE X (BLOCK)        (explicit)",
            DummySpec::Explicit(DistributeSpec::new(vec![FormatSpec::Block])),
        ),
        (
            "DISTRIBUTE X (CYCLIC(3))    (explicit)",
            DummySpec::Explicit(DistributeSpec::new(vec![FormatSpec::Cyclic(3)])),
        ),
        (
            "DISTRIBUTE X *(CYCLIC(3))   (match+iface)",
            DummySpec::InheritMatching {
                spec: DistributeSpec::new(vec![FormatSpec::Cyclic(3)]),
                interface_block: true,
            },
        ),
        ("(no directive)              (implicit)", DummySpec::Implicit),
    ];
    for (label, spec) in modes {
        let def = ProcedureDef::new("SUB", vec![Dummy::new("X", spec)]);
        let frame = CallFrame::enter(&ds, &def, &[Actual::section(a, sec.clone())]).unwrap();
        let enter: usize = frame
            .events()
            .iter()
            .filter(|e| e.phase == hpf_core::RemapPhase::Enter)
            .map(|e| e.volume)
            .sum();
        let report = frame.exit().unwrap();
        let total = report.total_volume();
        let exit = total - enter;
        println!("{label:<46} {enter:>10} {exit:>10} {total:>10}");
    }

    println!(
        "\nstrict matching without an interface block is non-conforming (§7 case 3):"
    );
    let def = ProcedureDef::new(
        "SUB",
        vec![Dummy::new(
            "X",
            DummySpec::InheritMatching {
                spec: DistributeSpec::new(vec![FormatSpec::Block]),
                interface_block: false,
            },
        )],
    );
    match CallFrame::enter(&ds, &def, &[Actual::section(a, sec)]) {
        Err(e) => println!("  {e}"),
        Ok(_) => println!("  UNEXPECTED: accepted"),
    }
}
