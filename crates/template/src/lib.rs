//! # hpf-template — the HPF 1.0-draft TEMPLATE model (baseline)
//!
//! This crate implements the *template-based* mapping model the paper
//! argues against (§8), as the comparison baseline:
//!
//! > HPF provides the notion of a TEMPLATE, which is like an array whose
//! > elements have no content and therefore occupy no storage; it is merely
//! > an abstract index space that can be distributed and with which arrays
//! > may be aligned.
//!
//! The model here covers what the §8 discussion needs:
//!
//! * templates as **tagged index domains** ("distinct definitions of
//!   templates [...] are to be considered as different, independent of
//!   their associated index domain"),
//! * `ALIGN` to arrays *or templates*, with align chains of arbitrary
//!   height resolved through the ultimate align target,
//! * `DISTRIBUTE` of templates/root targets,
//! * and — crucially — the paper's §8.2 critique as *checked errors*:
//!   templates are not first-class, so they cannot be `ALLOCATABLE`
//!   ([`TemplateError::TemplateNotAllocatable`]) and cannot be passed
//!   across procedure boundaries
//!   ([`TemplateError::TemplateNotVisibleInProcedure`]).
//!
//! Alignment syntax and distribution formats are shared with `hpf-core`
//! (the two models agree on those), so experiments can express the *same*
//! program in both models and compare the resulting owner maps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;

pub use error::TemplateError;
pub use model::{EntityId, EntityKind, TemplateModel};
