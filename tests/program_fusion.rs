//! Program-fusion equivalence suite: a whole timestep routed through the
//! fused [`ProgramPlan`] — statements level-scheduled into supersteps,
//! same-pair messages coalesced, clean ghost units skipped — must stay
//! bit-identical to the pre-fusion per-statement execution and to the
//! dense naive oracle, over random block / cyclic(k) / general-block /
//! replicated mappings, on every execution path (`SharedMem`, `Channels`
//! SPMD workers, bounded-thread parallel), across warm timesteps and
//! straight through a mid-trajectory `REDISTRIBUTE`.
//!
//! The suite also pins the *safety net*: a fused plan whose coalesced
//! schedule is corrupted — an element count that no longer conserves, a
//! pack phase hoisted before a writer, a segment the constituents never
//! shipped — is refuted by [`verify_program_plan`] before it can run.

use hpf::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Random GENERAL_BLOCK sizes: `np` non-negative lengths summing to `n`.
fn gb_sizes(n: usize, np: usize, seed: u64) -> Vec<i64> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cuts: Vec<i64> = (0..np.saturating_sub(1))
        .map(|_| rng.random_range(0..=n as u64) as i64)
        .collect();
    cuts.sort_unstable();
    cuts.push(n as i64);
    let mut prev = 0i64;
    cuts.into_iter()
        .map(|c| {
            let s = c - prev;
            prev = c;
            s
        })
        .collect()
}

/// One of the paper's mapping families (kind % 6 == 5 is replication).
fn mapping_of(kind: u8, n: usize, np: usize, seed: u64) -> Arc<EffectiveDist> {
    if kind % 6 == 5 {
        return Arc::new(EffectiveDist::Replicated {
            domain: IndexDomain::of_shape(&[n]).unwrap(),
            procs: ProcSet::all(np),
        });
    }
    let fmt = match kind % 6 {
        0 => FormatSpec::Block,
        1 => FormatSpec::BlockBalanced,
        2 => FormatSpec::Cyclic(1),
        3 => FormatSpec::Cyclic(3),
        _ => FormatSpec::GeneralBlockSizes(gb_sizes(n, np, seed)),
    };
    let mut ds = DataSpace::new(np);
    let a = ds.declare("M", IndexDomain::of_shape(&[n]).unwrap()).unwrap();
    ds.distribute(a, &DistributeSpec::new(vec![fmt])).unwrap();
    ds.effective(a).unwrap()
}

/// Three 1-D arrays over independently random mappings.
fn build_arrays(n: usize, np: usize, kinds: [u8; 3], seed: u64) -> Vec<DistArray<f64>> {
    vec![
        DistArray::from_fn("A", mapping_of(kinds[0], n, np, seed), np, |i| i[0] as f64),
        DistArray::from_fn("B", mapping_of(kinds[1], n, np, seed ^ 0x517c), np, |i| {
            (i[0] * 11 - 3) as f64
        }),
        DistArray::from_fn("C", mapping_of(kinds[2], n, np, seed ^ 0xe3a1), np, |i| {
            (7 - i[0] * 2) as f64
        }),
    ]
}

/// One statement shape from a small dependence-rich repertoire: shapes
/// write different arrays so random sequences produce real superstep
/// DAGs (RAW chains, WAW collisions, independent statements that fuse
/// and coalesce) and leave `C` clean in shape-0/2-only programs.
fn build_stmt(shape: u8, n: i64, arrays: &[DistArray<f64>]) -> Assignment {
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let lo = Section::from_triplets(vec![span(1, n - 2)]);
    let hi = Section::from_triplets(vec![span(3, n)]);
    let mid = Section::from_triplets(vec![span(2, n - 1)]);
    let (lhs, combine, terms) = match shape % 4 {
        // A smooths itself (self-WAR: safe inside one superstep)
        0 => (0usize, Combine::Average, vec![Term::new(0, lo), Term::new(0, hi)]),
        // B folds in A (RAW after shape 0, fuses beside shape 2/3)
        1 => (1, Combine::Sum, vec![Term::new(1, mid), Term::new(0, lo)]),
        // A accumulates the never-written coefficients C
        2 => (0, Combine::Sum, vec![Term::new(0, mid), Term::new(2, lo)]),
        // B stencils A (coalesces with shape 1 in the same superstep)
        _ => (1, Combine::Max, vec![Term::new(0, lo), Term::new(0, hi)]),
    };
    Assignment::new(lhs, Section::from_triplets(vec![mid_section(n)]), terms, combine, &doms)
        .unwrap()
}

fn mid_section(n: i64) -> Triplet {
    span(2, n - 1)
}

/// Apply one timestep's statements to a dense oracle copy, statement by
/// statement in program order with Fortran 90 copy-in/copy-out semantics.
fn oracle_step(arrays: &mut [DistArray<f64>], stmts: &[Assignment]) {
    for stmt in stmts {
        let dense = dense_reference(arrays, stmt);
        let dom = arrays[stmt.lhs].domain().clone();
        for (k, i) in dom.iter().enumerate() {
            arrays[stmt.lhs].set(&i, dense[k]);
        }
    }
}

/// Build identical programs over clones that *share* mapping allocations
/// (so fused plans and caches behave identically across paths).
fn programs(arrays: &[DistArray<f64>], stmts: &[Assignment], copies: usize) -> Vec<Program> {
    (0..copies)
        .map(|_| {
            let mut p = Program::new(arrays.to_vec());
            for s in stmts {
                p.push(s.clone()).unwrap();
            }
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused ≡ per-statement ≡ dense oracle: random statement sequences
    /// over random mapping triples, every fused execution path, several
    /// warm timesteps.
    #[test]
    fn fused_paths_match_unfused_and_oracle(
        n in 16usize..40,
        np in 2usize..5,
        ka in 0u8..6,
        kb in 0u8..6,
        kc in 0u8..6,
        seed in 0u64..1000,
        shapes in proptest::collection::vec(0u8..4, 1..5),
        timesteps in 1usize..4,
    ) {
        let arrays = build_arrays(n, np, [ka, kb, kc], seed);
        let stmts: Vec<Assignment> =
            shapes.iter().map(|&s| build_stmt(s, n as i64, &arrays)).collect();
        let mut oracle = arrays.clone();
        let threads = (np / 2).max(2).min(np.saturating_sub(1)).max(2);
        let mut paths: Vec<Session> = {
            let mut ps = programs(&arrays, &stmts, 4).into_iter();
            vec![
                Session::new(ps.next().unwrap()),
                Session::new(ps.next().unwrap()).backend(Backend::Channels),
                Session::new(ps.next().unwrap()).threads(threads),
                Session::new(ps.next().unwrap()).fused(false),
            ]
        };
        for _ in 0..timesteps {
            oracle_step(&mut oracle, &stmts);
            for path in paths.iter_mut() {
                path.run(1).unwrap();
            }
            for (which, path) in paths.iter().enumerate() {
                for (k, o) in oracle.iter().enumerate() {
                    prop_assert_eq!(
                        path.program().arrays[k].to_dense(),
                        o.to_dense(),
                        "path {} array {} diverged from the dense oracle",
                        which,
                        k
                    );
                }
            }
        }
        // each *distinct* statement was inspected once (duplicates share
        // the structurally-keyed cache entry), then every later timestep
        // replayed the fused plan warm
        let distinct: std::collections::HashSet<&Assignment> = stmts.iter().collect();
        for path in &paths[..3] {
            let p = path.program();
            prop_assert_eq!(p.cache_misses(), distinct.len() as u64);
            prop_assert_eq!(
                p.cache_hits(),
                (stmts.len() - distinct.len()) as u64
                    + (timesteps as u64 - 1) * stmts.len() as u64
            );
            prop_assert_eq!(p.fusion_stats().fused_timesteps, timesteps as u64);
        }
    }

    /// A mid-trajectory `REDISTRIBUTE` of a random array invalidates the
    /// fused plan (and exactly the constituent plans that involve it),
    /// and the trajectory stays equal to the oracle across the remap.
    #[test]
    fn remap_invalidates_fused_plan(
        n in 16usize..40,
        np in 2usize..5,
        ka in 0u8..5,
        kb in 0u8..5,
        kc in 0u8..5,
        knew in 0u8..5,
        seed in 0u64..1000,
        shapes in proptest::collection::vec(0u8..4, 2..5),
        remap_which in 0usize..3,
    ) {
        let arrays = build_arrays(n, np, [ka, kb, kc], seed);
        let stmts: Vec<Assignment> =
            shapes.iter().map(|&s| build_stmt(s, n as i64, &arrays)).collect();
        let mut oracle = arrays.clone();
        let mut progs = {
            let mut ps = programs(&arrays, &stmts, 2).into_iter();
            vec![
                Session::new(ps.next().unwrap()),
                Session::new(ps.next().unwrap()).fused(false),
            ]
        };
        for _ in 0..2 {
            oracle_step(&mut oracle, &stmts);
            progs[0].run(1).unwrap();
            progs[1].run(1).unwrap();
        }
        let distinct: std::collections::HashSet<&Assignment> = stmts.iter().collect();
        let cold_misses = progs[0].program().cache_misses();
        prop_assert_eq!(cold_misses, distinct.len() as u64);

        // remap one array onto a fresh allocation (same family is fine:
        // identity invalidation is what's under test)
        let new_map = mapping_of(knew, n, np, seed ^ 0xbeef);
        let stale = distinct
            .iter()
            .filter(|s| {
                s.lhs == remap_which || s.terms.iter().any(|t| t.array == remap_which)
            })
            .count() as u64;
        progs[0].program_mut().remap(remap_which, new_map.clone()).unwrap();
        progs[1].program_mut().remap(remap_which, new_map).unwrap();
        for (k, o) in oracle.iter().enumerate() {
            // the remap moved values, not semantics
            prop_assert_eq!(progs[0].program().arrays[k].to_dense(), o.to_dense());
        }
        for _ in 0..2 {
            oracle_step(&mut oracle, &stmts);
            progs[0].run(1).unwrap();
            progs[1].run(1).unwrap();
            for (k, o) in oracle.iter().enumerate() {
                prop_assert_eq!(progs[0].program().arrays[k].to_dense(), o.to_dense());
                prop_assert_eq!(progs[1].program().arrays[k].to_dense(), o.to_dense());
            }
        }
        // exactly the statements touching the remapped array were
        // re-inspected; the rest replayed from the cache
        prop_assert_eq!(progs[0].program().cache_misses(), cold_misses + stale);
    }
}

/// The ISSUE's dirty-tracking regression: in the CYCLIC(1) red-black
/// solver the boundary values `U(0)`/`U(n+1)` are read every sweep but
/// written by neither — after the cold timestep their ghost units are
/// clean and warm timesteps must move strictly less data than the
/// unfused per-statement replay, which re-ships them forever.
#[test]
fn clean_ghosts_are_not_resent_on_warm_timesteps() {
    let n = 31i64;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    let u = ds.declare("U", IndexDomain::standard(&[(0, n + 1)]).unwrap()).unwrap();
    ds.distribute(u, &DistributeSpec::new(vec![FormatSpec::Cyclic(1)])).unwrap();
    let arrays =
        vec![DistArray::from_fn("U", ds.effective(u).unwrap(), np, |i| i[0] as f64)];
    let doms: Vec<&IndexDomain> = arrays.iter().map(|a| a.domain()).collect();
    let red = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(2, n, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(1, n - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(3, n + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();
    let black = Assignment::new(
        0,
        Section::from_triplets(vec![triplet(1, n, 2)]),
        vec![
            Term::new(0, Section::from_triplets(vec![triplet(0, n - 1, 2)])),
            Term::new(0, Section::from_triplets(vec![triplet(2, n + 1, 2)])),
        ],
        Combine::Average,
        &doms,
    )
    .unwrap();
    let stmts = vec![red, black];
    let mut oracle = arrays.clone();
    let mut progs = {
        let mut ps = programs(&arrays, &stmts, 2).into_iter();
        vec![
            Session::new(ps.next().unwrap()),
            Session::new(ps.next().unwrap()).fused(false),
        ]
    };

    let timesteps = 4u64;
    let mut fused_cold = 0u64;
    let mut unfused_cold = 0u64;
    let (mut prev_fused, mut prev_unfused) = (0u64, 0u64);
    for t in 0..timesteps {
        oracle_step(&mut oracle, &stmts);
        progs[0].run(1).unwrap();
        progs[1].run(1).unwrap();
        assert_eq!(progs[0].program().arrays[0].to_dense(), oracle[0].to_dense());
        assert_eq!(progs[1].program().arrays[0].to_dense(), oracle[0].to_dense());
        let fused_step = progs[0].program().backend_bytes_sent() - prev_fused;
        let unfused_step = progs[1].program().backend_bytes_sent() - prev_unfused;
        prev_fused = progs[0].program().backend_bytes_sent();
        prev_unfused = progs[1].program().backend_bytes_sent();
        if t == 0 {
            fused_cold = fused_step;
            unfused_cold = unfused_step;
            // the cold timestep ships the full ghost exchange on both
            assert_eq!(fused_cold, unfused_cold);
        } else {
            // every warm timestep: the never-written boundary ghosts
            // U(0)/U(n+1) are NOT re-sent on the fused path, while the
            // unfused replay re-ships everything
            assert_eq!(unfused_step, unfused_cold, "unfused re-sends everything");
            assert_eq!(
                fused_step,
                fused_cold - 2 * 8,
                "exactly the two clean boundary elements are skipped"
            );
        }
    }
    let fs = progs[0].program().fusion_stats();
    assert_eq!(fs.supersteps, 2);
    assert_eq!(
        fs.ghost_elements_avoided,
        2 * (timesteps - 1),
        "two boundary elements per warm timestep: {fs}"
    );
}

/// Mutation tests: corrupt one coalesced schedule entry at a time and
/// assert the static verifier refutes the specific property — the fused
/// layer cannot silently ship a plan that diverges from its constituent
/// statements.
#[test]
fn verifier_catches_corrupted_fused_plans() {
    let n = 24usize;
    let np = 3usize;
    let arrays = build_arrays(n, np, [0, 2, 4], 7);
    let stmts: Vec<Assignment> =
        [0u8, 1, 2].iter().map(|&s| build_stmt(s, n as i64, &arrays)).collect();
    let plans: Vec<Arc<ExecPlan>> = stmts
        .iter()
        .map(|s| Arc::new(ExecPlan::inspect(&arrays, s).unwrap()))
        .collect();
    let pristine = ProgramPlan::compile(&stmts, plans);
    let report = verify_program_plan(&arrays, &stmts, &pristine);
    assert!(report.is_clean(), "the honest plan must verify:\n{report}");
    assert!(report.segments > 0, "the workload must actually communicate");

    // (a) shrink one coalesced segment: the pair's declared element
    // count no longer conserves, and an element the constituents ship
    // goes missing
    let mut mutant = pristine.clone();
    let seg = &mut mutant.pairs_mut()[0].segments[0];
    assert!(seg.len >= 1);
    seg.len -= 1;
    let report = verify_program_plan(&arrays, &stmts, &mutant);
    assert!(!report.is_clean());
    assert!(
        report.findings_for(Property::Conservation).next().is_some(),
        "shrunken segment must break conservation:\n{report}"
    );
    assert!(
        report.findings_for(Property::DeadlockFreedom).next().is_some(),
        "shrunken segment must orphan the constituent flow:\n{report}"
    );

    // (b) hoist a pack phase before the statement's writers: the staged
    // copy would snapshot stale data
    let mut mutant = pristine.clone();
    let hoistable = (0..mutant.pairs().len())
        .find(|&k| mutant.pairs()[k].pack_phase > 0)
        .expect("the RAW chain must force a phase > 0");
    mutant.pairs_mut()[hoistable].pack_phase = 0;
    let report = verify_program_plan(&arrays, &stmts, &mutant);
    assert!(
        report
            .findings_for(Property::RaceFreedom)
            .any(|d| matches!(d.kind, DiagnosticKind::FusedPhaseRace { .. })),
        "hoisted pack phase must be a race:\n{report}"
    );

    // (c) teleport a segment's source offset: the multiset of shipped
    // element flows diverges from the constituents in both directions
    let mut mutant = pristine.clone();
    mutant.pairs_mut()[0].segments[0].src_off += 1;
    let report = verify_program_plan(&arrays, &stmts, &mutant);
    assert!(
        report
            .findings_for(Property::DeadlockFreedom)
            .any(|d| matches!(d.kind, DiagnosticKind::FusedSegmentOrphan { .. })),
        "teleported segment must be an orphan:\n{report}"
    );
    assert!(
        report
            .findings_for(Property::DeadlockFreedom)
            .any(|d| matches!(d.kind, DiagnosticKind::FusedSegmentMissing { .. })),
        "the constituent flow it replaced must be reported missing:\n{report}"
    );
}

/// The fused `Channels` path tolerates an idle-timeout worker-fleet
/// respawn boundary: switching between executor families (SharedMem ↔
/// Channels) re-ships everything rather than trusting buffers the other
/// family staged.
#[test]
fn switching_executor_families_stays_correct() {
    let n = 24usize;
    let np = 3usize;
    let arrays = build_arrays(n, np, [0, 2, 0], 11);
    let stmts: Vec<Assignment> =
        [1u8, 2].iter().map(|&s| build_stmt(s, n as i64, &arrays)).collect();
    let mut oracle = arrays.clone();
    let mut sess = Session::new(programs(&arrays, &stmts, 1).remove(0));
    for t in 0..6 {
        oracle_step(&mut oracle, &stmts);
        // a session can be re-pointed at another backend between steps
        sess = sess.backend(if t % 2 == 0 {
            Backend::SharedMem
        } else {
            Backend::Channels
        });
        sess.run(1).unwrap();
        for (k, o) in oracle.iter().enumerate() {
            assert_eq!(sess.program().arrays[k].to_dense(), o.to_dense());
        }
    }
    assert_eq!(sess.program().cache_misses(), stmts.len() as u64);
}
