//! E1 (§4.1) — the distribution formats place elements exactly as the
//! paper's formulas say. Prints the owner maps for small instances and
//! the per-processor counts for large ones.

use hpf_core::{DataSpace, DistributeSpec, FormatSpec, GeneralBlock};
use hpf_index::{Idx, IndexDomain};
use hpf_procs::ProcId;

fn owner_row(label: &str, ds: &DataSpace, id: hpf_core::ArrayId, n: i64) {
    let mut row = format!("{label:<22}");
    for i in 1..=n {
        let o = ds.owners(id, &Idx::d1(i)).unwrap().as_single().unwrap();
        row.push_str(&format!("{:>3}", o.0));
    }
    println!("{row}");
}

fn main() {
    println!("E1 — §4.1 distribution formats, N = 16, NP = 4\n");
    let n = 16usize;
    let np = 4usize;
    let mut ds = DataSpace::new(np);
    let mk = |ds: &mut DataSpace, name: &str, f: FormatSpec| {
        let id = ds.declare(name, IndexDomain::of_shape(&[n]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![f])).unwrap();
        id
    };
    let block = mk(&mut ds, "BLOCK", FormatSpec::Block);
    let bal = mk(&mut ds, "BAL", FormatSpec::BlockBalanced);
    let cyc1 = mk(&mut ds, "CYC1", FormatSpec::Cyclic(1));
    let cyc3 = mk(&mut ds, "CYC3", FormatSpec::Cyclic(3));
    let gb = mk(&mut ds, "GB", FormatSpec::GeneralBlock(vec![2, 9, 12]));

    print!("{:<22}", "element");
    for i in 1..=n {
        print!("{i:>3}");
    }
    println!();
    owner_row("BLOCK (q=4)", &ds, block, n as i64);
    owner_row("BLOCK_BALANCED", &ds, bal, n as i64);
    owner_row("CYCLIC", &ds, cyc1, n as i64);
    owner_row("CYCLIC(3)", &ds, cyc3, n as i64);
    owner_row("GENERAL_BLOCK(2,9,12)", &ds, gb, n as i64);

    println!("\nlarge-N per-processor element counts (N = 1_000_000, NP = 32):");
    let big_n = 1_000_000usize;
    let mut ds = DataSpace::new(32);
    for (name, f) in [
        ("BLOCK", FormatSpec::Block),
        ("BLOCK_BALANCED", FormatSpec::BlockBalanced),
        ("CYCLIC(8)", FormatSpec::Cyclic(8)),
    ] {
        let id = ds.declare(name, IndexDomain::of_shape(&[big_n]).unwrap()).unwrap();
        ds.distribute(id, &DistributeSpec::new(vec![f])).unwrap();
        let eff = ds.effective(id).unwrap();
        let counts: Vec<usize> = (1..=32u32)
            .map(|p| eff.owned_region(ProcId(p)).volume_disjoint())
            .collect();
        println!(
            "  {name:<16} min {:>7}  max {:>7}  total {}",
            counts.iter().min().unwrap(),
            counts.iter().max().unwrap(),
            counts.iter().sum::<usize>()
        );
    }

    println!("\nbalanced GENERAL_BLOCK on a skewed workload (N = 10^5, NP = 8):");
    let weights: Vec<u64> = (1..=100_000u64).collect();
    let gb = GeneralBlock::balanced(&weights, 8).unwrap();
    println!(
        "  bounds G = {:?}\n  bottleneck = {} (ideal = {})",
        (1..8).map(|j| gb.bound(j)).collect::<Vec<_>>(),
        gb.bottleneck(&weights),
        weights.iter().sum::<u64>() / 8
    );
}
