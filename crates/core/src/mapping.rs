use crate::align::func::AlignmentFn;
use crate::dist::dist::Distribution;
use crate::procset::ProcSet;
use hpf_index::{Idx, IndexDomain, Rect, Region, Section, Triplet};
use hpf_procs::ProcId;
use std::fmt;
use std::sync::Arc;

/// The *effective distribution* of an array: a closed representation of
/// `δ_A` that may or may not be expressible as a distribution format list.
///
/// This realizes the paper's central position (§8.2) that "distributions
/// [...] are considered to be an attribute of an array": a secondary
/// array's distribution is `CONSTRUCT(α, δ_B)` (Definition 4), a dummy
/// argument inheriting from a section actual carries a *composed* mapping
/// ("inherited distributions which cannot be explicitly specified"), and
/// inquiry functions can interrogate any of them.
#[derive(Debug, Clone)]
pub enum EffectiveDist {
    /// A directly specified, format-based distribution (primary arrays).
    Direct(Arc<Distribution>),
    /// `CONSTRUCT(α, δ_base)`: the mapping of a secondary array.
    Aligned {
        /// The alignment function `α`.
        align: Arc<AlignmentFn>,
        /// The base's effective distribution `δ_B`.
        base: Arc<EffectiveDist>,
    },
    /// A dummy argument's inherited mapping: the section embedding composed
    /// with the actual argument's mapping (§7, §8.1.2).
    Embedded {
        /// The dummy's own (standard, 1-based) index domain.
        domain: IndexDomain,
        /// The section of the parent selected by the actual argument.
        section: Section,
        /// The actual argument's effective distribution.
        parent: Arc<EffectiveDist>,
    },
    /// Full replication of every element over a fixed processor set
    /// (scalar processor arrangements with the replication policy, §3).
    Replicated {
        /// The array's index domain.
        domain: IndexDomain,
        /// The processors holding a copy.
        procs: ProcSet,
    },
}

impl EffectiveDist {
    /// Wrap a direct distribution.
    pub fn direct(d: Distribution) -> Self {
        EffectiveDist::Direct(Arc::new(d))
    }

    /// Build `CONSTRUCT(α, δ_B)`.
    pub fn aligned(align: Arc<AlignmentFn>, base: Arc<EffectiveDist>) -> Self {
        EffectiveDist::Aligned { align, base }
    }

    /// The index domain the mapping is total on.
    pub fn domain(&self) -> &IndexDomain {
        match self {
            EffectiveDist::Direct(d) => d.domain(),
            EffectiveDist::Aligned { align, .. } => align.alignee(),
            EffectiveDist::Embedded { domain, .. } => domain,
            EffectiveDist::Replicated { domain, .. } => domain,
        }
    }

    /// The direct distribution, if this mapping is format-expressible.
    pub fn as_direct(&self) -> Option<&Distribution> {
        match self {
            EffectiveDist::Direct(d) => Some(d),
            _ => None,
        }
    }

    /// Owners of element `i` — Definition 4:
    /// `δ_A(i) = ∪_{j ∈ α(i)} δ_B(j)`.
    pub fn owners(&self, i: &Idx) -> ProcSet {
        match self {
            EffectiveDist::Direct(d) => d.owners(i),
            EffectiveDist::Aligned { align, base } => {
                let img = align.image_rect(i);
                base.owners_of_rect(&img)
            }
            EffectiveDist::Embedded { section, parent, .. } => {
                let p = section.embed(i).expect("index within dummy domain");
                parent.owners(&p)
            }
            EffectiveDist::Replicated { procs, .. } => procs.clone(),
        }
    }

    /// The first owner (a canonical representative; unique unless the
    /// mapping replicates).
    pub fn owner(&self, i: &Idx) -> ProcId {
        self.owners(i).iter().next().expect("Definition 1: images are non-empty")
    }

    /// Owners of every element of a rect, as one set.
    pub fn owners_of_rect(&self, r: &Rect) -> ProcSet {
        match self {
            EffectiveDist::Direct(d) => d.owners_of_rect(r),
            EffectiveDist::Replicated { procs, .. } => {
                if r.is_empty() {
                    ProcSet::Many(Vec::new())
                } else {
                    procs.clone()
                }
            }
            // generic path: pointwise union (rects reaching here are small
            // — they come from alignment images and section embeddings)
            _ => {
                let mut acc: Option<ProcSet> = None;
                for i in r.iter() {
                    let o = self.owners(&i);
                    acc = Some(match acc {
                        None => o,
                        Some(a) => a.union(&o),
                    });
                }
                acc.unwrap_or(ProcSet::Many(Vec::new()))
            }
        }
    }

    /// The region of the array's own index space owned by processor `p`
    /// (elements whose owner set contains `p`).
    pub fn owned_region(&self, p: ProcId) -> Region {
        match self {
            EffectiveDist::Direct(d) => d.owned_region(p),
            EffectiveDist::Aligned { align, base } => {
                let base_owned = base.owned_region(p);
                let mut out = Region::empty(align.alignee().rank());
                for rect in base_owned.rects() {
                    for r in align.preimage_region(rect).rects() {
                        if !out.rects().iter().any(|q| rect_subsumes(q, r)) {
                            out.push(r.clone());
                        }
                    }
                }
                dedup_region(out)
            }
            EffectiveDist::Embedded { domain, section, parent } => {
                let parent_owned = parent.owned_region(p);
                let mut out = Region::empty(domain.rank());
                for rect in parent_owned.rects() {
                    if let Some(r) = project_rect_through_section(rect, section) {
                        out.push(r);
                    }
                }
                dedup_region(out)
            }
            EffectiveDist::Replicated { domain, procs } => {
                if procs.contains(p) {
                    Region::from_rect(Rect::new(domain.dims().to_vec()))
                } else {
                    Region::empty(domain.rank())
                }
            }
        }
    }

    /// Extensional equality over the whole domain (used for §7 inheritance
    /// matching when descriptors are not directly comparable). Exhaustive —
    /// intended for spec-sized domains and tests.
    pub fn equal_exhaustive(&self, other: &EffectiveDist) -> bool {
        if self.domain() != other.domain() {
            return false;
        }
        self.domain().iter().all(|i| self.owners(&i) == other.owners(&i))
    }

    /// Structural match when both are direct; falls back to extensional
    /// comparison otherwise.
    pub fn matches(&self, other: &EffectiveDist) -> bool {
        if let (Some(a), Some(b)) = (self.as_direct(), other.as_direct()) {
            return a.matches(b);
        }
        self.equal_exhaustive(other)
    }

    /// Total number of (element, owner) pairs that differ between two
    /// mappings over the same domain — the volume a remapping must move
    /// (elements whose owner sets differ contribute 1 each).
    pub fn remap_volume(&self, other: &EffectiveDist) -> usize {
        debug_assert_eq!(self.domain(), other.domain());
        self.domain()
            .iter()
            .filter(|i| self.owners(i) != other.owners(i))
            .count()
    }
}

/// A cheap identity token for a shared mapping, used to key runtime plan
/// caches: two tokens compare equal iff they were taken from the *same*
/// `Arc<EffectiveDist>` allocation.
///
/// Pointer identity is exactly the invalidation granularity a compiled
/// execution plan needs — a `REDISTRIBUTE`/`REALIGN` event produces a new
/// `EffectiveDist` (and hence a new `Arc`), while timestep iteration reuses
/// the same one. The token retains the `Arc`, so an identity held in a
/// cache keeps its mapping alive and allocator address reuse can never
/// produce a false match.
#[derive(Debug, Clone)]
pub struct MappingId(Arc<EffectiveDist>);

impl MappingId {
    /// The identity of a shared mapping.
    pub fn of(mapping: &Arc<EffectiveDist>) -> Self {
        MappingId(Arc::clone(mapping))
    }

    /// The mapping the token identifies.
    pub fn mapping(&self) -> &Arc<EffectiveDist> {
        &self.0
    }

    /// True iff `mapping` is the allocation this token identifies.
    pub fn is(&self, mapping: &Arc<EffectiveDist>) -> bool {
        Arc::ptr_eq(&self.0, mapping)
    }
}

impl PartialEq for MappingId {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for MappingId {}

impl std::hash::Hash for MappingId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Arc::as_ptr(&self.0) as usize).hash(state);
    }
}

impl fmt::Display for EffectiveDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EffectiveDist::Direct(_) => write!(f, "direct"),
            EffectiveDist::Aligned { align, base } => {
                write!(f, "CONSTRUCT({align}, {base})")
            }
            EffectiveDist::Embedded { section, parent, .. } => {
                write!(f, "embed{section} ∘ {parent}")
            }
            EffectiveDist::Replicated { procs, .. } => write!(f, "replicated{procs}"),
        }
    }
}

fn rect_subsumes(outer: &Rect, inner: &Rect) -> bool {
    outer.rank() == inner.rank()
        && outer
            .dims()
            .iter()
            .zip(inner.dims())
            .all(|(o, i)| i.is_subset_of(o))
}

fn dedup_region(r: Region) -> Region {
    let rank = r.rank();
    let mut out = Region::empty(rank);
    'outer: for rect in r.rects() {
        for kept in out.rects() {
            if rect_subsumes(kept, rect) {
                continue 'outer;
            }
        }
        out.push(rect.clone());
    }
    out
}

/// Intersect a parent-space rect with a section and rewrite it into
/// section-relative (1-based) coordinates; `None` if the intersection is
/// empty.
fn project_rect_through_section(rect: &Rect, section: &Section) -> Option<Rect> {
    let mut dims = Vec::with_capacity(section.rank());
    for (d, sd) in section.dims().iter().enumerate() {
        match sd {
            hpf_index::SectionDim::Scalar(v) => {
                if !rect.dim(d).contains(*v) {
                    return None;
                }
            }
            hpf_index::SectionDim::Triplet(t) => {
                let hit = rect.dim(d).intersect(t);
                if hit.is_empty() {
                    return None;
                }
                // members of `hit` are members of `t`; rewrite to positions
                let (l, s) = (t.lower(), t.stride());
                let first = (hit.min().unwrap() - l) / s + 1;
                let last = (hit.max().unwrap() - l) / s + 1;
                let stride = (hit.stride() / s).abs().max(1);
                let (lo, hi) = if first <= last { (first, last) } else { (last, first) };
                dims.push(Triplet::new(lo, hi, stride).expect("stride > 0"));
            }
        }
    }
    Some(Rect::new(dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::func::AxisMap;
    use crate::dist::format::FormatSpec;
    use hpf_index::{span, triplet};
    use hpf_procs::{ProcSpace, ProcTarget};

    fn direct_1d(n: i64, np: usize, fmt: FormatSpec) -> EffectiveDist {
        let mut ps = ProcSpace::new(np);
        let id = ps.declare_array("P", IndexDomain::of_shape(&[np]).unwrap()).unwrap();
        let t = ProcTarget::whole(&ps, id).unwrap();
        let dom = IndexDomain::standard(&[(1, n)]).unwrap();
        EffectiveDist::direct(Distribution::new("A", &dom, &[fmt], t, &ps).unwrap())
    }

    #[test]
    fn construct_identity_alignment_keeps_owners() {
        // B block-distributed; A(:) aligned identically → same owners
        let base = Arc::new(direct_1d(16, 4, FormatSpec::Block));
        let align = Arc::new(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 16)]).unwrap(),
                IndexDomain::standard(&[(1, 16)]).unwrap(),
                vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }],
            )
            .unwrap(),
        );
        let a = EffectiveDist::aligned(align, base.clone());
        for v in 1..=16 {
            assert_eq!(a.owners(&Idx::d1(v)), base.owners(&Idx::d1(v)));
        }
        // Definition 4 guarantee: A(i) and B(α(i)) collocated
        assert!(a.equal_exhaustive(&base));
    }

    #[test]
    fn construct_with_offset_shifts_owners() {
        // A(I) WITH B(I+8): A(1..8) lives where B(9..16) lives
        let base = Arc::new(direct_1d(16, 4, FormatSpec::Block));
        let align = Arc::new(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 8)]).unwrap(),
                IndexDomain::standard(&[(1, 16)]).unwrap(),
                vec![AxisMap::Affine { dim: 0, a: 1, c: 8 }],
            )
            .unwrap(),
        );
        let a = EffectiveDist::aligned(align, base.clone());
        assert_eq!(a.owner(&Idx::d1(1)), base.owner(&Idx::d1(9)));
        assert_eq!(a.owner(&Idx::d1(8)), base.owner(&Idx::d1(16)));
    }

    #[test]
    fn construct_replication_unions_owners() {
        // A(:) WITH D(:,*) where D is (BLOCK, BLOCK) on a 2×2 grid:
        // A(i) is replicated over the whole processor row owning D(i, :)
        let mut ps = ProcSpace::new(4);
        let g = ps.declare_array("G", IndexDomain::of_shape(&[2, 2]).unwrap()).unwrap();
        let t = ProcTarget::whole(&ps, g).unwrap();
        let ddom = IndexDomain::standard(&[(1, 8), (1, 6)]).unwrap();
        let d = Distribution::new(
            "D",
            &ddom,
            &[FormatSpec::Block, FormatSpec::Block],
            t,
            &ps,
        )
        .unwrap();
        let base = Arc::new(EffectiveDist::direct(d));
        let align = Arc::new(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 8)]).unwrap(),
                ddom,
                vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }, AxisMap::Replicated],
            )
            .unwrap(),
        );
        let a = EffectiveDist::aligned(align, base);
        // row 1 of D lives on grid row 1 = APs {1, 3}
        let o = a.owners(&Idx::d1(1));
        assert_eq!(o.len(), 2);
        assert!(o.contains(ProcId(1)));
        assert!(o.contains(ProcId(3)));
        // owned regions: P1 and P3 both own A(1..4)
        let r1 = a.owned_region(ProcId(1));
        assert!(r1.contains(&Idx::d1(1)));
        assert!(r1.contains(&Idx::d1(4)));
        assert!(!r1.contains(&Idx::d1(5)));
        let r3 = a.owned_region(ProcId(3));
        assert!(r3.contains(&Idx::d1(4)));
    }

    #[test]
    fn aligned_owned_region_matches_pointwise() {
        let base = Arc::new(direct_1d(20, 4, FormatSpec::Cyclic(3)));
        let align = Arc::new(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 10)]).unwrap(),
                IndexDomain::standard(&[(1, 20)]).unwrap(),
                vec![AxisMap::Affine { dim: 0, a: 2, c: -1 }],
            )
            .unwrap(),
        );
        let a = EffectiveDist::aligned(align, base);
        for p in 1..=4u32 {
            let region = a.owned_region(ProcId(p));
            for v in 1..=10i64 {
                let owns = a.owners(&Idx::d1(v)).contains(ProcId(p));
                assert_eq!(region.contains(&Idx::d1(v)), owns, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn embedded_section_mapping() {
        // the §8.1.2 scenario: A(1:1000) CYCLIC(3), dummy X = A(2:996:2)
        let parent = Arc::new(direct_1d(1000, 4, FormatSpec::Cyclic(3)));
        let section = Section::from_triplets(vec![triplet(2, 996, 2)]);
        let domain = section.domain().unwrap().standardized();
        let x = EffectiveDist::Embedded {
            domain: domain.clone(),
            section: section.clone(),
            parent: parent.clone(),
        };
        // X(k) lives exactly where A(2k) lives
        for k in [1i64, 2, 100, 498] {
            assert_eq!(
                x.owners(&Idx::d1(k)),
                parent.owners(&Idx::d1(2 * k)),
                "k={k}"
            );
        }
        // owned regions agree pointwise
        for p in 1..=4u32 {
            let region = x.owned_region(ProcId(p));
            for k in 1..=498i64 {
                let owns = x.owners(&Idx::d1(k)).contains(ProcId(p));
                assert_eq!(region.contains(&Idx::d1(k)), owns, "p={p} k={k}");
            }
        }
    }

    #[test]
    fn replicated_mapping() {
        let dom = IndexDomain::standard(&[(1, 6)]).unwrap();
        let r = EffectiveDist::Replicated { domain: dom, procs: ProcSet::all(3) };
        assert_eq!(r.owners(&Idx::d1(1)).len(), 3);
        assert_eq!(r.owned_region(ProcId(2)).volume_disjoint(), 6);
        assert!(r.owned_region(ProcId(9)).is_empty());
    }

    #[test]
    fn remap_volume_counts_moved_elements() {
        let a = direct_1d(16, 4, FormatSpec::Block);
        let b = direct_1d(16, 4, FormatSpec::Cyclic(1));
        // block: 1111 2222 3333 4444 ; cyclic: 1234 1234 1234 1234
        // agreeing positions: 1 (P1), 6 (P2), 11 (P3), 16 (P4)
        assert_eq!(a.remap_volume(&b), 12);
        assert_eq!(a.remap_volume(&a), 0);
    }

    #[test]
    fn mapping_id_is_allocation_identity() {
        let a = Arc::new(direct_1d(16, 4, FormatSpec::Block));
        let b = Arc::new(direct_1d(16, 4, FormatSpec::Block));
        // same Arc → equal; structurally identical but distinct Arc → unequal
        assert_eq!(MappingId::of(&a), MappingId::of(&a.clone()));
        assert_ne!(MappingId::of(&a), MappingId::of(&b));
        assert!(MappingId::of(&a).is(&a));
        assert!(!MappingId::of(&a).is(&b));
        // the token keeps the mapping alive and hands it back
        let id = MappingId::of(&a);
        assert_eq!(id.mapping().domain(), a.domain());
        // usable as a hash key
        let mut set = std::collections::HashSet::new();
        set.insert(MappingId::of(&a));
        assert!(set.contains(&MappingId::of(&a)));
        assert!(!set.contains(&MappingId::of(&b)));
    }

    #[test]
    fn owners_of_rect_generic_path() {
        let base = Arc::new(direct_1d(16, 4, FormatSpec::Block));
        let align = Arc::new(
            AlignmentFn::from_parts(
                IndexDomain::standard(&[(1, 16)]).unwrap(),
                IndexDomain::standard(&[(1, 16)]).unwrap(),
                vec![AxisMap::Affine { dim: 0, a: 1, c: 0 }],
            )
            .unwrap(),
        );
        let a = EffectiveDist::aligned(align, base);
        let o = a.owners_of_rect(&Rect::new(vec![span(3, 6)]));
        // elements 3..6 live on P1 (1..4) and P2 (5..8)
        let v: Vec<u32> = o.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![1, 2]);
    }
}
