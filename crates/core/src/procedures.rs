use crate::align::spec::AlignSpec;
use crate::dist::dist::{DistributeSpec, Distribution};
use crate::forest::{ArrayId, DataSpace};
use crate::mapping::EffectiveDist;
use crate::HpfError;
use hpf_index::Section;
use std::fmt;
use std::sync::Arc;

/// How a dummy argument receives its distribution (§7):
///
/// 1. **explicitly** — `DISTRIBUTE A d [TO r]`: the actual is remapped if
///    necessary, and remapped back on exit;
/// 2. **by inheritance** — `DISTRIBUTE A *`: the actual's distribution is
///    transferred into the procedure;
/// 3. **by inheritance matching** — `DISTRIBUTE A * d [TO r]`: the
///    inherited distribution must match the specification; with an
///    interface block the caller remaps instead, otherwise a mismatch makes
///    the program non-conforming;
/// 4. **implicitly** — the compiler provides a distribution.
#[derive(Debug, Clone)]
pub enum DummySpec {
    /// Case 1: `DISTRIBUTE A d [TO r]`.
    Explicit(DistributeSpec),
    /// Case 2: `DISTRIBUTE A *`.
    Inherit,
    /// Case 3: `DISTRIBUTE A * d [TO r]`.
    InheritMatching {
        /// The required distribution.
        spec: DistributeSpec,
        /// True when an interface block makes the dummy's attribute visible
        /// to the caller, allowing the language processor to remap instead
        /// of rejecting.
        interface_block: bool,
    },
    /// Case 4: no directive.
    Implicit,
    /// §7: "it can also be specified by giving an alignment to another
    /// dummy argument" — align this dummy to the dummy at `base` (0-based
    /// position in the dummy list).
    AlignToDummy {
        /// Position of the base dummy.
        base: usize,
        /// The directive body.
        spec: AlignSpec,
    },
}

/// One dummy argument declaration.
#[derive(Debug, Clone)]
pub struct Dummy {
    /// Dummy name (local to the procedure).
    pub name: String,
    /// How it receives its distribution.
    pub spec: DummySpec,
    /// Whether the dummy is declared `DYNAMIC` inside the procedure.
    pub dynamic: bool,
}

impl Dummy {
    /// A dummy with the given mapping specification.
    pub fn new(name: &str, spec: DummySpec) -> Self {
        Dummy { name: name.to_string(), spec, dynamic: false }
    }

    /// Mark the dummy `DYNAMIC`.
    pub fn dynamic(mut self) -> Self {
        self.dynamic = true;
        self
    }
}

/// A procedure interface: name plus dummy argument list.
#[derive(Debug, Clone)]
pub struct ProcedureDef {
    /// Procedure name.
    pub name: String,
    /// Dummy arguments in order.
    pub dummies: Vec<Dummy>,
}

impl ProcedureDef {
    /// Build a definition.
    pub fn new(name: &str, dummies: Vec<Dummy>) -> Self {
        ProcedureDef { name: name.to_string(), dummies }
    }
}

/// An actual argument: an array or a section of one (§8.1.2's
/// `CALL SUB(A(2:996:2))`).
#[derive(Debug, Clone)]
pub struct Actual {
    /// The caller-side array.
    pub array: ArrayId,
    /// The section passed; `None` passes the whole array.
    pub section: Option<Section>,
}

impl Actual {
    /// Pass the whole array.
    pub fn whole(array: ArrayId) -> Self {
        Actual { array, section: None }
    }

    /// Pass a section.
    pub fn section(array: ArrayId, s: Section) -> Self {
        Actual { array, section: Some(s) }
    }
}

/// When a remap event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapPhase {
    /// While mapping actuals to dummies at call entry.
    Enter,
    /// While restoring original distributions at exit (§7: "the original
    /// distribution must be restored on procedure exit").
    Exit,
}

/// One data-movement event at a procedure boundary.
#[derive(Debug, Clone)]
pub struct RemapEvent {
    /// The dummy involved.
    pub dummy: String,
    /// Entry or exit.
    pub phase: RemapPhase,
    /// Number of elements whose owner changed.
    pub volume: usize,
    /// Human-readable cause.
    pub reason: String,
}

impl fmt::Display for RemapEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            RemapPhase::Enter => "enter",
            RemapPhase::Exit => "exit",
        };
        write!(f, "[{phase}] {}: {} elements ({})", self.dummy, self.volume, self.reason)
    }
}

/// An active procedure invocation: a procedure-local data space (the
/// alignment tree "is local to a procedure", §7) plus the bookkeeping
/// needed to restore distributions on exit.
pub struct CallFrame {
    procedure: String,
    local: DataSpace,
    dummies: Vec<ArrayId>,
    entry_mappings: Vec<Arc<EffectiveDist>>,
    incoming: Vec<Arc<EffectiveDist>>,
    events: Vec<RemapEvent>,
}

impl CallFrame {
    /// Enter a procedure: map every actual to its dummy per the §7 rules.
    ///
    /// The caller's data space is only read — copy-in/copy-out movement is
    /// reported in [`CallFrame::events`] rather than mutating the caller's
    /// descriptors (they are restored by exit anyway).
    pub fn enter(
        caller: &DataSpace,
        def: &ProcedureDef,
        actuals: &[Actual],
    ) -> Result<CallFrame, HpfError> {
        if actuals.len() != def.dummies.len() {
            return Err(HpfError::ArgumentCount {
                procedure: def.name.clone(),
                dummies: def.dummies.len(),
                actuals: actuals.len(),
            });
        }
        let mut local = DataSpace::with_procs(caller.procs().clone());
        let mut dummies = Vec::with_capacity(def.dummies.len());
        let mut incoming = Vec::with_capacity(def.dummies.len());
        let mut events = Vec::new();

        // phase 1: build incoming (inherited) mappings for every dummy
        for (dummy, actual) in def.dummies.iter().zip(actuals) {
            let parent_eff = caller.effective(actual.array)?;
            let parent_dom = caller
                .domain(actual.array)
                .ok_or_else(|| HpfError::NotAllocated(caller.name(actual.array).into()))?;
            let section = match &actual.section {
                Some(s) => {
                    s.validate(parent_dom)?;
                    s.clone()
                }
                None => Section::full(parent_dom),
            };
            let dummy_domain = section.domain()?.standardized();
            let inherited = Arc::new(EffectiveDist::Embedded {
                domain: dummy_domain.clone(),
                section,
                parent: parent_eff,
            });
            // declare the dummy in the local space, then override its
            // implicit mapping with the §7-selected one in phase 2
            let id = local.declare(&dummy.name, dummy_domain)?;
            if dummy.dynamic {
                local.set_dynamic(id);
            }
            dummies.push(id);
            incoming.push(inherited);
        }

        // phase 2: apply the §7 mapping rules
        let mut entry_mappings = Vec::with_capacity(def.dummies.len());
        for (k, dummy) in def.dummies.iter().enumerate() {
            let id = dummies[k];
            let inherited = incoming[k].clone();
            let chosen: Arc<EffectiveDist> = match &dummy.spec {
                DummySpec::Inherit => inherited.clone(),
                DummySpec::Explicit(dspec) => {
                    let dom = inherited.domain().clone();
                    let d = bind_in(&local, &dummy.name, &dom, dspec)?;
                    let new = Arc::new(EffectiveDist::direct(d));
                    let volume = inherited.remap_volume(&new);
                    if volume > 0 {
                        events.push(RemapEvent {
                            dummy: dummy.name.clone(),
                            phase: RemapPhase::Enter,
                            volume,
                            reason: format!("explicit DISTRIBUTE {dspec}"),
                        });
                    }
                    new
                }
                DummySpec::InheritMatching { spec, interface_block } => {
                    let dom = inherited.domain().clone();
                    let d = bind_in(&local, &dummy.name, &dom, spec)?;
                    let required = Arc::new(EffectiveDist::direct(d));
                    if inherited.matches(&required) {
                        inherited.clone()
                    } else if *interface_block {
                        let volume = inherited.remap_volume(&required);
                        events.push(RemapEvent {
                            dummy: dummy.name.clone(),
                            phase: RemapPhase::Enter,
                            volume,
                            reason: format!(
                                "inheritance matching via interface block: remap to {spec}"
                            ),
                        });
                        required
                    } else {
                        return Err(HpfError::DistributionMismatch {
                            dummy: dummy.name.clone(),
                            reason: format!("actual does not match `* {spec}`"),
                        });
                    }
                }
                DummySpec::Implicit => {
                    // compiler-provided: keep the inherited mapping — the
                    // cheapest conforming choice (no movement), cf. §8.1.2:
                    // "a subroutine will usually be written so that [...]
                    // the dummy arguments will indeed inherit the
                    // distribution from the actual argument"
                    inherited.clone()
                }
                DummySpec::AlignToDummy { .. } => {
                    // resolved in phase 3 (needs the other dummies mapped)
                    inherited.clone()
                }
            };
            set_mapping(&mut local, id, chosen.clone());
            entry_mappings.push(chosen);
        }

        // phase 3: dummy-to-dummy alignments
        for (k, dummy) in def.dummies.iter().enumerate() {
            if let DummySpec::AlignToDummy { base, spec } = &dummy.spec {
                if *base >= dummies.len() || *base == k {
                    return Err(HpfError::NotConforming(format!(
                        "dummy `{}` aligned to invalid dummy position {base}",
                        dummy.name
                    )));
                }
                let id = dummies[k];
                let base_id = dummies[*base];
                let adom = local.domain(id).expect("declared").clone();
                let bdom = local.domain(base_id).expect("declared").clone();
                let f = crate::align::reduce::reduce(spec, &adom, &bdom)?;
                let base_eff = local.effective(base_id)?;
                let new = Arc::new(EffectiveDist::Aligned {
                    align: Arc::new(f),
                    base: base_eff,
                });
                let volume = incoming[k].remap_volume(&new);
                if volume > 0 {
                    events.push(RemapEvent {
                        dummy: dummy.name.clone(),
                        phase: RemapPhase::Enter,
                        volume,
                        reason: format!("ALIGN with dummy `{}`", def.dummies[*base].name),
                    });
                }
                set_mapping(&mut local, id, new.clone());
                entry_mappings[k] = new;
            }
        }

        Ok(CallFrame {
            procedure: def.name.clone(),
            local,
            dummies,
            entry_mappings,
            incoming,
            events,
        })
    }

    /// The procedure name.
    pub fn procedure(&self) -> &str {
        &self.procedure
    }

    /// The procedure-local data space (for declaring locals, aligning them
    /// to dummies, or redistributing `DYNAMIC` dummies).
    pub fn local(&self) -> &DataSpace {
        &self.local
    }

    /// Mutable access to the local data space.
    pub fn local_mut(&mut self) -> &mut DataSpace {
        &mut self.local
    }

    /// The local array id of dummy `k`.
    pub fn dummy(&self, k: usize) -> ArrayId {
        self.dummies[k]
    }

    /// Remap events recorded so far.
    pub fn events(&self) -> &[RemapEvent] {
        &self.events
    }

    /// Exit the procedure (§7): any dummy whose mapping changed during the
    /// call — or that was remapped at entry — has the actual's original
    /// distribution restored, and the movement is recorded.
    pub fn exit(mut self) -> Result<CallReport, HpfError> {
        for (k, &id) in self.dummies.iter().enumerate() {
            let current = self.local.effective(id)?;
            // restore needed if current differs from what came in
            let volume = current.remap_volume(&self.incoming[k]);
            if volume > 0 {
                let changed_in_body = !Arc::ptr_eq(&current, &self.entry_mappings[k])
                    && !current.matches(&self.entry_mappings[k]);
                self.events.push(RemapEvent {
                    dummy: self.local.name(id).to_string(),
                    phase: RemapPhase::Exit,
                    volume,
                    reason: if changed_in_body {
                        "restore after REDISTRIBUTE/REALIGN in body".to_string()
                    } else {
                        "restore original distribution".to_string()
                    },
                });
            }
        }
        Ok(CallReport { procedure: self.procedure, events: self.events })
    }
}

/// Summary of a completed call: every remap that entering and exiting the
/// procedure required.
#[derive(Debug, Clone)]
pub struct CallReport {
    /// The procedure name.
    pub procedure: String,
    /// All data-movement events, in order.
    pub events: Vec<RemapEvent>,
}

impl CallReport {
    /// Total elements moved across the boundary (both directions).
    pub fn total_volume(&self) -> usize {
        self.events.iter().map(|e| e.volume).sum()
    }
}

fn bind_in(
    local: &DataSpace,
    name: &str,
    domain: &hpf_index::IndexDomain,
    spec: &DistributeSpec,
) -> Result<Distribution, HpfError> {
    let target = match &spec.target {
        None => hpf_procs::ProcTarget::whole(
            local.procs(),
            local.procs().by_name(crate::forest::AP_NAME)?,
        )?,
        Some(t) => t.resolve(local.procs())?,
    };
    Distribution::new(name, domain, &spec.formats, target, local.procs())
}

/// Overwrite a local array's mapping (procedure-boundary internal use: the
/// §7 rules, not the spec-part directives, own dummy mappings).
fn set_mapping(local: &mut DataSpace, id: ArrayId, eff: Arc<EffectiveDist>) {
    local.force_primary_mapping(id, eff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::format::FormatSpec;
    use hpf_index::{triplet, Idx, IndexDomain};
    use hpf_procs::ProcId;

    fn caller_with_cyclic3_a() -> (DataSpace, ArrayId) {
        let mut ds = DataSpace::new(4);
        let a = ds.declare("A", IndexDomain::standard(&[(1, 1000)]).unwrap()).unwrap();
        ds.distribute(a, &DistributeSpec::new(vec![FormatSpec::Cyclic(3)])).unwrap();
        (ds, a)
    }

    #[test]
    fn inherit_section_costs_nothing() {
        // §8.1.2: CALL SUB(A(2:996:2)) with X inheriting
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
        let frame = CallFrame::enter(
            &caller,
            &def,
            &[Actual::section(a, Section::from_triplets(vec![triplet(2, 996, 2)]))],
        )
        .unwrap();
        assert!(frame.events().is_empty(), "inheritance must not move data");
        // X(k) collocated with A(2k)
        let x = frame.dummy(0);
        for k in [1i64, 7, 498] {
            assert_eq!(
                frame.local().owners(x, &Idx::d1(k)).unwrap(),
                caller.owners(a, &Idx::d1(2 * k)).unwrap()
            );
        }
        let report = frame.exit().unwrap();
        assert_eq!(report.total_volume(), 0);
    }

    #[test]
    fn explicit_distribution_remaps_and_restores() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![Dummy::new(
                "X",
                DummySpec::Explicit(DistributeSpec::new(vec![FormatSpec::Block])),
            )],
        );
        let frame = CallFrame::enter(
            &caller,
            &def,
            &[Actual::section(a, Section::from_triplets(vec![triplet(2, 996, 2)]))],
        )
        .unwrap();
        assert_eq!(frame.events().len(), 1);
        let enter_vol = frame.events()[0].volume;
        assert!(enter_vol > 0);
        let report = frame.exit().unwrap();
        // restore moves the same elements back
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[1].phase, RemapPhase::Exit);
        assert_eq!(report.events[1].volume, enter_vol);
    }

    #[test]
    fn inheritance_matching_accepts_exact_match() {
        // actual is CYCLIC(3) over the whole array; dummy requires the same
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![Dummy::new(
                "X",
                DummySpec::InheritMatching {
                    spec: DistributeSpec::new(vec![FormatSpec::Cyclic(3)]),
                    interface_block: false,
                },
            )],
        );
        let frame = CallFrame::enter(&caller, &def, &[Actual::whole(a)]).unwrap();
        assert!(frame.events().is_empty());
        assert_eq!(frame.exit().unwrap().total_volume(), 0);
    }

    #[test]
    fn inheritance_matching_rejects_mismatch() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![Dummy::new(
                "X",
                DummySpec::InheritMatching {
                    spec: DistributeSpec::new(vec![FormatSpec::Block]),
                    interface_block: false,
                },
            )],
        );
        assert!(matches!(
            CallFrame::enter(&caller, &def, &[Actual::whole(a)]),
            Err(HpfError::DistributionMismatch { .. })
        ));
    }

    #[test]
    fn inheritance_matching_with_interface_block_remaps() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![Dummy::new(
                "X",
                DummySpec::InheritMatching {
                    spec: DistributeSpec::new(vec![FormatSpec::Block]),
                    interface_block: true,
                },
            )],
        );
        let frame = CallFrame::enter(&caller, &def, &[Actual::whole(a)]).unwrap();
        assert_eq!(frame.events().len(), 1);
        assert!(frame.events()[0].volume > 0);
        let report = frame.exit().unwrap();
        assert_eq!(report.events.len(), 2); // remap in, restore out
    }

    #[test]
    fn dynamic_dummy_redistributed_in_body_is_restored() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![Dummy::new("X", DummySpec::Inherit).dynamic()],
        );
        let mut frame = CallFrame::enter(&caller, &def, &[Actual::whole(a)]).unwrap();
        let x = frame.dummy(0);
        frame
            .local_mut()
            .redistribute(x, &DistributeSpec::new(vec![FormatSpec::Block]))
            .unwrap();
        let report = frame.exit().unwrap();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].phase, RemapPhase::Exit);
        assert!(report.events[0].volume > 0);
        assert!(report.events[0].reason.contains("restore"));
    }

    #[test]
    fn align_to_dummy() {
        // SUBROUTINE SUB(A, X); ALIGN X(I) WITH A(2*I) — §8.1.2's variant
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new(
            "SUB",
            vec![
                Dummy::new("A", DummySpec::Inherit),
                Dummy::new(
                    "X",
                    DummySpec::AlignToDummy {
                        base: 0,
                        spec: AlignSpec::with_exprs(
                            1,
                            vec![crate::AlignExpr::dummy(0) * 2],
                        ),
                    },
                ),
            ],
        );
        let section = Section::from_triplets(vec![triplet(2, 996, 2)]);
        let frame = CallFrame::enter(
            &caller,
            &def,
            &[Actual::whole(a), Actual::section(a, section)],
        )
        .unwrap();
        // X inherits A(2:996:2)'s placement, and the alignment X(I) WITH
        // A(2*I) describes exactly the same mapping → zero movement
        assert!(frame.events().is_empty(), "events: {:?}", frame.events());
        let x = frame.dummy(1);
        let a_loc = frame.dummy(0);
        for k in [1i64, 10, 498] {
            assert_eq!(
                frame.local().owners(x, &Idx::d1(k)).unwrap(),
                frame.local().owners(a_loc, &Idx::d1(2 * k)).unwrap()
            );
        }
    }

    #[test]
    fn argument_count_checked() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
        assert!(matches!(
            CallFrame::enter(&caller, &def, &[Actual::whole(a), Actual::whole(a)]),
            Err(HpfError::ArgumentCount { .. })
        ));
    }

    #[test]
    fn whole_array_inherit_owner_identity() {
        let (caller, a) = caller_with_cyclic3_a();
        let def = ProcedureDef::new("SUB", vec![Dummy::new("X", DummySpec::Inherit)]);
        let frame = CallFrame::enter(&caller, &def, &[Actual::whole(a)]).unwrap();
        let x = frame.dummy(0);
        for v in [1i64, 2, 500, 1000] {
            assert_eq!(
                frame.local().owners(x, &Idx::d1(v)).unwrap(),
                caller.owners(a, &Idx::d1(v)).unwrap()
            );
        }
        // the inherited mapping of a dummy is NOT format-expressible in
        // general, but inquiry still works (§8.2) — here even owner 1 query:
        assert_eq!(
            frame.local().owners(x, &Idx::d1(1)).unwrap().as_single(),
            Some(ProcId(1))
        );
    }
}
