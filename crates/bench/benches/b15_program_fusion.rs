//! B15 — program-level plan fusion on a whole-timestep workload.
//!
//! Runs the [`fusion_timestep`] program — a stencil plus two consumers of
//! a never-written CYCLIC(1) coefficient array, all in one superstep —
//! through the fused [`ProgramPlan`] path (`Program::run`: level
//! scheduling, per-pair message coalescing, ghost-region dirty tracking)
//! and through the pre-fusion per-statement path (`Program::run_unfused`:
//! one full BSP superstep and a complete ghost exchange per statement).
//! Warm fused replays skip the entire cyclic all-to-all (its operand is
//! clean), which is where the headline ratio comes from; the perf gate
//! pins that ratio hardware-neutrally in `BENCH_b15.json`.
//!
//! [`fusion_timestep`]: hpf_bench::replay::fusion_timestep
//! [`ProgramPlan`]: hpf_runtime::ProgramPlan

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hpf_bench::replay::fusion_timestep;
use hpf_runtime::{Program, Session};
use std::time::Instant;

const N: i64 = 65_536;
const NP: usize = 8;

fn build(fused: bool) -> Session {
    let (arrays, stmts) = fusion_timestep(N, NP);
    let mut prog = Program::new(arrays);
    for s in stmts {
        prog.push(s).unwrap();
    }
    let mut sess = Session::new(prog).fused(fused);
    // warm: inspect the plans, build the fused schedule, run the cold
    // timestep that ships (and dirty-tracks) every ghost region
    sess.run(1).unwrap();
    sess
}

/// Headline numbers for the CI log: warm whole-timestep throughput of
/// both paths plus the fusion statistics the speedup comes from.
fn print_summary() {
    let smoke = std::env::args().any(|a| a == "--test")
        || std::env::var_os("CRITERION_SMOKE").is_some();
    let iters: u64 = if smoke { 3 } else { 200 };

    let mut fused = build(true);
    let t = Instant::now();
    fused.run(iters).unwrap();
    let fused_t = t.elapsed();

    let mut unfused = build(false);
    let t = Instant::now();
    unfused.run(iters).unwrap();
    let unfused_t = t.elapsed();

    let fs = fused.program().fusion_stats();
    assert!(
        fs.ghost_bytes_avoided() > 0,
        "warm fused timesteps must skip the clean cyclic ghosts: {fs}"
    );
    println!(
        "b15 summary: fusion timestep n={N} np={NP} — fused {:.2} ms/timestep, \
         unfused {:.2} ms/timestep ({:.2}x); {fs}",
        fused_t.as_secs_f64() * 1e3 / iters as f64,
        unfused_t.as_secs_f64() * 1e3 / iters as f64,
        unfused_t.as_secs_f64() / fused_t.as_secs_f64(),
    );
}

fn bench(c: &mut Criterion) {
    print_summary();
    let mut g = c.benchmark_group("program_fusion");
    g.sample_size(20);

    let mut fused = build(true);
    g.bench_function(BenchmarkId::new("fusion_timestep", "fused"), |b| {
        b.iter(|| {
            fused.run(1).unwrap();
            black_box(());
        })
    });
    let mut unfused = build(false);
    g.bench_function(BenchmarkId::new("fusion_timestep", "unfused"), |b| {
        b.iter(|| {
            unfused.run(1).unwrap();
            black_box(());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
