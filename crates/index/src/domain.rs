use crate::{Idx, IndexError, Triplet, MAX_RANK};
use std::fmt;

/// A rank-*n* index domain (§2.1 of the paper): an ordered set of subscript
/// tuples represented by a subscript-triplet list of length *n*.
///
/// A domain is *standard* iff every triplet has stride 1; declared arrays
/// and processor arrays are always associated with standard index domains
/// (`I^A`), while array *sections* have general triplet domains.
///
/// Iteration and linearization are Fortran **column-major**: the first
/// dimension varies fastest. This matters because §3 maps processor
/// arrangements onto the abstract processor arrangement "in the same way as
/// storage association is defined for the Fortran 90 EQUIVALENCE statement",
/// i.e. by column-major position.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IndexDomain {
    dims: Vec<Triplet>,
}

impl IndexDomain {
    /// Build a domain from explicit triplets.
    pub fn new(dims: Vec<Triplet>) -> Result<Self, IndexError> {
        if dims.len() > MAX_RANK {
            return Err(IndexError::RankTooHigh(dims.len()));
        }
        Ok(IndexDomain { dims })
    }

    /// Standard domain from `(lower, upper)` bound pairs (stride 1).
    pub fn standard(bounds: &[(i64, i64)]) -> Result<Self, IndexError> {
        if bounds.len() > MAX_RANK {
            return Err(IndexError::RankTooHigh(bounds.len()));
        }
        Ok(IndexDomain {
            dims: bounds.iter().map(|&(l, u)| Triplet::unit(l, u)).collect(),
        })
    }

    /// 1-based standard domain of the given extents, e.g. `of_shape(&[4, 8])`
    /// is `[1:4, 1:8]`.
    pub fn of_shape(extents: &[usize]) -> Result<Self, IndexError> {
        if extents.len() > MAX_RANK {
            return Err(IndexError::RankTooHigh(extents.len()));
        }
        Ok(IndexDomain {
            dims: extents.iter().map(|&e| Triplet::unit(1, e as i64)).collect(),
        })
    }

    /// The rank-0 domain of scalars: exactly one (empty) index.
    pub fn scalar() -> Self {
        IndexDomain { dims: Vec::new() }
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The triplet of dimension `d` (0-based).
    pub fn dim(&self, d: usize) -> &Triplet {
        &self.dims[d]
    }

    /// All dimension triplets.
    pub fn dims(&self) -> &[Triplet] {
        &self.dims
    }

    /// Declared lower bound of dimension `d`.
    pub fn lower(&self, d: usize) -> i64 {
        self.dims[d].lower()
    }

    /// Declared upper bound of dimension `d`.
    pub fn upper(&self, d: usize) -> i64 {
        self.dims[d].upper()
    }

    /// Extent (number of members) of dimension `d`.
    pub fn extent(&self, d: usize) -> usize {
        self.dims[d].len()
    }

    /// Total number of indices (product of extents; 1 for rank 0).
    pub fn size(&self) -> usize {
        self.dims.iter().map(Triplet::len).product()
    }

    /// True iff the domain has no indices.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Triplet::is_empty)
    }

    /// True iff every stride is 1 (§2.1 "standard index domain").
    pub fn is_standard(&self) -> bool {
        self.dims.iter().all(|t| t.stride() == 1)
    }

    /// The standard domain `[1:e1, ..., 1:en]` with the same extents —
    /// the index domain a section presents when passed as an argument (§7).
    pub fn standardized(&self) -> IndexDomain {
        IndexDomain {
            dims: self.dims.iter().map(|t| Triplet::unit(1, t.len() as i64)).collect(),
        }
    }

    /// Membership test for a full-rank subscript tuple.
    pub fn contains(&self, i: &Idx) -> bool {
        i.rank() == self.rank()
            && self.dims.iter().zip(i.as_slice()).all(|(t, &v)| t.contains(v))
    }

    /// Validate membership, reporting the offending dimension.
    pub fn check(&self, i: &Idx) -> Result<(), IndexError> {
        if i.rank() != self.rank() {
            return Err(IndexError::RankMismatch { expected: self.rank(), found: i.rank() });
        }
        for (d, (t, &v)) in self.dims.iter().zip(i.as_slice()).enumerate() {
            if !t.contains(v) {
                return Err(IndexError::OutOfBounds { dim: d, value: v });
            }
        }
        Ok(())
    }

    /// Column-major position of `i` in the domain (0-based).
    ///
    /// Inverse of [`IndexDomain::delinearize`].
    pub fn linearize(&self, i: &Idx) -> Result<usize, IndexError> {
        self.check(i)?;
        let mut pos = 0usize;
        let mut weight = 1usize;
        for (t, &v) in self.dims.iter().zip(i.as_slice()) {
            let p = t.position(v).expect("checked membership");
            pos += p * weight;
            weight *= t.len();
        }
        Ok(pos)
    }

    /// The subscript tuple at column-major position `pos` (0-based).
    pub fn delinearize(&self, pos: usize) -> Result<Idx, IndexError> {
        if pos >= self.size() {
            return Err(IndexError::OutOfBounds { dim: 0, value: pos as i64 });
        }
        let mut rem = pos;
        let mut out = Idx::SCALAR;
        for t in &self.dims {
            let e = t.len();
            out.push(t.nth(rem % e).expect("in range"));
            rem /= e;
        }
        Ok(out)
    }

    /// Iterate all indices in column-major order (first dim fastest).
    pub fn iter(&self) -> ColumnMajorIter<'_> {
        ColumnMajorIter::new(self)
    }
}

impl fmt::Debug for IndexDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexDomain{self}")
    }
}

impl fmt::Display for IndexDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (d, t) in self.dims.iter().enumerate() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

/// Column-major iterator over the indices of an [`IndexDomain`].
#[derive(Debug, Clone)]
pub struct ColumnMajorIter<'a> {
    domain: &'a IndexDomain,
    cursor: [usize; MAX_RANK],
    remaining: usize,
}

impl<'a> ColumnMajorIter<'a> {
    fn new(domain: &'a IndexDomain) -> Self {
        ColumnMajorIter { domain, cursor: [0; MAX_RANK], remaining: domain.size() }
    }
}

impl Iterator for ColumnMajorIter<'_> {
    type Item = Idx;

    fn next(&mut self) -> Option<Idx> {
        if self.remaining == 0 {
            return None;
        }
        let mut out = Idx::SCALAR;
        for (d, t) in self.domain.dims.iter().enumerate() {
            out.push(t.nth(self.cursor[d]).expect("cursor in range"));
        }
        self.remaining -= 1;
        // advance column-major: dimension 0 fastest
        for (d, t) in self.domain.dims.iter().enumerate() {
            self.cursor[d] += 1;
            if self.cursor[d] < t.len() {
                break;
            }
            self.cursor[d] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ColumnMajorIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet;

    #[test]
    fn standard_domain_basics() {
        let d = IndexDomain::standard(&[(0, 4), (1, 3)]).unwrap();
        assert_eq!(d.rank(), 2);
        assert_eq!(d.extent(0), 5);
        assert_eq!(d.extent(1), 3);
        assert_eq!(d.size(), 15);
        assert!(d.is_standard());
        assert!(d.contains(&Idx::d2(0, 1)));
        assert!(!d.contains(&Idx::d2(5, 1)));
        assert!(!d.contains(&Idx::d1(0)));
    }

    #[test]
    fn of_shape_is_one_based() {
        let d = IndexDomain::of_shape(&[4, 8]).unwrap();
        assert_eq!(d.lower(0), 1);
        assert_eq!(d.upper(1), 8);
    }

    #[test]
    fn scalar_domain_single_index() {
        let d = IndexDomain::scalar();
        assert_eq!(d.rank(), 0);
        assert_eq!(d.size(), 1);
        let all: Vec<Idx> = d.iter().collect();
        assert_eq!(all, vec![Idx::SCALAR]);
        assert_eq!(d.linearize(&Idx::SCALAR).unwrap(), 0);
    }

    #[test]
    fn column_major_order() {
        let d = IndexDomain::standard(&[(1, 2), (1, 3)]).unwrap();
        let got: Vec<Idx> = d.iter().collect();
        let want = vec![
            Idx::d2(1, 1),
            Idx::d2(2, 1),
            Idx::d2(1, 2),
            Idx::d2(2, 2),
            Idx::d2(1, 3),
            Idx::d2(2, 3),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn linearize_roundtrip() {
        let d = IndexDomain::new(vec![triplet(0, 10, 2), triplet(5, 1, -1), triplet(3, 3, 1)])
            .unwrap();
        for (pos, i) in d.iter().enumerate() {
            assert_eq!(d.linearize(&i).unwrap(), pos);
            assert_eq!(d.delinearize(pos).unwrap(), i);
        }
        assert!(d.delinearize(d.size()).is_err());
    }

    #[test]
    fn linearize_rejects_foreign_index() {
        let d = IndexDomain::standard(&[(1, 4)]).unwrap();
        assert_eq!(
            d.linearize(&Idx::d1(9)),
            Err(IndexError::OutOfBounds { dim: 0, value: 9 })
        );
        assert_eq!(
            d.linearize(&Idx::d2(1, 1)),
            Err(IndexError::RankMismatch { expected: 1, found: 2 })
        );
    }

    #[test]
    fn standardized_section_domain() {
        let d = IndexDomain::new(vec![triplet(2, 996, 2)]).unwrap();
        assert!(!d.is_standard());
        let s = d.standardized();
        assert_eq!(s.dims(), &[Triplet::unit(1, 498)]);
    }

    #[test]
    fn empty_domain() {
        let d = IndexDomain::standard(&[(5, 4), (1, 3)]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
        assert_eq!(d.iter().count(), 0);
    }

    #[test]
    fn display() {
        let d = IndexDomain::new(vec![triplet(0, 8, 2), triplet(1, 3, 1)]).unwrap();
        assert_eq!(d.to_string(), "[0:8:2, 1:3]");
    }

    #[test]
    fn rank_limit() {
        assert!(IndexDomain::of_shape(&[2; 8]).is_err());
    }
}
