//! E2 (§8.1.1) — the staggered-grid table: communication volume, message
//! count, remote fraction and estimated time per mapping scheme, across
//! problem sizes and machine sizes.

use hpf_bench::{staggered_mappings, staggered_statement, StaggeredScheme};
use hpf_core::FormatSpec;
use hpf_machine::{CostModel, Machine, Topology};
use hpf_runtime::{comm_analysis, StatementTrace};

fn main() {
    println!("E2 — §8.1.1 staggered grid: P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)\n");
    for np_side in [2usize, 4] {
        let np = np_side * np_side;
        let machine = Machine::new(
            np,
            Topology::Mesh2D { rows: np_side, cols: np_side },
            CostModel::default(),
        );
        for n in [64i64, 256, 1024] {
            println!("N = {n}, NP = {np} ({np_side}x{np_side} mesh)");
            println!("{}", StatementTrace::header());
            let schemes: Vec<(&str, StaggeredScheme)> = vec![
                (
                    "template2N (CYCLIC,CYCLIC)",
                    StaggeredScheme::Template(vec![FormatSpec::Cyclic(1), FormatSpec::Cyclic(1)]),
                ),
                (
                    "template2N (BLOCK,BLOCK)",
                    StaggeredScheme::Template(vec![FormatSpec::Block, FormatSpec::Block]),
                ),
                (
                    "templateN+1 (BLOCK,BLOCK)",
                    StaggeredScheme::SmallTemplate(vec![FormatSpec::Block, FormatSpec::Block]),
                ),
                ("direct (BLOCK,BLOCK)", StaggeredScheme::Direct(FormatSpec::Block)),
                (
                    "direct (BLOCK_BAL,BLOCK_BAL)",
                    StaggeredScheme::Direct(FormatSpec::BlockBalanced),
                ),
            ];
            for (label, scheme) in schemes {
                let maps = staggered_mappings(n, np_side, &scheme);
                let stmt = staggered_statement(n, &maps);
                let analysis = comm_analysis(&maps, np, &stmt);
                println!("{}", StatementTrace::new(label, analysis, &machine).row());
            }
            println!();
        }
    }
    println!(
        "claims reproduced:\n\
         • (CYCLIC,CYCLIC) template → 100% remote operand reads at every size\n\
           (\"the worst possible effect\")\n\
         • direct (BLOCK,BLOCK) → only block-boundary ghost traffic, shrinking\n\
           relatively as N grows (surface-to-volume)\n\
         • the (N+1)-template and the direct distribution behave alike — the\n\
           template added nothing"
    );
}
