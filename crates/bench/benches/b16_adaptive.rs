//! B16 — self-adaptive redistribution on an irregular hotspot workload.
//!
//! Runs the [`adaptive_hotspot`] program — a deposit sweep confined to
//! the first quarter of a BLOCK-distributed domain, so one of four
//! processors does all the work — through an adaptive [`Session`]: the
//! controller observes the imbalance over its sliding window, prices the
//! candidate redistributions on the machine model, and performs a live
//! remap onto a load-fitted `GENERAL_BLOCK` once the win amortizes the
//! one-off remap traffic.
//!
//! The headline number is **machine-model-priced**: the modeled cost of
//! a warm timestep before vs after the remap (`stay/candidate`), which
//! is deterministic and hardware-neutral — the perf gate pins it in
//! `BENCH_b16.json` with a hard `>= 1.3x` floor. Wall-clock throughput
//! of the post-remap warm replay is benchmarked alongside as the
//! regression signal for the controller's bookkeeping overhead.
//!
//! [`adaptive_hotspot`]: hpf_bench::replay::adaptive_hotspot
//! [`Session`]: hpf_runtime::Session

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use hpf_bench::replay::adaptive_hotspot;
use hpf_runtime::{AdaptPolicy, Program, Session};
use std::time::Instant;

const N: i64 = 65_536;
const NP: usize = 4;

fn build_program() -> Program {
    let (arrays, stmts) = adaptive_hotspot(N, NP);
    let mut prog = Program::new(arrays);
    for s in stmts {
        prog.push(s).unwrap();
    }
    prog
}

/// An adaptive session driven past its first remap, ready for warm
/// post-adaptation timesteps.
fn adapted_session() -> Session {
    let mut sess = Session::new(build_program()).adapt(AdaptPolicy::default());
    sess.run(6).unwrap();
    let report = sess.adapt_report().expect("adapt configured");
    assert!(
        report.remaps >= 1,
        "the hotspot must trigger a live remap: {report:?}"
    );
    sess
}

/// Headline numbers for the CI log: the remap decision, its modeled
/// prices, and the wall-clock warm throughput of both paths.
fn print_summary() {
    let smoke = std::env::args().any(|a| a == "--test")
        || std::env::var_os("CRITERION_SMOKE").is_some();
    let iters: u64 = if smoke { 3 } else { 200 };

    let mut adaptive = adapted_session();
    let e = adaptive.adapt_report().unwrap().events[0].clone();
    let t = Instant::now();
    adaptive.run(iters).unwrap();
    let adaptive_t = t.elapsed();

    let mut statik = Session::new(build_program());
    statik.run(6).unwrap();
    let t = Instant::now();
    statik.run(iters).unwrap();
    let static_t = t.elapsed();

    println!(
        "b16 summary: adaptive hotspot n={N} np={NP} — remap at t={} to {} \
         (modeled {:.1}us -> {:.1}us per warm step, {:.2}x); wall-clock warm \
         replay: adaptive {:.3} ms/timestep, static {:.3} ms/timestep",
        e.timestep,
        e.candidate,
        e.cost_stay,
        e.cost_candidate,
        e.cost_stay / e.cost_candidate,
        adaptive_t.as_secs_f64() * 1e3 / iters as f64,
        static_t.as_secs_f64() * 1e3 / iters as f64,
    );
}

fn bench(c: &mut Criterion) {
    print_summary();
    let mut g = c.benchmark_group("adaptive");
    g.sample_size(20);

    let mut adaptive = adapted_session();
    g.bench_function(BenchmarkId::new("hotspot", "adaptive_warm"), |b| {
        b.iter(|| {
            adaptive.run(1).unwrap();
            black_box(());
        })
    });
    let mut statik = Session::new(build_program());
    statik.run(1).unwrap();
    g.bench_function(BenchmarkId::new("hotspot", "static_warm"), |b| {
        b.iter(|| {
            statik.run(1).unwrap();
            black_box(());
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
