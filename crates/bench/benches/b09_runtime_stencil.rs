//! E10 — owner-computes execution: sequential vs parallel executor on the
//! staggered-grid statement with direct block distributions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::{staggered_mappings, staggered_statement, StaggeredScheme};
use hpf_core::FormatSpec;
use hpf_runtime::{DistArray, ParExecutor, SeqExecutor};

fn arrays(n: i64) -> (Vec<DistArray<f64>>, hpf_runtime::Assignment) {
    let maps = staggered_mappings(n, 2, &StaggeredScheme::Direct(FormatSpec::Block));
    let stmt = staggered_statement(n, &maps);
    let arrays = vec![
        DistArray::new("P", maps[0].clone(), 4, 0.0),
        DistArray::from_fn("U", maps[1].clone(), 4, |i| (i[0] + i[1]) as f64),
        DistArray::from_fn("V", maps[2].clone(), 4, |i| (i[0] - i[1]) as f64),
    ];
    (arrays, stmt)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_stencil");
    g.sample_size(20);
    for n in [128i64, 512] {
        let (base, stmt) = arrays(n);
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut arr| black_box(SeqExecutor.execute(&mut arr, &stmt).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("par4", n), &n, |b, _| {
            let exec = ParExecutor::with_threads(4);
            b.iter_batched(
                || base.clone(),
                |mut arr| black_box(exec.execute(&mut arr, &stmt).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
