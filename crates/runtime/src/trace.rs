use crate::commsets::CommAnalysis;
use hpf_machine::{Machine, SuperstepReport};
use std::fmt;

/// A complete cost picture of one executed statement on a simulated
/// machine: the communication analysis plus the machine-model time
/// estimate.
#[derive(Debug, Clone)]
pub struct StatementTrace {
    /// A short label (usually the statement's display form).
    pub label: String,
    /// The owner-computes communication analysis.
    pub analysis: CommAnalysis,
    /// The machine-model superstep estimate.
    pub report: SuperstepReport,
}

impl StatementTrace {
    /// Evaluate an analysis on a machine.
    pub fn new(label: &str, analysis: CommAnalysis, machine: &Machine) -> Self {
        let report = machine.superstep_time(&analysis.loads, &analysis.comm);
        StatementTrace { label: label.to_string(), analysis, report }
    }

    /// One row of the experiment tables: label, messages, moved elements,
    /// remote fraction, estimated time.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>8} {:>12} {:>9.1}% {:>12.1}µs",
            self.label,
            self.report.messages,
            self.report.elements,
            self.analysis.remote_fraction() * 100.0,
            self.report.total_time(),
        )
    }

    /// The table header matching [`StatementTrace::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>8} {:>12} {:>10} {:>14}",
            "scheme", "msgs", "elements", "remote%", "est.time"
        )
    }
}

impl fmt::Display for StatementTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label, self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_machine::CommStats;
    use hpf_procs::ProcId;

    #[test]
    fn trace_formats_row() {
        let mut comm = CommStats::new();
        comm.record(ProcId(1), ProcId(2), 10);
        let analysis = CommAnalysis {
            comm,
            loads: vec![5, 5],
            local_reads: 30,
            remote_reads: 10,
            region_exact: true,
        };
        let m = Machine::simple(2);
        let t = StatementTrace::new("test-scheme", analysis, &m);
        let row = t.row();
        assert!(row.contains("test-scheme"));
        assert!(StatementTrace::header().contains("remote%"));
        assert!((t.analysis.remote_fraction() - 0.25).abs() < 1e-9);
    }
}
