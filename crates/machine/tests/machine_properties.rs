//! Property tests on topologies and the cost model.

use hpf_machine::{CommStats, CostModel, Machine, Topology};
use hpf_procs::ProcId;
use proptest::prelude::*;

fn arb_topology(np: usize) -> impl Strategy<Value = Topology> {
    let mesh_rows: Vec<usize> = (1..=np).filter(|r| np % r == 0).collect();
    prop_oneof![
        Just(Topology::FullCrossbar),
        Just(Topology::Linear),
        Just(Topology::Ring),
        prop::sample::select(mesh_rows)
            .prop_map(move |rows| Topology::Mesh2D { rows, cols: np / rows }),
    ]
}

proptest! {
    /// Hop counts are a metric-ish: symmetric, zero iff equal, bounded by
    /// the diameter.
    #[test]
    fn hops_metric((np, topo) in (2usize..33).prop_flat_map(|np| {
            arb_topology(np).prop_map(move |t| (np, t))
        }), seed in 0u64..1000)
    {
        let a = ProcId((seed % np as u64) as u32 + 1);
        let b = ProcId(((seed / 7) % np as u64) as u32 + 1);
        let h_ab = topo.hops(np, a, b);
        let h_ba = topo.hops(np, b, a);
        prop_assert_eq!(h_ab, h_ba, "symmetry");
        prop_assert_eq!(h_ab == 0, a == b, "identity");
        prop_assert!(h_ab <= topo.diameter(np), "diameter bound: {:?}", topo);
    }

    /// Hypercube hops on power-of-two machines respect the metric too.
    #[test]
    fn hypercube_metric(bits in 1u32..6, x in 0u32..32, y in 0u32..32) {
        let np = 1usize << bits;
        let a = ProcId(x % np as u32 + 1);
        let b = ProcId(y % np as u32 + 1);
        let t = Topology::Hypercube;
        prop_assert_eq!(t.hops(np, a, b), t.hops(np, b, a));
        prop_assert!(t.hops(np, a, b) <= bits);
        // triangle inequality via xor algebra
        let c = ProcId((x ^ y) % np as u32 + 1);
        prop_assert!(t.hops(np, a, b) <= t.hops(np, a, c) + t.hops(np, c, b));
    }

    /// Message time is monotone in volume and hops.
    #[test]
    fn message_time_monotone(n1 in 1u64..10_000, extra in 1u64..10_000, h in 1u32..8) {
        let c = CostModel::default();
        prop_assert!(c.message_time(n1 + extra, h) > c.message_time(n1, h));
        prop_assert!(c.message_time(n1, h + 1) >= c.message_time(n1, h));
    }

    /// Superstep time is monotone under added traffic.
    #[test]
    fn superstep_monotone(vol in 1u64..1000, np in 2usize..9) {
        let m = Machine::simple(np);
        let mut light = CommStats::new();
        light.record(ProcId(1), ProcId(2), vol);
        let mut heavy = light.clone();
        heavy.record(ProcId(1), ProcId(2), vol);
        let t_light = m.superstep_time(&[], &light).comm_time;
        let t_heavy = m.superstep_time(&[], &heavy).comm_time;
        prop_assert!(t_heavy > t_light);
    }

    /// Merging stats preserves totals.
    #[test]
    fn merge_preserves_totals(
        pairs in prop::collection::vec((1u32..9, 1u32..9, 1u64..100), 0..20))
    {
        let mut all = CommStats::new();
        let mut a = CommStats::new();
        let mut b = CommStats::new();
        for (k, &(s, d, v)) in pairs.iter().enumerate() {
            all.record(ProcId(s), ProcId(d), v);
            if k % 2 == 0 {
                a.record(ProcId(s), ProcId(d), v);
            } else {
                b.record(ProcId(s), ProcId(d), v);
            }
        }
        a.merge(&b);
        prop_assert_eq!(a.total_elements(), all.total_elements());
        prop_assert_eq!(a, all);
    }
}
