//! A tour of the whole directive language: every construct the paper
//! defines, in one program, with the elaborated mapping printed.
//!
//! Also demonstrates the front end's deliberate rejection of `TEMPLATE`
//! (§8): the error carries the rewrite guidance.
//!
//! Run with: `cargo run --example directive_tour`

use hpf::prelude::*;

fn main() {
    let src = r#"
      PROGRAM TOUR
      PARAMETER (N = 24, NOP = 8)

! ---- declarations --------------------------------------------------
      REAL A(N), B(N), C(2*N)
      REAL G2(N,N), COLL(N,N)
      REAL, ALLOCATABLE :: W(:)
      REAL SCAL

! ---- processor arrangements (§3) ------------------------------------
!HPF$ PROCESSORS P(NOP)
!HPF$ PROCESSORS MESH(2,4)

! ---- distribution formats (§4) --------------------------------------
!HPF$ DISTRIBUTE A(BLOCK) TO P
!HPF$ DISTRIBUTE B(CYCLIC(3)) TO P(1:NOP:2)
!HPF$ DISTRIBUTE C(GENERAL_BLOCK(6, 12, 20, 28, 36, 40, 44)) TO P
!HPF$ DISTRIBUTE G2(BLOCK, CYCLIC) TO MESH
!HPF$ DISTRIBUTE (BLOCK, :) :: COLL

! ---- alignments (§5) -------------------------------------------------
!HPF$ DYNAMIC :: W
!HPF$ DISTRIBUTE (BLOCK) :: W

      ALLOCATE(W(N))
!HPF$ REALIGN W(:) WITH A(:)
      END
"#;
    let elab = Elaborator::new(8).run(src).expect("elaboration");

    println!("=== elaboration narrative ===\n{}", elab.report);
    println!("=== final mapping descriptors ===");
    for id in elab.space.all_arrays() {
        println!("  {}", inquiry::describe(&elab.space, id));
    }

    println!("\n=== owner maps (first 12 elements) ===");
    for name in ["A", "B", "C"] {
        let id = elab.array(name).unwrap();
        let mut line = format!("{name:<4}");
        for i in 1..=12 {
            let o = elab.space.owners(id, &Idx::d1(i)).unwrap();
            line.push_str(&format!(
                " {:>3}",
                o.as_single().map(|p| p.to_string()).unwrap_or_else(|| o.to_string())
            ));
        }
        println!("{line}");
    }

    println!("\n=== TEMPLATE rejection (§8) ===");
    let err = Elaborator::new(8)
        .run("!HPF$ TEMPLATE T(100)")
        .expect_err("templates are not in this language");
    println!("{err}");

    // The same tour as a source file with a statement surface: elaborate
    // examples/programs/directive_tour.hpf, check its mappings agree with
    // the embedded source's, then lower and run it against the oracle.
    let twin = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/programs/directive_tour.hpf"
    ))
    .expect("examples/programs/directive_tour.hpf");
    let telab = Elaborator::new(8).run(&twin).expect("directive_tour.hpf elaborates");
    for name in ["A", "B", "C", "G2", "COLL", "W"] {
        let (i1, i2) = (elab.array(name).unwrap(), telab.array(name).unwrap());
        let dom = elab.space.domain(i1).cloned().unwrap();
        for i in dom.iter().take(64) {
            assert_eq!(
                elab.space.owners(i1, &i).unwrap(),
                telab.space.owners(i2, &i).unwrap(),
                "{name}{i} maps differently in the .hpf twin"
            );
        }
    }
    let (mut lowered, diags) = Lowerer::lower(&telab);
    assert!(diags.is_empty(), "{diags:?}");
    lowered.run_verified(1, Backend::SharedMem).expect("matches the dense oracle");
    println!(
        "\ndirective_tour.hpf: same mappings; {} statement(s) ran and match the dense \
         oracle",
        lowered.statements.len()
    );
}
