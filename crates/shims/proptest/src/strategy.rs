//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generate one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: Clone + Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| f(inner.pick(rng))))
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy + 'static,
        S::Value: 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| f(inner.pick(rng)).pick(rng)))
    }

    /// Filter generated values by retrying (up to a bound) until the
    /// predicate holds.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| {
            for _ in 0..1000 {
                let v = inner.pick(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter: predicate rejected 1000 consecutive candidates");
        }))
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.pick(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Clone + Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].pick(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
}

/// String strategies: a `&str` is interpreted as a regex-like pattern
/// (see [`crate::string`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;
    fn pick(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (1usize..5).pick(&mut r);
            assert!((1..5).contains(&v));
            let (a, b) = (0i64..3, 10u8..=12).pick(&mut r);
            assert!((0..3).contains(&a) && (10..=12).contains(&b));
        }
    }

    #[test]
    fn map_flat_map_union() {
        let mut r = rng();
        let doubled = (1i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.pick(&mut r);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
        let nested = (1usize..4).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = nested.pick(&mut r);
            assert!(k < n);
        }
        let u = crate::prop_oneof![Just(1i32), Just(2i32), 10i32..20];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = u.pick(&mut r);
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
            seen.insert(v.min(3));
        }
        assert!(seen.len() >= 3, "all arms must be reachable");
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let evens = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.pick(&mut r) % 2, 0);
        }
    }
}
