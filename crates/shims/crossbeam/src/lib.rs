//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible implementation of the two
//! `crossbeam` facilities `hpf-runtime` uses:
//!
//! * `crossbeam::thread::scope` with `scope.spawn(|_| ...)`, implemented
//!   on top of `std::thread::scope`, which provides the same
//!   structured-concurrency guarantee (all spawned threads join before
//!   `scope` returns); and
//! * `crossbeam::channel::unbounded` MPSC channels (the message wire of
//!   the SPMD `Channels` exchange backend), implemented over
//!   `std::sync::mpsc` with the crossbeam method surface the runtime
//!   needs (`send`, `recv`, `recv_timeout`, `try_recv`, cloneable
//!   senders).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels (see crate docs).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// The sending half of an unbounded channel. Cloneable, so any number
    /// of producers can feed one receiver.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Send a message; fails only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Block with an upper bound on the wait.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// The receiver disconnected before the message was sent.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Every sender disconnected with the channel empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a bounded-wait receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// Every sender disconnected with the channel empty.
        Disconnected,
    }

    /// Outcome of a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Every sender disconnected with the channel empty.
        Disconnected,
    }

    /// Create an unbounded FIFO channel, mirroring
    /// `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Scoped threads (see crate docs).
pub mod thread {
    use std::any::Any;

    /// A handle to a scope in which scoped threads can be spawned,
    /// mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a reference to the
        /// scope (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope for spawning scoped threads, mirroring
    /// `crossbeam::thread::scope`.
    ///
    /// Unlike crossbeam, a panicking child thread propagates its panic when
    /// the scope joins (std semantics) instead of being collected into the
    /// `Err` variant; callers that `.expect()` the result behave the same
    /// either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_mpsc_roundtrip() {
        let (tx, rx) = super::channel::unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
            drop(tx2);
        });
        tx.send(35).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 35]);
        // join before asserting disconnection: a recv can complete before
        // the sending thread reaches its `drop(tx2)`
        h.join().unwrap();
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_join_and_share() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        let (a, b) = partial.split_at_mut(1);
        super::thread::scope(|scope| {
            let d = &data;
            scope.spawn(move |_| a[0] = d[0] + d[1]);
            scope.spawn(move |_| b[0] = d[2] + d[3]);
        })
        .unwrap();
        assert_eq!(partial, vec![3, 7]);
    }
}
