//! `hpfrun` — the end-to-end pipeline driver.
//!
//! Reads a Fortran-with-`!HPF$`-directives source file, elaborates the
//! directives and statements, lowers them into a runtime
//! [`Program`](hpf_runtime::Program) over
//! distributed storage, and executes timesteps through the fused-plan
//! machinery on the selected exchange backend.
//!
//! ```text
//! hpfrun FILE.hpf [--np N] [--steps N] [--backend shared-mem|channels]
//!                 [--threads N] [--set NAME=VALUE]... [--verify] [--stats]
//!                 [--checkpoint-dir D] [--checkpoint-every N] [--resume]
//!                 [--inject SPEC]... [--step-timeout-ms N]
//! ```
//!
//! All frontend and lowering problems are reported together, rendered
//! against the source with spans — one run shows every defect.
//!
//! With `--checkpoint-dir` the run goes through the fault-tolerant
//! trajectory driver ([`hpf_runtime::run_trajectory`]): distributed
//! snapshots on a cadence, and on an exchange fault (injected via
//! `--inject` or real) restore-and-replay recovery with bounded
//! retries. `--resume` restores the newest snapshot first and runs
//! only the remaining timesteps — even under a different `--np` or
//! distribution than the checkpoint was written with.
//!
//! Example:
//! ```text
//! cargo run -p hpf-frontend --bin hpfrun -- examples/programs/quickstart.hpf \
//!     --backend channels --steps 10 --verify --stats
//! ```

use hpf_frontend::{render_diagnostics, Elaborator, Lowerer};
use hpf_runtime::{Backend, CheckpointSpec, FaultPlan, RecoveryPolicy};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    file: String,
    np: usize,
    steps: usize,
    backend: Backend,
    threads: usize,
    sets: Vec<(String, i64)>,
    verify: bool,
    stats: bool,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
    inject: Vec<String>,
    step_timeout_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hpfrun FILE [--np N] [--steps N] [--backend shared-mem|channels]\n\
         \x20             [--threads N] [--set NAME=VALUE]... [--verify] [--stats]\n\
         \n\
         elaborates FILE over N abstract processors (default 4), lowers the\n\
         statements into a runtime program, and executes N timesteps\n\
         (default 1) through the fused-plan path.\n\
         --backend    exchange backend (default shared-mem); `channels` runs\n\
         \x20            the message-passing SPMD worker fleet\n\
         --threads    cap the shared-mem parallel executor's worker count\n\
         --set        provide PARAMETER/READ inputs\n\
         --verify     statically verify every compiled plan, then check the\n\
         \x20            distributed result element-for-element against the\n\
         \x20            dense oracle\n\
         --stats      print plan-cache, fusion, and wire-traffic statistics\n\
         --checkpoint-dir D   run fault-tolerantly, snapshotting distributed\n\
         \x20            state into D (restore-and-replay on exchange faults)\n\
         --checkpoint-every N checkpoint cadence in timesteps (default 1;\n\
         \x20            0 = only the baseline and final snapshots)\n\
         --resume     restore the newest checkpoint under D first and run\n\
         \x20            only the remaining timesteps (any --np/distribution)\n\
         --inject SPEC        arm deterministic fault injection, e.g.\n\
         \x20            'kill:rank=1,step=2' or 'drop:from=0,to=2,step=1';\n\
         \x20            repeatable\n\
         --step-timeout-ms N  channels wedge-detection timeout"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        np: 4,
        steps: 1,
        backend: Backend::SharedMem,
        threads: 1,
        sets: Vec::new(),
        verify: false,
        stats: false,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        inject: Vec::new(),
        step_timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--np" => {
                args.np = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--steps" => {
                args.steps =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--threads" => {
                args.threads =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--backend" => match it.next().as_deref() {
                Some("shared-mem") => args.backend = Backend::SharedMem,
                Some("channels") => args.backend = Backend::Channels,
                _ => usage(),
            },
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--verify" => args.verify = true,
            "--stats" => args.stats = true,
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--checkpoint-every" => {
                args.checkpoint_every =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--resume" => args.resume = true,
            "--inject" => args.inject.push(it.next().unwrap_or_else(|| usage())),
            "--step-timeout-ms" => {
                args.step_timeout_ms =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--help" | "-h" => usage(),
            f if args.file.is_empty() && !f.starts_with('-') => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("hpfrun: --resume requires --checkpoint-dir");
        usage();
    }
    if args.verify && (args.resume || args.checkpoint_dir.is_some()) {
        eprintln!("hpfrun: --verify compares against the dense oracle of the *initial* values; it cannot be combined with --checkpoint-dir/--resume");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hpfrun: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };

    // Front half: elaborate with recovery, then lower — accumulate every
    // diagnostic from both layers before giving up.
    let mut elab = Elaborator::new(args.np);
    for (k, v) in &args.sets {
        elab = elab.with_input(k, *v);
    }
    let (elaboration, mut diags) = elab.run_recover(&src);
    let (mut lowered, lower_diags) = Lowerer::lower(&elaboration);
    diags.extend(lower_diags);
    if !diags.is_empty() {
        eprint!("{}", render_diagnostics(&src, &diags));
        return ExitCode::FAILURE;
    }

    println!(
        "— lowered {}: {} array(s), {} statement(s), {} abstract processors —",
        args.file,
        lowered.names.len(),
        lowered.statements.len(),
        args.np
    );

    // Fault tolerance knobs: armed before anything executes.
    if !args.inject.is_empty() {
        match FaultPlan::parse(&args.inject.join("; ")) {
            Ok(plan) => lowered.program.inject_faults(plan),
            Err(e) => {
                eprintln!("hpfrun: bad --inject spec: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(ms) = args.step_timeout_ms {
        lowered.program.set_exchange_timeout(Duration::from_millis(ms));
    }

    // Back half: verify (static plans + dense oracle) or just run.
    if args.verify {
        match lowered.program.verify_all() {
            Ok(report) => {
                if !report.is_clean() {
                    eprint!("{report}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "verified: {} plan(s) proven safe before execution",
                    lowered.statements.len()
                );
            }
            Err(e) => {
                eprintln!("hpfrun: verification failed to compile plans: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(msg) = lowered.run_verified(args.steps, args.backend) {
            eprintln!("hpfrun: {msg}");
            return ExitCode::FAILURE;
        }
        println!(
            "verified: {} timestep(s) on {} match the dense oracle",
            args.steps,
            backend_name(args.backend)
        );
    } else if let Some(dir) = &args.checkpoint_dir {
        // Fault-tolerant trajectory: checkpoint on a cadence, and on an
        // exchange fault restore the newest snapshot and replay forward.
        let start = if args.resume {
            match lowered.program.restore_latest(Path::new(dir)) {
                Ok(r) => {
                    println!(
                        "resumed from checkpoint at timestep {} ({} array(s), {})",
                        r.timestep,
                        r.arrays,
                        if r.remapped > 0 {
                            "scattered into the current distribution"
                        } else {
                            "fast path"
                        }
                    );
                    r.timestep
                }
                Err(e) => {
                    eprintln!("hpfrun: resume failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            0
        };
        let spec = CheckpointSpec::new(dir, args.checkpoint_every);
        match hpf_runtime::run_trajectory(
            &mut lowered.program,
            args.backend,
            args.steps as u64,
            start.min(args.steps as u64),
            Some(&spec),
            &RecoveryPolicy::default(),
        ) {
            Ok(rep) => {
                print!(
                    "ran {} timestep(s) on {} — {} checkpoint(s) written",
                    rep.timesteps,
                    backend_name(args.backend),
                    rep.checkpoints
                );
                if rep.failures > 0 {
                    print!(
                        ", {} fault(s) survived, {} timestep(s) replayed",
                        rep.failures, rep.replayed
                    );
                }
                if rep.degraded {
                    print!(", degraded to shared-mem");
                }
                println!();
            }
            Err(e) => {
                eprintln!("hpfrun: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for _ in 0..args.steps {
            let r = if args.threads > 1 && args.backend == Backend::SharedMem {
                lowered.program.run_parallel(args.threads).map(|_| ())
            } else {
                lowered.program.run_on(args.backend).map(|_| ())
            };
            if let Err(e) = r {
                eprintln!("hpfrun: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("ran {} timestep(s) on {}", args.steps, backend_name(args.backend));
    }

    // Result digest: one line per array so runs are comparable.
    for (k, name) in lowered.names.iter().enumerate() {
        let dense = lowered.program.arrays[k].to_dense();
        let sum: f64 = dense.iter().sum();
        println!("  {name}: {} element(s), sum {sum}", dense.len());
    }

    if args.stats {
        let fs = lowered.program.fusion_stats();
        println!("— statistics —");
        println!(
            "  plan cache: {} hit(s), {} miss(es)",
            lowered.program.cache_hits(),
            lowered.program.cache_misses()
        );
        println!(
            "  fusion: {} superstep(s), {} message(s) coalesced to {}, \
             {} ghost byte(s) avoided",
            fs.supersteps,
            fs.messages_before,
            fs.messages_after,
            fs.ghost_bytes_avoided()
        );
        println!(
            "  wire: {} byte(s) sent, {} SPMD worker(s) spawned",
            lowered.program.backend_bytes_sent(),
            lowered.program.spmd_workers_spawned()
        );
    }
    ExitCode::SUCCESS
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::SharedMem => "shared-mem",
        Backend::Channels => "channels",
    }
}
