use crate::IndexError;
use std::fmt;
use std::ops::{Deref, Index};

/// Maximum rank of any index domain (the Fortran 90 limit).
pub const MAX_RANK: usize = 7;

/// An inline subscript tuple of rank ≤ [`MAX_RANK`].
///
/// `Idx` is the value type flowing through every per-element hot path
/// (`owners()`, `local()`, alignment images), so it is `Copy`, lives
/// entirely on the stack, and dereferences to `&[i64]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Idx {
    rank: u8,
    vals: [i64; MAX_RANK],
}

impl Idx {
    /// The rank-0 tuple, used for scalars (§2.2: "scalars can easily be
    /// accommodated ... by treating them as if they were associated with an
    /// index domain consisting of exactly one element").
    pub const SCALAR: Idx = Idx { rank: 0, vals: [0; MAX_RANK] };

    /// Build from a slice. Fails if `vals.len() > MAX_RANK`.
    pub fn new(vals: &[i64]) -> Result<Self, IndexError> {
        if vals.len() > MAX_RANK {
            return Err(IndexError::RankTooHigh(vals.len()));
        }
        let mut v = [0i64; MAX_RANK];
        v[..vals.len()].copy_from_slice(vals);
        Ok(Idx { rank: vals.len() as u8, vals: v })
    }

    /// Rank-1 tuple.
    pub const fn d1(i: i64) -> Self {
        let mut v = [0i64; MAX_RANK];
        v[0] = i;
        Idx { rank: 1, vals: v }
    }

    /// Rank-2 tuple.
    pub const fn d2(i: i64, j: i64) -> Self {
        let mut v = [0i64; MAX_RANK];
        v[0] = i;
        v[1] = j;
        Idx { rank: 2, vals: v }
    }

    /// Rank-3 tuple.
    pub const fn d3(i: i64, j: i64, k: i64) -> Self {
        let mut v = [0i64; MAX_RANK];
        v[0] = i;
        v[1] = j;
        v[2] = k;
        Idx { rank: 3, vals: v }
    }

    /// Rank of the tuple.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.vals[..self.rank as usize]
    }

    /// Append a component, increasing the rank by one.
    ///
    /// # Panics
    /// Panics if the rank would exceed [`MAX_RANK`].
    pub fn push(&mut self, v: i64) {
        assert!((self.rank as usize) < MAX_RANK, "Idx rank overflow");
        self.vals[self.rank as usize] = v;
        self.rank += 1;
    }

    /// A copy with component `d` replaced by `v`.
    pub fn with(&self, d: usize, v: i64) -> Idx {
        let mut out = *self;
        out.vals[d] = v;
        out
    }

    /// Remove component `d`, decreasing the rank by one (used by
    /// rank-reducing scalar subscripts in sections).
    pub fn without(&self, d: usize) -> Idx {
        debug_assert!(d < self.rank as usize);
        let mut out = Idx { rank: self.rank - 1, vals: [0; MAX_RANK] };
        let mut w = 0;
        for (r, &v) in self.as_slice().iter().enumerate() {
            if r != d {
                out.vals[w] = v;
                w += 1;
            }
        }
        out
    }
}

impl Deref for Idx {
    type Target = [i64];
    fn deref(&self) -> &[i64] {
        self.as_slice()
    }
}

impl Index<usize> for Idx {
    type Output = i64;
    fn index(&self, d: usize) -> &i64 {
        &self.as_slice()[d]
    }
}

impl fmt::Debug for Idx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Idx{self}")
    }
}

impl fmt::Display for Idx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (d, v) in self.as_slice().iter().enumerate() {
            if d > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<i64> for Idx {
    fn from(i: i64) -> Idx {
        Idx::d1(i)
    }
}

impl From<(i64, i64)> for Idx {
    fn from((i, j): (i64, i64)) -> Idx {
        Idx::d2(i, j)
    }
}

impl From<(i64, i64, i64)> for Idx {
    fn from((i, j, k): (i64, i64, i64)) -> Idx {
        Idx::d3(i, j, k)
    }
}

impl<'a> TryFrom<&'a [i64]> for Idx {
    type Error = IndexError;
    fn try_from(s: &'a [i64]) -> Result<Idx, IndexError> {
        Idx::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let i = Idx::new(&[3, -1, 7]).unwrap();
        assert_eq!(i.rank(), 3);
        assert_eq!(i[0], 3);
        assert_eq!(i[2], 7);
        assert_eq!(&*i, &[3, -1, 7]);
        assert_eq!(i, Idx::d3(3, -1, 7));
    }

    #[test]
    fn rank_limit_enforced() {
        assert!(Idx::new(&[0; 8]).is_err());
        assert!(Idx::new(&[0; 7]).is_ok());
    }

    #[test]
    fn push_with_without() {
        let mut i = Idx::d2(5, 6);
        i.push(7);
        assert_eq!(i, Idx::d3(5, 6, 7));
        assert_eq!(i.with(1, 9), Idx::d3(5, 9, 7));
        assert_eq!(i.without(1), Idx::d2(5, 7));
        assert_eq!(i.without(0), Idx::d2(6, 7));
    }

    #[test]
    fn scalar_rank_zero() {
        assert_eq!(Idx::SCALAR.rank(), 0);
        assert_eq!(Idx::SCALAR.as_slice(), &[] as &[i64]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Idx::d2(4, 5).to_string(), "(4,5)");
        assert_eq!(Idx::SCALAR.to_string(), "()");
    }

    #[test]
    fn conversions() {
        assert_eq!(Idx::from(4i64), Idx::d1(4));
        assert_eq!(Idx::from((1i64, 2i64)), Idx::d2(1, 2));
        assert_eq!(Idx::try_from(&[1i64, 2, 3][..]).unwrap(), Idx::d3(1, 2, 3));
    }
}
