use hpf_index::IndexDomain;
use std::fmt;

/// Identifier of a declared processor arrangement within a [`crate::ProcSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrangementId(pub(crate) usize);

/// Where data mapped to a *conceptually scalar* processor arrangement
/// resides (§3):
///
/// > data distributed to a (conceptually) scalar processor arrangement may
/// > reside in a single control processor (if the machine has one), or may
/// > reside in an arbitrarily chosen processor, or may be replicated over
/// > all processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarPolicy {
    /// Data lives in the machine's control processor (AP processor 1).
    ControlProcessor,
    /// Data lives in one arbitrarily chosen processor (we fix it at
    /// declaration time so the mapping stays deterministic).
    Arbitrary(crate::ProcId),
    /// Data is replicated over all processors.
    ReplicateAll,
}

/// The shape of a processor arrangement (§3): a processor *array*
/// arrangement with a non-empty index domain, or a *conceptually scalar*
/// arrangement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrangementKind {
    /// Processor array arrangement with its index domain.
    Array(IndexDomain),
    /// Conceptually scalar arrangement with its residence policy.
    Scalar(ScalarPolicy),
}

/// A named processor arrangement declared by a `PROCESSORS` directive,
/// mapped onto the abstract processor arrangement AP column-major starting
/// at `offset` (the EQUIVALENCE-style storage association of §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcArrangement {
    pub(crate) name: String,
    pub(crate) kind: ArrangementKind,
    pub(crate) offset: usize,
}

impl ProcArrangement {
    /// Declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Array or scalar shape.
    pub fn kind(&self) -> &ArrangementKind {
        &self.kind
    }

    /// Equivalence offset into AP (0-based abstract processor position at
    /// which this arrangement's first element lives).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The index domain, for array arrangements.
    pub fn domain(&self) -> Option<&IndexDomain> {
        match &self.kind {
            ArrangementKind::Array(d) => Some(d),
            ArrangementKind::Scalar(_) => None,
        }
    }

    /// Number of abstract processors occupied (1 for scalar arrangements:
    /// they are associated "with an index domain consisting of exactly one
    /// element", §2.2).
    pub fn size(&self) -> usize {
        match &self.kind {
            ArrangementKind::Array(d) => d.size(),
            ArrangementKind::Scalar(_) => 1,
        }
    }
}

impl fmt::Display for ProcArrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ArrangementKind::Array(d) => write!(f, "PROCESSORS {}{d}", self.name),
            ArrangementKind::Scalar(_) => write!(f, "PROCESSORS {}", self.name),
        }
    }
}
