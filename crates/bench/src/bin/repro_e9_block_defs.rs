//! E9 (§8.1.1 footnote) — Vienna vs HPF BLOCK: the 1-D staggered stencil
//! P(i) = U(i-1) + U(i) with P(1:N), U(0:N), sweeping N across multiples
//! of NP. "With the HPF definition, this will cause a problem if and only
//! if the number of processors divides N exactly."

use hpf_core::{DataSpace, DistributeSpec, FormatSpec};
use hpf_index::{span, IndexDomain, Section};
use hpf_runtime::{comm_analysis, Assignment, Combine, Term};

fn stencil_remote(n: i64, np: usize, fmt: FormatSpec) -> u64 {
    let mut ds = DataSpace::new(np);
    let p = ds.declare("P", IndexDomain::standard(&[(1, n)]).unwrap()).unwrap();
    let u = ds.declare("U", IndexDomain::standard(&[(0, n)]).unwrap()).unwrap();
    ds.distribute(p, &DistributeSpec::new(vec![fmt.clone()])).unwrap();
    ds.distribute(u, &DistributeSpec::new(vec![fmt])).unwrap();
    let maps = vec![ds.effective(p).unwrap(), ds.effective(u).unwrap()];
    let doms: Vec<&IndexDomain> = maps.iter().map(|m| m.domain()).collect();
    let stmt = Assignment::new(
        0,
        Section::from_triplets(vec![span(1, n)]),
        vec![
            Term::new(1, Section::from_triplets(vec![span(0, n - 1)])),
            Term::new(1, Section::from_triplets(vec![span(1, n)])),
        ],
        Combine::Sum,
        &doms,
    )
    .unwrap();
    comm_analysis(&maps, np, &stmt).remote_reads
}

fn main() {
    let np = 8usize;
    println!("E9 — §8.1.1 footnote: HPF vs Vienna BLOCK, NP = {np}");
    println!("remote operand reads for P(1:N) = U(0:N-1) + U(1:N), P(1:N)/U(0:N) both BLOCK\n");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "N", "NP | N?", "HPF BLOCK", "Vienna BLOCK"
    );
    for n in [63i64, 64, 65, 127, 128, 129, 255, 256, 257, 1024] {
        println!(
            "{n:>6} {:>10} {:>12} {:>14}",
            if n % np as i64 == 0 { "yes" } else { "no" },
            stencil_remote(n, np, FormatSpec::Block),
            stencil_remote(n, np, FormatSpec::BlockBalanced),
        );
    }
    println!(
        "\nclaim reproduced: HPF BLOCK's remote volume jumps exactly at the\n\
         rows where NP divides N (block-size drift ⌈(N+1)/NP⌉ ≠ N/NP);\n\
         Vienna's balanced BLOCK stays at the minimal ghost boundary."
    );
}
