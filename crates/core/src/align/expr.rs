use crate::HpfError;
use std::fmt;

/// An alignment expression (§5.1): an integer expression over at most one
/// align-dummy, built from `+`, `−`, `*` (linear forms) plus the intrinsic
/// functions `MAX` and `MIN` the paper adds to HPF ("Since linear
/// expressions cannot handle some frequently occurring cases, such as
/// truncation at either end of the alignment, we also allow the intrinsic
/// functions MAX, MIN, LBOUND, UBOUND, and SIZE").
///
/// `LBOUND`, `UBOUND` and `SIZE` are specification-time constants of known
/// arrays, so the front end folds them into [`AlignExpr::Const`] during
/// elaboration; the core expression keeps only what can vary with a dummy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignExpr {
    /// Integer literal (or folded spec-expression).
    Const(i64),
    /// An align-dummy, identified by a directive-scoped id.
    Dummy(usize),
    /// `a + b`.
    Add(Box<AlignExpr>, Box<AlignExpr>),
    /// `a − b`.
    Sub(Box<AlignExpr>, Box<AlignExpr>),
    /// `a * b` (at least one side must be dummy-free for linearity).
    Mul(Box<AlignExpr>, Box<AlignExpr>),
    /// `−a`.
    Neg(Box<AlignExpr>),
    /// `MAX(a, b)`.
    Max(Box<AlignExpr>, Box<AlignExpr>),
    /// `MIN(a, b)`.
    Min(Box<AlignExpr>, Box<AlignExpr>),
}

impl AlignExpr {
    /// Shorthand for a constant.
    pub fn c(v: i64) -> Self {
        AlignExpr::Const(v)
    }

    /// Shorthand for a dummy reference.
    pub fn dummy(id: usize) -> Self {
        AlignExpr::Dummy(id)
    }

    /// `MAX(self, other)`.
    pub fn max(self, other: AlignExpr) -> Self {
        AlignExpr::Max(Box::new(self), Box::new(other))
    }

    /// `MIN(self, other)`.
    pub fn min(self, other: AlignExpr) -> Self {
        AlignExpr::Min(Box::new(self), Box::new(other))
    }

    /// Collect the distinct dummies used, in first-use order.
    pub fn dummies(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_dummies(&mut out);
        out
    }

    fn collect_dummies(&self, out: &mut Vec<usize>) {
        match self {
            AlignExpr::Const(_) => {}
            AlignExpr::Dummy(d) => {
                if !out.contains(d) {
                    out.push(*d);
                }
            }
            AlignExpr::Add(a, b)
            | AlignExpr::Sub(a, b)
            | AlignExpr::Mul(a, b)
            | AlignExpr::Max(a, b)
            | AlignExpr::Min(a, b) => {
                a.collect_dummies(out);
                b.collect_dummies(out);
            }
            AlignExpr::Neg(a) => a.collect_dummies(out),
        }
    }

    /// Evaluate with `value` substituted for dummy `dummy`.
    ///
    /// Fails if the expression references any other dummy.
    pub fn eval(&self, dummy: usize, value: i64) -> Result<i64, HpfError> {
        match self {
            AlignExpr::Const(v) => Ok(*v),
            AlignExpr::Dummy(d) if *d == dummy => Ok(value),
            AlignExpr::Dummy(d) => Err(HpfError::UnknownDummy(*d)),
            AlignExpr::Add(a, b) => Ok(a.eval(dummy, value)? + b.eval(dummy, value)?),
            AlignExpr::Sub(a, b) => Ok(a.eval(dummy, value)? - b.eval(dummy, value)?),
            AlignExpr::Mul(a, b) => Ok(a.eval(dummy, value)? * b.eval(dummy, value)?),
            AlignExpr::Neg(a) => Ok(-a.eval(dummy, value)?),
            AlignExpr::Max(a, b) => Ok(a.eval(dummy, value)?.max(b.eval(dummy, value)?)),
            AlignExpr::Min(a, b) => Ok(a.eval(dummy, value)?.min(b.eval(dummy, value)?)),
        }
    }

    /// Evaluate a dummyless expression.
    pub fn eval_const(&self) -> Result<i64, HpfError> {
        match self {
            AlignExpr::Dummy(d) => Err(HpfError::UnknownDummy(*d)),
            _ => self.eval(usize::MAX, 0),
        }
    }

    /// Structural linearity: `Some((a, c))` iff the expression is exactly
    /// `a·J + c` for dummy `J = dummy` (no `MAX`/`MIN`).
    pub fn linear_in(&self, dummy: usize) -> Option<(i64, i64)> {
        match self {
            AlignExpr::Const(v) => Some((0, *v)),
            AlignExpr::Dummy(d) if *d == dummy => Some((1, 0)),
            AlignExpr::Dummy(_) => None,
            AlignExpr::Add(x, y) => {
                let (a1, c1) = x.linear_in(dummy)?;
                let (a2, c2) = y.linear_in(dummy)?;
                Some((a1 + a2, c1 + c2))
            }
            AlignExpr::Sub(x, y) => {
                let (a1, c1) = x.linear_in(dummy)?;
                let (a2, c2) = y.linear_in(dummy)?;
                Some((a1 - a2, c1 - c2))
            }
            AlignExpr::Mul(x, y) => {
                let (a1, c1) = x.linear_in(dummy)?;
                let (a2, c2) = y.linear_in(dummy)?;
                // linear × linear stays linear only if one side is constant
                if a1 == 0 {
                    Some((c1 * a2, c1 * c2))
                } else if a2 == 0 {
                    Some((a1 * c2, c1 * c2))
                } else {
                    None
                }
            }
            AlignExpr::Neg(x) => {
                let (a, c) = x.linear_in(dummy)?;
                Some((-a, -c))
            }
            AlignExpr::Max(_, _) | AlignExpr::Min(_, _) => None,
        }
    }
}

impl fmt::Display for AlignExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignExpr::Const(v) => write!(f, "{v}"),
            AlignExpr::Dummy(d) => write!(f, "J{d}"),
            AlignExpr::Add(a, b) => write!(f, "({a}+{b})"),
            AlignExpr::Sub(a, b) => write!(f, "({a}-{b})"),
            AlignExpr::Mul(a, b) => write!(f, "({a}*{b})"),
            AlignExpr::Neg(a) => write!(f, "(-{a})"),
            AlignExpr::Max(a, b) => write!(f, "MAX({a},{b})"),
            AlignExpr::Min(a, b) => write!(f, "MIN({a},{b})"),
        }
    }
}

impl std::ops::Add for AlignExpr {
    type Output = AlignExpr;
    fn add(self, rhs: AlignExpr) -> AlignExpr {
        AlignExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Add<i64> for AlignExpr {
    type Output = AlignExpr;
    fn add(self, rhs: i64) -> AlignExpr {
        self + AlignExpr::Const(rhs)
    }
}

impl std::ops::Sub for AlignExpr {
    type Output = AlignExpr;
    fn sub(self, rhs: AlignExpr) -> AlignExpr {
        AlignExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub<i64> for AlignExpr {
    type Output = AlignExpr;
    fn sub(self, rhs: i64) -> AlignExpr {
        self - AlignExpr::Const(rhs)
    }
}

impl std::ops::Mul for AlignExpr {
    type Output = AlignExpr;
    fn mul(self, rhs: AlignExpr) -> AlignExpr {
        AlignExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul<i64> for AlignExpr {
    type Output = AlignExpr;
    fn mul(self, rhs: i64) -> AlignExpr {
        self * AlignExpr::Const(rhs)
    }
}

impl std::ops::Neg for AlignExpr {
    type Output = AlignExpr;
    fn neg(self) -> AlignExpr {
        AlignExpr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlignExpr as E;

    #[test]
    fn eval_linear() {
        // 2*I − 1 (the §8.1.1 alignment of P to T)
        let e = E::dummy(0) * 2 - 1;
        assert_eq!(e.eval(0, 1).unwrap(), 1);
        assert_eq!(e.eval(0, 5).unwrap(), 9);
        assert_eq!(e.linear_in(0), Some((2, -1)));
    }

    #[test]
    fn eval_const_and_unknown_dummy() {
        let e = E::c(3) * 4 + 1;
        assert_eq!(e.eval_const().unwrap(), 13);
        let e = E::dummy(2);
        assert!(e.eval_const().is_err());
        assert!(e.eval(0, 1).is_err());
    }

    #[test]
    fn min_max_truncation() {
        // MIN(I+1, N) with N=10 — truncation at the upper end
        let e = (E::dummy(0) + 1).min(E::c(10));
        assert_eq!(e.eval(0, 4).unwrap(), 5);
        assert_eq!(e.eval(0, 10).unwrap(), 10);
        assert_eq!(e.eval(0, 42).unwrap(), 10);
        assert_eq!(e.linear_in(0), None); // not linear
    }

    #[test]
    fn linearity_rules() {
        assert_eq!((E::dummy(0) + E::dummy(0)).linear_in(0), Some((2, 0)));
        assert_eq!((-(E::dummy(0) * 3)).linear_in(0), Some((-3, 0)));
        assert_eq!((E::c(2) * E::c(5)).linear_in(0), Some((0, 10)));
        // J*J is nonlinear
        assert_eq!((E::dummy(0) * E::dummy(0)).linear_in(0), None);
    }

    #[test]
    fn dummies_collected() {
        let e = (E::dummy(1) + E::dummy(0)) * 2 + E::dummy(1);
        assert_eq!(e.dummies(), vec![1, 0]);
        assert_eq!(E::c(1).dummies(), Vec::<usize>::new());
    }

    #[test]
    fn display() {
        let e = E::dummy(0) * 2 - 1;
        assert_eq!(e.to_string(), "((J0*2)-1)");
    }
}
