use hpf_core::{ArrayId, CallReport};
use hpf_index::Section;
use std::fmt;

/// One elaboration event — the narrative of what the directives did.
#[derive(Debug, Clone)]
pub enum Event {
    /// A processor arrangement was declared.
    Processors {
        /// Arrangement name.
        name: String,
        /// Shape rendering (empty for scalar arrangements).
        shape: String,
    },
    /// An array was declared.
    Declared {
        /// Array name.
        name: String,
        /// Domain rendering (`<deferred>` for unallocated allocatables).
        domain: String,
        /// `ALLOCATABLE` attribute.
        allocatable: bool,
    },
    /// A `DISTRIBUTE` directive was applied (or recorded, for
    /// allocatables).
    Distributed {
        /// Distributee.
        name: String,
        /// Directive rendering.
        spec: String,
    },
    /// An `ALIGN` directive was applied (or recorded).
    Aligned {
        /// Alignee.
        alignee: String,
        /// Base.
        base: String,
    },
    /// `DYNAMIC` was granted.
    Dynamic(String),
    /// An `ALLOCATE` executed.
    Allocated {
        /// Array.
        name: String,
        /// The allocated domain.
        domain: String,
    },
    /// A `DEALLOCATE` executed.
    Deallocated {
        /// Array.
        name: String,
        /// Former alignees promoted to primaries (§6).
        promoted: Vec<String>,
    },
    /// A `REDISTRIBUTE` executed.
    Redistributed {
        /// Array.
        name: String,
        /// Elements whose owner changed.
        moved: usize,
    },
    /// A `REALIGN` executed.
    Realigned {
        /// Alignee.
        alignee: String,
        /// New base.
        base: String,
        /// Elements whose owner changed.
        moved: usize,
    },
    /// A `READ` bound an input value.
    Read {
        /// Name.
        name: String,
        /// Value.
        value: i64,
    },
    /// A `CALL` completed, with its §7 remap accounting.
    Call(CallReport),
    /// An array assignment was recognized (to be executed by the runtime).
    Assignment(AssignEvent),
}

/// An array-assignment statement in resolved form: array ids plus concrete
/// sections, ready to hand to `hpf-runtime`.
#[derive(Debug, Clone)]
pub struct AssignEvent {
    /// LHS array name.
    pub lhs_name: String,
    /// LHS array id in the elaborated space.
    pub lhs: ArrayId,
    /// LHS section.
    pub lhs_section: Section,
    /// RHS terms: `(name, id, section)`.
    pub terms: Vec<(String, ArrayId, Section)>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Processors { name, shape } => write!(f, "PROCESSORS {name}{shape}"),
            Event::Declared { name, domain, allocatable } => {
                write!(f, "declare {name}{domain}")?;
                if *allocatable {
                    write!(f, " ALLOCATABLE")?;
                }
                Ok(())
            }
            Event::Distributed { name, spec } => write!(f, "DISTRIBUTE {name} {spec}"),
            Event::Aligned { alignee, base } => write!(f, "ALIGN {alignee} WITH {base}"),
            Event::Dynamic(n) => write!(f, "DYNAMIC {n}"),
            Event::Allocated { name, domain } => write!(f, "ALLOCATE {name}{domain}"),
            Event::Deallocated { name, promoted } => {
                write!(f, "DEALLOCATE {name}")?;
                if !promoted.is_empty() {
                    write!(f, " (promoted to primary: {})", promoted.join(", "))?;
                }
                Ok(())
            }
            Event::Redistributed { name, moved } => {
                write!(f, "REDISTRIBUTE {name} ({moved} elements moved)")
            }
            Event::Realigned { alignee, base, moved } => {
                write!(f, "REALIGN {alignee} WITH {base} ({moved} elements moved)")
            }
            Event::Read { name, value } => write!(f, "READ {name} = {value}"),
            Event::Call(r) => {
                write!(f, "CALL {} ({} elements moved across boundary)", r.procedure, r.total_volume())
            }
            Event::Assignment(a) => {
                write!(f, "{}{} = ", a.lhs_name, a.lhs_section)?;
                for (k, (n, _, s)) in a.terms.iter().enumerate() {
                    if k > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{n}{s}")?;
                }
                Ok(())
            }
        }
    }
}

/// The full elaboration narrative.
#[derive(Debug, Clone, Default)]
pub struct ElaborationReport {
    /// Events in program order.
    pub events: Vec<Event>,
}

impl ElaborationReport {
    /// All recognized array assignments, in order.
    pub fn assignments(&self) -> Vec<&AssignEvent> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Assignment(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// All completed calls.
    pub fn calls(&self) -> Vec<&CallReport> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Call(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Total elements moved by dynamic remapping (REDISTRIBUTE + REALIGN +
    /// procedure boundaries).
    pub fn total_remap_volume(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                Event::Redistributed { moved, .. } | Event::Realigned { moved, .. } => *moved,
                Event::Call(r) => r.total_volume(),
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for ElaborationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}
