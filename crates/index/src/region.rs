use crate::{Idx, IndexError, Triplet};
use std::fmt;

/// A rectilinear box of indices: the cartesian product of one triplet per
/// dimension (strides allowed).
///
/// Rects are the currency of mapping *analysis*: a distribution's inverse
/// (`owned_region`) is a union of rects, the image of a rect under an affine
/// alignment is a rect, and communication sets are intersections of rects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rect {
    dims: Vec<Triplet>,
}

impl Rect {
    /// Build from per-dimension triplets.
    pub fn new(dims: Vec<Triplet>) -> Self {
        Rect { dims }
    }

    /// Rank of the box.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension triplets.
    pub fn dims(&self) -> &[Triplet] {
        &self.dims
    }

    /// The triplet of dimension `d`.
    pub fn dim(&self, d: usize) -> &Triplet {
        &self.dims[d]
    }

    /// Number of indices in the box.
    pub fn volume(&self) -> usize {
        self.dims.iter().map(Triplet::len).product()
    }

    /// True iff the box holds no index.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Triplet::is_empty)
    }

    /// Membership test.
    pub fn contains(&self, i: &Idx) -> bool {
        i.rank() == self.rank()
            && self.dims.iter().zip(i.as_slice()).all(|(t, &v)| t.contains(v))
    }

    /// Box intersection (exact, per-dimension CRT).
    pub fn intersect(&self, other: &Rect) -> Result<Rect, IndexError> {
        if self.rank() != other.rank() {
            return Err(IndexError::RankMismatch { expected: self.rank(), found: other.rank() });
        }
        Ok(Rect {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        })
    }

    /// Volume of the intersection without materializing it.
    pub fn intersection_volume(&self, other: &Rect) -> usize {
        if self.rank() != other.rank() {
            return 0;
        }
        self.dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.intersect(b).len())
            .product()
    }

    /// Per-dimension affine image `{ a_d·x + c_d }`.
    pub fn affine_image(&self, coeffs: &[(i64, i64)]) -> Result<Rect, IndexError> {
        if coeffs.len() != self.rank() {
            return Err(IndexError::RankMismatch { expected: self.rank(), found: coeffs.len() });
        }
        let mut dims = Vec::with_capacity(self.rank());
        for (t, &(a, c)) in self.dims.iter().zip(coeffs) {
            dims.push(t.affine_image(a, c)?);
        }
        Ok(Rect { dims })
    }

    /// Iterate the indices of the box in column-major order.
    pub fn iter(&self) -> RectIter<'_> {
        RectIter { rect: self, cursor: vec![0; self.rank()], remaining: self.volume() }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (d, t) in self.dims.iter().enumerate() {
            if d > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Column-major iterator over a [`Rect`].
#[derive(Debug, Clone)]
pub struct RectIter<'a> {
    rect: &'a Rect,
    cursor: Vec<usize>,
    remaining: usize,
}

impl Iterator for RectIter<'_> {
    type Item = Idx;

    fn next(&mut self) -> Option<Idx> {
        if self.remaining == 0 {
            return None;
        }
        let mut out = Idx::SCALAR;
        for (d, t) in self.rect.dims.iter().enumerate() {
            out.push(t.nth(self.cursor[d]).expect("cursor valid"));
        }
        self.remaining -= 1;
        for (d, t) in self.rect.dims.iter().enumerate() {
            self.cursor[d] += 1;
            if self.cursor[d] < t.len() {
                break;
            }
            self.cursor[d] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RectIter<'_> {}

/// A finite union of [`Rect`]s of equal rank.
///
/// Invariants: all member rects have the same rank and are non-empty.
/// Members are **not** required to be pairwise disjoint in general — but
/// every constructor used by distribution inverses produces disjoint rects,
/// and [`Region::volume_disjoint`] documents where disjointness is assumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    rank: usize,
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region of a given rank.
    pub fn empty(rank: usize) -> Self {
        Region { rank, rects: Vec::new() }
    }

    /// A region of a single box (empty boxes yield the empty region).
    pub fn from_rect(r: Rect) -> Self {
        let rank = r.rank();
        if r.is_empty() {
            Region::empty(rank)
        } else {
            Region { rank, rects: vec![r] }
        }
    }

    /// Build from a list of boxes (empty boxes are dropped).
    pub fn from_rects(rank: usize, rects: Vec<Rect>) -> Result<Self, IndexError> {
        for r in &rects {
            if r.rank() != rank {
                return Err(IndexError::RankMismatch { expected: rank, found: r.rank() });
            }
        }
        Ok(Region { rank, rects: rects.into_iter().filter(|r| !r.is_empty()).collect() })
    }

    /// Rank of all member boxes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The member boxes.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// True iff no box is present.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Membership test (linear in the number of boxes).
    pub fn contains(&self, i: &Idx) -> bool {
        self.rects.iter().any(|r| r.contains(i))
    }

    /// Total volume **assuming pairwise-disjoint boxes** (true for all
    /// distribution inverses produced by this workspace).
    pub fn volume_disjoint(&self) -> usize {
        self.rects.iter().map(Rect::volume).sum()
    }

    /// Add a box (ignored if empty).
    ///
    /// # Panics
    /// Panics on rank mismatch — regions are built internally, a mismatch
    /// is a programming error.
    pub fn push(&mut self, r: Rect) {
        assert_eq!(r.rank(), self.rank, "region rank mismatch");
        if !r.is_empty() {
            self.rects.push(r);
        }
    }

    /// Region ∩ box.
    pub fn intersect_rect(&self, r: &Rect) -> Result<Region, IndexError> {
        let mut out = Region::empty(self.rank);
        for mine in &self.rects {
            let i = mine.intersect(r)?;
            if !i.is_empty() {
                out.rects.push(i);
            }
        }
        Ok(out)
    }

    /// Region ∩ region (pairwise box intersection).
    pub fn intersect(&self, other: &Region) -> Result<Region, IndexError> {
        let mut out = Region::empty(self.rank);
        for a in &self.rects {
            for b in &other.rects {
                let i = a.intersect(b)?;
                if !i.is_empty() {
                    out.rects.push(i);
                }
            }
        }
        Ok(out)
    }

    /// Volume of `self ∩ other`, assuming **both** operands have internally
    /// disjoint boxes.
    pub fn intersection_volume(&self, other: &Region) -> usize {
        let mut v = 0usize;
        for a in &self.rects {
            for b in &other.rects {
                v += a.intersection_volume(b);
            }
        }
        v
    }

    /// Iterate all indices (column-major within each box, boxes in order).
    pub fn iter(&self) -> impl Iterator<Item = Idx> + '_ {
        self.rects.iter().flat_map(|r| r.iter())
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rects.is_empty() {
            return write!(f, "∅");
        }
        for (k, r) in self.rects.iter().enumerate() {
            if k > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, triplet};

    #[test]
    fn rect_volume_membership() {
        let r = Rect::new(vec![span(1, 4), triplet(0, 10, 5)]);
        assert_eq!(r.volume(), 4 * 3);
        assert!(r.contains(&Idx::d2(2, 5)));
        assert!(!r.contains(&Idx::d2(2, 4)));
        assert!(!r.contains(&Idx::d1(2)));
    }

    #[test]
    fn rect_intersection_exact() {
        let a = Rect::new(vec![span(1, 10), triplet(1, 20, 2)]);
        let b = Rect::new(vec![span(5, 15), triplet(1, 20, 3)]);
        let i = a.intersect(&b).unwrap();
        // dim0: 5..10, dim1: odd ∩ ≡1 mod 3 → 1,7,13,19
        assert_eq!(i.dim(0).len(), 6);
        let d1: Vec<i64> = i.dim(1).iter().collect();
        assert_eq!(d1, vec![1, 7, 13, 19]);
        assert_eq!(a.intersection_volume(&b), i.volume());
    }

    #[test]
    fn rect_iter_matches_volume() {
        let r = Rect::new(vec![triplet(0, 6, 3), span(1, 2)]);
        let pts: Vec<Idx> = r.iter().collect();
        assert_eq!(pts.len(), r.volume());
        assert_eq!(pts[0], Idx::d2(0, 1));
        assert_eq!(pts[1], Idx::d2(3, 1)); // column-major: dim0 fastest
    }

    #[test]
    fn rect_affine_image() {
        let r = Rect::new(vec![span(1, 4), span(1, 3)]);
        // (i,j) ↦ (2i−1, 2j)  — the staggered-grid alignment shape
        let img = r.affine_image(&[(2, -1), (2, 0)]).unwrap();
        assert!(img.dim(0).set_eq(&triplet(1, 7, 2)));
        assert!(img.dim(1).set_eq(&triplet(2, 6, 2)));
    }

    #[test]
    fn region_union_and_intersection() {
        let mut reg = Region::empty(1);
        reg.push(Rect::new(vec![span(1, 10)]));
        reg.push(Rect::new(vec![span(21, 30)]));
        assert_eq!(reg.volume_disjoint(), 20);
        assert!(reg.contains(&Idx::d1(25)));
        assert!(!reg.contains(&Idx::d1(15)));

        let other = Region::from_rect(Rect::new(vec![span(5, 24)]));
        let inter = reg.intersect(&other).unwrap();
        assert_eq!(inter.volume_disjoint(), 6 + 4);
        assert_eq!(reg.intersection_volume(&other), 10);
    }

    #[test]
    fn region_drops_empty_rects() {
        let reg = Region::from_rects(
            1,
            vec![Rect::new(vec![Triplet::empty()]), Rect::new(vec![span(1, 2)])],
        )
        .unwrap();
        assert_eq!(reg.rects().len(), 1);
    }

    #[test]
    fn region_rank_mismatch() {
        assert!(Region::from_rects(2, vec![Rect::new(vec![span(1, 2)])]).is_err());
    }

    #[test]
    fn region_iter() {
        let mut reg = Region::empty(1);
        reg.push(Rect::new(vec![triplet(1, 5, 2)]));
        reg.push(Rect::new(vec![span(10, 11)]));
        let v: Vec<i64> = reg.iter().map(|i| i[0]).collect();
        assert_eq!(v, vec![1, 3, 5, 10, 11]);
    }

    #[test]
    fn display() {
        let r = Rect::new(vec![span(1, 2), triplet(1, 9, 4)]);
        assert_eq!(r.to_string(), "{1:2 × 1:9:4}");
        assert_eq!(Region::empty(1).to_string(), "∅");
    }
}
